"""Shared infrastructure of the figure-reproduction benchmarks.

Every benchmark regenerates the data series of one paper figure and
writes a small text report to ``benchmarks/results/`` (so the numbers
recorded in EXPERIMENTS.md can be refreshed by re-running the suite).
Use ``pytest benchmarks/ --benchmark-only`` to run them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels import make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Block edge used for kernel measurements (the paper uses 60^3; Python
#: kernel rates make 32^3 a better time/precision trade-off here).
BENCH_EDGE = 32


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, lines: list[str]) -> None:
    """Persist a figure report and echo it to stdout."""
    text = "\n".join(lines) + "\n"
    (results_dir / name).write_text(text)
    print(f"\n=== {name} ===")
    print(text)


@pytest.fixture(scope="session")
def bench_blocks():
    """Ghosted scenario blocks of the benchmark size, plus a phi_dst level."""
    from repro.core.kernels import get_phi_kernel

    blocks = {}
    for name in ("interface", "liquid", "solid"):
        phi, mu, tg, system, params = make_scenario(
            name, (BENCH_EDGE,) * 3, seed=0
        )
        ctx = make_context(system, params)
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel(
            "buffered"
        )(ctx, phi, mu, tg)
        fill_ghosts_periodic(phi_dst, 3)
        blocks[name] = dict(
            ctx=ctx, phi=phi, mu=mu, tg=tg, phi_dst=phi_dst,
            t_new=tg - 0.01, cells=BENCH_EDGE**3,
        )
    return blocks


def rate_of(benchmark_stats_or_seconds, cells: int) -> float:
    """MLUP/s from a seconds-per-call figure."""
    return cells / benchmark_stats_or_seconds / 1e6


def time_call(fn, min_time: float = 0.4, max_repeats: int = 60) -> float:
    """Median seconds per call (light-weight timer for table rows)."""
    import time

    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    repeats = max(3, min(max_repeats, int(min_time / max(first, 1e-9))))
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


@pytest.fixture(scope="session")
def microstructure_run():
    """A small directional-solidification run shared by Figs. 10 and 11.

    The paper's production run is 2420 x 2420 x 1474 cells on Hornet; this
    anchor run is laptop-sized but exercises the identical pipeline
    (Voronoi nuclei, frozen gradient, moving window, shortcut kernels).
    """
    from repro.core.moving_window import MovingWindow
    from repro.core.solver import Simulation
    from repro.core.temperature import FrozenTemperature
    from repro.thermo.system import TernaryEutecticSystem

    system = TernaryEutecticSystem()
    shape = (20, 20, 36)
    temp = FrozenTemperature(
        t_ref=system.t_eutectic, gradient=0.35, velocity=0.05,
        z0=12.0, dx=1.0,
    )
    sim = Simulation(
        shape=shape, system=system, kernel="shortcut", temperature=temp,
        moving_window=MovingWindow(target_fraction=0.45, check_every=20),
    )
    sim.initialize_voronoi(seed=11, solid_height=8, n_seeds=10, smooth=2)
    sim.step(500)
    return sim
