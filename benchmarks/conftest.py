"""Shared infrastructure of the figure-reproduction benchmarks.

Every benchmark regenerates the data series of one paper figure and
writes two reports to ``benchmarks/results/``: a human-readable text
table (the numbers recorded in EXPERIMENTS.md) and a machine-readable
``BENCH_<fig>.json`` run report (see :mod:`repro.telemetry.report`) that
seeds the performance trajectory tracked across revisions.
Use ``pytest benchmarks/ --benchmark-only`` to run them.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks block sizes and measurement
times so the whole suite finishes in CI minutes; the figure-shape
assertions that need clean timings are skipped in smoke mode, while the
reports are still emitted and schema-validated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.kernels import make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from repro.telemetry.report import build_run_report, write_run_report

RESULTS_DIR = Path(__file__).parent / "results"

#: Smoke mode: tiny sizes / short timers for CI; set REPRO_BENCH_SMOKE=1.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Block edge used for kernel measurements (the paper uses 60^3; Python
#: kernel rates make 32^3 a better time/precision trade-off here, and
#: smoke mode drops to 16^3).
BENCH_EDGE = 16 if SMOKE else 32

#: Default per-measurement wall-time budget of :func:`time_call`.
BENCH_MIN_TIME = 0.05 if SMOKE else 0.4


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, lines: list[str]) -> None:
    """Persist a figure report and echo it to stdout."""
    text = "\n".join(lines) + "\n"
    (results_dir / name).write_text(text)
    print(f"\n=== {name} ===")
    print(text)


@pytest.fixture(scope="session")
def bench_blocks():
    """Ghosted scenario blocks of the benchmark size, plus a phi_dst level."""
    from repro.core.kernels import get_phi_kernel

    blocks = {}
    for name in ("interface", "liquid", "solid"):
        phi, mu, tg, system, params = make_scenario(
            name, (BENCH_EDGE,) * 3, seed=0
        )
        ctx = make_context(system, params)
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel(
            "buffered"
        )(ctx, phi, mu, tg)
        fill_ghosts_periodic(phi_dst, 3)
        blocks[name] = dict(
            ctx=ctx, phi=phi, mu=mu, tg=tg, phi_dst=phi_dst,
            t_new=tg - 0.01, cells=BENCH_EDGE**3,
        )
    return blocks


def rate_of(benchmark_stats_or_seconds, cells: int) -> float:
    """MLUP/s from a seconds-per-call figure."""
    return cells / benchmark_stats_or_seconds / 1e6


def time_call(fn, min_time: float | None = None, max_repeats: int = 60) -> float:
    """Median seconds per call (light-weight timer for table rows).

    Delegates to :func:`repro.perf.metrics.measure_kernel_rate`, which
    auto-ranges the batch size so even sub-microsecond calls accumulate
    the full *min_time* of wall clock.
    """
    from repro.perf.metrics import measure_kernel_rate

    rate = measure_kernel_rate(
        fn, cells=1,
        min_time=BENCH_MIN_TIME if min_time is None else min_time,
        max_repeats=max_repeats,
    )
    return rate.seconds_median


def write_bench_report(
    results_dir: Path,
    fig: str,
    *,
    config: dict,
    grid_shape,
    n_ranks: int,
    steps: int,
    wall_seconds: float,
    mlups: float,
    series: dict,
    timings: dict | None = None,
    counters: dict | None = None,
    tracing: dict | None = None,
) -> dict:
    """Write the ``BENCH_<fig>.json`` run report of one figure benchmark.

    *series* carries the regenerated figure data (curves/tables keyed by
    scenario), stored under the report's ``series`` key so downstream
    tooling can track the trajectory of every point, not only the
    headline MLUP/s.  *tracing* (a RunReport ``"tracing"`` section, e.g.
    lifted from a traced anchor run) rides along so span-derived numbers
    like the fig8 overlap efficiency enter the perf history too.
    """
    report = build_run_report(
        run_id=f"bench-{fig}",
        config={"benchmark": fig, "smoke": SMOKE, **config},
        grid_shape=grid_shape,
        n_ranks=n_ranks,
        steps=steps,
        wall_seconds=wall_seconds,
        mlups=mlups,
        timings=timings,
        counters=counters,
        series=series,
        tracing_stats=tracing,
    )
    write_run_report(results_dir / f"BENCH_{fig}.json", report)
    return report


@pytest.fixture(scope="session")
def microstructure_run():
    """A small directional-solidification run shared by Figs. 10 and 11.

    The paper's production run is 2420 x 2420 x 1474 cells on Hornet; this
    anchor run is laptop-sized but exercises the identical pipeline
    (Voronoi nuclei, frozen gradient, moving window, shortcut kernels).
    """
    from repro.core.moving_window import MovingWindow
    from repro.core.solver import Simulation
    from repro.core.temperature import FrozenTemperature
    from repro.thermo.system import TernaryEutecticSystem

    system = TernaryEutecticSystem()
    shape = (20, 20, 36)
    temp = FrozenTemperature(
        t_ref=system.t_eutectic, gradient=0.35, velocity=0.05,
        z0=12.0, dx=1.0,
    )
    sim = Simulation(
        shape=shape, system=system, kernel="shortcut", temperature=temp,
        moving_window=MovingWindow(target_fraction=0.45, check_every=20),
    )
    sim.initialize_voronoi(seed=11, solid_height=8, n_seeds=10, smooth=2)
    sim.step(500)
    return sim
