"""Ablation — the anti-trapping current (Eq. 4).

The grand-potential model carries the anti-trapping flux to cancel the
spurious solute trapping of the wide numerical interface; the paper calls
it out as the single most expensive term of the mu update (skippable only
away from the front).  This ablation quantifies both sides of that
trade-off on a fast-solidification run:

* *physics*: without J_at the solid freezes in more solute deviation
  (larger |c - c_eq| in the solidified region);
* *cost*: without J_at the mu-kernel gets cheaper.
"""

import numpy as np

from repro.core.interpolation import moelans_h
from repro.core.kernels import make_context
from repro.core.solver import Simulation
from repro.core.temperature import FrozenTemperature
from repro.thermo.system import TernaryEutecticSystem
from conftest import rate_of, time_call, write_report


def _run(anti_trapping: bool):
    system = TernaryEutecticSystem()
    temp = FrozenTemperature(
        t_ref=system.t_eutectic, gradient=0.5, velocity=0.12, z0=20.0,
    )
    sim = Simulation(
        shape=(24, 64), system=system, kernel="buffered", temperature=temp,
    )
    sim.params = sim.params.with_(anti_trapping=anti_trapping)
    sim.ctx = make_context(sim.system, sim.params)
    sim.initialize_voronoi(seed=6, solid_height=12, n_seeds=6)
    sim.step(400)
    return sim


def _solid_solute_deviation(sim) -> float:
    """Mean |c - c_eq(phase)| over freshly solidified cells."""
    system = sim.system
    phi = sim.phi.interior_src
    mu = sim.mu.interior_src
    t = sim._slice_temps(sim.time)[1:-1]
    temp = sim.ctx.broadcast_slices(t)
    h = moelans_h(phi)
    c = system.concentration(h, mu, temp)
    dev = 0.0
    count = 0
    for s in system.phase_set.solid_indices:
        mask = phi[s] > 0.6
        # only newly solidified material (above the initial slab)
        mask[..., :12] = False
        if not mask.any():
            continue
        c_eq = system.free_energy(s).c_eq
        dev += float(np.abs(c[:, mask] - c_eq[:, None]).sum())
        count += mask.sum()
    return dev / max(count, 1)


def test_antitrapping_ablation(benchmark, results_dir):
    data = {}

    def measure():
        sim_on = _run(True)
        sim_off = _run(False)
        data["dev_on"] = _solid_solute_deviation(sim_on)
        data["dev_off"] = _solid_solute_deviation(sim_off)
        # cost of the term on the same state
        from repro.core.kernels import get_mu_kernel

        kern = get_mu_kernel("buffered")
        for label, sim in (("on", sim_on), ("off", sim_off)):
            t_old = sim._slice_temps(sim.time)
            t_new = sim._slice_temps(sim.time + sim.params.dt)
            sec = time_call(lambda s=sim, a=t_old, b=t_new: kern(
                s.ctx, s.mu.src, s.phi.src, s.phi.src, a, b))
            data[f"rate_{label}"] = rate_of(sec, int(np.prod(sim.shape)))

    benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "Ablation: anti-trapping current (Eq. 4)",
        "",
        f"solute deviation in fresh solid  with J_at: {data['dev_on']:.4f}",
        f"                              without J_at: {data['dev_off']:.4f}",
        f"mu-kernel rate                   with J_at: {data['rate_on']:.3f} MLUP/s",
        f"                              without J_at: {data['rate_off']:.3f} MLUP/s",
        "",
        "expected: J_at reduces trapped solute at the cost of kernel time.",
    ]
    write_report(results_dir, "ablation_antitrapping.txt", lines)

    assert data["dev_on"] < data["dev_off"]
    assert data["rate_off"] > data["rate_on"]
