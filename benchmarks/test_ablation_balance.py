"""Ablation — load balancing and the moving window (Sec. 3.3 / 5.1.2).

The paper "experimented with various load balancing techniques ... which
did, however, not decrease the total runtime significantly, because the
moving window technique makes it possible to simulate only the interface
region, such that, in production runs, most blocks have a composition
similar to the 'interface' benchmark."

This ablation reproduces both halves of that argument with the block
weights taken from a real solidification state:

* *without* the moving window (tall domain, front inside), block costs
  vary strongly along z and LPT-weighted assignment beats contiguous
  assignment clearly;
* *with* the window (domain cropped to the front region), block costs are
  near-uniform and the balancing gain collapses — balancing "does not
  decrease the runtime significantly".
"""

import numpy as np

from repro.core.regions import classify
from repro.core.solver import Simulation
from repro.grid.balance import assign_blocks, weighted_assign
from repro.grid.blockforest import BlockForest
from repro.perf.scaling import SCENARIO_COST
from repro.thermo.system import TernaryEutecticSystem
from conftest import write_report


def _block_weights(phi, system, forest) -> np.ndarray:
    """Per-block cost estimate from the region composition (shortcut
    kernels make interface cells the expensive ones)."""
    weights = []
    for b in forest.blocks:
        sl = (slice(None),) + tuple(
            slice(o, o + s) for o, s in zip(b.offset, b.shape)
        )
        masks = classify(phi[sl], system.liquid_index)
        counts = masks.counts()
        bulk = b.n_cells - counts["interface"]
        w = (
            counts["interface"] * SCENARIO_COST["interface"]
            + bulk * 0.5 * (SCENARIO_COST["liquid"] + SCENARIO_COST["solid"]) * 0.3
        )
        weights.append(w)
    return np.asarray(weights)


def _imbalance(weights, owner, n_ranks) -> float:
    loads = np.zeros(n_ranks)
    for b, r in enumerate(owner):
        loads[r] += weights[b]
    return float(loads.max() / max(loads.mean(), 1e-12))


def test_balance_ablation(benchmark, results_dir):
    data = {}

    def measure():
        system = TernaryEutecticSystem()
        sim = Simulation(shape=(16, 16, 48), system=system, kernel="shortcut")
        sim.initialize_voronoi(seed=8, solid_height=16, n_seeds=8)
        sim.step(60)
        phi = sim.phi.interior_src

        n_ranks = 4
        # tall domain (no moving window): blocks stacked along z
        forest_tall = BlockForest((16, 16, 48), (1, 1, 8))
        w_tall = _block_weights(phi, system, forest_tall)
        data["tall_contig"] = _imbalance(
            w_tall, assign_blocks(forest_tall, n_ranks), n_ranks
        )
        data["tall_lpt"] = _imbalance(
            w_tall, weighted_assign(w_tall, n_ranks), n_ranks
        )

        # moving-window domain: crop to the interface band
        front = int(sim.front_position())
        z0 = max(front - 8, 0)
        phi_win = phi[..., z0 : z0 + 16]
        forest_win = BlockForest((16, 16, 16), (2, 2, 2))
        w_win = _block_weights(phi_win, system, forest_win)
        data["win_contig"] = _imbalance(
            w_win, assign_blocks(forest_win, n_ranks), n_ranks
        )
        data["win_lpt"] = _imbalance(
            w_win, weighted_assign(w_win, n_ranks), n_ranks
        )
        data["w_tall"] = w_tall
        data["w_win"] = w_win

    benchmark.pedantic(measure, rounds=1, iterations=1)

    gain_tall = data["tall_contig"] / data["tall_lpt"]
    gain_win = data["win_contig"] / data["win_lpt"]
    lines = [
        "Ablation: load balancing x moving window",
        "",
        "imbalance = max rank load / mean rank load (1.0 is perfect)",
        "",
        f"{'configuration':<28}{'contiguous':>12}{'LPT':>12}{'gain':>8}",
        f"{'tall domain (no window)':<28}{data['tall_contig']:>12.2f}"
        f"{data['tall_lpt']:>12.2f}{gain_tall:>8.2f}",
        f"{'moving-window domain':<28}{data['win_contig']:>12.2f}"
        f"{data['win_lpt']:>12.2f}{gain_win:>8.2f}",
        "",
        f"block weight spread (max/min): tall "
        f"{data['w_tall'].max() / data['w_tall'].min():.1f}, window "
        f"{data['w_win'].max() / data['w_win'].min():.1f}",
        "",
        "expected: balancing matters for the tall domain; the moving window",
        "homogenizes block composition so the gain collapses (the paper's",
        "observation that load balancing 'did not decrease the total",
        "runtime significantly').",
    ]
    write_report(results_dir, "ablation_balance.txt", lines)

    assert gain_tall > 1.3          # balancing helps without the window
    assert gain_win < gain_tall     # ... and much less with it
    assert data["win_contig"] < data["tall_contig"]  # window homogenizes
