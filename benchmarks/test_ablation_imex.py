"""Ablation — explicit Euler vs the semi-implicit (IMEX) mu update.

The paper's stated future work: "we plan to switch from the explicit Euler
time stepping scheme to an implicit solver."  This ablation quantifies why:
the explicit diffusive stability limit caps dt, while the stabilized IMEX
update stays bounded at multiples of that limit — trading a spectral solve
per step for far fewer steps per unit of physical time.
"""

import numpy as np

from repro.core.imex import semi_implicit_mu_step
from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from conftest import rate_of, time_call, write_report


def _roughened(mu, seed=3):
    rng = np.random.default_rng(seed)
    out = mu + 0.3 * rng.normal(size=mu.shape)
    fill_ghosts_periodic(out, 3)
    return out


def _amplitude_after(ctx, stepper, mu0, phi, phi_dst, t_old, t_new, steps=10):
    mu = mu0.copy()
    for _ in range(steps):
        upd = stepper(ctx, mu, phi, phi_dst, t_old, t_new)
        mu[(slice(None),) + (slice(1, -1),) * 3] = upd
        fill_ghosts_periodic(mu, 3)
        if not np.isfinite(mu).all():
            return np.inf
    return float(np.abs(mu).max())


def test_imex_ablation(benchmark, results_dir):
    data = {}

    def measure():
        phi, mu, tg, system, params = make_scenario("interface", (8, 8, 16), seed=2)
        ctx0 = make_context(system, params)
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel(
            "buffered"
        )(ctx0, phi, mu, tg)
        fill_ghosts_periodic(phi_dst, 3)
        mu0 = _roughened(mu)
        t_new = tg - 0.01

        d_max = float(np.max(ctx0.diff))
        dt_limit = params.dx**2 / (2 * 3 * d_max)
        explicit = get_mu_kernel("buffered")

        def imex(ctx, m, p, pd, a, b):
            return semi_implicit_mu_step(ctx, m, p, pd, a, b, shortcuts=False)

        rows = []
        for mult in (0.5, 2.0, 8.0):
            ctx = make_context(system, params.with_(dt=mult * dt_limit))
            amp_e = _amplitude_after(ctx, explicit, mu0, phi, phi_dst, tg, t_new)
            amp_i = _amplitude_after(ctx, imex, mu0, phi, phi_dst, tg, t_new)
            rows.append((mult, amp_e, amp_i))
        data["rows"] = rows

        # per-step cost comparison at the nominal dt
        cells = 8 * 8 * 16
        sec_e = time_call(lambda: explicit(ctx0, mu, phi, phi_dst, tg, t_new))
        sec_i = time_call(
            lambda: semi_implicit_mu_step(ctx0, mu, phi, phi_dst, tg, t_new,
                                          shortcuts=False)
        )
        data["rate_e"] = rate_of(sec_e, cells)
        data["rate_i"] = rate_of(sec_i, cells)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "Ablation: explicit vs semi-implicit (IMEX) mu update",
        "",
        "field amplitude after 10 steps from a rough state",
        f"{'dt / dt_limit':>14}{'explicit':>14}{'IMEX':>14}",
    ]
    for mult, amp_e, amp_i in data["rows"]:
        lines.append(f"{mult:>14.1f}{amp_e:>14.3g}{amp_i:>14.3g}")
    lines += [
        "",
        f"per-step rate: explicit {data['rate_e']:.3f} MLUP/s vs "
        f"IMEX {data['rate_i']:.3f} MLUP/s",
        "",
        "expected: beyond dt_limit the explicit update diverges while the",
        "IMEX update stays bounded — larger steps buy back the spectral-",
        "solve overhead (the paper's implicit-solver motivation).",
    ]
    write_report(results_dir, "ablation_imex.txt", lines)

    rows = dict((m, (e, i)) for m, e, i in data["rows"])
    # stable regime: both bounded and similar
    assert rows[0.5][0] < 10 and rows[0.5][1] < 10
    # unstable regime: explicit diverges, IMEX does not
    assert rows[8.0][0] > 100 * rows[8.0][1] or not np.isfinite(rows[8.0][0])
    assert rows[8.0][1] < 10
