"""Fig. 10 — three-dimensional microstructure of Ag-Al-Cu solidification.

Paper: a 2420 x 2420 x 1474-cell Hornet run whose cross-sections show the
same motifs as experimental micrographs — "chained brick-like structures
that are connected or form ring-like structures" — with phase fractions
close to the eutectic expectation and good agreement with synchrotron
tomography.

Here: a small anchor run through the identical pipeline; asserted shape
properties are the observables, not the image: (a) all three solid phases
grow with fractions near the lever rule, (b) micrograph-like cross-
sections decompose into brick/chain motifs, (c) a finite lamellar spacing
emerges transverse to the growth direction, (d) the front advances with
the pulled isotherm (moving window engaged).
"""

import numpy as np

from repro.analysis.correlation import lamella_spacing, two_point_correlation
from repro.analysis.fractions import solid_phase_fractions
from repro.analysis.topology import classify_cross_section
from conftest import write_report


def test_fig10_microstructure(benchmark, microstructure_run, results_dir):
    sim = benchmark.pedantic(lambda: microstructure_run, rounds=1, iterations=1)
    system = sim.system
    phi = sim.phi.interior_src

    lever = system.lever_rule_fractions()
    got = solid_phase_fractions(phi, system)
    front = sim.front_position()

    # micrograph: cross-section just below the front
    zc = max(int(front) - 4, 1)
    census = {}
    for s in system.phase_set.solid_indices:
        mask = phi[s, :, :, zc] > 0.5
        census[system.phase_set.phases[s].name] = classify_cross_section(mask)

    # lamellar spacing of the dominant phase along x
    s0 = int(np.argmax([got[s] for s in system.phase_set.solid_indices]))
    s0 = system.phase_set.solid_indices[s0]
    spacing = lamella_spacing(phi[s0, :, :, zc], axis=0)
    corr = two_point_correlation(phi[s0, :, :, zc])

    lines = [
        "Fig. 10 reproduction: microstructure observables (anchor run 20x20x36,"
        " 500 steps)",
        "",
        f"front position: z = {front:.1f}   window shift: "
        f"{sim.moving_window.total_shift} cells",
        "",
        f"{'phase':<10}{'lever rule':>12}{'simulated':>12}",
    ]
    for s in system.phase_set.solid_indices:
        name = system.phase_set.phases[s].name
        lines.append(f"{name:<10}{lever[s]:>12.3f}{got[s]:>12.3f}")
    lines += ["", "cross-section motif census (z just below the front):"]
    for name, c in census.items():
        lines.append(
            f"  {name:<8} components={c.components} bricks={c.bricks} "
            f"chains={c.chains} rings={c.rings} connections={c.connections}"
        )
    lines += [
        "",
        f"lamellar spacing (phase {system.phase_set.phases[s0].name}, x): "
        f"{spacing:.1f} cells",
        f"transverse autocorrelation at zero shift: {corr.flat[0]:.4f}",
    ]
    write_report(results_dir, "fig10_microstructure.txt", lines)

    # (a) all three solids present; fractions within a loose band of the
    # lever rule (small domain, early time, active phase competition)
    for s in system.phase_set.solid_indices:
        assert got[s] > 0.03
        assert abs(got[s] - lever[s]) < 0.25
    # (b) the cross-section decomposes into brick/chain motifs
    total_components = sum(c.components for c in census.values())
    assert total_components >= 3
    # (c) finite transverse length scale
    assert np.isfinite(spacing)
    assert 2.0 <= spacing <= phi.shape[1] + 0.5
    # (d) solidification progressed and the window followed
    assert sim.moving_window.total_shift >= 0
    assert front > 0
