"""Fig. 11 — exempted single-phase lamellae: splits and merges.

Paper: individual Al2Cu and Ag2Al lamellae extracted from the Fig. 10
run; their three-dimensional shape reveals splits and merges that 2-D
micrographs cannot show — the argument for large 3-D simulations.

Here: per-phase interface meshes extracted with the marching-cubes
pipeline from the anchor run, coarsened with the QEM simplifier, and the
lamella topology traced along the growth axis: changes in the number of
connected components between consecutive cross-sections are exactly the
split/merge events of Fig. 11.
"""

import numpy as np
from scipy import ndimage

from repro.io.marching_cubes import extract_phase_meshes
from repro.io.simplify import simplify_mesh
from conftest import write_report


def _component_counts_along_z(mask3d: np.ndarray) -> list[int]:
    return [
        int(ndimage.label(mask3d[:, :, z])[1])
        for z in range(mask3d.shape[2])
    ]


def test_fig11_lamellae(benchmark, microstructure_run, results_dir):
    sim = benchmark.pedantic(lambda: microstructure_run, rounds=1, iterations=1)
    system = sim.system
    phi = sim.phi.interior_src
    front = int(max(sim.front_position(), 6))

    # the paper shows Al2Cu and Ag2Al lamellae
    targets = [system.phase_set.phase_index(n) for n in ("Al2Cu", "Ag2Al")]
    solid_region = phi[:, :, :, : front + 1]

    meshes = extract_phase_meshes(solid_region, phases=targets)
    lines = ["Fig. 11 reproduction: per-phase lamella surfaces and"
             " split/merge events", ""]
    events = {}
    for s in targets:
        name = system.phase_set.phases[s].name
        mesh = meshes[s]
        coarse = (
            simplify_mesh(mesh, target_ratio=0.4) if mesh.n_faces > 100 else mesh
        )
        counts = _component_counts_along_z(solid_region[s] > 0.5)
        ev = int(np.abs(np.diff(counts)).sum())
        events[name] = ev
        lines.append(
            f"{name:<8} mesh: {mesh.n_faces} faces -> {coarse.n_faces} after"
            f" QEM; area {mesh.area():.1f} -> {coarse.area():.1f}"
        )
        lines.append(
            f"{'':<8} lamella components per z-slice: {counts}"
        )
        lines.append(f"{'':<8} split/merge events along growth axis: {ev}")
        # surface extraction non-trivial and area-preserving coarsening
        assert mesh.n_faces > 0
        if mesh.n_faces > 100:
            assert coarse.n_faces < mesh.n_faces
            assert abs(coarse.area() - mesh.area()) / mesh.area() < 0.1

    write_report(results_dir, "fig11_lamellae.txt", lines)

    # 3-D information content: at least one phase exhibits topology changes
    # along the growth axis (splits/merges invisible in any single slice)
    assert sum(events.values()) >= 1
