"""Fig. 5 — phi-kernel vectorization strategies.

Paper: three vectorized phi-kernel variants (cellwise, cellwise with
shortcuts, four-cell) benchmarked on interface / liquid / solid blocks of
60^3 on one SuperMUC core; "in all three parts of the domain, the single
cell kernel with shortcuts performes best".

Here: the NumPy analogs of the three strategies on the same three block
compositions.  Shape assertions: shortcuts fastest everywhere, with the
largest margin on bulk (liquid) blocks.
"""

import pytest

from repro.core.kernels import get_phi_kernel
from repro.core.kernels.strategies import STRATEGIES
from conftest import rate_of, time_call, write_report

SCENARIOS = ("interface", "liquid", "solid")


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_rate(benchmark, bench_blocks, scenario, strategy):
    b = bench_blocks[scenario]
    kern = get_phi_kernel(strategy)
    benchmark.group = f"fig5-{scenario}"
    benchmark.name = strategy
    benchmark(lambda: kern(b["ctx"], b["phi"], b["mu"], b["tg"]))
    benchmark.extra_info["mlups"] = rate_of(benchmark.stats["mean"], b["cells"])


def test_fig5_shape_and_report(benchmark, bench_blocks, results_dir):
    """Regenerate the Fig. 5 bar chart data and assert the paper's shape."""
    rows = {}

    def measure():
        for scenario in SCENARIOS:
            b = bench_blocks[scenario]
            rows[scenario] = {}
            for strategy in STRATEGIES:
                kern = get_phi_kernel(strategy)
                sec = time_call(
                    lambda k=kern, bb=b: k(bb["ctx"], bb["phi"], bb["mu"], bb["tg"])
                )
                rows[scenario][strategy] = rate_of(sec, b["cells"])

    benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["Fig. 5 reproduction: phi-kernel MLUP/s by vectorization strategy",
             f"(block {len(bench_blocks)}x scenarios, edge 32; paper: 60^3 on 1 SuperMUC core)",
             ""]
    header = f"{'scenario':<12}" + "".join(f"{s:>22}" for s in STRATEGIES)
    lines.append(header)
    for scenario, vals in rows.items():
        lines.append(
            f"{scenario:<12}"
            + "".join(f"{vals[s]:>22.3f}" for s in STRATEGIES)
        )
    lines += ["", "paper shape: cellwise-with-shortcuts fastest in every scenario;",
              "four-cell variant cannot take per-cell shortcuts."]
    write_report(results_dir, "fig5_vectorization.txt", lines)

    for scenario in SCENARIOS:
        vals = rows[scenario]
        assert vals["cellwise_shortcuts"] >= 0.9 * max(vals.values()), (
            scenario, vals,
        )
    # bulk blocks benefit the most from shortcuts
    gain_liquid = rows["liquid"]["cellwise_shortcuts"] / rows["liquid"]["cellwise"]
    gain_iface = (
        rows["interface"]["cellwise_shortcuts"] / rows["interface"]["cellwise"]
    )
    assert gain_liquid > gain_iface
