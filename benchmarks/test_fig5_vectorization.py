"""Fig. 5 — phi-kernel vectorization strategies.

Paper: three vectorized phi-kernel variants (cellwise, cellwise with
shortcuts, four-cell) benchmarked on interface / liquid / solid blocks of
60^3 on one SuperMUC core; "in all three parts of the domain, the single
cell kernel with shortcuts performes best".

Here: the NumPy analogs of the three strategies on the same three block
compositions, plus — when a backend is usable — the compiled per-cell
rungs as the "what the actual hand-vectorized C achieved" rows
(``compiled`` matching the cellwise strategy, ``compiled_shortcuts`` the
cellwise-with-shortcuts one).  Shape assertions: among the NumPy
strategies, shortcuts fastest everywhere, with the largest margin on bulk
(liquid) blocks.
"""

import time

import pytest

from repro.core.kernels import COMPILED_RUNGS, get_phi_kernel, rung_available
from repro.core.kernels.strategies import STRATEGIES
from conftest import BENCH_EDGE, rate_of, time_call, write_bench_report, write_report

SCENARIOS = ("interface", "liquid", "solid")
#: NumPy strategy rows plus the compiled rungs this environment can run.
ROWS = list(STRATEGIES) + [r for r in COMPILED_RUNGS if rung_available(r)]


def _warm_compiled(b, name) -> float:
    if name not in COMPILED_RUNGS:
        return 0.0
    from repro.core.kernels import compiled

    return compiled.warmup(b["ctx"])


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("strategy", ROWS)
def test_strategy_rate(benchmark, bench_blocks, scenario, strategy):
    b = bench_blocks[scenario]
    kern = get_phi_kernel(strategy)
    benchmark.group = f"fig5-{scenario}"
    benchmark.name = strategy
    benchmark.extra_info["warmup_seconds"] = _warm_compiled(b, strategy)
    benchmark(lambda: kern(b["ctx"], b["phi"], b["mu"], b["tg"]))
    benchmark.extra_info["mlups"] = rate_of(benchmark.stats["mean"], b["cells"])


def test_fig5_shape_and_report(benchmark, bench_blocks, results_dir):
    """Regenerate the Fig. 5 bar chart data and assert the paper's shape."""
    from repro.core.kernels import compiled

    rows = {}
    compile_seconds = {}

    def measure():
        for scenario in SCENARIOS:
            b = bench_blocks[scenario]
            rows[scenario] = {}
            if any(r in COMPILED_RUNGS for r in ROWS):
                # untimed, recorded: JIT/dlopen cost stays out of the rates
                compile_seconds[scenario] = compiled.warmup(b["ctx"])
            for strategy in ROWS:
                kern = get_phi_kernel(strategy)
                sec = time_call(
                    lambda k=kern, bb=b: k(bb["ctx"], bb["phi"], bb["mu"], bb["tg"])
                )
                rows[scenario][strategy] = rate_of(sec, b["cells"])

    wall0 = time.perf_counter()
    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall = time.perf_counter() - wall0

    write_bench_report(
        results_dir, "fig5_vectorization",
        config={"edge": BENCH_EDGE, "strategies": ROWS,
                "scenarios": list(SCENARIOS),
                "compiled_backend": compiled.backend_name()},
        grid_shape=(BENCH_EDGE,) * 3,
        n_ranks=1,
        steps=len(ROWS) * len(SCENARIOS),
        wall_seconds=wall,
        mlups=max(max(v.values()) for v in rows.values()),
        series={"phi": rows, "compile_seconds": compile_seconds},
    )

    lines = ["Fig. 5 reproduction: phi-kernel MLUP/s by vectorization strategy",
             f"(block {len(bench_blocks)}x scenarios, edge 32; paper: 60^3 on 1 SuperMUC core)",
             ""]
    header = f"{'scenario':<12}" + "".join(f"{s:>22}" for s in ROWS)
    lines.append(header)
    for scenario, vals in rows.items():
        lines.append(
            f"{scenario:<12}"
            + "".join(f"{vals[s]:>22.3f}" for s in ROWS)
        )
    lines += ["", "paper shape: cellwise-with-shortcuts fastest in every scenario;",
              "four-cell variant cannot take per-cell shortcuts."]
    if compile_seconds:
        lines.append(
            f"compiled backend: {compiled.backend_name()}; untimed "
            "compile/warmup per block: "
            + ", ".join(f"{s}={v * 1e3:.1f}ms"
                        for s, v in compile_seconds.items())
        )
    write_report(results_dir, "fig5_vectorization.txt", lines)

    for scenario in SCENARIOS:
        vals = rows[scenario]
        best_numpy = max(vals[s] for s in STRATEGIES)
        assert vals["cellwise_shortcuts"] >= 0.9 * best_numpy, (
            scenario, vals,
        )
    # bulk blocks benefit the most from shortcuts
    gain_liquid = rows["liquid"]["cellwise_shortcuts"] / rows["liquid"]["cellwise"]
    gain_iface = (
        rows["interface"]["cellwise_shortcuts"] / rows["interface"]["cellwise"]
    )
    assert gain_liquid > gain_iface
