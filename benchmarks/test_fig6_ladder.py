"""Fig. 6 — node-level optimization ladder for both kernels.

Paper: MLUP/s of the phi- and mu-kernels after each optimization stage
(general-purpose C code -> basic waLBerla -> SIMD -> T(z) -> staggered
buffer -> shortcuts) on interface / liquid / solid blocks of 60^3.
Headline shape claims: the staggered buffer nearly doubles the mu-kernel;
T(z) helps the phi-kernel more than the mu-kernel; shortcuts speed up the
phi-kernel predominantly in liquid blocks and the mu-kernel in solid
blocks; all optimizations combined give a large total speedup over the
general-purpose baseline.
"""

import os
import time

import numpy as np
import pytest

from repro.core.kernels import (
    COMPILED_RUNGS,
    LADDER,
    get_mu_kernel,
    get_phi_kernel,
    make_context,
    rung_available,
)
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from conftest import (
    BENCH_EDGE,
    SMOKE,
    rate_of,
    time_call,
    write_bench_report,
    write_report,
)

SCENARIOS = ("interface", "liquid", "solid")
#: Rungs measured: the full ladder minus the pure-Python reference,
#: filtered to what this environment can run (the compiled rungs need
#: numba or a C toolchain + cffi; the registry reports them unavailable
#: rather than erroring).
FAST_RUNGS = [r for r in LADDER if r != "reference" and rung_available(r)]
#: Best NumPy rung the compiled speedup gate compares against.
BEST_NUMPY = "shortcut"


def _warm_compiled(b, rung) -> float:
    """Compile/load a compiled rung untimed; returns the warmup seconds."""
    if rung not in COMPILED_RUNGS:
        return 0.0
    from repro.core.kernels import compiled

    return compiled.warmup(b["ctx"])


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("rung", FAST_RUNGS)
def test_phi_rung_rate(benchmark, bench_blocks, scenario, rung):
    b = bench_blocks[scenario]
    kern = get_phi_kernel(rung)
    benchmark.group = f"fig6-phi-{scenario}"
    benchmark.extra_info["warmup_seconds"] = _warm_compiled(b, rung)
    benchmark(lambda: kern(b["ctx"], b["phi"], b["mu"], b["tg"]))
    benchmark.extra_info["mlups"] = rate_of(benchmark.stats["mean"], b["cells"])


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("rung", FAST_RUNGS)
def test_mu_rung_rate(benchmark, bench_blocks, scenario, rung):
    b = bench_blocks[scenario]
    kern = get_mu_kernel(rung)
    benchmark.group = f"fig6-mu-{scenario}"
    benchmark.extra_info["warmup_seconds"] = _warm_compiled(b, rung)
    benchmark(
        lambda: kern(b["ctx"], b["mu"], b["phi"], b["phi_dst"], b["tg"], b["t_new"])
    )
    benchmark.extra_info["mlups"] = rate_of(benchmark.stats["mean"], b["cells"])


def _reference_rate(kind: str) -> float:
    """Pure-Python baseline rate, measured on a tiny interface block."""
    shape = (4, 4, 6) if SMOKE else (6, 6, 8)
    cells = int(np.prod(shape))
    phi, mu, tg, system, params = make_scenario("interface", shape, seed=0)
    ctx = make_context(system, params)
    ref_min_time = 0.05 if SMOKE else 0.3
    if kind == "phi":
        kern = get_phi_kernel("reference")
        sec = time_call(
            lambda: kern(ctx, phi, mu, tg), min_time=ref_min_time, max_repeats=3
        )
    else:
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
            ctx, phi, mu, tg
        )
        fill_ghosts_periodic(phi_dst, 3)
        kern = get_mu_kernel("reference")
        sec = time_call(
            lambda: kern(ctx, mu, phi, phi_dst, tg, tg - 0.01),
            min_time=ref_min_time, max_repeats=3,
        )
    return rate_of(sec, cells)


def test_fig6_shape_and_report(benchmark, bench_blocks, results_dir):
    from repro.core.kernels import compiled

    rows: dict[str, dict] = {"phi": {}, "mu": {}}
    ref: dict[str, float] = {}
    compile_seconds: dict[str, float] = {}

    def measure():
        for scenario in SCENARIOS:
            b = bench_blocks[scenario]
            rows["phi"][scenario] = {}
            rows["mu"][scenario] = {}
            if any(r in COMPILED_RUNGS for r in FAST_RUNGS):
                # compile/load once per block, untimed and on the record —
                # JIT warmup must never pollute the MLUP/s samples
                compile_seconds[scenario] = compiled.warmup(b["ctx"])
            for rung in FAST_RUNGS:
                pk = get_phi_kernel(rung)
                mk = get_mu_kernel(rung)
                sec = time_call(lambda: pk(b["ctx"], b["phi"], b["mu"], b["tg"]))
                rows["phi"][scenario][rung] = rate_of(sec, b["cells"])
                sec = time_call(
                    lambda: mk(b["ctx"], b["mu"], b["phi"], b["phi_dst"],
                               b["tg"], b["t_new"])
                )
                rows["mu"][scenario][rung] = rate_of(sec, b["cells"])
        for k in ("phi", "mu"):
            ref[k] = _reference_rate(k)

    wall0 = time.perf_counter()
    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall = time.perf_counter() - wall0

    write_bench_report(
        results_dir, "fig6_ladder",
        config={"edge": BENCH_EDGE, "rungs": FAST_RUNGS,
                "scenarios": list(SCENARIOS),
                "compiled_backend": compiled.backend_name()},
        grid_shape=(BENCH_EDGE,) * 3,
        n_ranks=1,
        steps=len(FAST_RUNGS) * len(SCENARIOS) * 2,
        wall_seconds=wall,
        mlups=max(max(v.values()) for v in rows["phi"].values()),
        series={"phi": rows["phi"], "mu": rows["mu"], "reference": ref,
                "compile_seconds": compile_seconds},
    )

    lines = ["Fig. 6 reproduction: optimization-ladder MLUP/s", ""]
    for kind in ("phi", "mu"):
        lines.append(f"{kind}-kernel   (pure-Python reference: "
                     f"{ref[kind]:.5f} MLUP/s on 6x6x8)")
        header = f"{'scenario':<12}" + "".join(
            f"{r:>20}" for r in FAST_RUNGS
        )
        lines.append(header)
        for scenario in SCENARIOS:
            vals = rows[kind][scenario]
            lines.append(
                f"{scenario:<12}"
                + "".join(f"{vals[r]:>20.3f}" for r in FAST_RUNGS)
            )
        lines.append("")
    if compile_seconds:
        lines.append(
            f"compiled backend: {compiled.backend_name()}; untimed "
            "compile/warmup per block: "
            + ", ".join(f"{s}={v * 1e3:.1f}ms"
                        for s, v in compile_seconds.items())
        )
        lines.append("")
    write_report(results_dir, "fig6_ladder.txt", lines)

    # every rung produced a positive rate (also holds in smoke mode)
    for kind in ("phi", "mu"):
        for scenario in SCENARIOS:
            assert all(v > 0 for v in rows[kind][scenario].values())
    if SMOKE:
        # smoke timings are too short for the figure-shape claims below
        return

    iface_mu = rows["mu"]["interface"]
    # staggered buffering ~2x on the mu-kernel (paper: "almost a factor of two")
    assert iface_mu["buffered"] > 1.4 * iface_mu["tz"]
    # the full ladder beats the basic implementation everywhere
    for kind in ("phi", "mu"):
        for scenario in SCENARIOS:
            vals = rows[kind][scenario]
            assert vals["shortcut"] >= 0.9 * vals["basic"], (kind, scenario, vals)
    # shortcuts help the phi-kernel most in liquid blocks ...
    phi_gain = {
        s: rows["phi"][s]["shortcut"] / rows["phi"][s]["buffered"]
        for s in SCENARIOS
    }
    assert phi_gain["liquid"] == max(phi_gain.values())
    # ... and the mu-kernel most in bulk (solid/liquid) blocks
    mu_gain = {
        s: rows["mu"][s]["shortcut"] / rows["mu"][s]["buffered"]
        for s in SCENARIOS
    }
    assert mu_gain["interface"] == min(mu_gain.values())
    # total speedup vs the general-purpose baseline is large (paper: ~80x
    # vs its C baseline; the Python gap is much larger)
    assert rows["phi"]["interface"]["shortcut"] > 10 * ref["phi"]
    assert rows["mu"]["interface"]["shortcut"] > 10 * ref["mu"]
    # Compiled-rung speedup gate: the top of the compiled ladder must
    # reach >= 3x the best NumPy rung on every kind and scenario.  The
    # per-cell loop parallelizes over cell columns, so the gate arms only
    # on >= 4-core runners (mirroring the fig7 speedup gate) — a starved
    # single-core box cannot show the multi-core headline.  Plain
    # ``compiled`` is not held to 3x by itself: on bulk blocks the NumPy
    # shortcut rung skips nearly all work, and only the shortcut-enabled
    # compiled rung is the apples-to-apples top of the ladder.
    if any(r in COMPILED_RUNGS for r in FAST_RUNGS) and (
        os.cpu_count() or 1
    ) >= 4:
        for kind in ("phi", "mu"):
            for scenario in SCENARIOS:
                vals = rows[kind][scenario]
                best_compiled = max(
                    v for r, v in vals.items() if r in COMPILED_RUNGS
                )
                best_numpy = max(
                    v for r, v in vals.items() if r not in COMPILED_RUNGS
                )
                assert best_compiled >= 3.0 * best_numpy, (
                    kind, scenario, vals
                )
