"""Fig. 7 — intranode scaling of the mu-kernel on one SuperMUC node.

Paper: aggregate mu-kernel MLUP/s over 1..16 cores for block sizes 40^3
and 20^3; nearly linear scaling (the kernel is compute bound, far below
the 126.3 MLUP/s memory roof), with the small block only slightly
different.

Here: the machine model of :mod:`repro.perf.scaling` regenerates the two
curves (this environment has one core, so multi-core points are modeled;
the single-core anchor of the model is cross-checked against the roofline
bound) and the real Python mu-kernel is benchmarked at both block sizes to
verify the "only slightly different" claim on actual hardware.
"""

import os
import time

import numpy as np
import pytest

from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from repro.distributed import DistributedSimulation
from repro.perf.machines import SUPERMUC
from repro.perf.roofline import bytes_per_cell, roofline
from repro.perf.scaling import intranode_scaling
from conftest import SMOKE, rate_of, time_call, write_bench_report, write_report

CORES = [1, 2, 4, 8, 16]

#: Fig. 7 block edges (paper: 40^3 and 20^3; smoke halves both).
EDGES = (20, 10) if SMOKE else (40, 20)

#: Rank counts for the measured intranode (process-backend) scaling.
BACKEND_RANKS = [1, 2, 4]

#: Domain for the backend comparison: four z-blocks so every rank count
#: in BACKEND_RANKS divides the block count evenly.
BACKEND_SHAPE = (6, 6, 16) if SMOKE else (10, 10, 32)
BACKEND_STEPS = 2 if SMOKE else 4


def _measured_backend_rate(backend: str, n_ranks: int) -> float:
    """End-to-end MLUP/s of a DistributedSimulation on *backend*.

    Unlike the machine-model curves this measures this host: with the
    thread backend all ranks share one GIL, so rank count buys nothing;
    the process backend is the configuration the paper's intranode
    scaling actually corresponds to.
    """
    phi, mu, _, system, _ = make_scenario("interface", BACKEND_SHAPE, seed=0)
    interior = (slice(None),) + (slice(1, -1),) * len(BACKEND_SHAPE)
    sim = DistributedSimulation(
        BACKEND_SHAPE, (1, 1, 4), system=system, kernel="buffered",
        n_ranks=n_ranks, backend=backend,
    )
    sim.run(1, phi[interior], mu[interior])  # warm up workers/caches
    t0 = time.perf_counter()
    sim.run(BACKEND_STEPS, phi[interior], mu[interior])
    wall = time.perf_counter() - t0
    return rate_of(wall / BACKEND_STEPS, int(np.prod(BACKEND_SHAPE)))


def _process_pipe_timings() -> dict | None:
    """Timing tree of a telemetry'd process-backend run.

    Carries the ``comm/pipe/{send,recv,ack}`` scopes the transport
    records, quantifying how much of the process backend's wall time is
    control-pipe traffic (vs. the shared-memory payload copies).
    """
    from repro.telemetry import RunTelemetry

    phi, mu, _, system, _ = make_scenario("interface", BACKEND_SHAPE, seed=0)
    interior = (slice(None),) + (slice(1, -1),) * len(BACKEND_SHAPE)
    sim = DistributedSimulation(
        BACKEND_SHAPE, (1, 1, 4), system=system, kernel="buffered",
        n_ranks=2, backend="process",
    )
    result = sim.run(
        BACKEND_STEPS, phi[interior], mu[interior],
        telemetry=RunTelemetry(run_id="fig7-pipe"),
    )
    return result.timing


def _halo_counter_comparison() -> dict:
    """Per-step steady-state transport counters: halo channels vs legacy.

    The same 2-rank process decomposition (multi-block, so each rank has
    several neighbour exchanges per axis) run twice — registered halo
    channels on, then the legacy staged path — counting exchange-level
    messages, control-pipe posts, acks and fresh shared-memory segments
    across the step loop.  These are deterministic message counts, not
    timings, so they gate in smoke mode too; the history entries catch a
    transport regression (a reappearing ack, a per-step segment
    checkout) that wall-clock noise would hide.
    """
    from repro.telemetry import RunTelemetry

    phi, mu, _, system, _ = make_scenario("interface", BACKEND_SHAPE, seed=0)
    interior = (slice(None),) + (slice(1, -1),) * len(BACKEND_SHAPE)
    out = {}
    for name, halo in (("halo", True), ("legacy", False)):
        sim = DistributedSimulation(
            BACKEND_SHAPE, (2, 2, 4), system=system, kernel="buffered",
            n_ranks=2, backend="process", halo_channels=halo,
        )
        res = sim.run(
            BACKEND_STEPS, phi[interior], mu[interior],
            telemetry=RunTelemetry(run_id=f"fig7-{name}-counters"),
        )
        out[name] = {
            key: res.counters[key] / BACKEND_STEPS
            for key in ("halo_messages", "pipe_messages", "halo_acks",
                        "segments_created")
        }
    return out


def _measured_mu_rate(edge: int) -> float:
    phi, mu, tg, system, params = make_scenario("interface", (edge,) * 3)
    ctx = make_context(system, params)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
        ctx, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    kern = get_mu_kernel("buffered")
    sec = time_call(
        lambda: kern(ctx, mu, phi, phi_dst, tg, tg - 0.01),
        min_time=0.05 if SMOKE else 0.5,
    )
    return rate_of(sec, edge**3)


@pytest.mark.parametrize("edge", EDGES)
def test_mu_kernel_rate_at_blocksize(benchmark, edge):
    phi, mu, tg, system, params = make_scenario("interface", (edge,) * 3)
    ctx = make_context(system, params)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
        ctx, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    kern = get_mu_kernel("buffered")
    benchmark.group = "fig7-mu-blocksize"
    benchmark(lambda: kern(ctx, mu, phi, phi_dst, tg, tg - 0.01))
    benchmark.extra_info["mlups"] = rate_of(benchmark.stats["mean"], edge**3)


def test_fig7_model_and_report(benchmark, results_dir):
    data = {}
    big, small = EDGES

    def measure():
        data["c40"] = intranode_scaling(SUPERMUC, CORES, 40)
        data["c20"] = intranode_scaling(SUPERMUC, CORES, 20)
        data["m40"] = _measured_mu_rate(big)
        data["m20"] = _measured_mu_rate(small)
        for backend in ("thread", "process"):
            data[backend] = [
                _measured_backend_rate(backend, n) for n in BACKEND_RANKS
            ]
        data["pipe_tree"] = _process_pipe_timings()
        data["counters"] = _halo_counter_comparison()

    wall0 = time.perf_counter()
    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall = time.perf_counter() - wall0
    c40, c20 = data["c40"], data["c20"]
    halo, legacy = data["counters"]["halo"], data["counters"]["legacy"]

    write_bench_report(
        results_dir, "fig7_intranode",
        config={"cores": CORES, "model_edges": [40, 20],
                "measured_edges": list(EDGES),
                "backend_ranks": BACKEND_RANKS,
                "backend_shape": list(BACKEND_SHAPE),
                "cpu_count": os.cpu_count()},
        grid_shape=(big,) * 3,
        n_ranks=1,
        steps=len(CORES) * 2 + 2,
        wall_seconds=wall,
        mlups=data["m40"],
        timings=data["pipe_tree"],
        counters={
            "halo_messages": halo["halo_messages"],
            "halo_acks": halo["halo_acks"],
            "segments_created": halo["segments_created"],
            "pipe_messages": halo["pipe_messages"],
        },
        series={
            "model_mlups_40": list(c40),
            "model_mlups_20": list(c20),
            "measured_mlups_big": data["m40"],
            "measured_mlups_small": data["m20"],
            "backend_thread_mlups": data["thread"],
            "backend_process_mlups": data["process"],
            # per-step steady-state transport counters (lower is better;
            # tracked by repro.perf.history so a reappearing ack or
            # per-step segment checkout gates CI)
            "halo_pipe_messages_per_step": halo["pipe_messages"],
            "halo_exchange_messages_per_step": halo["halo_messages"],
            "halo_acks_per_step": halo["halo_acks"],
            "halo_segments_created_per_step": halo["segments_created"],
            "legacy_pipe_messages_per_step": legacy["pipe_messages"],
        },
    )

    lines = [
        "Fig. 7 reproduction: intranode mu-kernel scaling, SuperMUC model",
        "",
        f"{'cores':>6} {'40^3 MLUP/s':>14} {'20^3 MLUP/s':>14}",
    ]
    for c, a, b in zip(CORES, c40, c20):
        lines.append(f"{c:>6} {a:>14.2f} {b:>14.2f}")
    lines += [
        "",
        f"memory roof (Sec. 5.1.1): "
        f"{roofline(SUPERMUC, 1384, bytes_per_cell(4, 2)).memory_bound_mlups_node:.1f}"
        " MLUP/s per node -- not reached: compute bound",
        f"measured Python mu-kernel (1 core here): {big}^3 {data['m40']:.3f}"
        f" | {small}^3 {data['m20']:.3f} MLUP/s",
        "",
        f"measured full-step backends, {BACKEND_SHAPE} interface domain "
        f"({os.cpu_count()} cores visible):",
        f"{'ranks':>6} {'thread MLUP/s':>16} {'process MLUP/s':>16}",
    ]
    for n, tr, pr in zip(BACKEND_RANKS, data["thread"], data["process"]):
        lines.append(f"{n:>6} {tr:>16.3f} {pr:>16.3f}")
    pipe = (
        data["pipe_tree"]["children"]["comm"]["children"]["pipe"]["children"]
    )
    lines += [
        "",
        "process-backend pipe overhead (2 ranks, telemetry run): "
        + ", ".join(
            f"{phase} {node['total'] * 1e3:.1f}ms/{node['count']}x"
            for phase, node in sorted(pipe.items())
        ),
        "",
        "steady-state transport counters per step (2 ranks, 2x2x4 blocks,"
        " process backend):",
        f"{'path':>8} {'exchange msgs':>14} {'pipe msgs':>10} "
        f"{'acks':>6} {'new segments':>13}",
    ]
    for name, c in (("halo", halo), ("legacy", legacy)):
        lines.append(
            f"{name:>8} {c['halo_messages']:>14.1f} "
            f"{c['pipe_messages']:>10.1f} {c['halo_acks']:>6.1f} "
            f"{c['segments_created']:>13.1f}"
        )
    lines.append(
        f"registered channels cut pipe traffic "
        f"{legacy['pipe_messages'] / halo['pipe_messages']:.1f}x "
        "and eliminate steady-state acks entirely"
    )
    write_report(results_dir, "fig7_intranode.txt", lines)

    # shape: near-linear scaling, below the memory roof (model, so these
    # hold in smoke mode too)
    assert c40[-1] / c40[0] > 12.0
    roof = roofline(SUPERMUC, 1384, bytes_per_cell(4, 2)).memory_bound_mlups_node
    assert c40[-1] < roof
    # small block only slightly different (paper: "changes ... slightly")
    assert abs(c20[-1] - c40[-1]) / c40[-1] < 0.35
    assert data["m40"] > 0 and data["m20"] > 0
    assert all(r > 0 for r in data["thread"] + data["process"])
    # the transport's pipe phases made it into the RunReport timings
    assert {"send", "recv"} <= set(pipe)
    assert all(node["count"] > 0 for node in pipe.values())
    # registered halo channels: these are deterministic message counts,
    # asserted in smoke mode too — >= 3x fewer control-pipe messages
    # than the legacy staged path, zero steady-state acks, zero fresh
    # segments per step
    assert halo["halo_acks"] == 0
    assert halo["segments_created"] == 0
    assert halo["pipe_messages"] * 3 <= legacy["pipe_messages"]
    assert halo["halo_messages"] * 3 <= legacy["halo_messages"]
    # real intranode speedup needs real cores: only gate on multi-core
    # runners, where 4 process ranks must beat 1 by >= 1.5x
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert data["process"][-1] / data["process"][0] >= 1.5
    if SMOKE:
        return
    # the real Python kernels stay within the same order (NumPy per-call
    # overheads, cache residency and scratch-buffer reuse favour the
    # small block here — the reuse removed allocation costs that weigh
    # more at 20^3 than at 40^3)
    assert abs(data["m20"] - data["m40"]) / data["m40"] < 0.8
