"""Fig. 8 — time spent in communication with/without overlap.

Paper: per-step time in the phi and mu ghost-exchange routines on
SuperMUC (blocksize 60^3, 2^5..2^12 cores) for all four overlap
combinations.  Claims: phi communication is heavier than mu (more values
per cell), hiding reduces both to their pack/unpack time, and overlapping
the phi exchange costs a kernel split that outweighs its benefit, so
"the version with only mu communication hiding yields the best overall
performance".

Here: the network model regenerates the four curves, and the real simmpi
runtime measures the exchange routines (pack + wire inside one process) at
small rank counts, confirming the phi > mu ordering end-to-end.
"""

import time

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.perf.machines import SUPERMUC
from repro.perf.scaling import comm_time_per_step, weak_scaling_curve
from repro.telemetry import RunTelemetry
from repro.thermo.system import TernaryEutecticSystem
from conftest import SMOKE, write_bench_report, write_report

CORES = [2**k for k in range(5, 13)]


def _telemetry_anchor_run(tmp_dir):
    """A 2-rank traced, overlap-scheduled run anchoring the JSON report.

    The model curves above are analytic; this run contributes a genuine
    cross-rank timing tree (comm vs compute breakdown), a measured
    MLUP/s and — with span tracing forced on — the *measured* overlap
    efficiency (fraction of exchange wall time hidden under peer
    compute) to ``BENCH_fig8_comm_overlap.json``.
    """
    shape = (8, 8, 12) if SMOKE else (12, 12, 16)
    steps = 2 if SMOKE else 4
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, shape, solid_height=4,
                                          n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    d = DistributedSimulation(shape, (2, 1, 1), system=system,
                              kernel="buffered", overlap=True)
    res = d.run(steps, phi0, mu0,
                telemetry=RunTelemetry(directory=tmp_dir, run_id="fig8",
                                       trace=True))
    return res


def test_fig8_model_and_report(benchmark, results_dir, tmp_path):
    curves = {}
    anchor = {}

    def measure():
        for op in (False, True):
            for om in (False, True):
                curves[(op, om)] = comm_time_per_step(
                    SUPERMUC, CORES, overlap_phi=op, overlap_mu=om
                )
        anchor["res"] = _telemetry_anchor_run(tmp_path)

    wall0 = time.perf_counter()
    benchmark.pedantic(measure, rounds=1, iterations=1)
    wall = time.perf_counter() - wall0

    res = anchor["res"]
    assert res.timing is not None and res.report is not None
    assert res.report["mlups"] > 0
    # The traced anchor run must yield a measured overlap section: both
    # ranks exchanged ghosts, and the efficiency is a valid fraction (a
    # tiny smoke run may legitimately hide nothing, so 0.0 is allowed).
    tracing = res.report["tracing"]
    overlap = tracing["overlap"]
    assert overlap["exchange_seconds"] > 0
    assert 0.0 <= overlap["efficiency"] <= 1.0
    assert sorted(tracing["imbalance"]["per_rank"]) == ["0", "1"]
    write_bench_report(
        results_dir, "fig8_comm_overlap",
        config={"cores": CORES, "anchor": res.report["config"]},
        grid_shape=res.report["grid"]["shape"],
        n_ranks=res.report["ranks"],
        steps=res.report["steps"],
        wall_seconds=wall,
        mlups=res.report["mlups"],
        timings=res.timing,
        counters=res.counters,
        tracing=tracing,
        series={
            "model_ms": {
                f"ov_phi={op} ov_mu={om}": [
                    {"phi": ct.phi * 1e3, "mu": ct.mu * 1e3}
                    for ct in curves[(op, om)]
                ]
                for op in (False, True) for om in (False, True)
            },
            "comm_overlap": {
                "efficiency": overlap["efficiency"],
                "exchange_seconds": overlap["exchange_seconds"],
                "hidden_seconds": overlap["hidden_seconds"],
                "imbalance_ratio": tracing["imbalance"]["ratio"],
            },
        },
    )

    lines = [
        "Fig. 8 reproduction: communication time per step (ms), SuperMUC model,",
        "blocksize 60^3.  Columns: phi / mu exchange time.",
        "",
        f"{'cores':>6}" + "".join(
            f"{f'ov_phi={op} ov_mu={om}':>26}" for op in (False, True)
            for om in (False, True)
        ),
    ]
    for i, c in enumerate(CORES):
        row = f"{c:>6}"
        for op in (False, True):
            for om in (False, True):
                ct = curves[(op, om)][i]
                row += f"{ct.phi * 1e3:>13.2f}{ct.mu * 1e3:>13.2f}"
        lines.append(row)
    write_report(results_dir, "fig8_comm_overlap.txt", lines)

    plain = curves[(False, False)]
    both = curves[(True, True)]
    # phi communication heavier than mu at every size
    assert all(ct.phi > ct.mu for ct in plain)
    # overlap reduces the visible time of both fields
    assert all(b.phi < p.phi and b.mu < p.mu for b, p in zip(both, plain))
    # times grow with the job size (congestion)
    assert plain[-1].phi > plain[0].phi
    # mu-only hiding gives the best whole-step rate once the split
    # overhead of hiding phi is charged
    best_mu_only = weak_scaling_curve(
        SUPERMUC, [2**10], overlap_mu=True, overlap_phi=False
    )[0]
    best_both = weak_scaling_curve(
        SUPERMUC, [2**10], overlap_mu=True, overlap_phi=True, split_overhead=0.08
    )[0]
    none = weak_scaling_curve(
        SUPERMUC, [2**10], overlap_mu=False, overlap_phi=False
    )[0]
    assert best_mu_only > best_both
    assert best_mu_only > none


@pytest.mark.parametrize("overlap", [False, True])
def test_real_runtime_exchange(benchmark, overlap):
    """Measure the actual simmpi ghost exchange inside a 4-rank run."""
    shape = (8, 8, 16)
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, shape, solid_height=5, n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    d = DistributedSimulation(shape, (2, 2, 1), system=system,
                              kernel="buffered", overlap=overlap)
    benchmark.group = "fig8-real-exchange"

    def run():
        return d.run(3, phi0, mu0)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    phi_s = np.mean([s.comm_phi_seconds for s in res.stats])
    mu_s = np.mean([s.comm_mu_seconds for s in res.stats])
    benchmark.extra_info["comm_phi_ms_per_step"] = phi_s / 3 * 1e3
    benchmark.extra_info["comm_mu_ms_per_step"] = mu_s / 3 * 1e3
    # phi moves twice the bytes of mu; its routine must not be cheaper
    # by more than measurement noise
    assert phi_s > 0 and mu_s > 0
