"""Fig. 9 — weak scaling on SuperMUC, Hornet and JUQUEEN.

Paper: per-core whole-step MLUP/s with one 60^3-ish block per core;
SuperMUC scaled to 2^15 cores with all three scenarios (interface slowest
because of the shortcut optimization), Hornet to 2^13 and JUQUEEN to 2^18
cores (interface scenario only), all nearly flat.

Here: the machine models regenerate the six curves; the measured Python
whole-step rate is fed through the same machinery as a cross-check series
(rate_core_override), and a real simmpi distributed run provides the
1..8-rank anchor showing the domain decomposition itself adds only
bounded overhead.
"""

import numpy as np
import pytest

from repro.core.kernels import get_mu_kernel, get_phi_kernel
from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.perf.machines import HORNET, JUQUEEN, SUPERMUC
from repro.perf.scaling import SCENARIO_COST, weak_scaling_curve
from repro.thermo.system import TernaryEutecticSystem
from conftest import rate_of, time_call, write_report

SUPERMUC_CORES = [2**k for k in range(0, 16, 3)]
HORNET_CORES = [2**k for k in range(5, 14, 2)]
JUQUEEN_CORES = [2**k for k in range(9, 19, 3)]


def _measured_step_rate(bench_blocks, scenario: str) -> float:
    """Whole-timestep (phi + mu sweep) MLUP/s of the Python kernels."""
    b = bench_blocks[scenario]
    pk = get_phi_kernel("shortcut")
    mk = get_mu_kernel("shortcut")

    def step():
        pk(b["ctx"], b["phi"], b["mu"], b["tg"])
        mk(b["ctx"], b["mu"], b["phi"], b["phi_dst"], b["tg"], b["t_new"])

    return rate_of(time_call(step), b["cells"])


def test_fig9_model_and_report(benchmark, bench_blocks, results_dir):
    data = {}

    def measure():
        data["supermuc"] = {
            s: weak_scaling_curve(SUPERMUC, SUPERMUC_CORES, s)
            for s in SCENARIO_COST
        }
        data["hornet"] = weak_scaling_curve(HORNET, HORNET_CORES, "interface")
        data["juqueen"] = weak_scaling_curve(JUQUEEN, JUQUEEN_CORES, "interface")
        data["measured"] = {
            s: _measured_step_rate(bench_blocks, s) for s in SCENARIO_COST
        }

    benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["Fig. 9 reproduction: weak scaling, per-core MLUP/s", "",
             "SuperMUC (3 scenarios):",
             f"{'cores':>8}" + "".join(f"{s:>12}" for s in SCENARIO_COST)]
    for i, c in enumerate(SUPERMUC_CORES):
        lines.append(
            f"{c:>8}" + "".join(
                f"{data['supermuc'][s][i]:>12.3f}" for s in SCENARIO_COST
            )
        )
    lines += ["", "Hornet (interface):",
              f"{'cores':>8}{'MLUP/s':>12}"]
    for c, v in zip(HORNET_CORES, data["hornet"]):
        lines.append(f"{c:>8}{v:>12.3f}")
    lines += ["", "JUQUEEN (interface):",
              f"{'cores':>8}{'MLUP/s':>12}"]
    for c, v in zip(JUQUEEN_CORES, data["juqueen"]):
        lines.append(f"{c:>8}{v:>12.3f}")
    lines += ["", "measured Python whole-step rates (1 core, 32^3):",
              "  " + "  ".join(
                  f"{s}={data['measured'][s]:.3f}" for s in SCENARIO_COST)]
    write_report(results_dir, "fig9_weak_scaling.txt", lines)

    # near-flat weak scaling on all machines
    for curve in [data["supermuc"]["interface"], data["hornet"], data["juqueen"]]:
        assert curve[-1] > 0.8 * curve[0]
    # interface slowest on SuperMUC at scale
    at_scale = {s: data["supermuc"][s][-1] for s in SCENARIO_COST}
    assert at_scale["interface"] == min(at_scale.values())
    # JUQUEEN per-core rate an order of magnitude below the Intel machines
    assert data["juqueen"][0] < 0.2 * data["supermuc"]["interface"][0]
    # the measured Python rates share the scenario ordering
    m = data["measured"]
    assert m["interface"] <= min(m["liquid"], m["solid"])


def test_real_distributed_weak_scaling_anchor(benchmark, results_dir):
    """Real simmpi runs: per-rank block fixed, ranks 1 -> 8.

    On a single physical core the wall time grows with the rank count, so
    the check is on *overhead*: the total cell-update rate must stay
    within a bounded factor of the single-rank rate (decomposition and
    exchange do not destroy performance).
    """
    system = TernaryEutecticSystem()
    block = (8, 8, 8)
    rows = {}

    def measure():
        for bpa in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]:
            ranks = int(np.prod(bpa))
            shape = tuple(b * n for b, n in zip(bpa, block))
            phi0, mu0 = voronoi_initial_condition(
                system, shape, solid_height=3, n_seeds=4
            )
            phi0 = smooth_phase_field(phi0, 1)
            d = DistributedSimulation(shape, bpa, system=system, kernel="buffered")
            sec = time_call(lambda: d.run(2, phi0, mu0), min_time=0.5,
                            max_repeats=5)
            rows[ranks] = int(np.prod(shape)) * 2 / sec / 1e6

    benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Real simmpi weak-scaling anchor (1 physical core):",
             f"{'ranks':>6}{'aggregate MLUP/s':>20}"]
    for r, v in sorted(rows.items()):
        lines.append(f"{r:>6}{v:>20.3f}")
    write_report(results_dir, "fig9_real_anchor.txt", lines)
    assert rows[8] > 0.25 * rows[1]
