"""Sec. 5.1.1 — roofline and in-core (IACA-style) analysis.

Paper numbers reproduced exactly by construction or by model:

* <= 680 bytes per mu-cell update from main memory (half the stencil in L2),
* arithmetic intensity >= 2 FLOP/B,
* memory roof 80 GiB/s / 680 B = 126.3 MLUP/s per node -> compute bound,
* measured 4.2 MLUP/s x 1384 FLOP = 5.8 GFLOP/s = 27 % of core peak,
* IACA: <= 43 % of peak attainable due to add/mul imbalance + divisions,
* phi-kernel ~21 % of peak.

The FLOPs per cell of *this* implementation are measured dynamically with
the instrumented arrays and cross-checked against the static cost model.
"""

import numpy as np

from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from repro.perf.flopcount import count_kernel_flops
from repro.perf.kernel_analysis import (
    mu_kernel_cost,
    phi_kernel_cost,
    port_pressure_bound,
)
from repro.perf.machines import SUPERMUC
from repro.perf.roofline import bytes_per_cell, roofline
from conftest import write_report

PAPER_MU_FLOPS = 1384.0
PAPER_BYTES = 680.0


def _dynamic_counts():
    shape = (10, 10, 14)
    cells = int(np.prod(shape))
    phi, mu, tg, system, params = make_scenario("interface", shape)
    ctx = make_context(system, params)
    pk = get_phi_kernel("buffered")
    mk = get_mu_kernel("buffered")
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = pk(ctx, phi, mu, tg)
    fill_ghosts_periodic(phi_dst, 3)
    phi_counts = count_kernel_flops(
        lambda c, p, m, t: pk(c, p, m, t), ctx, [phi, mu, tg], cells
    )
    mu_counts = count_kernel_flops(
        lambda c, m, p, pd, t1, t2: mk(c, m, p, pd, t1, t2),
        ctx, [mu, phi, phi_dst, tg, tg - 0.01], cells,
    )
    return phi_counts, mu_counts


def test_roofline_table(benchmark, results_dir):
    data = {}

    def measure():
        data["phi_dyn"], data["mu_dyn"] = _dynamic_counts()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    phi_dyn, mu_dyn = data["phi_dyn"], data["mu_dyn"]
    mu_static = mu_kernel_cost()
    phi_static = phi_kernel_cost()
    bpc = bytes_per_cell(4, 2)
    rl_paper = roofline(SUPERMUC, PAPER_MU_FLOPS, PAPER_BYTES)
    rl_ours = roofline(SUPERMUC, mu_dyn["flops"], bpc)

    lines = [
        "Sec. 5.1.1 reproduction: roofline / in-core analysis (mu-kernel)",
        "",
        f"{'quantity':<42}{'paper':>12}{'this repo':>12}",
        f"{'FLOPs per cell update':<42}{PAPER_MU_FLOPS:>12.0f}"
        f"{mu_dyn['flops']:>12.0f}",
        f"{'bytes per cell from memory':<42}{PAPER_BYTES:>12.0f}{bpc:>12.0f}",
        f"{'arithmetic intensity (FLOP/B)':<42}"
        f"{rl_paper.arithmetic_intensity:>12.2f}"
        f"{rl_ours.arithmetic_intensity:>12.2f}",
        f"{'memory roof (MLUP/s per node)':<42}"
        f"{rl_paper.memory_bound_mlups_node:>12.1f}"
        f"{rl_ours.memory_bound_mlups_node:>12.1f}",
        f"{'compute bound?':<42}{str(not rl_paper.memory_bound):>12}"
        f"{str(not rl_ours.memory_bound):>12}",
        "",
        "static cost model vs dynamic instrumentation:",
        f"  mu : static {mu_static.flops:.0f} vs counted {mu_dyn['flops']:.0f}"
        f"  (adds {mu_dyn.get('add', 0):.0f}, muls {mu_dyn.get('mul', 0):.0f},"
        f" divs {mu_dyn.get('div', 0):.0f}, sqrts {mu_dyn.get('sqrt', 0):.0f})",
        f"  phi: static {phi_static.flops:.0f} vs counted {phi_dyn['flops']:.0f}",
        "",
        "IACA-style port-pressure bound (fraction of peak):",
        f"  mu-kernel : {port_pressure_bound(mu_static):.2f}   (paper IACA: 0.43)",
        f"  phi-kernel: {port_pressure_bound(phi_static):.2f}",
        "",
        "peak fraction at the paper's measured 4.2 MLUP/s per core: "
        f"{rl_paper.peak_fraction(4.2, SUPERMUC):.2f}  (paper: 0.27)",
    ]
    write_report(results_dir, "roofline.txt", lines)

    # hard checks against the paper's numbers
    assert rl_paper.memory_bound_mlups_node == 126.3 or abs(
        rl_paper.memory_bound_mlups_node - 126.3
    ) < 0.1
    assert rl_paper.arithmetic_intensity >= 2.0
    assert not rl_paper.memory_bound
    assert abs(rl_paper.peak_fraction(4.2, SUPERMUC) - 0.27) < 0.01
    # our implementation is compute bound as well
    assert not rl_ours.memory_bound
    # IACA-analog bound in the plausible band around the paper's 43 %
    assert 0.3 < port_pressure_bound(mu_static) < 0.6
    # static and dynamic counts agree within 50 %
    assert abs(mu_static.flops - mu_dyn["flops"]) / mu_dyn["flops"] < 0.5
    assert abs(phi_static.flops - phi_dyn["flops"]) / phi_dyn["flops"] < 0.5
