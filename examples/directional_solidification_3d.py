#!/usr/bin/env python
"""3-D directional solidification with moving window and mesh export.

The Fig. 10 workflow of the paper at anchor scale: Voronoi nuclei under an
undercooled melt, a frozen temperature gradient pulled along z, the moving
window keeping the front inside the domain, and per-phase interface meshes
written as OBJ files through the marching-cubes -> QEM-simplify pipeline.
Microstructure observables (phase fractions, motif census, lamellar
spacing) are printed at the end.

Usage:  python examples/directional_solidification_3d.py [steps]
"""

import sys
from pathlib import Path

import numpy as np

from repro import (
    FrozenTemperature,
    MovingWindow,
    Simulation,
    TernaryEutecticSystem,
)
from repro.analysis.correlation import lamella_spacing
from repro.analysis.fractions import solid_phase_fractions
from repro.analysis.topology import classify_cross_section
from repro.io.marching_cubes import extract_phase_meshes
from repro.io.simplify import simplify_mesh


def main(steps: int = 800) -> None:
    system = TernaryEutecticSystem()
    shape = (24, 24, 48)
    temperature = FrozenTemperature(
        t_ref=system.t_eutectic, gradient=0.3, velocity=0.05, z0=16.0,
    )
    sim = Simulation(
        shape=shape, system=system, temperature=temperature,
        kernel="shortcut",
        moving_window=MovingWindow(target_fraction=0.4, check_every=25),
    )
    sim.initialize_voronoi(seed=5, solid_height=12, n_seeds=14)
    print(f"domain {shape}, {steps} steps, kernel=shortcut, moving window on")

    def progress(s: Simulation) -> None:
        print(
            f"  step {s.step_count:>5}  front z={s.front_position():6.2f}  "
            f"window shift={s.moving_window.total_shift:>3}  "
            f"liquid={s.phase_fractions()[system.liquid_index]:.3f}"
        )

    progress(sim)
    sim.run(steps, callback=progress, callback_every=max(steps // 8, 1))

    # ---- microstructure observables (Fig. 10) --------------------------
    phi = sim.phi.interior_src
    solid = solid_phase_fractions(phi, system)
    lever = system.lever_rule_fractions()
    print("\nsolid phase fractions (vs lever rule):")
    for s in system.phase_set.solid_indices:
        name = system.phase_set.phases[s].name
        print(f"  {name:<6} {solid[s]:.3f}  (lever {lever[s]:.3f})")

    zc = max(int(sim.front_position()) - 4, 1)
    print(f"\nmotif census of the cross-section at z={zc}:")
    for s in system.phase_set.solid_indices:
        name = system.phase_set.phases[s].name
        c = classify_cross_section(phi[s, :, :, zc] > 0.5)
        print(
            f"  {name:<6} components={c.components} bricks={c.bricks} "
            f"chains={c.chains} rings={c.rings} connections={c.connections}"
        )
    s0 = system.phase_set.solid_indices[
        int(np.argmax([solid[s] for s in system.phase_set.solid_indices]))
    ]
    print(f"lamellar spacing ({system.phase_set.phases[s0].name}): "
          f"{lamella_spacing(phi[s0, :, :, zc], axis=0):.1f} cells")

    # ---- mesh export (Fig. 11 pipeline) ---------------------------------
    out = Path("meshes")
    out.mkdir(exist_ok=True)
    front = int(max(sim.front_position(), 4))
    meshes = extract_phase_meshes(phi[:, :, :, : front + 2])
    print("\ninterface meshes (marching cubes -> QEM simplify -> OBJ):")
    for s in system.phase_set.solid_indices:
        name = system.phase_set.phases[s].name
        mesh = meshes[s]
        if mesh.n_faces == 0:
            print(f"  {name:<6} no interface")
            continue
        coarse = simplify_mesh(mesh, target_ratio=0.4)
        path = out / f"{name}.obj"
        nbytes = coarse.write_obj(path)
        print(
            f"  {name:<6} {mesh.n_faces:>6} faces -> {coarse.n_faces:>6} "
            f"({nbytes} bytes) -> {path}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
