#!/usr/bin/env python
"""The Sec. 3.2 output pipeline on the simulated MPI runtime.

Demonstrates the full hierarchical mesh reduction: per-rank marching-cubes
extraction (ghost-extended so the local meshes stitch seamlessly), local
QEM pre-coarsening with protected block boundaries, and the log2(P)
gather-stitch-coarsen rounds funnelling everything to rank 0, which writes
the final OBJ.  Runs on a synthetic blob field first (verifiable topology)
and then on a solidified microstructure.

Usage:  python examples/mesh_pipeline.py
"""

import numpy as np

from repro import Simulation, TernaryEutecticSystem
from repro.io.marching_cubes import extract_isosurface
from repro.io.reduction import ReductionLimits, hierarchical_mesh_reduction
from repro.simmpi import run_spmd


def blob_field(n: int = 28) -> np.ndarray:
    x, y, z = np.meshgrid(*[np.arange(n, dtype=float)] * 3, indexing="ij")
    r1 = np.sqrt((x - n * 0.35) ** 2 + (y - n / 2) ** 2 + (z - n / 2) ** 2)
    r2 = np.sqrt((x - n * 0.65) ** 2 + (y - n / 2) ** 2 + (z - n / 2) ** 2)
    return 1.0 / (1.0 + np.exp(r1 - 6.0)) + 1.0 / (1.0 + np.exp(r2 - 6.0))


def reduce_volume(volume: np.ndarray, n_ranks: int, label: str) -> None:
    n = volume.shape[0]
    bounds = np.linspace(0, n - 1, n_ranks + 1).astype(int)

    def rank_main(comm):
        lo, hi = bounds[comm.rank], bounds[comm.rank + 1]
        sub = volume[lo : hi + 1]  # one-layer ghost overlap
        local = extract_isosurface(sub, 0.5, origin=(lo, 0, 0))
        reduced = hierarchical_mesh_reduction(
            comm, local,
            ReductionLimits(local_ratio=0.6, merge_ratio=0.7),
        )
        return local.n_faces, reduced

    results = run_spmd(n_ranks, rank_main)
    total_local = sum(r[0] for r in results)
    final = results[0][1]
    print(f"{label}: {n_ranks} ranks, {total_local} local faces "
          f"-> {final.n_faces} after hierarchical reduction "
          f"(watertight={final.is_watertight()})")
    return final


def main() -> None:
    print("== synthetic two-blob field ==")
    vol = blob_field()
    whole = extract_isosurface(vol, 0.5)
    print(f"single-pass reference: {whole.n_faces} faces, "
          f"area {whole.area():.1f}, watertight={whole.is_watertight()}")
    for ranks in (2, 4, 8):
        final = reduce_volume(vol, ranks, f"  reduction")
        assert final.is_watertight()
    final.write_obj("blobs.obj")
    print("wrote blobs.obj")

    print("\n== solidified microstructure ==")
    system = TernaryEutecticSystem()
    sim = Simulation(shape=(24, 24, 32), system=system, kernel="shortcut")
    sim.initialize_voronoi(seed=9, solid_height=14, n_seeds=10)
    sim.step(200)
    s0 = system.phase_set.solid_indices[0]
    phase_vol = sim.phi.interior_src[s0]
    final = reduce_volume(phase_vol, 4, f"phase {system.phase_set.phases[s0].name}")
    final.write_obj("phase_interface.obj")
    print("wrote phase_interface.obj")


if __name__ == "__main__":
    main()
