#!/usr/bin/env python
"""Distributed run on the simulated MPI runtime (Algorithms 1 and 2).

Partitions the domain into blocks, runs one simulated MPI rank per block,
and verifies the headline correctness properties of the paper's
parallelization:

* the result is independent of the block decomposition (bitwise for
  Algorithm 1),
* the communication-hiding schedule of Algorithm 2 (mu exchange hidden
  behind the phi sweep, phi exchange behind the split local mu sweep)
  "can be interchanged without altering the results",
* the phi ghost exchange moves twice the bytes of the mu exchange
  (4 order parameters vs 2 chemical potentials).

Usage:  python examples/parallel_blocks.py
"""

import numpy as np

from repro import Simulation, TernaryEutecticSystem
from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation

STEPS = 10
SHAPE = (16, 16, 24)


def main() -> None:
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, SHAPE, solid_height=8, n_seeds=8
    )
    phi0 = smooth_phase_field(phi0, 2)

    print(f"reference: single block, {STEPS} steps on {SHAPE}")
    ref = Simulation(shape=SHAPE, system=system, kernel="buffered")
    ref.initialize(phi0, mu0)
    ref.step(STEPS)

    print(f"\n{'blocks':>10} {'ranks':>6} {'schedule':>10} "
          f"{'max |dphi|':>12} {'comm KiB/rank':>14}")
    for bpa in [(2, 1, 1), (2, 2, 1), (2, 2, 2), (1, 1, 4)]:
        for overlap, label in [(False, "Alg. 1"), (True, "Alg. 2")]:
            dist = DistributedSimulation(
                SHAPE, bpa, system=system, params=ref.params,
                temperature=ref.temperature, kernel="buffered",
                overlap=overlap,
            )
            res = dist.run(STEPS, phi0, mu0)
            err = np.abs(res.phi - ref.phi.interior_src).max()
            kib = np.mean([s.comm_bytes for s in res.stats]) / 1024.0
            print(f"{str(bpa):>10} {dist.n_ranks:>6} {label:>10} "
                  f"{err:>12.2e} {kib:>14.1f}")
            assert err < 1e-10, "decomposition changed the physics!"

    # byte accounting: phi vs mu ghost volumes
    dist = DistributedSimulation(
        SHAPE, (2, 2, 1), system=system, params=ref.params,
        temperature=ref.temperature, kernel="buffered",
    )
    res = dist.run(1, phi0, mu0)
    print("\nper-rank ghost-exchange totals after 1 step "
          "(phi carries 4 values/cell, mu carries 2):")
    for s in res.stats:
        print(f"  rank {s.rank}: {s.comm_messages} messages, "
              f"{s.comm_bytes / 1024:.1f} KiB")
    print("\nall decompositions and both schedules reproduce the "
          "single-block result.")


if __name__ == "__main__":
    main()
