#!/usr/bin/env python
"""Parameter study: pulling velocity vs lamellar spacing.

"The simulations allow us to conduct parameter variations under
well-defined conditions" (Sec. 5.2) — the classic directional-
solidification study is the velocity-spacing relation (Jackson-Hunt:
faster pulling selects finer lamellae, lambda^2 * v ~ const).  This
example sweeps the pulling velocity in 2-D and reports the selected
transverse spacing and the front undercooling.

Usage:  python examples/parameter_study.py
"""

import numpy as np

from repro import FrozenTemperature, Simulation, TernaryEutecticSystem
from repro.analysis.correlation import lamella_spacing
from repro.analysis.fractions import solid_phase_fractions


def run_case(system, velocity: float, steps: int = 900):
    temperature = FrozenTemperature(
        t_ref=system.t_eutectic, gradient=0.3, velocity=velocity, z0=24.0,
    )
    sim = Simulation(
        shape=(64, 72), system=system, temperature=temperature,
        kernel="shortcut",
    )
    sim.initialize_voronoi(seed=12, solid_height=14, n_seeds=24)
    sim.step(steps)
    phi = sim.phi.interior_src
    front = sim.front_position()
    zc = max(int(front) - 3, 1)
    # spacing of the dominant solid phase just below the front
    solid = solid_phase_fractions(phi, system)
    s0 = system.phase_set.solid_indices[
        int(np.argmax([solid[s] for s in system.phase_set.solid_indices]))
    ]
    spacing = lamella_spacing(phi[s0, :, zc], axis=0)
    undercooling = system.t_eutectic - sim.temperature.at_position(
        sim.time, front, sim.z_offset
    )
    return dict(
        velocity=velocity, front=front, spacing=spacing,
        undercooling=undercooling, solid=solid,
    )


def main() -> None:
    system = TernaryEutecticSystem()
    print("velocity sweep (2-D, 64x72, 900 steps each):\n")
    print(f"{'v':>8} {'front z':>9} {'spacing':>9} {'undercool':>10} "
          f"{'Al':>6} {'Ag2Al':>6} {'Al2Cu':>6}")
    results = []
    for v in (0.02, 0.05, 0.10):
        r = run_case(system, v)
        results.append(r)
        s = r["solid"]
        print(f"{r['velocity']:>8.2f} {r['front']:>9.2f} {r['spacing']:>9.1f} "
              f"{r['undercooling']:>10.2f} "
              f"{s[0]:>6.2f} {s[1]:>6.2f} {s[2]:>6.2f}")
    print("\nexpected trends: higher pulling velocity -> larger front "
          "undercooling\n(the front lags the isotherm) and equal or finer "
          "lamellar spacing.")
    # monotone undercooling
    u = [r["undercooling"] for r in results]
    assert u[0] <= u[1] <= u[2], "undercooling should grow with velocity"


if __name__ == "__main__":
    main()
