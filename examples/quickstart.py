#!/usr/bin/env python
"""Quickstart: 2-D ternary eutectic directional solidification.

Runs a small 2-D Ag-Al-Cu solidification in under a minute and prints the
evolving front position, phase fractions and solute conservation — the
minimal end-to-end tour of the public API:

    TernaryEutecticSystem  ->  thermodynamics (parabolic CALPHAD fits)
    Simulation             ->  grand-potential phase-field solver
    analysis               ->  microstructure observables

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import FrozenTemperature, Simulation, TernaryEutecticSystem
from repro.analysis.fractions import solid_phase_fractions


def main() -> None:
    system = TernaryEutecticSystem()
    print("Alloy system: Ag-Al-Cu ternary eutectic")
    print(f"  eutectic temperature : {system.t_eutectic:.1f} K")
    lever = system.lever_rule_fractions()
    names = [p.name for p in system.phase_set.phases]
    print("  lever-rule fractions :",
          ", ".join(f"{n}={lever[i]:.3f}" for i, n in enumerate(names)
                    if not system.phase_set.phases[i].is_liquid))

    shape = (48, 96)  # transverse x growth direction
    temperature = FrozenTemperature(
        t_ref=system.t_eutectic,  # eutectic isotherm ...
        gradient=0.25,            # ... with a thermal gradient along z
        velocity=0.05,            # pulled at constant velocity
        z0=30.0,
    )
    sim = Simulation(
        shape=shape,
        system=system,
        temperature=temperature,
        kernel="shortcut",        # fastest rung of the optimization ladder
    )
    sim.initialize_voronoi(seed=7, solid_height=16, n_seeds=10)

    m0 = sim.solute_mass()
    print(f"\n{'step':>6} {'front z':>8} {'liquid':>8} "
          f"{'Al':>7} {'Ag2Al':>7} {'Al2Cu':>7}")

    def progress(s: Simulation) -> None:
        fr = s.phase_fractions()
        print(f"{s.step_count:>6} {s.front_position():>8.2f} "
              f"{fr[system.liquid_index]:>8.3f} "
              f"{fr[0]:>7.3f} {fr[1]:>7.3f} {fr[2]:>7.3f}")

    progress(sim)
    sim.run(600, callback=progress, callback_every=100)

    solid = solid_phase_fractions(sim.phi.interior_src, system)
    drift = np.abs(sim.solute_mass() - m0).max()
    print("\nsolid-region phase fractions vs lever rule:")
    for s in system.phase_set.solid_indices:
        print(f"  {names[s]:<6} simulated {solid[s]:.3f}   lever {lever[s]:.3f}")
    print(f"solute mass drift over the run: {drift:.2e} "
          "(conserved up to the open top boundary)")


if __name__ == "__main__":
    main()
