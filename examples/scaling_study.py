#!/usr/bin/env python
"""Regenerate the performance-model curves of Figs. 7, 8 and 9.

Prints the intranode scaling of the mu-kernel, the communication-hiding
comparison, and the weak-scaling curves for the three supercomputers the
paper evaluated (SuperMUC, Hornet, JUQUEEN) — driven by the machine
descriptions, the kernel cost model and the LogGP-style network model.

Usage:  python examples/scaling_study.py
"""

from repro.perf.kernel_analysis import (
    mu_kernel_cost,
    phi_kernel_cost,
    port_pressure_bound,
)
from repro.perf.machines import HORNET, JUQUEEN, SUPERMUC
from repro.perf.roofline import bytes_per_cell, roofline
from repro.perf.scaling import (
    SCENARIO_COST,
    comm_time_per_step,
    intranode_scaling,
    weak_scaling_curve,
)


def ascii_series(values, width: int = 40) -> list[str]:
    top = max(values)
    return ["#" * max(int(v / top * width), 1) for v in values]


def main() -> None:
    # ---- roofline headline (Sec. 5.1.1) ---------------------------------
    mu_cost = mu_kernel_cost()
    rl = roofline(SUPERMUC, 1384.0, bytes_per_cell(4, 2))
    print("Roofline (mu-kernel, SuperMUC node):")
    print(f"  bytes/cell from memory : {bytes_per_cell(4, 2):.0f}  (paper: 680)")
    print(f"  memory roof            : {rl.memory_bound_mlups_node:.1f} MLUP/s"
          "  (paper: 126.3)")
    print(f"  verdict                : {'memory' if rl.memory_bound else 'compute'}"
          " bound")
    print(f"  IACA-style port bound  : mu {port_pressure_bound(mu_cost):.0%}, "
          f"phi {port_pressure_bound(phi_kernel_cost()):.0%}"
          "  (paper IACA: 43% / n.a.)")

    # ---- Fig. 7 ----------------------------------------------------------
    cores = [1, 2, 4, 8, 16]
    print("\nFig. 7 — intranode mu-kernel scaling (SuperMUC, model):")
    for edge in (40, 20):
        series = intranode_scaling(SUPERMUC, cores, edge)
        print(f"  block {edge}^3:")
        for c, v, bar in zip(cores, series, ascii_series(series)):
            print(f"    {c:>2} cores {v:>7.1f} MLUP/s  {bar}")

    # ---- Fig. 8 ----------------------------------------------------------
    print("\nFig. 8 — communication time per step (SuperMUC, 60^3 blocks):")
    sizes = [2**k for k in range(5, 13, 2)]
    for op, om, label in [
        (False, False, "no overlap"),
        (False, True, "mu overlap (production choice)"),
        (True, True, "both overlapped"),
    ]:
        rows = comm_time_per_step(SUPERMUC, sizes, overlap_phi=op, overlap_mu=om)
        series = ", ".join(
            f"{r.cores}: phi {r.phi * 1e3:.2f} / mu {r.mu * 1e3:.2f} ms"
            for r in rows
        )
        print(f"  {label:<32} {series}")

    # ---- Fig. 9 ----------------------------------------------------------
    print("\nFig. 9 — weak scaling, per-core MLUP/s:")
    for machine, top in [(SUPERMUC, 15), (HORNET, 13), (JUQUEEN, 18)]:
        sizes = [2**k for k in range(5, top + 1, 5)]
        curve = weak_scaling_curve(machine, sizes, "interface")
        series = ", ".join(f"{c}: {v:.3f}" for c, v in zip(sizes, curve))
        print(f"  {machine.name:<9} {series}")
    print("  SuperMUC scenario split at 2^15 cores:")
    for s in SCENARIO_COST:
        v = weak_scaling_curve(SUPERMUC, [2**15], s)[0]
        print(f"    {s:<10} {v:.3f} MLUP/s per core")


if __name__ == "__main__":
    main()
