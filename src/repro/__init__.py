"""repro — massively parallel phase-field simulations, reproduced in Python.

A from-scratch reproduction of Bauer et al., "Massively Parallel
Phase-Field Simulations for Ternary Eutectic Directional Solidification"
(SC 2015): the grand-potential phase-field model with anti-trapping
current, the waLBerla-style block-structured substrate, a simulated MPI
runtime, the node-level optimization ladder, the mesh-based I/O pipeline,
and the performance models that regenerate every figure of the paper's
evaluation.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro.core import (
    ConstantTemperature,
    FrozenTemperature,
    MovingWindow,
    PhaseFieldParameters,
    Simulation,
)
from repro.thermo import TernaryEutecticSystem

__all__ = [
    "ConstantTemperature",
    "FrozenTemperature",
    "MovingWindow",
    "PhaseFieldParameters",
    "Simulation",
    "TernaryEutecticSystem",
    "__version__",
]
