"""Microstructure analysis substrate.

The paper validates its simulations against experimental micrographs
(2-D cross-sections) and synchrotron tomography (3-D), observing
"chained brick-like structures that are connected or form ring-like
structures" and quantifying agreement with phase fractions and two-point
correlations (a PCA-based comparison is announced as follow-up work).
This package computes those observables from simulated fields:

* :mod:`repro.analysis.fractions` — phase fractions vs. the lever rule,
* :mod:`repro.analysis.correlation` — FFT two-point correlations, lamella
  spacing,
* :mod:`repro.analysis.topology` — ring / chain / brick / connection
  classification of cross-sections via networkx,
* :mod:`repro.analysis.pca` — PCA over two-point correlation maps.
"""

from repro.analysis.fractions import phase_fractions, solid_phase_fractions
from repro.analysis.correlation import (
    lamella_spacing,
    radial_average,
    two_point_correlation,
)
from repro.analysis.topology import classify_cross_section, microstructure_graph
from repro.analysis.pca import correlation_pca

__all__ = [
    "phase_fractions",
    "solid_phase_fractions",
    "two_point_correlation",
    "radial_average",
    "lamella_spacing",
    "classify_cross_section",
    "microstructure_graph",
    "correlation_pca",
]
