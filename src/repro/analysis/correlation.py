"""Two-point correlations and lamellar spacing.

The quantitative comparison between simulation and experiment announced in
the paper uses two-point correlation functions of the phase indicator
fields.  With periodic transverse boundaries the autocorrelation is a
single FFT round trip; the lamellar spacing is the first off-origin
maximum of the transverse correlation (equivalently the dominant spatial
frequency of the lamellar pattern).
"""

from __future__ import annotations

import numpy as np

__all__ = ["two_point_correlation", "radial_average", "lamella_spacing"]


def two_point_correlation(indicator: np.ndarray, periodic: bool = True) -> np.ndarray:
    """Autocorrelation ``P(r) = <f(x) f(x+r)>`` of an indicator field.

    *indicator* is any real field (typically ``phi_a`` or a boolean phase
    mask); the result has the same shape with the zero shift at index 0
    (use :func:`numpy.fft.fftshift` for centred display).  For
    non-periodic data the field is zero-padded and normalized by the
    overlap counts.
    """
    f = np.asarray(indicator, dtype=float)
    if periodic:
        axes = tuple(range(f.ndim))
        spec = np.fft.rfftn(f, axes=axes)
        corr = np.fft.irfftn(spec * np.conj(spec), s=f.shape, axes=axes)
        return corr / f.size
    shape = tuple(2 * s for s in f.shape)
    axes = tuple(range(f.ndim))
    spec = np.fft.rfftn(f, s=shape, axes=axes)
    corr = np.fft.irfftn(spec * np.conj(spec), s=shape, axes=axes)
    ones = np.fft.rfftn(np.ones_like(f), s=shape, axes=axes)
    counts = np.fft.irfftn(ones * np.conj(ones), s=shape, axes=axes)
    counts = np.maximum(counts, 1e-9)
    sl = tuple(slice(0, s) for s in f.shape)
    return (corr / counts)[sl]


def radial_average(corr: np.ndarray, max_radius: int | None = None) -> np.ndarray:
    """Radially averaged profile of a (periodic) correlation map.

    Bins the correlation by integer wrap-around distance from the origin;
    returns ``profile[r]`` for ``r = 0 .. max_radius``.
    """
    corr = np.asarray(corr)
    if max_radius is None:
        max_radius = min(corr.shape) // 2
    grids = np.meshgrid(
        *[np.minimum(np.arange(s), s - np.arange(s)) for s in corr.shape],
        indexing="ij",
    )
    r = np.sqrt(sum(g.astype(float) ** 2 for g in grids))
    bins = np.clip(np.round(r).astype(int), 0, None)
    out = np.zeros(max_radius + 1)
    for k in range(max_radius + 1):
        sel = bins == k
        out[k] = corr[sel].mean() if np.any(sel) else np.nan
    return out


def lamella_spacing(indicator_1d_or_2d: np.ndarray, axis: int = 0) -> float:
    """Dominant lamellar period along *axis* (cells).

    Uses the peak of the power spectrum (excluding the mean); returns
    ``inf`` when no periodic structure is detectable (flat field).
    """
    f = np.asarray(indicator_1d_or_2d, dtype=float)
    f = f - f.mean()
    if np.allclose(f, 0.0):
        return float("inf")
    spec = np.abs(np.fft.rfft(f, axis=axis)) ** 2
    # average power over the other axes
    other = tuple(i for i in range(spec.ndim) if i != axis)
    power = spec.mean(axis=other) if other else spec
    power[0] = 0.0
    k = int(np.argmax(power))
    if k == 0 or power[k] <= 0:
        return float("inf")
    return f.shape[axis] / k
