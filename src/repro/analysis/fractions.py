"""Phase-fraction observables.

The Ag-Al-Cu system is attractive experimentally because the three solid
phases appear with "similar phase fractions in micrographs"; a correct
simulation must reproduce the lever-rule fractions of the eutectic
reaction in the solidified region.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.system import TernaryEutecticSystem

__all__ = ["phase_fractions", "solid_phase_fractions"]


def phase_fractions(phi: np.ndarray) -> np.ndarray:
    """Mean order-parameter value per phase over the whole field.

    *phi* has shape ``(N,) + S``; returns shape ``(N,)``.
    """
    phi = np.asarray(phi)
    return phi.reshape(phi.shape[0], -1).mean(axis=1)


def solid_phase_fractions(
    phi: np.ndarray, system: TernaryEutecticSystem, *, liquid_cut: float = 0.5
) -> np.ndarray:
    """Solid fractions within the solidified region, normalized to 1.

    Only cells with liquid fraction below *liquid_cut* are counted (the
    region a micrograph of the solidified sample would show).  Returns the
    per-solid-phase fractions in phase order (liquid entry zero); all
    zeros if nothing has solidified yet.
    """
    phi = np.asarray(phi)
    ell = system.liquid_index
    mask = phi[ell] < liquid_cut
    out = np.zeros(phi.shape[0])
    if not np.any(mask):
        return out
    total = 0.0
    for s in system.phase_set.solid_indices:
        out[s] = phi[s][mask].sum()
        total += out[s]
    if total > 0:
        out /= total
    return out
