"""Principal component analysis over two-point correlation maps.

The paper announces "a quantitative comparison using Principal Component
Analysis on two-point correlation" as follow-up work; this module provides
that machinery: stack the correlation maps of many cross-sections (or of
simulation vs. experiment ensembles), centre them, and extract the
dominant modes — distances in the reduced space quantify microstructural
similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["correlation_pca", "PCAResult"]


@dataclass(frozen=True)
class PCAResult:
    """Reduced representation of a correlation-map ensemble."""

    components: np.ndarray        # (n_components, map_size)
    explained_variance: np.ndarray
    explained_ratio: np.ndarray
    scores: np.ndarray            # (n_samples, n_components)
    mean: np.ndarray

    def transform(self, corr_map: np.ndarray) -> np.ndarray:
        """Project a new correlation map into the reduced space."""
        flat = np.asarray(corr_map, dtype=float).ravel() - self.mean
        return self.components @ flat


def correlation_pca(corr_maps, n_components: int = 3) -> PCAResult:
    """PCA over a sequence of equally shaped correlation maps.

    Returns the top *n_components* modes (by SVD of the centred data
    matrix) together with the per-sample scores.
    """
    maps = [np.asarray(m, dtype=float).ravel() for m in corr_maps]
    if len(maps) < 2:
        raise ValueError("PCA needs at least two samples")
    sizes = {m.size for m in maps}
    if len(sizes) != 1:
        raise ValueError("correlation maps must share one shape")
    x = np.stack(maps)
    mean = x.mean(axis=0)
    xc = x - mean
    u, s, vt = np.linalg.svd(xc, full_matrices=False)
    k = min(n_components, len(s))
    var = (s**2) / max(len(maps) - 1, 1)
    total = var.sum()
    ratio = var / total if total > 0 else np.zeros_like(var)
    return PCAResult(
        components=vt[:k],
        explained_variance=var[:k],
        explained_ratio=ratio[:k],
        scores=xc @ vt[:k].T,
        mean=mean,
    )
