"""Pattern-motif classification of micrograph-like cross-sections.

Fig. 10 of the paper annotates the motifs seen both in simulation and
experiment: brick-like lamella fragments, *chains* of them, *rings*, and
*connections* joining chains.  This module classifies the connected
components of a phase mask in a 2-D cross-section:

* **ring** — the component encloses at least one hole,
* **chain** — strongly elongated component (moment aspect ratio),
* **brick** — everything else,
* **connections** — components that are articulation points of the
  phase-adjacency graph (removing them splits the microstructure), found
  with networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy import ndimage

__all__ = ["classify_cross_section", "microstructure_graph", "MotifCounts"]


@dataclass(frozen=True)
class MotifCounts:
    """Motif census of one cross-section."""

    rings: int
    chains: int
    bricks: int
    connections: int
    components: int


def _component_holes(mask: np.ndarray) -> int:
    """Number of holes fully enclosed by a single-component mask."""
    padded = np.pad(mask, 1, constant_values=False)
    background, n_bg = ndimage.label(~padded)
    if n_bg <= 1:
        return 0
    border_labels = set(np.unique(np.concatenate([
        background[0, :], background[-1, :],
        background[:, 0], background[:, -1],
    ])))
    border_labels.discard(0)
    all_labels = set(range(1, n_bg + 1))
    return len(all_labels - border_labels)


def _elongation(mask: np.ndarray) -> float:
    """Aspect ratio of the second-moment ellipse of a component."""
    ys, xs = np.nonzero(mask)
    if ys.size < 3:
        return 1.0
    pts = np.stack([ys, xs]).astype(float)
    pts -= pts.mean(axis=1, keepdims=True)
    cov = pts @ pts.T / ys.size
    ev = np.linalg.eigvalsh(cov)
    lo = max(ev[0], 1e-9)
    return float(np.sqrt(ev[1] / lo))


def classify_cross_section(
    phase_mask: np.ndarray, *, chain_aspect: float = 3.0, min_cells: int = 4
) -> MotifCounts:
    """Census of ring/chain/brick motifs of one phase in a cross-section.

    *phase_mask* is a 2-D boolean array (one phase of a slice orthogonal
    to the growth direction); components smaller than *min_cells* are
    ignored as noise.
    """
    mask = np.asarray(phase_mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("cross-section classification expects a 2-D mask")
    labels, n = ndimage.label(mask)
    rings = chains = bricks = comps = 0
    slices = ndimage.find_objects(labels)
    for i, sl in enumerate(slices, start=1):
        comp = labels[sl] == i
        if comp.sum() < min_cells:
            continue
        comps += 1
        if _component_holes(comp) > 0:
            rings += 1
        elif _elongation(comp) >= chain_aspect:
            chains += 1
        else:
            bricks += 1
    graph = microstructure_graph(labels)
    connections = len(list(nx.articulation_points(graph))) if graph.number_of_nodes() else 0
    return MotifCounts(
        rings=rings, chains=chains, bricks=bricks,
        connections=connections, components=comps,
    )


def microstructure_graph(labels: np.ndarray) -> nx.Graph:
    """Adjacency graph of labelled components (nodes = components).

    Two components are adjacent when they come within a 1-cell dilation of
    each other — the contact network whose articulation points are the
    "connections" of Fig. 10.
    """
    labels = np.asarray(labels)
    g = nx.Graph()
    ids = [int(i) for i in np.unique(labels) if i != 0]
    g.add_nodes_from(ids)
    # horizontal/vertical neighbour pairs across at most one background cell
    for axis in range(labels.ndim):
        for gap in (1, 2):
            sl_a = [slice(None)] * labels.ndim
            sl_b = [slice(None)] * labels.ndim
            sl_a[axis] = slice(0, -gap)
            sl_b[axis] = slice(gap, None)
            a = labels[tuple(sl_a)].ravel()
            b = labels[tuple(sl_b)].ravel()
            sel = (a != 0) & (b != 0) & (a != b)
            for pa, pb in set(zip(a[sel].tolist(), b[sel].tolist())):
                g.add_edge(int(pa), int(pb))
    return g
