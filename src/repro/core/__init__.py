"""Core library: the grand-potential phase-field model of the paper.

Public entry points:

* :class:`repro.core.solver.Simulation` — single-block driver,
* :class:`repro.core.parameters.PhaseFieldParameters` — model parameters,
* :class:`repro.core.temperature.FrozenTemperature` — directional
  solidification temperature frame,
* :mod:`repro.core.kernels` — the optimization-ladder compute kernels,
* :func:`repro.core.nucleation.voronoi_initial_condition` — initial setup,
* :mod:`repro.core.scenarios` — the interface/liquid/solid benchmark blocks.
"""

from repro.core.moving_window import MovingWindow
from repro.core.parameters import PhaseFieldParameters
from repro.core.solver import Simulation, SimulationReport
from repro.core.temperature import ConstantTemperature, FrozenTemperature

__all__ = [
    "MovingWindow",
    "PhaseFieldParameters",
    "Simulation",
    "SimulationReport",
    "ConstantTemperature",
    "FrozenTemperature",
]
