"""Anti-trapping current ``J_at`` (Eq. 4 of the paper).

Thin-interface correction flux that counteracts the spurious solute
trapping of the diffuse interface.  For each solid phase ``a`` it pushes
solute along the interface normal ``n_a = grad phi_a / |grad phi_a|``
proportionally to the local solidification rate ``dphi_a/dt``:

.. math::

    J_{at} = \\frac{\\pi \\varepsilon}{4} \\sum_{a \\ne \\ell}
        \\frac{g_a(\\phi) h_\\ell(\\phi)}{\\sqrt{\\phi_a \\phi_\\ell}}
        \\frac{\\partial \\phi_a}{\\partial t}
        \\left( \\hat n_a \\cdot \\hat n_\\ell \\right)
        \\big( c_\\ell(\\mu) - c_a(\\mu) \\big) \\otimes \\hat n_a .

With the choices ``g_a = phi_a`` and the Moelans ``h_l`` the singular
``1/sqrt(phi_a phi_l)`` cancels analytically into the bounded prefactor
``sqrt(phi_a phi_l) * phi_l / sum_b phi_b^2``; this module evaluates that
regularized form.

The flux is evaluated on *faces* (staggered positions).  The face-normal
gradients use two-point differences and the tangential components averaged
centered differences, which is precisely why the mu-update touches the
D3C19 neighbourhood of both phi time levels (Fig. 1b).  The evaluation is
skipped wherever no liquid is present — the "shortcut" the paper introduces
for solid cells.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import PhaseFieldParameters
from repro.core.stencils import face_avg, face_grad
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["face_flux", "norm_guarded"]

#: Gradient magnitudes below this are treated as "no interface" (the
#: paper's zero-gradient shortcut check).
GRAD_TOL = 1e-12


def norm_guarded(vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Norm over the leading axis and a unit vector with 0/0 guarded.

    Returns ``(norm, unit)`` where cells with ``norm <= GRAD_TOL`` get a
    zero unit vector (their contribution must vanish anyway).
    """
    norm = np.sqrt((vec * vec).sum(axis=0))
    safe = np.where(norm > GRAD_TOL, norm, 1.0)
    unit = vec / safe
    unit = np.where(norm > GRAD_TOL, unit, 0.0)
    return norm, unit


def face_flux(
    system: TernaryEutecticSystem,
    params: PhaseFieldParameters,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    mu: np.ndarray,
    temperature_face,
    k: int,
) -> np.ndarray:
    """Anti-trapping flux component ``J_at . e_k`` on the faces along *k*.

    All field arguments are ghosted; *temperature_face* must broadcast
    against the face-array shape (slice temperatures averaged onto faces
    for the solidification axis, plain slice values otherwise).  Returns
    shape ``(K-1,) + face_spatial``.
    """
    dim, dx, dt = params.dim, params.dx, params.dt
    ell = system.liquid_index
    n = system.n_phases

    phi_f = np.stack([face_avg(phi_src[a], dim, k) for a in range(n)])
    dphidt_f = np.stack(
        [face_avg((phi_dst[a] - phi_src[a]), dim, k) for a in range(n)]
    ) / dt
    mu_f = np.stack([face_avg(mu[i], dim, k) for i in range(mu.shape[0])])

    phi_f = np.clip(phi_f, 0.0, 1.0)
    sq_sum = (phi_f * phi_f).sum(axis=0) + 1e-300

    grad_l = face_grad(phi_src[ell], dim, k, dx)
    _, n_l = norm_guarded(grad_l)

    c_all = system.phase_concentrations(mu_f, temperature_face)  # (N, K-1, faces)
    c_l = c_all[ell]

    out = np.zeros_like(mu_f)
    pref = np.pi * params.eps / 4.0
    for a in range(n):
        if a == ell:
            continue
        grad_a = face_grad(phi_src[a], dim, k, dx)
        _, n_a = norm_guarded(grad_a)
        # regularized g_a h_l / sqrt(phi_a phi_l)
        amp = np.sqrt(phi_f[a] * phi_f[ell]) * phi_f[ell] / sq_sum
        scal = (
            pref
            * amp
            * dphidt_f[a]
            * (n_a * n_l).sum(axis=0)
            * n_a[k]
        )
        out += scal[None] * (c_l - c_all[a])
    return out
