"""Thermodynamic driving force ``psi(phi, mu, T)`` of Eq. (2).

The grand-potential coupling interpolates the per-phase grand potentials
``psi_a(mu, T)`` with the Moelans weights ``h_a(phi)``:

.. math::

    \\psi(\\phi, \\mu, T) = \\sum_b h_b(\\phi)\\, \\psi_b(\\mu, T), \\qquad
    \\frac{\\partial \\psi}{\\partial \\phi_a}
        = \\sum_b \\psi_b(\\mu, T) \\frac{\\partial h_b}{\\partial \\phi_a}.

This is the term that injects the undercooling (via the temperature-
dependent grand-potential offsets and solidus/liquidus slopes of the
parabolic fits) into the phase-field evolution.  It is a purely local
(D3C1) computation — one of the facts the kernel data-dependency analysis
of Fig. 1 relies on.
"""

from __future__ import annotations

import numpy as np

from repro.core.interpolation import moelans_dh, moelans_h
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["driving_force", "grand_potential_density"]


def grand_potential_density(
    system: TernaryEutecticSystem, phi: np.ndarray, mu: np.ndarray, temperature
) -> np.ndarray:
    """Mixture grand potential ``psi(phi, mu, T)`` per cell (diagnostics)."""
    h = moelans_h(phi)
    psi = system.grand_potentials(mu, temperature)
    return (h * psi).sum(axis=0)


def driving_force(
    system: TernaryEutecticSystem,
    phi: np.ndarray,
    mu: np.ndarray,
    temperature,
    psi: np.ndarray | None = None,
) -> np.ndarray:
    """``dpsi/dphi_a`` per cell, shape ``(N,) + S``.

    *phi* has shape ``(N,) + S`` and *mu* ``(K-1,) + S`` (no ghost layers;
    the term is local).  *psi* may pass precomputed per-phase grand
    potentials (the ``T(z)`` optimization precomputes their temperature-
    dependent parts per slice).
    """
    if psi is None:
        psi = system.grand_potentials(mu, temperature)
    dh = moelans_dh(phi)  # (a, b) + S  =  dh_b / dphi_a
    return np.einsum("ab...,b...->a...", dh, psi)
