"""Gradient energy density ``a(phi, grad phi)`` and its variational terms.

The multi-phase gradient energy of the model (Nestler-Garcke-Stinner form)
is built from the antisymmetric pair vectors

.. math::

    q_{ab} = \\phi_a \\nabla\\phi_b - \\phi_b \\nabla\\phi_a, \\qquad
    a(\\phi, \\nabla\\phi) = \\sum_{a<b} \\gamma_{ab} |q_{ab}|^2 .

Its contribution to Eq. (2) is ``da/dphi_a - div(da/d grad phi_a)`` with

.. math::

    \\frac{\\partial a}{\\partial \\phi_a}
        = \\sum_{b \\ne a} 2\\gamma_{ab} \\, q_{ab}\\cdot\\nabla\\phi_b, \\qquad
    \\frac{\\partial a}{\\partial \\nabla\\phi_a}
        = \\sum_{b \\ne a} 2\\gamma_{ab}
          (\\phi_b^2 \\nabla\\phi_a - \\phi_a\\phi_b \\nabla\\phi_b).

The divergence is evaluated with *staggered* (face-centred) fluxes — normal
differences only — so the phi-kernel stays a D3C7 stencil exactly as in the
paper; the face products are the quantities the "staggered buffer"
optimization reuses.
"""

from __future__ import annotations

import numpy as np

from repro.core.stencils import div_faces, face_avg, face_diff, grad, interior

__all__ = ["energy_density", "dA_dphi", "divergence_term", "variational_term"]


def energy_density(phi: np.ndarray, gamma: np.ndarray, dim: int, dx: float) -> np.ndarray:
    """Gradient energy density at interior cells (diagnostics).

    *phi* is ghosted with shape ``(N,) + S_g``; returns interior shape.
    """
    n = phi.shape[0]
    g = grad(phi, dim, dx)  # (dim, N) + interior
    phi_i = interior(phi, dim)
    out = np.zeros(phi_i.shape[1:])
    for a in range(n):
        for b in range(a + 1, n):
            q = phi_i[a] * g[:, b] - phi_i[b] * g[:, a]
            out += gamma[a, b] * (q * q).sum(axis=0)
    return out


def dA_dphi(phi: np.ndarray, gamma: np.ndarray, dim: int, dx: float) -> np.ndarray:
    """``da/dphi_a`` at interior cells, shape ``(N,) + interior``."""
    n = phi.shape[0]
    g = grad(phi, dim, dx)  # (dim, N) + interior
    phi_i = interior(phi, dim)
    out = np.zeros_like(phi_i)
    for a in range(n):
        for b in range(n):
            if b == a or gamma[a, b] == 0.0:
                continue
            # q_ab . grad(phi_b)
            dot = (phi_i[a] * g[:, b] - phi_i[b] * g[:, a])
            out[a] += 2.0 * gamma[a, b] * (dot * g[:, b]).sum(axis=0)
    return out


def divergence_term(phi: np.ndarray, gamma: np.ndarray, dim: int, dx: float) -> np.ndarray:
    """``div(da/d grad phi_a)`` at interior cells via face-centred fluxes."""
    n = phi.shape[0]
    out = None
    for a in range(n):
        fluxes = []
        for k in range(dim):
            pa = face_avg(phi[a], dim, k)
            da = face_diff(phi[a], dim, k, dx)
            flux = None
            for b in range(n):
                if b == a or gamma[a, b] == 0.0:
                    continue
                pb = face_avg(phi[b], dim, k)
                db = face_diff(phi[b], dim, k, dx)
                term = 2.0 * gamma[a, b] * (pb * pb * da - pa * pb * db)
                flux = term if flux is None else flux + term
            fluxes.append(flux)
        div = div_faces(fluxes, dim, dx)
        if out is None:
            out = np.empty((n,) + div.shape)
        out[a] = div
    return out


def variational_term(phi: np.ndarray, gamma: np.ndarray, dim: int, dx: float) -> np.ndarray:
    """Combined gradient-energy contribution ``da/dphi_a - div(...)``.

    This (multiplied by ``T * eps``) is the first bracket of Eq. (2).
    """
    return dA_dphi(phi, gamma, dim, dx) - divergence_term(phi, gamma, dim, dx)
