"""Semi-implicit (IMEX) chemical-potential update — the paper's future work.

"For future work, we plan to switch from the explicit Euler time stepping
scheme to an implicit solver."  The stiff part of Eq. (3) is the solute
diffusion ``chi^{-1} div(M grad mu)`` whose explicit stability limit is
``dt < dx^2 / (2 d D_max)``.  This module implements the standard
stabilized IMEX splitting: a *constant-coefficient* diffusion operator
``Dbar lap(mu)`` is treated implicitly (spectrally, so unconditionally
stable) while the variable-coefficient remainder stays explicit:

.. math::

    (1 - \\Delta t\\, \\bar D \\nabla^2)\\, \\mu^{n+1}
        = \\mu^n + \\Delta t\\, [\\text{explicit Eq. (3) rhs}]
          - \\Delta t\\, \\bar D \\nabla^2 \\mu^n

With ``Dbar >= max_a D_a / 2`` the scheme is stable for time steps far
beyond the explicit limit (first-order consistent: the added and
subtracted stabilization terms cancel to O(dt)).

The implicit solve runs in a mixed spectral basis matching the Fig. 2
boundaries: FFT along the periodic transverse axes and a type-II cosine
transform (homogeneous Neumann) along the growth axis.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sfft

from repro.core.kernels.api import KernelContext
from repro.core.kernels.optimized import mu_step_impl
from repro.core.stencils import interior, laplacian

__all__ = ["implicit_diffusion_solve", "semi_implicit_mu_step", "default_dbar"]


def default_dbar(ctx: KernelContext) -> float:
    """Stabilization diffusivity: the largest phase diffusivity.

    The effective diffusion operator of Eq. (3) is ``chi^{-1} M``; with
    the shared mobility construction its spectrum is bounded by
    ``max_a D_a``, so this choice over-stabilizes slightly (safe side).
    """
    return float(np.max(ctx.diff))


def _laplacian_symbol(shape: tuple[int, ...], dx: float) -> np.ndarray:
    """Discrete 7-point Laplacian eigenvalues in the mixed basis.

    Periodic axes diagonalize under the DFT with eigenvalue
    ``2 (cos(2 pi k / n) - 1) / dx^2``; the Neumann growth axis under the
    DCT-II with ``2 (cos(pi k / n) - 1) / dx^2``.
    """
    dim = len(shape)
    sym = np.zeros(shape)
    for ax, n in enumerate(shape):
        if ax < dim - 1:
            k = np.arange(n)
            eig = 2.0 * (np.cos(2.0 * np.pi * k / n) - 1.0) / (dx * dx)
        else:
            k = np.arange(n)
            eig = 2.0 * (np.cos(np.pi * k / n) - 1.0) / (dx * dx)
        sym = sym + eig.reshape((1,) * ax + (n,) + (1,) * (dim - ax - 1))
    return sym


def implicit_diffusion_solve(
    rhs: np.ndarray, coeff: float, dx: float
) -> np.ndarray:
    """Solve ``(1 - coeff * lap) u = rhs`` per component, spectrally.

    *rhs* has shape ``(C,) + S``; transverse axes periodic, growth axis
    homogeneous Neumann.  ``coeff = dt * Dbar``.
    """
    rhs = np.asarray(rhs, dtype=float)
    spatial = rhs.shape[1:]
    dim = len(spatial)
    sym = _laplacian_symbol(spatial, dx)
    out = np.empty_like(rhs)
    fft_axes = tuple(range(1, dim))  # component axis excluded, z handled by DCT
    for c in range(rhs.shape[0]):
        u = rhs[c]
        spec = sfft.dct(u, type=2, axis=dim - 1, norm="ortho")
        if fft_axes:
            spec = np.fft.fftn(spec, axes=tuple(a - 1 for a in range(1, dim)))
        spec = spec / (1.0 - coeff * sym)
        if fft_axes:
            spec = np.fft.ifftn(spec, axes=tuple(a - 1 for a in range(1, dim)))
            spec = spec.real
        out[c] = sfft.idct(spec, type=2, axis=dim - 1, norm="ortho")
    return out


def semi_implicit_mu_step(
    ctx: KernelContext,
    mu_src: np.ndarray,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    t_old: np.ndarray,
    t_new: np.ndarray,
    *,
    dbar: float | None = None,
    full_field_t: bool = False,
    buffered: bool = True,
    shortcuts: bool = True,
) -> np.ndarray:
    """One stabilized IMEX mu update (drop-in for the explicit mu kernels).

    Computes the full explicit update (so all sources, anti-trapping and
    the variable-coefficient mobility are retained), then applies the
    stabilization correction and the implicit constant-coefficient solve.
    Reduces to the explicit update as ``dbar -> 0``.
    """
    p = ctx.params
    dbar = default_dbar(ctx) if dbar is None else float(dbar)
    explicit = mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=full_field_t, buffered=buffered, shortcuts=shortcuts,
    )
    if dbar == 0.0:
        return explicit
    coeff = p.dt * dbar
    lap_old = np.stack(
        [laplacian(mu_src[i], p.dim, p.dx) for i in range(mu_src.shape[0])]
    )
    rhs = explicit - coeff * lap_old
    return implicit_diffusion_solve(rhs, coeff, p.dx)
