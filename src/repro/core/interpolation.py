"""Interpolation functions ``h_a(phi)`` and ``g_a(phi)``.

The driving force and the concentration coupling use a thermodynamically
consistent multi-phase interpolation (Moelans, Acta Mat. 59, 2011 — the
paper's Ref. [23]):

.. math::

    h_a(\\phi) = \\frac{\\phi_a^2}{\\sum_b \\phi_b^2}

which forms a partition of unity on the simplex and has vanishing slope at
the bulk states.  The mobility uses the simpler weight ``g_a = phi_a``
(mass-conserving convex combination); both are exposed so kernels can make
the same choice the reference implementation makes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["moelans_h", "moelans_dh", "linear_g"]

#: Guard against 0/0 in fully degenerate cells (phi = 0 everywhere cannot
#: occur on the simplex, but ghost cells may be uninitialized).
_EPS = 1e-300


def moelans_h(phi: np.ndarray) -> np.ndarray:
    """Moelans interpolation weights, shape-preserving ``(N,) + S``."""
    phi = np.asarray(phi, dtype=float)
    sq = phi * phi
    return sq / (sq.sum(axis=0) + _EPS)


def moelans_dh(phi: np.ndarray) -> np.ndarray:
    """Jacobian ``dh_b/dphi_a`` of the Moelans weights.

    Returns shape ``(N, N) + S`` with index order ``[a, b]`` such that
    ``out[a, b] = dh_b / dphi_a``:

    .. math::

        \\frac{\\partial h_b}{\\partial \\phi_a}
            = \\frac{2 \\phi_a (\\delta_{ab} - h_b)}{\\sum_c \\phi_c^2}
    """
    phi = np.asarray(phi, dtype=float)
    n = phi.shape[0]
    sq_sum = (phi * phi).sum(axis=0) + _EPS
    h = (phi * phi) / sq_sum
    eye = np.eye(n).reshape((n, n) + (1,) * (phi.ndim - 1))
    return 2.0 * phi[:, None] * (eye - h[None, :]) / sq_sum


def linear_g(phi: np.ndarray) -> np.ndarray:
    """Linear (lever-rule) weights ``g_a = phi_a`` clipped to ``[0, 1]``."""
    return np.clip(np.asarray(phi, dtype=float), 0.0, 1.0)
