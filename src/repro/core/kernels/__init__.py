"""Compute kernels for the two sweeps of the model (phi and mu updates).

This package mirrors the paper's node-level optimization ladder
(Sec. 3.3 / Fig. 6).  Every rung is a *separate implementation* of the same
mathematics; a regularly running equivalence test suite pins all of them to
the pure-Python reference — exactly as the authors describe ("a regularly
running test suite checks all kernel versions for equivalence").

Ladder (in paper order, with the Python analog of each optimization):

=================== ========================================= =====================
rung                paper                                     this repo
=================== ========================================= =====================
reference           general-purpose C code (function           per-cell pure Python
                    pointers)
basic               basic waLBerla re-implementation           straightforward NumPy
fused               explicit SIMD intrinsics                   in-place ops, scratch
                                                               reuse, inline 2x2
                                                               algebra (no einsum)
tz                  T(z) slice precomputation                  per-slice temperature
                                                               coefficient arrays
buffered            staggered-value buffering (Fig. 3)         face-flux arrays
                                                               computed once per face
shortcut            region-dependent term skipping             boolean-mask gather/
                                                               scatter on interface
                                                               and front cells
compiled            hand-vectorized compiled kernel            per-cell compiled loop
                                                               (numba ``@njit`` or
                                                               generated C via cffi)
compiled_shortcuts  compiled kernel + region skipping          same, with per-cell
                                                               region branches
=================== ========================================= =====================

The two ``compiled*`` rungs are backed by :mod:`repro.core.kernels.compiled`
and need either numba or a C toolchain + cffi.  They register
unconditionally but may be *unavailable*; query :func:`rung_available` /
:func:`available_rungs`, or let :func:`repro.core.kernels.compiled.maybe_fallback`
degrade them to their NumPy twins (``compiled`` -> ``buffered``,
``compiled_shortcuts`` -> ``shortcut``) with a :class:`RuntimeWarning` —
the solvers do this automatically.  Backend choice is controlled by the
``REPRO_KERNEL_BACKEND`` environment variable (``auto`` | ``numba`` |
``cffi`` | ``none``).  Compiled rungs are pinned to the reference by the
equivalence suite at the same documented tolerance (atol 1e-11) as the
NumPy rungs; bitwise identity is not promised because the compiled code
uses the analytic 2x2 chi solve and the O(N) driving-force form of the
optimized rungs, not ``np.linalg.solve``.
"""

from repro.core.kernels.api import (
    COMPILED_RUNGS,
    FALLBACK_RUNGS,
    KernelContext,
    LADDER,
    MU_KERNELS,
    PHI_KERNELS,
    available_rungs,
    get_mu_kernel,
    get_phi_kernel,
    get_split_mu_kernel,
    make_context,
    rung_available,
)

__all__ = [
    "COMPILED_RUNGS",
    "FALLBACK_RUNGS",
    "KernelContext",
    "LADDER",
    "MU_KERNELS",
    "PHI_KERNELS",
    "available_rungs",
    "compiled",
    "get_mu_kernel",
    "get_phi_kernel",
    "get_split_mu_kernel",
    "make_context",
    "rung_available",
]


def __getattr__(name):
    # Lazy so `import repro.core.kernels` stays cheap; the compiled package
    # itself defers backend probing until a kernel is invoked.
    if name == "compiled":
        import importlib

        return importlib.import_module("repro.core.kernels.compiled")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
