"""Compute kernels for the two sweeps of the model (phi and mu updates).

This package mirrors the paper's node-level optimization ladder
(Sec. 3.3 / Fig. 6).  Every rung is a *separate implementation* of the same
mathematics; a regularly running equivalence test suite pins all of them to
the pure-Python reference — exactly as the authors describe ("a regularly
running test suite checks all kernel versions for equivalence").

Ladder (in paper order, with the Python analog of each optimization):

========== ============================================ =====================
rung       paper                                         this repo
========== ============================================ =====================
reference  general-purpose C code (function pointers)    per-cell pure Python
basic      basic waLBerla re-implementation              straightforward NumPy
fused      explicit SIMD intrinsics                      in-place ops, scratch
                                                         reuse, inline 2x2
                                                         algebra (no einsum)
tz         T(z) slice precomputation                     per-slice temperature
                                                         coefficient arrays
buffered   staggered-value buffering (Fig. 3)            face-flux arrays
                                                         computed once per face
shortcut   region-dependent term skipping                boolean-mask gather/
                                                         scatter on interface
                                                         and front cells
========== ============================================ =====================
"""

from repro.core.kernels.api import (
    KernelContext,
    LADDER,
    MU_KERNELS,
    PHI_KERNELS,
    get_mu_kernel,
    get_phi_kernel,
    make_context,
)

__all__ = [
    "KernelContext",
    "LADDER",
    "MU_KERNELS",
    "PHI_KERNELS",
    "get_mu_kernel",
    "get_phi_kernel",
    "make_context",
]
