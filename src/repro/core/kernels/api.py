"""Kernel interface, shared context and registry.

Kernel signatures
-----------------
All kernels consume *ghosted* field arrays (one ghost layer) and return the
*interior* update for the next time step:

``phi_kernel(ctx, phi_src, mu_src, t_ghost) -> phi_dst_interior``
    Implements Eqs. (1)-(2).  ``phi_src``: ``(N,) + S_g``; ``mu_src``:
    ``(K-1,) + S_g``; ``t_ghost``: slice temperatures along the
    solidification (last) axis *including ghost slices*, shape ``(nz+2,)``.

``mu_kernel(ctx, mu_src, phi_src, phi_dst, t_old, t_new) -> mu_dst_interior``
    Implements Eqs. (3)-(4).  Needs both phi time levels (Fig. 1b) and the
    slice temperatures of both time levels (the dT/dt source term of the
    frozen-temperature ansatz).

The registry maps rung names (see package docstring) to implementations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.parameters import PhaseFieldParameters
from repro.thermo.system import TernaryEutecticSystem

#: Upper bound on distinct ``(name, shape, dtype)`` scratch buffers one
#: context keeps alive; least-recently-used entries are evicted beyond
#: it (moving-window z-shape churn would otherwise grow the cache
#: without bound).
SCRATCH_MAX_ENTRIES = 32


@dataclass
class KernelContext:
    """Precomputed constants shared by all kernel invocations.

    The optimized rungs avoid touching Python-level thermodynamics objects
    in their hot path; everything they need is exported here as plain
    arrays (this is the analog of the paper's specialization step that
    removed per-cell indirect function calls).
    """

    system: TernaryEutecticSystem
    params: PhaseFieldParameters
    gamma: np.ndarray = field(init=False)
    gamma_triple: float = field(init=False)
    tau: np.ndarray = field(init=False)
    eps: float = field(init=False)
    liquid: int = field(init=False)
    n_phases: int = field(init=False)
    n_solutes: int = field(init=False)
    inv_curv: np.ndarray = field(init=False)   # (N, k, k)
    c_eq: np.ndarray = field(init=False)       # (N, k)
    c_slope: np.ndarray = field(init=False)    # (N, k)
    latent: np.ndarray = field(init=False)     # (N,)
    diff: np.ndarray = field(init=False)       # (N,)
    t_eut: float = field(init=False)

    def __post_init__(self) -> None:
        p, s = self.params, self.system
        self.gamma = p.gamma
        self.gamma_triple = p.gamma_triple
        self.tau = p.tau
        self.eps = p.eps
        self.liquid = s.liquid_index
        self.n_phases = s.n_phases
        self.n_solutes = s.n_solutes
        self.inv_curv = s._inv_curv
        self.c_eq = s._c_eq
        self.c_slope = s._c_slope
        self.latent = s._latent
        self.diff = s.diffusivities
        self.t_eut = s.t_eutectic
        self._scratch: OrderedDict = OrderedDict()
        self._scratch_owner: int | None = None

    @property
    def dim(self) -> int:
        """Spatial dimension."""
        return self.params.dim

    def get_scratch(self, name: str, shape: tuple[int, ...],
                    dtype=np.float64) -> np.ndarray:
        """Reusable scratch buffer for kernel temporaries.

        The optimized rungs call this instead of allocating large
        temporaries on every sweep — the NumPy analog of keeping values
        in SIMD registers instead of spilling.  Contract:

        * Buffers come back **uninitialized** (they hold whatever the
          previous user of the same ``(name, shape, dtype)`` left); a
          caller must fully overwrite or ``fill()`` before reading.
        * The cache is LRU-bounded at :data:`SCRATCH_MAX_ENTRIES`
          entries, so the shape churn of a moving-window run (z-window
          extents shift every step) recycles memory instead of leaking.
        * A context is **owned by one thread** — the first one that asks
          for scratch.  Use from a second live thread raises rather than
          silently corrupting temporaries; build one context per rank
          (:func:`make_context`) as the distributed solver and the
          process backend do.  Ownership transfers automatically when
          the previous owner thread has exited (sequential ``run_spmd``
          calls reusing one context are fine).
        """
        tid = threading.get_ident()
        owner = self._scratch_owner
        if owner is None:
            self._scratch_owner = tid
        elif owner != tid:
            live = {t.ident for t in threading.enumerate()}
            if owner in live:
                raise RuntimeError(
                    "KernelContext scratch is single-thread-owned: used "
                    f"from thread {tid} while owned by live thread "
                    f"{owner}; build one context per rank/thread with "
                    "make_context() instead of sharing"
                )
            self._scratch_owner = tid
        key = (name, tuple(shape), np.dtype(dtype).str)
        buf = self._scratch.get(key)
        if buf is None:
            if len(self._scratch) >= SCRATCH_MAX_ENTRIES:
                self._scratch.popitem(last=False)
            buf = np.empty(shape, dtype=dtype)
        else:
            del self._scratch[key]  # re-insert below => most recently used
        self._scratch[key] = buf
        return buf

    def broadcast_slices(self, values: np.ndarray) -> np.ndarray:
        """Reshape a per-slice array ``(nz,)`` for broadcasting over the
        trailing spatial axes."""
        v = np.asarray(values, dtype=float)
        return v.reshape((1,) * (self.dim - 1) + v.shape)


def make_context(
    system: TernaryEutecticSystem, params: PhaseFieldParameters
) -> KernelContext:
    """Build a :class:`KernelContext` (validates N consistency)."""
    if system.n_phases != params.n_phases:
        raise ValueError(
            f"system has {system.n_phases} phases but parameters expect "
            f"{params.n_phases}"
        )
    return KernelContext(system=system, params=params)


#: Ladder order used by the Fig. 6 benchmark.
LADDER = (
    "reference", "basic", "fused", "tz", "buffered", "shortcut",
    "compiled", "compiled_shortcuts",
)

#: Rungs backed by a compiled backend (numba or generated-C/cffi); they
#: register unconditionally but may be *unavailable* in a given
#: environment — query :func:`rung_available` before invoking.
COMPILED_RUNGS = ("compiled", "compiled_shortcuts")

#: NumPy rung each compiled rung degrades to when no backend is usable.
FALLBACK_RUNGS = {"compiled": "buffered", "compiled_shortcuts": "shortcut"}

PHI_KERNELS: dict[str, object] = {}
MU_KERNELS: dict[str, object] = {}

#: ``rung -> (mu_local, mu_neighbor)`` split mu sweeps for the
#: communication-hiding schedule (Algorithm 2).  Signatures:
#: ``local(ctx, mu_src, phi_src, phi_dst, t_old, t_new) -> interior`` and
#: ``neighbor(ctx, mu_partial, mu_src, phi_src, phi_dst, t_old) -> interior``.
SPLIT_MU_KERNELS: dict[str, tuple] = {}


def register(kind: str, name: str):
    """Decorator registering a kernel implementation under *name*."""
    table = {"phi": PHI_KERNELS, "mu": MU_KERNELS}[kind]

    def deco(fn):
        table[name] = fn
        return fn

    return deco


def register_split_mu(name: str, local, neighbor) -> None:
    """Register the split mu sweep (local/neighbour parts) of a rung."""
    SPLIT_MU_KERNELS[name] = (local, neighbor)


def get_split_mu_kernel(name: str):
    """``(mu_local, mu_neighbor)`` of a rung, or ``None`` if it has no
    split mu sweep (overlap schedules require one)."""
    _ensure_loaded()
    return SPLIT_MU_KERNELS.get(name)


def rung_available(name: str) -> bool:
    """Whether a ladder rung is usable in this environment.

    NumPy rungs are always available; the compiled rungs depend on a
    usable backend (numba installed, or a C toolchain + cffi).  Unknown
    names are simply reported unavailable.
    """
    _ensure_loaded()
    if name in COMPILED_RUNGS:
        from repro.core.kernels import compiled

        return compiled.available()
    return name in PHI_KERNELS and name in MU_KERNELS


def available_rungs() -> tuple[str, ...]:
    """The ladder filtered to rungs usable in this environment."""
    return tuple(r for r in LADDER if rung_available(r))


def get_phi_kernel(name: str):
    """Look up a phi-kernel by rung name (importing implementations lazily)."""
    _ensure_loaded()
    try:
        return PHI_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown phi kernel {name!r}; have {sorted(PHI_KERNELS)}")


def get_mu_kernel(name: str):
    """Look up a mu-kernel by rung name (importing implementations lazily)."""
    _ensure_loaded()
    try:
        return MU_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown mu kernel {name!r}; have {sorted(MU_KERNELS)}")


def _ensure_loaded() -> None:
    # Import for the side effect of registration; kept lazy so that partial
    # installs (e.g. during docs builds) can import the API module alone.
    # The compiled package registers its rungs here too, but defers any
    # backend import/compilation until a compiled kernel is invoked.
    from repro.core.kernels import (  # noqa: F401
        basic,
        buffered,
        compiled,
        fused,
        reference,
        shortcut,
        strategies,
        tz,
    )
