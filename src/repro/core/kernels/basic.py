"""Straightforward NumPy kernels — the "basic waLBerla" rung.

A direct, readable transcription of Eqs. (1)-(4): whole-field NumPy
expressions, fresh temporaries everywhere, temperature-dependent values
evaluated as full fields, and *unbuffered* divergences (the flux through
the minus and plus faces of every cell is computed independently, i.e.
every interior face value is computed twice — the duplication the
staggered-buffer rung later removes, cf. Fig. 3).

These kernels are the correctness anchor the equivalence test suite pins
the pure-Python reference and all optimized rungs against.
"""

from __future__ import annotations

import numpy as np

from repro.core.driving import driving_force
from repro.core.gradient_energy import dA_dphi
from repro.core.interpolation import moelans_h
from repro.core.kernels.api import KernelContext, register
from repro.core.kernels.common import interior_temperature, total_face_flux
from repro.core.potential import dW_dphi
from repro.core.simplex import project_simplex_field
from repro.core.stencils import interior, shifted

__all__ = ["phi_step", "mu_step"]


def _pair_flux(phi_c, phi_n, a: int, b: int, gamma_ab: float, dx: float, sign: int):
    """Gradient-energy flux through one face given centre/neighbour values.

    ``sign=+1`` for the plus face (neighbour at +k), ``-1`` for the minus
    face; the normal derivative is oriented outward along +k either way.
    """
    avg_a = 0.5 * (phi_c[a] + phi_n[a])
    avg_b = 0.5 * (phi_c[b] + phi_n[b])
    da = sign * (phi_n[a] - phi_c[a]) / dx
    db = sign * (phi_n[b] - phi_c[b]) / dx
    return 2.0 * gamma_ab * (avg_b * avg_b * da - avg_a * avg_b * db)


def _divergence_unbuffered(ctx: KernelContext, phi_src: np.ndarray) -> np.ndarray:
    """``div(da/d grad phi_a)`` computing both faces of every cell."""
    dim, dx = ctx.dim, ctx.params.dx
    n = ctx.n_phases
    phi_c = interior(phi_src, dim)
    out = np.zeros_like(phi_c)
    for k in range(dim):
        phi_p = shifted(phi_src, dim, k, +1)
        phi_m = shifted(phi_src, dim, k, -1)
        for a in range(n):
            for b in range(n):
                if b == a or ctx.gamma[a, b] == 0.0:
                    continue
                f_plus = _pair_flux(phi_c, phi_p, a, b, ctx.gamma[a, b], dx, +1)
                f_minus = _pair_flux(phi_c, phi_m, a, b, ctx.gamma[a, b], dx, -1)
                out[a] += (f_plus - f_minus) / dx
    return out


@register("phi", "basic")
def phi_step(ctx: KernelContext, phi_src, mu_src, t_ghost):
    """Eqs. (1)-(2): explicit Euler update of the order parameters."""
    p = ctx.params
    dim = p.dim
    phi_i = interior(phi_src, dim)
    mu_i = interior(mu_src, dim)
    temp = interior_temperature(ctx, t_ghost)

    grad_term = dA_dphi(phi_src, ctx.gamma, dim, p.dx) - _divergence_unbuffered(
        ctx, phi_src
    )
    pot_term = dW_dphi(phi_i, ctx.gamma, ctx.gamma_triple)
    psi_term = driving_force(ctx.system, phi_i, mu_i, temp)

    rhs = temp * p.eps * grad_term + (temp / p.eps) * pot_term + psi_term
    rhs = rhs - rhs.mean(axis=0)
    tau = ctx.tau.reshape((ctx.n_phases,) + (1,) * dim)
    phi_new = phi_i - (p.dt / (tau * p.eps)) * rhs
    return project_simplex_field(phi_new)


@register("mu", "basic")
def mu_step(ctx: KernelContext, mu_src, phi_src, phi_dst, t_old, t_new):
    """Eqs. (3)-(4): explicit update of the chemical potentials.

    The susceptibility and ``dc/dT`` use the *new* interpolation weights
    and the phase concentrations the *old* state, which makes the discrete
    update exactly mass conserving for the affine parabolic thermodynamics
    (see tests/test_conservation.py).
    """
    p = ctx.params
    dim, dt, dx = p.dim, p.dt, p.dx
    mu_i = interior(mu_src, dim)
    h_old = moelans_h(interior(phi_src, dim))
    h_new = moelans_h(interior(phi_dst, dim))
    temp_old = interior_temperature(ctx, t_old)
    temp_new = interior_temperature(ctx, t_new)

    c_phase = ctx.system.phase_concentrations(mu_i, temp_old)  # (N,K-1)+S
    src_phase = -np.einsum("a...,ai...->i...", h_new - h_old, c_phase) / dt
    src_temp = -ctx.system.dc_dT(h_new) * ((temp_new - temp_old) / dt)

    # unbuffered divergence: the full face-flux array is recomputed for the
    # minus faces instead of reusing the plus-face values of the neighbour
    div = None
    for k in range(dim):
        flux_hi = total_face_flux(ctx, mu_src, phi_src, phi_dst, t_old, k)
        flux_lo = total_face_flux(ctx, mu_src, phi_src, phi_dst, t_old, k)
        ax = flux_hi.ndim - dim + k
        hi = [slice(None)] * flux_hi.ndim
        lo = [slice(None)] * flux_hi.ndim
        hi[ax] = slice(1, None)
        lo[ax] = slice(0, -1)
        term = (flux_hi[tuple(hi)] - flux_lo[tuple(lo)]) / dx
        div = term if div is None else div + term

    rhs = src_phase + src_temp + div
    dmu = dt * ctx.system.solve_susceptibility(h_new, rhs)
    return mu_i + dmu
