"""Rung "buffered": staggered face-flux values computed once per face.

The divergence of ``(M grad mu - J_at)`` (and of the gradient-energy flux
in the phi sweep) needs the flux through all ``2*dim`` faces of every cell;
half of those were already computed when updating the previous cell.
Buffering them (Fig. 3 of the paper) halves the flux work — "increases the
mu-kernel performance by almost a factor of two" because that kernel is
dominated by the staggered values; the phi-kernel gains only slightly
because its buffered quantities are cheaper.
"""

from __future__ import annotations

from repro.core.kernels.api import register
from repro.core.kernels.optimized import mu_step_impl, phi_step_impl


@register("phi", "buffered")
def phi_step(ctx, phi_src, mu_src, t_ghost):
    """Buffered phi sweep (slice T, face-flux arrays, no shortcuts)."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=False, buffered=True, shortcuts=False,
    )


@register("mu", "buffered")
def mu_step(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """Buffered mu sweep (slice T, face-flux arrays, no shortcuts)."""
    return mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=False, buffered=True, shortcuts=False,
    )
