"""Small helpers shared between kernel rungs.

Only *strategy-neutral* helpers live here (temperature layout, total face
flux used by both the buffered and unbuffered divergence evaluations); the
rungs differ in how often and over which cells they invoke them.
"""

from __future__ import annotations

import numpy as np

from repro.core.antitrapping import face_flux as antitrapping_face_flux
from repro.core.kernels.api import KernelContext
from repro.core.stencils import face_avg, face_diff

__all__ = ["interior_temperature", "face_temperature", "total_face_flux"]


def interior_temperature(ctx: KernelContext, t_ghost: np.ndarray) -> np.ndarray:
    """Interior slice temperatures broadcastable over the spatial shape."""
    t_ghost = np.asarray(t_ghost, dtype=float)
    return ctx.broadcast_slices(t_ghost[1:-1])


def face_temperature(ctx: KernelContext, t_ghost: np.ndarray, k: int) -> np.ndarray:
    """Temperature at the faces along axis *k*, broadcastable over faces.

    Isotherms are orthogonal to the last axis: for transverse axes the
    face temperature equals the slice temperature; for the growth axis it
    is the mean of the two adjacent slices (``nz + 1`` faces).
    """
    t_ghost = np.asarray(t_ghost, dtype=float)
    if k == ctx.dim - 1:
        t_face = 0.5 * (t_ghost[:-1] + t_ghost[1:])
        return t_face.reshape((1,) * (ctx.dim - 1) + t_face.shape)
    return ctx.broadcast_slices(t_ghost[1:-1])


def total_face_flux(
    ctx: KernelContext,
    mu_src: np.ndarray,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    t_ghost: np.ndarray,
    k: int,
) -> np.ndarray:
    """Total solute flux ``(M grad mu - J_at) . e_k`` on the faces along *k*.

    This is the quantity the staggered-buffer optimization caches (Fig. 3):
    the most expensive part of the mu update.  Shape ``(K-1,) + faces``.
    """
    dim, dx = ctx.dim, ctx.params.dx
    n = ctx.n_phases
    # mobility weights at faces: linear g_a = clipped phi, face averaged
    w = np.clip(
        np.stack([face_avg(phi_src[a], dim, k) for a in range(n)]), 0.0, 1.0
    )
    dmu = np.stack([face_diff(mu_src[i], dim, k, dx) for i in range(ctx.n_solutes)])
    # flux_i = sum_a w_a D_a (A_a^{-1} dmu)_i
    coeff = ctx.inv_curv * ctx.diff[:, None, None]  # (N,k,k)
    flux = np.einsum("a...,aij,j...->i...", w, coeff, dmu)
    if ctx.params.anti_trapping:
        t_face = face_temperature(ctx, t_ghost, k)
        flux = flux - antitrapping_face_flux(
            ctx.system, ctx.params, phi_src, phi_dst, mu_src, t_face, k
        )
    return flux
