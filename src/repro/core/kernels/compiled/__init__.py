"""Compiled rungs of the optimization ladder (``compiled`` / ``compiled_shortcuts``).

The paper's ladder ends in compiled, explicitly vectorized kernels
(Sec. 3.3, Figs. 5-6); these rungs are that stage for the reproduction.
Two interchangeable backends compile the *same* per-cell loop algorithm
(:mod:`~repro.core.kernels.compiled.loops`):

``numba``
    ``@njit(parallel=True, fastmath=False)`` over the loop bodies —
    preferred when numba is installed.
``cffi``
    A generated-C transcription built with the system C compiler and
    loaded via cffi ABI mode (OpenMP threading) — covers environments
    without numba but with a C toolchain.

Selection is lazy: nothing is imported or compiled until a compiled rung
is actually requested.  ``REPRO_KERNEL_BACKEND`` picks the backend
(``auto`` | ``numba`` | ``cffi`` | ``none``; default ``auto`` = numba
first, then cffi).  When no backend is usable the registry reports the
rungs unavailable (:func:`repro.core.kernels.api.rung_available`) and
the solvers degrade to the equivalent NumPy rung with a warning instead
of erroring.

Both rungs run the per-cell loops; they differ exactly like the NumPy
``buffered``/``shortcut`` pair:

``compiled``
    tz slice-coefficient precomputation, every term on every cell.
``compiled_shortcuts``
    adds the region shortcuts as *real per-cell branches* (the paper's
    winning "cellwise with shortcuts" strategy): inactive cells copy
    through, the driving force runs on diffuse cells only, and the
    anti-trapping current on solidification-front cells only.

Tolerance policy: the equivalence suite pins both rungs to the
pure-Python reference at the same ``atol=1e-11`` as the NumPy rungs.
Bitwise identity with the reference is *not* guaranteed (the compiled
rungs use the analytic 2x2 susceptibility solve and the O(N) driving
force form, like the optimized NumPy rungs), but the two compiled
backends are transcriptions of one algorithm and agree with the
un-jitted loop bodies to machine precision.

The kernels allocate all temporaries on the per-thread stack and never
touch ``KernelContext.get_scratch`` — they are safe under
``parallel=True`` and place no thread-ownership claim on the context.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

from repro.core.kernels.api import (
    KernelContext,
    register,
    register_split_mu,
)

__all__ = [
    "BACKENDS",
    "CompiledBackendUnavailable",
    "available",
    "available_backends",
    "backend_name",
    "backend_module",
    "set_backend",
    "unavailable_reason",
    "warmup",
]

#: Probe order of ``REPRO_KERNEL_BACKEND=auto``.
BACKENDS = ("numba", "cffi")

_selection: tuple[str | None, str | None] | None = None  # (name, reason)
_forced: str | None = None


class CompiledBackendUnavailable(RuntimeError):
    """A compiled rung was invoked but no backend is usable."""


def _module(name: str):
    if name == "numba":
        from repro.core.kernels.compiled import numba_backend

        return numba_backend
    if name == "cffi":
        from repro.core.kernels.compiled import cffi_backend

        return cffi_backend
    raise ValueError(f"unknown compiled backend {name!r}; have {BACKENDS}")


def _resolve() -> tuple[str | None, str | None]:
    """``(backend_name, reason_if_none)`` honoring env/forced choice."""
    global _selection
    if _selection is not None:
        return _selection
    choice = (
        _forced
        if _forced is not None
        else os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower()
    )
    if choice in ("", "auto"):
        reasons = []
        for name in BACKENDS:
            if _module(name).available():
                _selection = (name, None)
                return _selection
            reasons.append(f"{name}: {_module(name).build_error()}")
        _selection = (None, "; ".join(reasons))
    elif choice in ("none", "off", "disabled"):
        _selection = (None, "disabled via REPRO_KERNEL_BACKEND")
    elif choice in BACKENDS:
        if _module(choice).available():
            _selection = (choice, None)
        else:
            _selection = (None, f"{choice}: {_module(choice).build_error()}")
    else:
        _selection = (
            None,
            f"unknown REPRO_KERNEL_BACKEND {choice!r} "
            f"(expected auto|none|{'|'.join(BACKENDS)})",
        )
    return _selection


def set_backend(name: str | None) -> None:
    """Force a backend choice (``None`` re-reads the environment).

    Overrides ``REPRO_KERNEL_BACKEND``; mainly for tests.  Accepts the
    same values as the environment variable.
    """
    global _forced, _selection
    _forced = name
    _selection = None


def backend_name() -> str | None:
    """Selected backend name, or ``None`` when the rungs are unavailable."""
    return _resolve()[0]


def unavailable_reason() -> str | None:
    """Why no backend is usable (None when one is)."""
    return _resolve()[1]


def available() -> bool:
    """True when a compiled backend is usable in this environment."""
    return backend_name() is not None


def available_backends() -> tuple[str, ...]:
    """All backends usable in this environment (selection-independent)."""
    return tuple(n for n in BACKENDS if _module(n).available())


def backend_module():
    """The selected backend module; raises when none is usable."""
    name, reason = _resolve()
    if name is None:
        raise CompiledBackendUnavailable(
            f"no compiled kernel backend is available ({reason}); install "
            "numba or a C toolchain, or select a NumPy rung "
            "(e.g. kernel='shortcut')"
        )
    return _module(name)


# --------------------------------------------------------------------------
# KernelContext packing and geometry
# --------------------------------------------------------------------------

def _flat64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64).reshape(-1)


def _pack(ctx: KernelContext) -> dict:
    """Flattened plain-array constants of *ctx* (cached on the context).

    ``set_dt`` and friends rebuild the context, so per-object caching is
    safe; the pack is read-only shared state and thread-safe to reuse.
    """
    pk = getattr(ctx, "_compiled_pack", None)
    if pk is None:
        if ctx.n_phases > 8 or ctx.n_solutes > 4:
            raise ValueError(
                "compiled kernels support at most 8 phases / 4 solutes "
                f"(got N={ctx.n_phases}, K={ctx.n_solutes})"
            )
        p = ctx.params
        pk = {
            "gamma": _flat64(ctx.gamma),
            "tau": _flat64(ctx.tau),
            "inv_curv": _flat64(ctx.inv_curv),
            "c_eq": _flat64(ctx.c_eq),
            "c_slope": _flat64(ctx.c_slope),
            "latent": _flat64(ctx.latent),
            "diff": _flat64(ctx.diff),
            "scal": np.array(
                [p.dx, p.dt, ctx.eps, ctx.gamma_triple, ctx.t_eut]
            ),
            "anti_trapping": 1 if p.anti_trapping else 0,
        }
        ctx._compiled_pack = pk
    return pk


def _geometry(ctx: KernelContext, ghosted_shape) -> tuple[np.ndarray, tuple]:
    """``(geom, interior_shape)`` for a ghosted spatial shape."""
    interior = tuple(s - 2 for s in ghosted_shape)
    if len(interior) == 3:
        dim3, (n0, n1, n2) = 1, interior
    else:
        dim3, n0, (n1, n2) = 0, 1, interior
    geom = np.array(
        [dim3, n0, n1, n2, ctx.n_phases, ctx.n_solutes, ctx.liquid],
        dtype=np.int64,
    )
    return geom, interior


# --------------------------------------------------------------------------
# kernel entry points
# --------------------------------------------------------------------------

def _phi_compiled(ctx, phi_src, mu_src, t_ghost, shortcuts: bool):
    be = backend_module()
    pk = _pack(ctx)
    geom, interior = _geometry(ctx, phi_src.shape[1:])
    out = np.empty(ctx.n_phases * int(np.prod(interior)))
    be.phi_step_raw(
        _flat64(phi_src), _flat64(mu_src), _flat64(t_ghost), out,
        geom, pk["scal"], pk["gamma"], pk["tau"], pk["inv_curv"],
        pk["c_eq"], pk["c_slope"], pk["latent"], pk["diff"],
        1 if shortcuts else 0,
    )
    return out.reshape((ctx.n_phases,) + interior)


def _mu_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_new,
                 shortcuts: bool, include_at: int = 1, only_at: int = 0,
                 seed: np.ndarray | None = None):
    be = backend_module()
    pk = _pack(ctx)
    geom, interior = _geometry(ctx, mu_src.shape[1:])
    if seed is None:
        out = np.empty(ctx.n_solutes * int(np.prod(interior)))
    else:
        # neighbour part: accumulate onto a copy of the local partial
        out = _flat64(seed).copy()
    be.mu_step_raw(
        _flat64(mu_src), _flat64(phi_src), _flat64(phi_dst),
        _flat64(t_old), _flat64(t_new), out,
        geom, pk["scal"], pk["inv_curv"], pk["c_eq"], pk["c_slope"],
        pk["diff"], pk["anti_trapping"], 1 if shortcuts else 0,
        int(include_at), int(only_at),
    )
    return out.reshape((ctx.n_solutes,) + interior)


@register("phi", "compiled")
def phi_step_compiled(ctx, phi_src, mu_src, t_ghost):
    """Compiled phi sweep (tz precomputation, no shortcuts)."""
    return _phi_compiled(ctx, phi_src, mu_src, t_ghost, shortcuts=False)


@register("phi", "compiled_shortcuts")
def phi_step_compiled_shortcuts(ctx, phi_src, mu_src, t_ghost):
    """Compiled phi sweep with per-cell region branches."""
    return _phi_compiled(ctx, phi_src, mu_src, t_ghost, shortcuts=True)


@register("mu", "compiled")
def mu_step_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """Compiled mu sweep (tz precomputation, no shortcuts)."""
    return _mu_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_new,
                        shortcuts=False)


@register("mu", "compiled_shortcuts")
def mu_step_compiled_shortcuts(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """Compiled mu sweep with per-cell region branches."""
    return _mu_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_new,
                        shortcuts=True)


# ---- split mu sweep (Algorithm 2) ----------------------------------------

def _make_split(shortcuts: bool):
    def local(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
        return _mu_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_new,
                            shortcuts, include_at=0)

    def neighbor(ctx, mu_partial, mu_src, phi_src, phi_dst, t_old):
        pk = _pack(ctx)
        if not pk["anti_trapping"]:
            return mu_partial
        return _mu_compiled(ctx, mu_src, phi_src, phi_dst, t_old, t_old,
                            shortcuts, include_at=1, only_at=1,
                            seed=mu_partial)

    return local, neighbor


register_split_mu("compiled", *_make_split(False))
register_split_mu("compiled_shortcuts", *_make_split(True))


# --------------------------------------------------------------------------
# warmup
# --------------------------------------------------------------------------

def warmup(ctx: KernelContext, dim: int | None = None) -> float:
    """Compile/load the backend against *ctx* on a tiny dummy problem.

    Runs every entry point (both shortcut variants, full and split mu)
    on a one-cell domain so that JIT compilation, the shared-library
    build and the constants pack are all paid for *before* any timed
    stepping — the recorded return value (seconds) is what the
    benchmarks report as compile cost so warmup never pollutes MLUP/s.
    Raises :class:`CompiledBackendUnavailable` when no backend is usable.
    """
    t0 = time.perf_counter()
    backend_module()  # triggers import/build of the backend itself
    d = ctx.dim if dim is None else dim
    gshape = (3,) * d
    phi = np.zeros((ctx.n_phases,) + gshape)
    phi[ctx.liquid] = 1.0
    phi[(0,) + (slice(0, 1),) * d] = 0.5  # mixed corner: exercises branches
    mu = np.full((ctx.n_solutes,) + gshape, 0.01)
    tg = np.full(3, ctx.t_eut)
    for shortcuts in (False, True):
        _phi_compiled(ctx, phi, mu, tg, shortcuts)
        _mu_compiled(ctx, mu, phi, phi, tg, tg, shortcuts)
        local, neighbor = _make_split(shortcuts)
        partial = local(ctx, mu, phi, phi, tg, tg)
        neighbor(ctx, partial, mu, phi, phi, tg)
    return time.perf_counter() - t0


def maybe_fallback(kernel: str) -> str:
    """Resolve a compiled rung to its NumPy fallback when unavailable.

    The clean-degradation knob of the solvers: requesting
    ``kernel="compiled"`` without a usable backend warns and returns the
    equivalent NumPy rung instead of failing deep inside the first step.
    Non-compiled rung names pass through untouched.
    """
    from repro.core.kernels.api import COMPILED_RUNGS, FALLBACK_RUNGS

    if kernel in COMPILED_RUNGS and not available():
        fallback = FALLBACK_RUNGS[kernel]
        warnings.warn(
            f"compiled kernel backend unavailable "
            f"({unavailable_reason()}); falling back to the NumPy "
            f"{fallback!r} rung",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    return kernel
