"""Generated-C compiled backend (cffi ABI mode, OpenMP threading).

A line-for-line C transcription of the per-cell loops in
:mod:`repro.core.kernels.compiled.loops`, compiled on demand with the
system C compiler into a shared library and loaded through ``cffi``'s ABI
mode (``dlopen``) — no setuptools machinery, no build at install time.
The paper's ladder ends in explicitly vectorized compiled kernels; this
backend is the equivalent rung for environments without numba (ROADMAP
lists "Numba ``@njit(parallel=True)`` or a generated-C/cffi kernel" as
interchangeable options for it).

Compilation policy
------------------
* The C source is hashed (together with the compiler identity); the
  shared object is cached under ``_build/`` next to this module
  (override with ``REPRO_COMPILED_CACHE``), so each environment compiles
  exactly once.  Builds go to a temp name and ``os.replace`` in, so
  concurrent processes race benignly.
* No ``-ffast-math``: the equivalence suite pins the compiled rungs to
  the pure-Python reference at the same tolerance as the NumPy rungs,
  which IEEE-breaking optimizations would void.
* ``-fopenmp`` is attempted first and dropped if the toolchain lacks it;
  the library records which variant is loaded (:func:`num_threads`).

Parallel safety: every temporary lives on the per-thread stack inside
the OpenMP loop; the kernels never touch ``KernelContext.get_scratch``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "available",
    "load",
    "build_error",
    "num_threads",
    "phi_step_raw",
    "mu_step_raw",
]

_CDEF = """
void repro_phi_step(
    const double *phi, const double *mu, const double *tg, double *out,
    const long long *geom, const double *scal,
    const double *gamma, const double *tau, const double *inv_curv,
    const double *c_eq, const double *c_slope, const double *latent,
    const double *diff, int shortcuts);
void repro_mu_step(
    const double *mu, const double *phi_src, const double *phi_dst,
    const double *t_old, const double *t_new, double *out,
    const long long *geom, const double *scal,
    const double *inv_curv, const double *c_eq, const double *c_slope,
    const double *diff, int anti_trapping, int shortcuts,
    int include_at, int only_at);
int repro_num_threads(void);
"""

# C transcription of loops.py (kept in the same order, term by term, so
# the two stay auditable against each other).
_C_SOURCE = r"""
#include <math.h>
#include <stdlib.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#define MAXN 8
#define MAXK 4
#define TOL 1e-9
#define GRAD_TOL 1e-12

typedef long long i64;

int repro_num_threads(void)
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

void repro_phi_step(
    const double *phi, const double *mu, const double *tg, double *out,
    const i64 *geom, const double *scal,
    const double *gamma, const double *tau, const double *inv_curv,
    const double *c_eq, const double *c_slope, const double *latent,
    const double *diff, int shortcuts)
{
    const int dim3 = (int)geom[0];
    const i64 n0 = geom[1], n1 = geom[2], n2 = geom[3];
    const int N = (int)geom[4], K = (int)geom[5];
    const double dx = scal[0], dt = scal[1], eps = scal[2];
    const double gt = scal[3], t_eut = scal[4];
    const i64 g1 = n1 + 2, g2 = n2 + 2;
    const i64 g0 = dim3 ? n0 + 2 : 1;
    const i64 cs = g0 * g1 * g2;
    const i64 ocs = n0 * n1 * n2;
    const int nax = dim3 ? 3 : 2;
    const double pref = 16.0 / (M_PI * M_PI);
    (void)diff;

    /* T(z) slice coefficients, once per sweep (the tz optimization) */
    double *cmin_z = (double *)malloc((size_t)(n2 * N * K) * sizeof(double));
    double *lat_z = (double *)malloc((size_t)(n2 * N) * sizeof(double));
    for (i64 iz = 0; iz < n2; iz++) {
        const double dT = tg[iz + 1] - t_eut;
        for (int a = 0; a < N; a++) {
            lat_z[iz * N + a] = latent[a] * dT;
            for (int i = 0; i < K; i++)
                cmin_z[(iz * N + a) * K + i] =
                    c_eq[a * K + i] + c_slope[a * K + i] * dT;
        }
    }

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i64 p01 = 0; p01 < n0 * n1; p01++) {
        const i64 i0 = p01 / n1;
        const i64 i1 = p01 - i0 * n1;
        i64 off[3];
        i64 base01;
        if (dim3) {
            off[0] = g1 * g2; off[1] = g2; off[2] = 1;
            base01 = ((i0 + 1) * g1 + (i1 + 1)) * g2;
        } else {
            off[0] = g2; off[1] = 1; off[2] = 0;
            base01 = (i1 + 1) * g2;
        }
        double phi_c[MAXN], mu_c[MAXK], grad[3][MAXN];
        double rhs[MAXN], psi[MAXN], vnew[MAXN], u[MAXN];
        for (i64 i2 = 0; i2 < n2; i2++) {
            const i64 c = base01 + i2 + 1;
            const i64 oc = (i0 * n1 + i1) * n2 + i2;
            for (int a = 0; a < N; a++) phi_c[a] = phi[a * cs + c];
            for (int i = 0; i < K; i++) mu_c[i] = mu[i * cs + c];

            int diffuse = 1;
            if (shortcuts) {
                for (int a = 0; a < N; a++)
                    if (phi_c[a] >= 1.0 - TOL) { diffuse = 0; break; }
                int active = diffuse;
                for (int d = 0; d < nax && !active; d++)
                    for (int si = 0; si < 2 && !active; si++) {
                        const i64 nb = c + (i64)(1 - 2 * si) * off[d];
                        for (int a = 0; a < N; a++)
                            if (fabs(phi[a * cs + nb] - phi_c[a]) > TOL) {
                                active = 1;
                                break;
                            }
                    }
                if (!active) {
                    /* bulk cell with uniform neighbourhood: fixed point */
                    for (int a = 0; a < N; a++)
                        out[a * ocs + oc] = phi_c[a];
                    continue;
                }
            }

            /* centered phase gradients */
            for (int d = 0; d < nax; d++) {
                const i64 o = off[d];
                for (int a = 0; a < N; a++)
                    grad[d][a] =
                        (phi[a * cs + c + o] - phi[a * cs + c - o])
                        / (2.0 * dx);
            }

            /* dA/dphi_a */
            for (int a = 0; a < N; a++) {
                double acc = 0.0;
                for (int b = 0; b < N; b++) {
                    if (b == a) continue;
                    const double g = gamma[a * N + b];
                    if (g == 0.0) continue;
                    double dot = 0.0;
                    for (int d = 0; d < nax; d++)
                        dot += (phi_c[a] * grad[d][b]
                                - phi_c[b] * grad[d][a]) * grad[d][b];
                    acc += 2.0 * g * dot;
                }
                rhs[a] = acc;
            }

            /* - div(dA/d grad phi_a) via the 2*dim face fluxes */
            for (int d = 0; d < nax; d++) {
                const i64 o = off[d];
                for (int si = 0; si < 2; si++) {
                    const int s = 1 - 2 * si;
                    const i64 nb = c + (i64)s * o;
                    for (int a = 0; a < N; a++) {
                        const double pna = phi[a * cs + nb];
                        double acc = 0.0;
                        for (int b = 0; b < N; b++) {
                            if (b == a) continue;
                            const double g = gamma[a * N + b];
                            if (g == 0.0) continue;
                            const double pnb = phi[b * cs + nb];
                            const double avg_a = 0.5 * (phi_c[a] + pna);
                            const double avg_b = 0.5 * (phi_c[b] + pnb);
                            const double da = s * (pna - phi_c[a]) / dx;
                            const double db = s * (pnb - phi_c[b]) / dx;
                            acc += 2.0 * g
                                * (avg_b * avg_b * da - avg_a * avg_b * db);
                        }
                        rhs[a] -= s * acc / dx;
                    }
                }
            }

            const double t = tg[i2 + 1];
            for (int a = 0; a < N; a++) rhs[a] *= t * eps;

            /* obstacle potential dW/dphi_a */
            for (int a = 0; a < N; a++) {
                double acc = 0.0;
                for (int b = 0; b < N; b++)
                    if (b != a) acc += pref * gamma[a * N + b] * phi_c[b];
                if (gt != 0.0) {
                    double acc3 = 0.0;
                    for (int b = 0; b < N; b++) {
                        if (b == a) continue;
                        for (int e = b + 1; e < N; e++) {
                            if (e == a) continue;
                            acc3 += phi_c[b] * phi_c[e];
                        }
                    }
                    acc += gt * acc3;
                }
                rhs[a] += (t / eps) * acc;
            }

            /* driving force (diffuse cells only under shortcuts) */
            if (!shortcuts || diffuse) {
                double sq_sum = 0.0;
                for (int a = 0; a < N; a++) sq_sum += phi_c[a] * phi_c[a];
                sq_sum += 1e-300;
                for (int a = 0; a < N; a++) {
                    double quad = 0.0;
                    for (int i = 0; i < K; i++) {
                        quad += inv_curv[(a * K + i) * K + i]
                            * mu_c[i] * mu_c[i];
                        for (int j = i + 1; j < K; j++)
                            quad += 2.0 * inv_curv[(a * K + i) * K + j]
                                * mu_c[i] * mu_c[j];
                    }
                    double lin = 0.0;
                    for (int i = 0; i < K; i++)
                        lin += mu_c[i] * cmin_z[(i2 * N + a) * K + i];
                    psi[a] = -0.5 * quad - lin + lat_z[i2 * N + a];
                }
                double weighted = 0.0;
                for (int a = 0; a < N; a++)
                    weighted += phi_c[a] * phi_c[a] * psi[a];
                weighted /= sq_sum;
                for (int a = 0; a < N; a++)
                    rhs[a] += (2.0 / sq_sum) * phi_c[a] * (psi[a] - weighted);
            }

            /* Lagrange term, explicit Euler, simplex projection */
            double mean = 0.0;
            for (int a = 0; a < N; a++) mean += rhs[a];
            mean /= N;
            for (int a = 0; a < N; a++)
                vnew[a] = phi_c[a] - (dt / (tau[a] * eps)) * (rhs[a] - mean);

            /* Michelot/Condat: sort desc, last positive pivot, clip */
            for (int a = 0; a < N; a++) u[a] = vnew[a];
            for (int a = 1; a < N; a++) {
                const double key = u[a];
                int b = a - 1;
                while (b >= 0 && u[b] < key) { u[b + 1] = u[b]; b--; }
                u[b + 1] = key;
            }
            double css = 0.0, theta = 0.0;
            for (int a = 0; a < N; a++) {
                css += u[a];
                const double cand = u[a] + (1.0 - css) / (a + 1);
                if (cand > 0.0) theta = (1.0 - css) / (a + 1.0);
            }
            for (int a = 0; a < N; a++) {
                const double x = vnew[a] + theta;
                out[a * ocs + oc] = x > 0.0 ? x : 0.0;
            }
        }
    }
    free(cmin_z);
    free(lat_z);
}

void repro_mu_step(
    const double *mu, const double *phi_src, const double *phi_dst,
    const double *t_old, const double *t_new, double *out,
    const i64 *geom, const double *scal,
    const double *inv_curv, const double *c_eq, const double *c_slope,
    const double *diff, int anti_trapping, int shortcuts,
    int include_at, int only_at)
{
    const int dim3 = (int)geom[0];
    const i64 n0 = geom[1], n1 = geom[2], n2 = geom[3];
    const int N = (int)geom[4], K = (int)geom[5];
    const int ell = (int)geom[6];
    const double dx = scal[0], dt = scal[1], eps = scal[2];
    const double t_eut = scal[4];
    const i64 g1 = n1 + 2, g2 = n2 + 2;
    const i64 g0 = dim3 ? n0 + 2 : 1;
    const i64 cs = g0 * g1 * g2;
    const i64 ocs = n0 * n1 * n2;
    const int nax = dim3 ? 3 : 2;
    const double pref_at = M_PI * eps / 4.0;

    /* T(z) coefficients at cell centres and growth-axis faces */
    double *cmin_c = (double *)malloc((size_t)(n2 * N * K) * sizeof(double));
    double *cmin_f =
        (double *)malloc((size_t)((n2 + 1) * N * K) * sizeof(double));
    for (i64 iz = 0; iz < n2; iz++) {
        const double dT = t_old[iz + 1] - t_eut;
        for (int a = 0; a < N; a++)
            for (int i = 0; i < K; i++)
                cmin_c[(iz * N + a) * K + i] =
                    c_eq[a * K + i] + c_slope[a * K + i] * dT;
    }
    for (i64 f = 0; f < n2 + 1; f++) {
        const double dT = 0.5 * (t_old[f] + t_old[f + 1]) - t_eut;
        for (int a = 0; a < N; a++)
            for (int i = 0; i < K; i++)
                cmin_f[(f * N + a) * K + i] =
                    c_eq[a * K + i] + c_slope[a * K + i] * dT;
    }

#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i64 p01 = 0; p01 < n0 * n1; p01++) {
        const i64 i0 = p01 / n1;
        const i64 i1 = p01 - i0 * n1;
        i64 off[3];
        i64 base01;
        if (dim3) {
            off[0] = g1 * g2; off[1] = g2; off[2] = 1;
            base01 = ((i0 + 1) * g1 + (i1 + 1)) * g2;
        } else {
            off[0] = g2; off[1] = 1; off[2] = 0;
            base01 = (i1 + 1) * g2;
        }
        double phio[MAXN], phin[MAXN], mu_c[MAXK];
        double h_old[MAXN], h_new[MAXN];
        double rhs[MAXK], dmu[MAXK], flux[MAXK];
        double phi_f[MAXN], dphidt_f[MAXN], mu_f[MAXK];
        double gl[3], nl[3], ga[3], na[3], c_l[MAXK];
        double chi[MAXK][MAXK], sol[MAXK];
        for (i64 i2 = 0; i2 < n2; i2++) {
            const i64 c = base01 + i2 + 1;
            const i64 oc = (i0 * n1 + i1) * n2 + i2;
            const double told = t_old[i2 + 1];
            const double tnew = t_new[i2 + 1];
            for (int a = 0; a < N; a++) {
                phio[a] = phi_src[a * cs + c];
                phin[a] = phi_dst[a * cs + c];
            }
            for (int i = 0; i < K; i++) mu_c[i] = mu[i * cs + c];

            int active = 1, front = 1;
            if (shortcuts) {
                int diffuse = 1;
                for (int a = 0; a < N; a++)
                    if (phio[a] >= 1.0 - TOL) { diffuse = 0; break; }
                active = diffuse;
                for (int d = 0; d < nax && !active; d++)
                    for (int si = 0; si < 2 && !active; si++) {
                        const i64 nb = c + (i64)(1 - 2 * si) * off[d];
                        for (int a = 0; a < N; a++)
                            if (fabs(phi_src[a * cs + nb] - phio[a]) > TOL) {
                                active = 1;
                                break;
                            }
                    }
                if (active) {
                    int near = phi_src[ell * cs + c] > TOL;
                    for (int d = 0; d < nax && !near; d++)
                        for (int si = 0; si < 2; si++) {
                            const i64 nb = c + (i64)(1 - 2 * si) * off[d];
                            if (phi_src[ell * cs + nb] > TOL) {
                                near = 1;
                                break;
                            }
                        }
                    front = near;
                } else {
                    front = 0;
                }
            }

            const int do_at = anti_trapping && front;
            if (only_at && !do_at)
                continue;  /* out already holds the local partial result */

            /* Moelans interpolation weights of both time levels */
            double sqo = 0.0, sqn = 0.0;
            for (int a = 0; a < N; a++) {
                sqo += phio[a] * phio[a];
                sqn += phin[a] * phin[a];
            }
            sqo += 1e-300;
            sqn += 1e-300;
            for (int a = 0; a < N; a++) {
                h_old[a] = phio[a] * phio[a] / sqo;
                h_new[a] = phin[a] * phin[a] / sqn;
            }

            for (int i = 0; i < K; i++) rhs[i] = 0.0;
            if (!only_at) {
                if (active) {
                    /* phase-change source */
                    for (int a = 0; a < N; a++) {
                        const double dh = h_new[a] - h_old[a];
                        for (int i = 0; i < K; i++) {
                            double c_ai = cmin_c[(i2 * N + a) * K + i];
                            for (int j = 0; j < K; j++)
                                c_ai += inv_curv[(a * K + i) * K + j]
                                    * mu_c[j];
                            rhs[i] -= dh * c_ai / dt;
                        }
                    }
                }
                /* temperature drift source */
                const double fac = (tnew - told) / dt;
                for (int i = 0; i < K; i++) {
                    double acc = 0.0;
                    for (int a = 0; a < N; a++)
                        acc += h_new[a] * c_slope[a * K + i];
                    rhs[i] -= acc * fac;
                }
            }

            /* face fluxes: div(M grad mu - J_at) */
            for (int d = 0; d < nax; d++) {
                const i64 o = off[d];
                for (int si = 0; si < 2; si++) {
                    const int s = 1 - 2 * si;
                    const i64 nb = c + (i64)s * o;
                    for (int i = 0; i < K; i++) flux[i] = 0.0;
                    if (!only_at) {
                        for (int i = 0; i < K; i++)
                            dmu[i] = s * (mu[i * cs + nb] - mu_c[i]) / dx;
                        for (int a = 0; a < N; a++) {
                            double w = 0.5 * (phio[a] + phi_src[a * cs + nb]);
                            if (w < 0.0) w = 0.0;
                            else if (w > 1.0) w = 1.0;
                            for (int i = 0; i < K; i++) {
                                double acc = 0.0;
                                for (int j = 0; j < K; j++)
                                    acc += inv_curv[(a * K + i) * K + j]
                                        * dmu[j];
                                flux[i] += w * diff[a] * acc;
                            }
                        }
                    }
                    if (do_at && include_at) {
                        /* anti-trapping current through this face */
                        double sqs = 0.0;
                        for (int a = 0; a < N; a++) {
                            double v = 0.5 * (phio[a] + phi_src[a * cs + nb]);
                            if (v < 0.0) v = 0.0;
                            else if (v > 1.0) v = 1.0;
                            phi_f[a] = v;
                            dphidt_f[a] = 0.5 * (
                                (phin[a] - phio[a])
                                + (phi_dst[a * cs + nb]
                                   - phi_src[a * cs + nb])) / dt;
                            sqs += v * v;
                        }
                        sqs += 1e-300;
                        for (int i = 0; i < K; i++)
                            mu_f[i] = 0.5 * (mu_c[i] + mu[i * cs + nb]);
                        /* liquid normal at the face */
                        double normsq = 0.0;
                        for (int e = 0; e < nax; e++) {
                            if (e == d) {
                                gl[e] = s * (phi_src[ell * cs + nb]
                                             - phi_src[ell * cs + c]) / dx;
                            } else {
                                const i64 oe = off[e];
                                gl[e] = 0.5 * (
                                    (phi_src[ell * cs + c + oe]
                                     - phi_src[ell * cs + c - oe])
                                    / (2.0 * dx)
                                    + (phi_src[ell * cs + nb + oe]
                                       - phi_src[ell * cs + nb - oe])
                                    / (2.0 * dx));
                            }
                            normsq += gl[e] * gl[e];
                        }
                        const double norm_l = sqrt(normsq);
                        for (int e = 0; e < nax; e++)
                            nl[e] = norm_l > GRAD_TOL ? gl[e] / norm_l : 0.0;
                        /* c_l(mu_f, T_face) */
                        i64 fz = -1;
                        if (d == nax - 1) {
                            fz = s > 0 ? i2 + 1 : i2;
                            for (int i = 0; i < K; i++)
                                c_l[i] = cmin_f[(fz * N + ell) * K + i];
                        } else {
                            for (int i = 0; i < K; i++)
                                c_l[i] = cmin_c[(i2 * N + ell) * K + i];
                        }
                        for (int i = 0; i < K; i++) {
                            double acc = 0.0;
                            for (int j = 0; j < K; j++)
                                acc += inv_curv[(ell * K + i) * K + j]
                                    * mu_f[j];
                            c_l[i] += acc;
                        }
                        for (int a = 0; a < N; a++) {
                            if (a == ell) continue;
                            double nsq = 0.0;
                            for (int e = 0; e < nax; e++) {
                                if (e == d) {
                                    ga[e] = s * (phi_src[a * cs + nb]
                                                 - phi_src[a * cs + c]) / dx;
                                } else {
                                    const i64 oe = off[e];
                                    ga[e] = 0.5 * (
                                        (phi_src[a * cs + c + oe]
                                         - phi_src[a * cs + c - oe])
                                        / (2.0 * dx)
                                        + (phi_src[a * cs + nb + oe]
                                           - phi_src[a * cs + nb - oe])
                                        / (2.0 * dx));
                                }
                                nsq += ga[e] * ga[e];
                            }
                            const double norm_a = sqrt(nsq);
                            for (int e = 0; e < nax; e++)
                                na[e] = norm_a > GRAD_TOL
                                    ? ga[e] / norm_a : 0.0;
                            const double amp =
                                sqrt(phi_f[a] * phi_f[ell])
                                * phi_f[ell] / sqs;
                            double dot = 0.0;
                            for (int e = 0; e < nax; e++)
                                dot += na[e] * nl[e];
                            const double scalf =
                                pref_at * amp * dphidt_f[a] * dot * na[d];
                            for (int i = 0; i < K; i++) {
                                double c_ai = fz >= 0
                                    ? cmin_f[(fz * N + a) * K + i]
                                    : cmin_c[(i2 * N + a) * K + i];
                                for (int j = 0; j < K; j++)
                                    c_ai += inv_curv[(a * K + i) * K + j]
                                        * mu_f[j];
                                flux[i] -= scalf * (c_l[i] - c_ai);
                            }
                        }
                    }
                    for (int i = 0; i < K; i++) rhs[i] += s * flux[i] / dx;
                }
            }

            /* susceptibility solve chi dmu = rhs */
            if (K == 2) {
                double ca = 0.0, cb = 0.0, cc = 0.0, cd = 0.0;
                for (int a = 0; a < N; a++) {
                    ca += h_new[a] * inv_curv[a * 4 + 0];
                    cb += h_new[a] * inv_curv[a * 4 + 1];
                    cc += h_new[a] * inv_curv[a * 4 + 2];
                    cd += h_new[a] * inv_curv[a * 4 + 3];
                }
                const double det = ca * cd - cb * cc;
                sol[0] = (cd * rhs[0] - cb * rhs[1]) / det;
                sol[1] = (ca * rhs[1] - cc * rhs[0]) / det;
            } else {
                for (int i = 0; i < K; i++) {
                    for (int j = 0; j < K; j++) {
                        double acc = 0.0;
                        for (int a = 0; a < N; a++)
                            acc += h_new[a] * inv_curv[(a * K + i) * K + j];
                        chi[i][j] = acc;
                    }
                    sol[i] = rhs[i];
                }
                /* Gaussian elimination with partial pivoting */
                for (int col = 0; col < K; col++) {
                    int piv = col;
                    for (int r = col + 1; r < K; r++)
                        if (fabs(chi[r][col]) > fabs(chi[piv][col])) piv = r;
                    if (piv != col) {
                        for (int j = 0; j < K; j++) {
                            const double tmp = chi[col][j];
                            chi[col][j] = chi[piv][j];
                            chi[piv][j] = tmp;
                        }
                        const double tmp = sol[col];
                        sol[col] = sol[piv];
                        sol[piv] = tmp;
                    }
                    for (int r = col + 1; r < K; r++) {
                        const double f = chi[r][col] / chi[col][col];
                        for (int j = col; j < K; j++)
                            chi[r][j] -= f * chi[col][j];
                        sol[r] -= f * sol[col];
                    }
                }
                for (int col = K - 1; col >= 0; col--) {
                    double acc = sol[col];
                    for (int j = col + 1; j < K; j++)
                        acc -= chi[col][j] * sol[j];
                    sol[col] = acc / chi[col][col];
                }
            }

            if (only_at) {
                for (int i = 0; i < K; i++)
                    out[i * ocs + oc] += dt * sol[i];
            } else {
                for (int i = 0; i < K; i++)
                    out[i * ocs + oc] = mu_c[i] + dt * sol[i];
            }
        }
    }
    free(cmin_c);
    free(cmin_f);
}
"""

_CC_CANDIDATES = ("cc", "gcc", "clang")

_lib = None
_ffi = None
_build_error: str | None = None
_loaded = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_COMPILED_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_build"


def _find_cc() -> str | None:
    import shutil

    for cc in _CC_CANDIDATES:
        path = shutil.which(cc)
        if path:
            return path
    return None


def _compile(cc: str, cache: Path, tag: str) -> Path:
    """Compile the kernel library into the cache (atomic publish)."""
    cache.mkdir(parents=True, exist_ok=True)
    target = cache / f"repro_kernels_{tag}.so"
    if target.exists():
        return target
    src = cache / f"repro_kernels_{tag}.c"
    src.write_text(_C_SOURCE)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="repro_kernels_", dir=str(cache)
    )
    os.close(fd)
    base = [cc, "-O3", "-fPIC", "-shared", str(src), "-o", tmp, "-lm"]
    attempts = (
        base[:1] + ["-fopenmp"] + base[1:],  # threaded build first
        base,                                # serial fallback
    )
    last = None
    for cmd in attempts:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=300
        )
        if proc.returncode == 0:
            os.replace(tmp, target)
            return target
        last = proc.stderr.strip()
    os.unlink(tmp)
    raise RuntimeError(f"C kernel build failed with {cc}: {last}")


def load():
    """Compile (once per environment) and dlopen the kernel library.

    Returns the cffi library handle, or ``None`` when no working C
    toolchain or cffi is present (the registry then reports the compiled
    rungs unavailable instead of erroring).
    """
    global _lib, _ffi, _build_error, _loaded
    if _loaded:
        return _lib
    _loaded = True
    try:
        import cffi
    except ImportError:
        _build_error = "cffi is not installed"
        return None
    cc = _find_cc()
    if cc is None:
        _build_error = f"no C compiler found (tried {_CC_CANDIDATES})"
        return None
    tag = hashlib.sha256(
        (_C_SOURCE + _CDEF + cc).encode()
    ).hexdigest()[:16]
    try:
        path = _compile(cc, _cache_dir(), tag)
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        _lib = ffi.dlopen(str(path))
        _ffi = ffi
    except (RuntimeError, OSError) as exc:
        _build_error = str(exc)
        _lib = None
    return _lib


def available() -> bool:
    """True when the C library compiled and loaded in this environment."""
    return load() is not None


def build_error() -> str | None:
    """Why :func:`available` is False (None when it is True)."""
    load()
    return _build_error


def num_threads() -> int:
    """OpenMP thread count of the loaded library (1 = serial build)."""
    lib = load()
    return int(lib.repro_num_threads()) if lib is not None else 0


def _ptr(arr: np.ndarray, ctype: str = "const double *"):
    return _ffi.cast(ctype, arr.ctypes.data)


def phi_step_raw(phi, mu, tg, out, geom, scal, gamma, tau, inv_curv,
                 c_eq, c_slope, latent, diff, shortcuts):
    """Flat-array phi sweep (same signature as ``loops.phi_cellwise``)."""
    lib = load()
    lib.repro_phi_step(
        _ptr(phi), _ptr(mu), _ptr(tg), _ptr(out, "double *"),
        _ptr(geom, "const long long *"), _ptr(scal),
        _ptr(gamma), _ptr(tau), _ptr(inv_curv), _ptr(c_eq),
        _ptr(c_slope), _ptr(latent), _ptr(diff), int(shortcuts),
    )
    return out


def mu_step_raw(mu, phi_src, phi_dst, t_old, t_new, out, geom, scal,
                inv_curv, c_eq, c_slope, diff,
                anti_trapping, shortcuts, include_at, only_at):
    """Flat-array mu sweep (same signature as ``loops.mu_cellwise``)."""
    lib = load()
    lib.repro_mu_step(
        _ptr(mu), _ptr(phi_src), _ptr(phi_dst), _ptr(t_old), _ptr(t_new),
        _ptr(out, "double *"), _ptr(geom, "const long long *"), _ptr(scal),
        _ptr(inv_curv), _ptr(c_eq), _ptr(c_slope), _ptr(diff),
        int(anti_trapping), int(shortcuts), int(include_at), int(only_at),
    )
    return out
