"""Numba backend: ``@njit(parallel=True, fastmath=False)`` over loops.py.

The primary compiled backend.  The jitted functions *are* the loop
bodies of :mod:`repro.core.kernels.compiled.loops`, compiled unchanged —
``prange`` over the transverse cell columns gives real multi-core
parallelism, ``fastmath=False`` keeps IEEE semantics so the equivalence
suite pins this rung to the reference at the same tolerance as the
NumPy rungs.  ``cache=True`` persists the compiled machine code next to
the package, so the per-process JIT cost is paid once per environment.

Import of numba itself is deferred to :func:`load`; environments without
numba fall through to the cffi backend (see the package ``__init__``).
"""

from __future__ import annotations

__all__ = ["available", "load", "build_error", "phi_step_raw", "mu_step_raw"]

_fns = None
_loaded = False
_build_error: str | None = None


def load():
    """Jit-wrap the loop bodies (once); returns ``(phi, mu)`` or None."""
    global _fns, _loaded, _build_error
    if _loaded:
        return _fns
    _loaded = True
    try:
        import numba
    except ImportError:
        _build_error = "numba is not installed"
        return None
    from repro.core.kernels.compiled import loops

    try:
        jit = numba.njit(parallel=True, fastmath=False, cache=True,
                         nogil=True)
        _fns = (jit(loops.phi_cellwise), jit(loops.mu_cellwise))
    except Exception as exc:  # pragma: no cover - defensive
        _build_error = f"numba jit failed: {exc!r}"
        _fns = None
    return _fns


def available() -> bool:
    """True when numba is importable and the loops jit-wrapped."""
    return load() is not None


def build_error() -> str | None:
    """Why :func:`available` is False (None when it is True)."""
    load()
    return _build_error


def phi_step_raw(*args):
    """Flat-array phi sweep (compiles on first call per signature)."""
    return load()[0](*args)


def mu_step_raw(*args):
    """Flat-array mu sweep (compiles on first call per signature)."""
    return load()[1](*args)
