"""Rung "fused": in-place ops, scratch reuse, inline small-matrix algebra.

The NumPy analog of the paper's explicit SIMD vectorization stage (which
also bundled common-subexpression precomputation): no per-cell Python
dispatch, no einsum, temporaries fused in place.  Temperature-dependent
coefficients are still materialized per cell and face fluxes still
computed twice per cell — those are removed by the later rungs.
"""

from __future__ import annotations

from repro.core.kernels.api import register
from repro.core.kernels.optimized import mu_step_impl, phi_step_impl


@register("phi", "fused")
def phi_step(ctx, phi_src, mu_src, t_ghost):
    """Fused phi sweep (full-field T, unbuffered faces, no shortcuts)."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=True, buffered=False, shortcuts=False,
    )


@register("mu", "fused")
def mu_step(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """Fused mu sweep (full-field T, unbuffered faces, no shortcuts)."""
    return mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=True, buffered=False, shortcuts=False,
    )
