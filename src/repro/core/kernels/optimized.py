"""Configurable optimized kernel pipeline (rungs "fused" through "shortcut").

One parametrized implementation realizes the cumulative optimization ladder
of Sec. 3.3; the thin rung modules bind the flag combinations:

``full_field_t=True``  (fused)
    Temperature-dependent coefficients are *materialized per cell* — the
    general situation where ``T`` is a full field.  The in-place scratch
    reuse and inline (einsum-free) small-matrix algebra of this rung are
    the NumPy analog of the explicit SIMD vectorization + common-
    subexpression precomputation stage of the paper.

``full_field_t=False``  (tz)
    Exploits the frozen-temperature ansatz: every T-dependent coefficient
    is evaluated once per z-slice as an ``(nz,)`` array broadcast along the
    growth axis ("precompute all temperature dependent terms once for each
    x-y-slice").

``buffered=True``  (buffered)
    Staggered face fluxes are computed once per face and differenced
    (Fig. 3) instead of twice per cell — halving the flux work that
    dominates the mu-kernel.

``shortcuts=True``  (shortcut)
    Region-dependent term skipping: the phi update runs only on the
    z-slab containing diffuse interface, the driving force only on actual
    interface cells (gather/scatter), and the anti-trapping current and
    phase-source terms of the mu update only on the interface band.  Bulk
    liquid/solid blocks skip the expensive terms entirely — reproducing
    the scenario-dependent runtimes of Figs. 5/6/9.
"""

from __future__ import annotations

import numpy as np

import functools

from repro.core.antitrapping import face_flux as antitrapping_face_flux
from repro.core.gradient_energy import dA_dphi, divergence_term
from repro.core.kernels.api import KernelContext, register_split_mu
from repro.core.kernels.basic import _divergence_unbuffered
from repro.core.kernels.common import face_temperature
from repro.core.potential import OBSTACLE_PREFACTOR, dW_dphi
from repro.core.simplex import project_simplex_field
from repro.core.stencils import div_faces, face_avg, face_diff, interior

__all__ = [
    "KERNEL_FLAGS",
    "phi_step_impl",
    "mu_step_impl",
    "mu_step_local_impl",
    "mu_step_neighbor_impl",
]

#: Flag bindings of the optimized NumPy rungs (see module docstring).
KERNEL_FLAGS = {
    "fused": dict(full_field_t=True, buffered=False, shortcuts=False),
    "tz": dict(full_field_t=False, buffered=False, shortcuts=False),
    "buffered": dict(full_field_t=False, buffered=True, shortcuts=False),
    "shortcut": dict(full_field_t=False, buffered=True, shortcuts=True),
}

_TOL = 1e-9


# --------------------------------------------------------------------------
# temperature coefficient precomputation
# --------------------------------------------------------------------------

def _temp_layout(ctx: KernelContext, t_interior: np.ndarray, spatial,
                 full_field: bool, scratch: str = "temp_field"):
    """Slice temperatures as a broadcastable view or a materialized field.

    *scratch* names the reused buffer of the materialized variant; the mu
    sweep keeps two temperature fields alive at once (old and new time
    level), so its two calls must pass distinct names.
    """
    t = ctx.broadcast_slices(t_interior)
    if full_field:
        out = ctx.get_scratch(scratch, spatial)
        out[...] = t
        return out
    return t


def _cmin_all(ctx: KernelContext, temp) -> np.ndarray:
    """``c_min_a(T)`` for all phases: (N, K-1) + broadcast(T) shape."""
    dt = np.asarray(temp) - ctx.t_eut
    return ctx.c_eq.reshape(ctx.c_eq.shape + (1,) * dt.ndim) + np.multiply.outer(
        ctx.c_slope, dt
    )


# --------------------------------------------------------------------------
# phi kernel
# --------------------------------------------------------------------------

def _psi_phase_inline(ctx: KernelContext, mu, temp) -> np.ndarray:
    """Per-phase grand potentials with inline quadratic forms (no einsum)."""
    n, k = ctx.n_phases, ctx.n_solutes
    dt = np.asarray(temp) - ctx.t_eut
    out = []
    for a in range(n):
        inv = ctx.inv_curv[a]
        quad = 0.0
        for i in range(k):
            quad = quad + inv[i, i] * mu[i] * mu[i]
            for j in range(i + 1, k):
                quad = quad + 2.0 * inv[i, j] * mu[i] * mu[j]
        lin = 0.0
        for i in range(k):
            lin = lin + mu[i] * (ctx.c_eq[a][i] + ctx.c_slope[a][i] * dt)
        out.append(-0.5 * quad - lin + ctx.latent[a] * dt)
    return np.stack(np.broadcast_arrays(*out))


def _driving_inline(ctx: KernelContext, phi, mu, temp) -> np.ndarray:
    """``dpsi/dphi_a`` using the O(N) common-subexpression form.

    ``sum_b psi_b dh_b/dphi_a = 2 phi_a (psi_a - sum_b h_b psi_b) / sum phi^2``.
    """
    sq = phi * phi
    sq_sum = sq.sum(axis=0) + 1e-300
    psi = _psi_phase_inline(ctx, mu, temp)
    weighted = (sq * psi).sum(axis=0) / sq_sum
    return (2.0 / sq_sum) * phi * (psi - weighted)


def _phi_window(
    ctx: KernelContext,
    phi_g: np.ndarray,
    mu_g: np.ndarray,
    t_g: np.ndarray,
    *,
    full_field_t: bool,
    buffered: bool,
    cell_mask: np.ndarray | None,
) -> np.ndarray:
    """Run the phi update on one (possibly z-windowed) ghosted region."""
    p = ctx.params
    dim, dx, eps = p.dim, p.dx, p.eps
    phi_i = interior(phi_g, dim)
    mu_i = interior(mu_g, dim)
    spatial = phi_i.shape[1:]
    temp = _temp_layout(ctx, t_g[1:-1], spatial, full_field_t,
                        scratch="phi_temp")

    if buffered:
        div = divergence_term(phi_g, ctx.gamma, dim, dx)
    else:
        div = _divergence_unbuffered(ctx, phi_g)
    rhs = dA_dphi(phi_g, ctx.gamma, dim, dx)
    rhs -= div
    rhs *= temp * eps
    pot = dW_dphi(phi_i, ctx.gamma, ctx.gamma_triple)
    pot *= temp / eps
    rhs += pot

    if cell_mask is None:
        rhs += _driving_inline(ctx, phi_i, mu_i, temp)
    else:
        idx = np.nonzero(cell_mask)
        if idx[0].size:
            phi_c = phi_i[(slice(None),) + idx]
            mu_c = mu_i[(slice(None),) + idx]
            if np.ndim(temp) and temp.shape == spatial:
                t_c = temp[idx]
            else:
                t_c = np.broadcast_to(temp, spatial)[idx]
            contrib = _driving_inline(ctx, phi_c, mu_c, t_c)
            rhs[(slice(None),) + idx] += contrib

    rhs -= rhs.mean(axis=0)
    rhs *= -(p.dt / eps) / ctx.tau.reshape((ctx.n_phases,) + (1,) * dim)
    rhs += phi_i
    return project_simplex_field(rhs, out=rhs)


def _interface_masks(ctx: KernelContext, phi_g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(diffuse, active)`` masks over interior cells.

    *diffuse* marks cells whose phase vector is mixed (the only cells with
    a nonzero driving force).  *active* additionally marks pure cells with
    a differing neighbour — the paper's bulk definition requires
    ``phi_a = 1`` *and* ``|grad phi_a| = 0``, so sharp solid-solid
    boundaries still evolve and must not be skipped.
    """
    from repro.core.stencils import shifted

    dim = ctx.dim
    phi_i = interior(phi_g, dim)
    diffuse = phi_i.max(axis=0) < 1.0 - _TOL
    active = diffuse.copy()
    for k in range(dim):
        for s in (-1, +1):
            nb = shifted(phi_g, dim, k, s)
            active |= np.abs(nb - phi_i).max(axis=0) > _TOL
    return diffuse, active


def _front_mask(ctx: KernelContext, phi_g: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Active cells with liquid in their direct neighbourhood (incl. ghosts).

    The anti-trapping current lives on faces, so a cell whose *neighbour*
    (possibly a ghost cell) holds liquid still sees a nonzero flux.
    """
    from repro.core.stencils import shifted

    dim = ctx.dim
    phil = phi_g[ctx.liquid]
    near = interior(phil, dim) > _TOL
    for k in range(dim):
        for s in (-1, +1):
            near |= shifted(phil, dim, k, s) > _TOL
    return active & near


def _z_window(mask: np.ndarray, nz: int, margin: int = 1) -> tuple[int, int] | None:
    """Contiguous z-slab (last axis) covering all True cells, dilated."""
    any_z = mask.any(axis=tuple(range(mask.ndim - 1)))
    nz_idx = np.nonzero(any_z)[0]
    if nz_idx.size == 0:
        return None
    return max(int(nz_idx[0]) - margin, 0), min(int(nz_idx[-1]) + 1 + margin, nz)


def phi_step_impl(
    ctx: KernelContext,
    phi_src: np.ndarray,
    mu_src: np.ndarray,
    t_ghost: np.ndarray,
    *,
    full_field_t: bool,
    buffered: bool,
    shortcuts: bool,
) -> np.ndarray:
    """Optimized phi sweep (see module docstring for the flags)."""
    dim = ctx.dim
    phi_i = interior(phi_src, dim)
    if not shortcuts:
        return _phi_window(
            ctx, phi_src, mu_src, t_ghost,
            full_field_t=full_field_t, buffered=buffered, cell_mask=None,
        )
    diffuse, active = _interface_masks(ctx, phi_src)
    nz = phi_i.shape[-1]
    win = _z_window(active, nz)
    out = phi_i.copy()
    if win is None:
        return out
    z0, z1 = win
    sl_g = (Ellipsis, slice(z0, z1 + 2))
    phi_new = _phi_window(
        ctx,
        phi_src[sl_g],
        mu_src[sl_g],
        np.asarray(t_ghost)[z0 : z1 + 2],
        full_field_t=full_field_t,
        buffered=buffered,
        cell_mask=diffuse[..., z0:z1],
    )
    out[..., z0:z1] = phi_new
    return out


# --------------------------------------------------------------------------
# mu kernel
# --------------------------------------------------------------------------

def _mobility_face_flux(ctx: KernelContext, mu_src, phi_src, k: int,
                        scratch: str = "mob_flux") -> np.ndarray:
    """``(M grad mu) . e_k`` at the faces along *k* with inline algebra.

    The accumulator is context scratch (named *scratch*): it is dead as
    soon as the caller differences it into ``term``, so reuse across the
    axis loop is safe — except in the unbuffered rung, which keeps the
    hi- and lo-face results alive together and must pass distinct names.
    """
    dim, dx = ctx.dim, ctx.params.dx
    n, ks = ctx.n_phases, ctx.n_solutes
    w = np.clip(
        np.stack([face_avg(phi_src[a], dim, k) for a in range(n)]), 0.0, 1.0
    )
    dmu = [face_diff(mu_src[i], dim, k, dx) for i in range(ks)]
    coeff = ctx.inv_curv * ctx.diff[:, None, None]  # (N, k, k)
    out = ctx.get_scratch(scratch, (ks,) + w.shape[1:])
    out.fill(0.0)
    for a in range(n):
        for i in range(ks):
            for j in range(ks):
                if coeff[a, i, j] != 0.0:
                    out[i] += (coeff[a, i, j] * w[a]) * dmu[j]
    return out


def _solve_chi_inline(ctx: KernelContext, h_new, rhs) -> np.ndarray:
    """Per-cell solve of ``chi x = rhs`` with the analytic 2x2 inverse."""
    ks = ctx.n_solutes
    inv = ctx.inv_curv
    if ks == 2:
        a = b = c = d = 0.0
        for p_ in range(ctx.n_phases):
            a = a + h_new[p_] * inv[p_, 0, 0]
            b = b + h_new[p_] * inv[p_, 0, 1]
            c = c + h_new[p_] * inv[p_, 1, 0]
            d = d + h_new[p_] * inv[p_, 1, 1]
        det = a * d - b * c
        return np.stack([
            (d * rhs[0] - b * rhs[1]) / det,
            (a * rhs[1] - c * rhs[0]) / det,
        ])
    return ctx.system.solve_susceptibility(h_new, rhs)


def mu_step_impl(
    ctx: KernelContext,
    mu_src: np.ndarray,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    t_old: np.ndarray,
    t_new: np.ndarray,
    *,
    full_field_t: bool,
    buffered: bool,
    shortcuts: bool,
    include_antitrapping: bool = True,
) -> np.ndarray:
    """Optimized mu sweep (see module docstring for the flags).

    With ``include_antitrapping=False`` only the *local* part of Eq. (3)
    is evaluated (everything except ``div J_at``) — the "mu-sweep-local"
    of Algorithm 2 that can run while the phi ghost layers are in flight.
    """
    p = ctx.params
    dim, dx, dt = p.dim, p.dx, p.dt
    n = ctx.n_phases
    mu_i = interior(mu_src, dim)
    phi_i_old = interior(phi_src, dim)
    phi_i_new = interior(phi_dst, dim)
    spatial = mu_i.shape[1:]

    temp_old = _temp_layout(ctx, np.asarray(t_old)[1:-1], spatial,
                            full_field_t, scratch="mu_temp_old")
    temp_new = _temp_layout(ctx, np.asarray(t_new)[1:-1], spatial,
                            full_field_t, scratch="mu_temp_new")

    sq_new = phi_i_new * phi_i_new
    h_new = sq_new / (sq_new.sum(axis=0) + 1e-300)

    # ---- diffusive flux divergence (everywhere) -------------------------
    div = None
    for k in range(dim):
        if buffered:
            flux = _mobility_face_flux(ctx, mu_src, phi_src, k)
            ax = flux.ndim - dim + k
            hi = [slice(None)] * flux.ndim
            lo = [slice(None)] * flux.ndim
            hi[ax] = slice(1, None)
            lo[ax] = slice(0, -1)
            term = (flux[tuple(hi)] - flux[tuple(lo)]) / dx
        else:
            flux_hi = _mobility_face_flux(ctx, mu_src, phi_src, k,
                                          scratch="mob_flux_hi")
            flux_lo = _mobility_face_flux(ctx, mu_src, phi_src, k,
                                          scratch="mob_flux_lo")
            ax = flux_hi.ndim - dim + k
            hi = [slice(None)] * flux_hi.ndim
            lo = [slice(None)] * flux_hi.ndim
            hi[ax] = slice(1, None)
            lo[ax] = slice(0, -1)
            term = (flux_hi[tuple(hi)] - flux_lo[tuple(lo)]) / dx
        div = term if div is None else div + term

    # ---- temperature drift source (everywhere) --------------------------
    dcdT = ctx.get_scratch("mu_dcdT", (ctx.n_solutes,) + h_new.shape[1:])
    dcdT.fill(0.0)
    for a in range(n):
        for i in range(ctx.n_solutes):
            if ctx.c_slope[a][i] != 0.0:
                dcdT[i] += ctx.c_slope[a][i] * h_new[a]
    rhs = div
    rhs -= dcdT * ((temp_new - temp_old) / dt)

    # ---- interface-band terms (phase source + anti-trapping) ------------
    if shortcuts:
        _, active = _interface_masks(ctx, phi_src)
        win = _z_window(active, spatial[-1])
        # the anti-trapping current additionally needs liquid nearby:
        # bulk-solid blocks skip it entirely ("the runtime of the mu-kernel
        # is improved especially in solid cells due to a simpler
        # calculation of the anti-trapping current")
        front = _front_mask(ctx, phi_src, active)
        win_at = _z_window(front, spatial[-1])
    else:
        win = win_at = (0, spatial[-1])

    if win is not None:
        z0, z1 = win
        sl_g = (Ellipsis, slice(z0, z1 + 2))
        sl_i = (Ellipsis, slice(z0, z1))
        t_old_w = np.asarray(t_old)[z0 : z1 + 2]
        phi_src_w = phi_src[sl_g]
        phi_dst_w = phi_dst[sl_g]
        mu_src_w = mu_src[sl_g]

        # phase-change source: -sum_a (h_new - h_old) c_a(mu_old, T_old) / dt
        phi_w_old = phi_i_old[sl_i]
        phi_w_new = phi_i_new[sl_i]
        mu_w = mu_i[sl_i]
        sq_o = phi_w_old * phi_w_old
        h_o = sq_o / (sq_o.sum(axis=0) + 1e-300)
        sq_n = phi_w_new * phi_w_new
        h_n = sq_n / (sq_n.sum(axis=0) + 1e-300)
        t_w = ctx.broadcast_slices(t_old_w[1:-1])
        if full_field_t:
            t_field = ctx.get_scratch("mu_t_window", phi_w_old.shape[1:])
            t_field[...] = t_w
            t_w = t_field
        cmin = _cmin_all(ctx, t_w)  # (N, K-1) + win
        src = ctx.get_scratch("mu_phase_src",
                              (ctx.n_solutes,) + phi_w_old.shape[1:])
        src.fill(0.0)
        for a in range(n):
            dh = h_n[a] - h_o[a]
            inv = ctx.inv_curv[a]
            for i in range(ctx.n_solutes):
                c_ai = cmin[a, i].copy() if hasattr(cmin[a, i], "copy") else cmin[a, i]
                c_ai = c_ai + sum(
                    inv[i, j] * mu_w[j] for j in range(ctx.n_solutes)
                )
                src[i] -= dh * c_ai
        rhs[sl_i] += src / dt

    # anti-trapping divergence inside the solidification-front window
    if p.anti_trapping and include_antitrapping and win_at is not None:
        z0, z1 = win_at
        sl_g = (Ellipsis, slice(z0, z1 + 2))
        sl_i = (Ellipsis, slice(z0, z1))
        t_at_w = np.asarray(t_old)[z0 : z1 + 2]
        phi_src_w = phi_src[sl_g]
        phi_dst_w = phi_dst[sl_g]
        mu_src_w = mu_src[sl_g]
        div_jat = None
        for k in range(dim):
            t_face = face_temperature(ctx, t_at_w, k)
            if buffered:
                jat = antitrapping_face_flux(
                    ctx.system, p, phi_src_w, phi_dst_w, mu_src_w, t_face, k
                )
                jat_hi = jat_lo = jat
            else:
                jat_hi = antitrapping_face_flux(
                    ctx.system, p, phi_src_w, phi_dst_w, mu_src_w, t_face, k
                )
                jat_lo = antitrapping_face_flux(
                    ctx.system, p, phi_src_w, phi_dst_w, mu_src_w, t_face, k
                )
            ax = jat_hi.ndim - dim + k
            hi = [slice(None)] * jat_hi.ndim
            lo = [slice(None)] * jat_hi.ndim
            hi[ax] = slice(1, None)
            lo[ax] = slice(0, -1)
            term = (jat_hi[tuple(hi)] - jat_lo[tuple(lo)]) / dx
            div_jat = term if div_jat is None else div_jat + term
        rhs[sl_i] -= div_jat

    dmu = _solve_chi_inline(ctx, h_new, rhs)
    dmu *= dt
    dmu += mu_i
    return dmu


def mu_step_local_impl(
    ctx: KernelContext,
    mu_src: np.ndarray,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    t_old: np.ndarray,
    t_new: np.ndarray,
    *,
    full_field_t: bool = False,
    buffered: bool = True,
    shortcuts: bool = True,
) -> np.ndarray:
    """Local part of the mu sweep (Algorithm 2, line 6).

    Everything in Eq. (3) except the anti-trapping divergence — its phi
    dependencies are D3C1 on ``phi_dst`` and D3C7 on ``phi_src``/``mu_src``
    (Fig. 4), so it can run while the ``phi_dst`` ghost layers are in
    flight.
    """
    return mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=full_field_t, buffered=buffered, shortcuts=shortcuts,
        include_antitrapping=False,
    )


def mu_step_neighbor_impl(
    ctx: KernelContext,
    mu_partial: np.ndarray,
    mu_src: np.ndarray,
    phi_src: np.ndarray,
    phi_dst: np.ndarray,
    t_old: np.ndarray,
    *,
    full_field_t: bool = False,
    buffered: bool = True,
    shortcuts: bool = True,
) -> np.ndarray:
    """Neighbour part of the mu sweep (Algorithm 2, line 8).

    Adds ``dt chi^{-1} (-div J_at)`` to the interior result of the local
    part once the ``phi_dst`` ghost layers have arrived (J_at touches the
    D3C19 neighbourhood of both phi time levels).  The susceptibility and
    slice-temperature values are recomputed here — the overhead the paper
    attributes to the split ("the temperature dependent values have to be
    computed twice for each z-slice").
    """
    p = ctx.params
    if not p.anti_trapping:
        return mu_partial
    dim, dx, dt = p.dim, p.dx, p.dt
    phi_i_new = interior(phi_dst, dim)
    spatial = phi_i_new.shape[1:]

    if shortcuts:
        _, active = _interface_masks(ctx, phi_src)
        front = _front_mask(ctx, phi_src, active)
        win = _z_window(front, spatial[-1])
    else:
        win = (0, spatial[-1])
    if win is None:
        return mu_partial

    z0, z1 = win
    sl_g = (Ellipsis, slice(z0, z1 + 2))
    sl_i = (Ellipsis, slice(z0, z1))
    t_old_w = np.asarray(t_old)[z0 : z1 + 2]

    div_jat = None
    for k in range(dim):
        t_face = face_temperature(ctx, t_old_w, k)
        if buffered:
            jat = antitrapping_face_flux(
                ctx.system, p, phi_src[sl_g], phi_dst[sl_g], mu_src[sl_g],
                t_face, k,
            )
            jat_hi = jat_lo = jat
        else:
            jat_hi = antitrapping_face_flux(
                ctx.system, p, phi_src[sl_g], phi_dst[sl_g], mu_src[sl_g],
                t_face, k,
            )
            jat_lo = antitrapping_face_flux(
                ctx.system, p, phi_src[sl_g], phi_dst[sl_g], mu_src[sl_g],
                t_face, k,
            )
        ax = jat_hi.ndim - dim + k
        hi = [slice(None)] * jat_hi.ndim
        lo = [slice(None)] * jat_hi.ndim
        hi[ax] = slice(1, None)
        lo[ax] = slice(0, -1)
        term = (jat_hi[tuple(hi)] - jat_lo[tuple(lo)]) / dx
        div_jat = term if div_jat is None else div_jat + term

    # susceptibility recomputed from the new interpolation weights
    sq_new = phi_i_new[sl_i] * phi_i_new[sl_i]
    h_new = sq_new / (sq_new.sum(axis=0) + 1e-300)
    dmu = _solve_chi_inline(ctx, h_new, -div_jat)
    out = mu_partial.copy()
    out[sl_i] += dt * dmu
    return out


for _name, _flags in KERNEL_FLAGS.items():
    register_split_mu(
        _name,
        functools.partial(mu_step_local_impl, **_flags),
        functools.partial(mu_step_neighbor_impl, **_flags),
    )
del _name, _flags
