"""Per-cell pure-Python kernels — the "general purpose code" rung.

Mirrors the structure of the original PACE3D-style implementation the
paper started from: a cell-wise loop that dispatches through per-term
callables (the analog of the indirect function calls at cell level the
waLBerla specialization removed).  Mathematically identical to
:mod:`repro.core.kernels.basic`; orders of magnitude slower, intended for
tiny domains in the equivalence test suite and as the Fig. 6 baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.api import KernelContext, register
from repro.core.simplex import project_simplex

__all__ = ["phi_step", "mu_step"]


def _cell(arr: np.ndarray, dim: int, idx: tuple[int, ...], shift: tuple[int, ...] | None = None):
    """Value(s) at the ghosted position of interior cell *idx* (+shift)."""
    pos = tuple(
        i + 1 + (shift[d] if shift else 0) for d, i in enumerate(idx)
    )
    return arr[(Ellipsis,) + pos]


def _unit(dim: int, k: int, s: int) -> tuple[int, ...]:
    e = [0] * dim
    e[k] = s
    return tuple(e)


def _centered_grad(arr: np.ndarray, dim: int, idx, dx: float) -> np.ndarray:
    """Centered gradient of all leading components at interior cell *idx*.

    Returns shape ``(dim,) + lead``.
    """
    comps = []
    for k in range(dim):
        hi = _cell(arr, dim, idx, _unit(dim, k, +1))
        lo = _cell(arr, dim, idx, _unit(dim, k, -1))
        comps.append((hi - lo) / (2.0 * dx))
    return np.stack(comps)


def _grad_energy_dphi(ctx: KernelContext, phi_c, grad_phi) -> np.ndarray:
    """``da/dphi_a`` for one cell (grad_phi: (dim, N))."""
    n = ctx.n_phases
    out = np.zeros(n)
    for a in range(n):
        for b in range(n):
            if b == a or ctx.gamma[a, b] == 0.0:
                continue
            q = phi_c[a] * grad_phi[:, b] - phi_c[b] * grad_phi[:, a]
            out[a] += 2.0 * ctx.gamma[a, b] * float(q @ grad_phi[:, b])
    return out


def _grad_energy_div(ctx: KernelContext, phi_src, dim, idx, dx) -> np.ndarray:
    """``div(da/d grad phi_a)`` for one cell via its 2*dim face fluxes."""
    n = ctx.n_phases
    phi_c = _cell(phi_src, dim, idx)
    out = np.zeros(n)
    for k in range(dim):
        for sign in (+1, -1):
            phi_n = _cell(phi_src, dim, idx, _unit(dim, k, sign))
            for a in range(n):
                acc = 0.0
                for b in range(n):
                    if b == a or ctx.gamma[a, b] == 0.0:
                        continue
                    avg_a = 0.5 * (phi_c[a] + phi_n[a])
                    avg_b = 0.5 * (phi_c[b] + phi_n[b])
                    da = sign * (phi_n[a] - phi_c[a]) / dx
                    db = sign * (phi_n[b] - phi_c[b]) / dx
                    acc += 2.0 * ctx.gamma[a, b] * (
                        avg_b * avg_b * da - avg_a * avg_b * db
                    )
                out[a] += sign * acc / dx
    return out


def _obstacle_dphi(ctx: KernelContext, phi_c) -> np.ndarray:
    """``dw/dphi_a`` for one cell."""
    from repro.core.potential import OBSTACLE_PREFACTOR

    n = ctx.n_phases
    out = np.zeros(n)
    for a in range(n):
        for b in range(n):
            if b != a:
                out[a] += OBSTACLE_PREFACTOR * ctx.gamma[a, b] * phi_c[b]
    if ctx.gamma_triple != 0.0:
        for a in range(n):
            for b in range(n):
                if b == a:
                    continue
                for c in range(b + 1, n):
                    if c == a:
                        continue
                    out[a] += ctx.gamma_triple * phi_c[b] * phi_c[c]
    return out


def _moelans_h(phi_c: np.ndarray) -> np.ndarray:
    sq = phi_c * phi_c
    return sq / (sq.sum() + 1e-300)


def _grand_potentials(ctx: KernelContext, mu_c, t: float) -> np.ndarray:
    n = ctx.n_phases
    out = np.zeros(n)
    dt = t - ctx.t_eut
    for a in range(n):
        inv = ctx.inv_curv[a]
        cmin = ctx.c_eq[a] + ctx.c_slope[a] * dt
        out[a] = -0.5 * float(mu_c @ inv @ mu_c) - float(mu_c @ cmin) + ctx.latent[a] * dt
    return out


def _driving_dphi(ctx: KernelContext, phi_c, mu_c, t: float) -> np.ndarray:
    n = ctx.n_phases
    sq_sum = float((phi_c * phi_c).sum()) + 1e-300
    h = (phi_c * phi_c) / sq_sum
    psi = _grand_potentials(ctx, mu_c, t)
    out = np.zeros(n)
    for a in range(n):
        for b in range(n):
            dh = 2.0 * phi_c[a] * ((1.0 if a == b else 0.0) - h[b]) / sq_sum
            out[a] += psi[b] * dh
    return out


@register("phi", "reference")
def phi_step(ctx: KernelContext, phi_src, mu_src, t_ghost):
    """Cell-wise transcription of Eqs. (1)-(2)."""
    p = ctx.params
    dim, dx = p.dim, p.dx
    shape = tuple(s - 2 for s in phi_src.shape[1:])
    out = np.empty((ctx.n_phases,) + shape)
    # "function pointer table" of the general-purpose code
    terms = (_grad_energy_dphi, _grad_energy_div, _obstacle_dphi, _driving_dphi)
    for idx in np.ndindex(*shape):
        phi_c = _cell(phi_src, dim, idx)
        mu_c = _cell(mu_src, dim, idx)
        t = float(t_ghost[idx[-1] + 1])
        grad_phi = _centered_grad(phi_src, dim, idx, dx)
        rhs = (
            t * p.eps * (terms[0](ctx, phi_c, grad_phi) - terms[1](ctx, phi_src, dim, idx, dx))
            + (t / p.eps) * terms[2](ctx, phi_c)
            + terms[3](ctx, phi_c, mu_c, t)
        )
        rhs = rhs - rhs.mean()
        phi_new = phi_c - (p.dt / (ctx.tau * p.eps)) * rhs
        out[(slice(None),) + idx] = project_simplex(phi_new)
    return out


def _face_grad(arr_a: np.ndarray, dim, idx, k: int, sign: int, dx: float) -> np.ndarray:
    """Gradient of a single scalar component at the face (idx, idx+sign*e_k)."""
    g = np.zeros(dim)
    c = _cell(arr_a, dim, idx)
    n = _cell(arr_a, dim, idx, _unit(dim, k, sign))
    g[k] = sign * (n - c) / dx
    for t in range(dim):
        if t == k:
            continue
        # centered diff at both adjacent cells, averaged onto the face
        def cgrad(shift):
            hi = _cell(arr_a, dim, idx, tuple(
                a + b for a, b in zip(shift, _unit(dim, t, +1))))
            lo = _cell(arr_a, dim, idx, tuple(
                a + b for a, b in zip(shift, _unit(dim, t, -1))))
            return (hi - lo) / (2.0 * dx)

        g[t] = 0.5 * (cgrad((0,) * dim) + cgrad(_unit(dim, k, sign)))
    return g


def _face_flux(ctx: KernelContext, mu_src, phi_src, phi_dst, t_face: float,
               dim, idx, k: int, sign: int) -> np.ndarray:
    """Total flux ``(M grad mu - J_at) . e_k`` through one face of a cell."""
    p = ctx.params
    dx, dt = p.dx, p.dt
    shift = _unit(dim, k, sign)
    phi_c = _cell(phi_src, dim, idx)
    phi_n = _cell(phi_src, dim, idx, shift)
    mu_c = _cell(mu_src, dim, idx)
    mu_n = _cell(mu_src, dim, idx, shift)

    w = np.clip(0.5 * (phi_c + phi_n), 0.0, 1.0)
    dmu = sign * (mu_n - mu_c) / dx
    flux = np.zeros(ctx.n_solutes)
    for a in range(ctx.n_phases):
        flux += w[a] * ctx.diff[a] * (ctx.inv_curv[a] @ dmu)

    if not p.anti_trapping:
        return flux

    ell = ctx.liquid
    phid_c = _cell(phi_dst, dim, idx)
    phid_n = _cell(phi_dst, dim, idx, shift)
    phi_f = np.clip(0.5 * (phi_c + phi_n), 0.0, 1.0)
    dphidt_f = 0.5 * ((phid_c - phi_c) + (phid_n - phi_n)) / dt
    mu_f = 0.5 * (mu_c + mu_n)
    sq_sum = float((phi_f * phi_f).sum()) + 1e-300

    grad_l = _face_grad(phi_src[ell], dim, idx, k, sign, dx)
    norm_l = float(np.sqrt(grad_l @ grad_l))
    n_l = grad_l / norm_l if norm_l > 1e-12 else np.zeros(dim)

    dt_e = t_face - ctx.t_eut
    c_l = ctx.c_eq[ell] + ctx.c_slope[ell] * dt_e + ctx.inv_curv[ell] @ mu_f
    jat = np.zeros(ctx.n_solutes)
    pref = np.pi * p.eps / 4.0
    for a in range(ctx.n_phases):
        if a == ell:
            continue
        grad_a = _face_grad(phi_src[a], dim, idx, k, sign, dx)
        norm_a = float(np.sqrt(grad_a @ grad_a))
        n_a = grad_a / norm_a if norm_a > 1e-12 else np.zeros(dim)
        amp = np.sqrt(phi_f[a] * phi_f[ell]) * phi_f[ell] / sq_sum
        c_a = ctx.c_eq[a] + ctx.c_slope[a] * dt_e + ctx.inv_curv[a] @ mu_f
        jat += (
            pref * amp * dphidt_f[a] * float(n_a @ n_l) * n_a[k] * (c_l - c_a)
        )
    return flux - jat


@register("mu", "reference")
def mu_step(ctx: KernelContext, mu_src, phi_src, phi_dst, t_old, t_new):
    """Cell-wise transcription of Eqs. (3)-(4)."""
    p = ctx.params
    dim, dt = p.dim, p.dt
    shape = tuple(s - 2 for s in mu_src.shape[1:])
    out = np.empty((ctx.n_solutes,) + shape)
    for idx in np.ndindex(*shape):
        iz = idx[-1] + 1
        told = float(t_old[iz])
        tnew = float(t_new[iz])
        phi_c = _cell(phi_src, dim, idx)
        phid_c = _cell(phi_dst, dim, idx)
        mu_c = _cell(mu_src, dim, idx)
        h_old = _moelans_h(phi_c)
        h_new = _moelans_h(phid_c)

        dt_e = told - ctx.t_eut
        src = np.zeros(ctx.n_solutes)
        for a in range(ctx.n_phases):
            c_a = ctx.c_eq[a] + ctx.c_slope[a] * dt_e + ctx.inv_curv[a] @ mu_c
            src -= (h_new[a] - h_old[a]) * c_a / dt
        dcdT = np.zeros(ctx.n_solutes)
        for a in range(ctx.n_phases):
            dcdT += h_new[a] * ctx.c_slope[a]
        src -= dcdT * ((tnew - told) / dt)

        div = np.zeros(ctx.n_solutes)
        for k in range(dim):
            for sign in (+1, -1):
                if k == dim - 1:
                    tf = 0.5 * (told + float(t_old[iz + sign]))
                else:
                    tf = told
                f = _face_flux(
                    ctx, mu_src, phi_src, phi_dst, tf, dim, idx, k, sign
                )
                div += sign * f / p.dx

        chi = np.zeros((ctx.n_solutes, ctx.n_solutes))
        for a in range(ctx.n_phases):
            chi += h_new[a] * ctx.inv_curv[a]
        dmu = dt * np.linalg.solve(chi, src + div)
        out[(slice(None),) + idx] = mu_c + dmu
    return out
