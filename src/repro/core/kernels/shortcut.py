"""Rung "shortcut": region-dependent term skipping (fastest rung).

Adds the scenario-dependent branches of Sec. 3.3 on top of all previous
optimizations: the phi update runs only on the z-slab containing diffuse
interface (bulk cells are fixed points of the projected update), the
driving force only on actual interface cells, and the anti-trapping
current plus phase-change source of the mu update only on the interface
band.  This makes kernel runtimes depend on the domain composition —
the liquid phi-kernel and solid mu-kernel speed up the most, exactly the
behaviour Figs. 5/6/9 report.
"""

from __future__ import annotations

from repro.core.kernels.api import register
from repro.core.kernels.optimized import mu_step_impl, phi_step_impl


@register("phi", "shortcut")
def phi_step(ctx, phi_src, mu_src, t_ghost):
    """Shortcut phi sweep (slice T, face-flux arrays, region skipping)."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=False, buffered=True, shortcuts=True,
    )


@register("mu", "shortcut")
def mu_step(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """Shortcut mu sweep (slice T, face-flux arrays, region skipping)."""
    return mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=False, buffered=True, shortcuts=True,
    )
