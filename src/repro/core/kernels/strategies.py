"""Vectorization-strategy variants of the phi-kernel (Fig. 5).

The paper compares three ways of vectorizing the phi update on 4-wide
SIMD:

* **cellwise** — one SIMD vector holds the four *phases* of one cell; all
  terms are evaluated for every cell;
* **cellwise with shortcuts** — same layout plus per-cell branching that
  skips terms not needed for the local configuration (possible precisely
  because the vector covers one cell);
* **four cells** — one SIMD vector holds the same phase of four
  consecutive *cells*; shortcuts can only trigger when the condition
  holds for all four cells at once, and batch boundaries add overhead.

The NumPy analogs keep the same trade-off structure: ``cellwise`` is the
full-field phase-vectorized kernel, ``cellwise_shortcuts`` adds the region
masks, and ``four_cells`` processes the growth axis in fixed-size chunks
with no masking (every term evaluated for every chunk, plus per-chunk
dispatch overhead).  The paper's finding — cellwise-with-shortcuts wins in
every scenario — is reproduced by the Fig. 5 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.api import KernelContext, register
from repro.core.kernels.optimized import phi_step_impl

__all__ = ["STRATEGIES", "phi_step_cellwise", "phi_step_cellwise_shortcuts",
           "phi_step_four_cells"]

#: Chunk extent along the growth axis of the four-cell strategy.
CHUNK = 4


@register("phi", "cellwise")
def phi_step_cellwise(ctx: KernelContext, phi_src, mu_src, t_ghost):
    """Phase-vectorized update evaluating all terms in every cell."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=False, buffered=True, shortcuts=False,
    )


@register("phi", "cellwise_shortcuts")
def phi_step_cellwise_shortcuts(ctx: KernelContext, phi_src, mu_src, t_ghost):
    """Phase-vectorized update with per-region term skipping."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=False, buffered=True, shortcuts=True,
    )


@register("phi", "four_cells")
def phi_step_four_cells(ctx: KernelContext, phi_src, mu_src, t_ghost):
    """Cell-batched update: fixed chunks along the growth axis, no
    per-cell branching (shortcuts would need the condition to hold for a
    whole chunk, so none are taken)."""
    dim = ctx.dim
    nz = phi_src.shape[-1] - 2
    out = None
    t_ghost = np.asarray(t_ghost)
    for z0 in range(0, nz, CHUNK):
        z1 = min(z0 + CHUNK, nz)
        sl = (Ellipsis, slice(z0, z1 + 2))
        part = phi_step_impl(
            ctx, phi_src[sl], mu_src[sl], t_ghost[z0 : z1 + 2],
            full_field_t=False, buffered=True, shortcuts=False,
        )
        if out is None:
            out = np.empty(part.shape[:-1] + (nz,))
        out[..., z0:z1] = part
    return out


#: Fig. 5 strategy names in display order.
STRATEGIES = ("cellwise", "cellwise_shortcuts", "four_cells")
