"""Rung "tz": per-z-slice precomputation of temperature-dependent terms.

With the frozen-temperature ansatz ``T = T(z, t)``, every temperature-
dependent model coefficient is constant within an x-y slice; this rung
keeps them as ``(nz,)``-shaped arrays broadcast along the growth axis
instead of materializing full fields ("precompute all temperature
dependent terms once for each x-y-slice" — +80 % on the phi-kernel,
+20 % on the mu-kernel in the paper).
"""

from __future__ import annotations

from repro.core.kernels.api import register
from repro.core.kernels.optimized import mu_step_impl, phi_step_impl


@register("phi", "tz")
def phi_step(ctx, phi_src, mu_src, t_ghost):
    """T(z)-optimized phi sweep (slice T, unbuffered faces, no shortcuts)."""
    return phi_step_impl(
        ctx, phi_src, mu_src, t_ghost,
        full_field_t=False, buffered=False, shortcuts=False,
    )


@register("mu", "tz")
def mu_step(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
    """T(z)-optimized mu sweep (slice T, unbuffered faces, no shortcuts)."""
    return mu_step_impl(
        ctx, mu_src, phi_src, phi_dst, t_old, t_new,
        full_field_t=False, buffered=False, shortcuts=False,
    )
