"""Moving-window technique for directional solidification (Sec. 3.3).

The evolution in the solid is orders of magnitude slower than in the melt,
so the effective domain in the growth direction can be kept small: when
the solidification front climbs past a target height, the whole window is
shifted down — solidified slices drop out at the bottom, fresh melt enters
at the top, and the temperature frame offset advances so the frozen
gradient stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MovingWindow", "shift_along_growth_axis"]


def shift_along_growth_axis(
    arr: np.ndarray, shift: int, fill_values: np.ndarray
) -> None:
    """Shift *arr* down by *shift* cells along the last axis, in place.

    *fill_values* (shape ``(C,)`` or scalar) fills the vacated top slices.
    Operates on ghosted or interior arrays alike — the caller re-applies
    boundary handling afterwards.
    """
    if shift <= 0:
        return
    if shift >= arr.shape[-1]:
        raise ValueError(f"shift {shift} exceeds axis extent {arr.shape[-1]}")
    arr[..., :-shift] = arr[..., shift:]
    fv = np.asarray(fill_values, dtype=arr.dtype)
    if fv.ndim == 1:
        fv = fv.reshape((-1,) + (1,) * (arr.ndim - 1))
    arr[..., -shift:] = fv


@dataclass
class MovingWindow:
    """Policy + state of the moving window.

    Parameters
    ----------
    target_fraction:
        Desired front position as a fraction of the window height; once
        the measured front exceeds it the window shifts down.
    check_every:
        Front detection runs only every so many steps (it costs a
        reduction over the field).
    enabled:
        Convenience switch so callers can keep one code path.
    """

    target_fraction: float = 0.5
    check_every: int = 10
    enabled: bool = True
    total_shift: int = field(default=0, init=False)

    def required_shift(self, front_z: float, nz: int) -> int:
        """Cells to shift so the front returns to the target height."""
        if not self.enabled or front_z < 0:
            return 0
        target = self.target_fraction * nz
        return max(int(np.floor(front_z - target)), 0)

    def record(self, shift: int) -> None:
        """Accumulate the total window travel (for temperature offsets)."""
        self.total_shift += shift
