"""Voronoi initial condition (Sec. 2.1 / Sec. 3.2).

"As initial setup we use solid nuclei at the bottom of a liquid filled
domain ... created by a Voronoi tesselation with respect to the given
volume fractions of the phases."  Because the tesselation is generated
procedurally, no voxel input files have to be read at startup — one of the
paper's I/O arguments.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.system import TernaryEutecticSystem

__all__ = ["allocate_seed_phases", "voronoi_initial_condition", "smooth_phase_field"]


def smooth_phase_field(phi: np.ndarray, iterations: int = 2) -> np.ndarray:
    """Diffuse a sharp phase assignment into a smooth simplex field.

    Repeated nearest-neighbour box blur (reflecting edges, so phase
    fractions are preserved up to the projection) followed by a Gibbs
    simplex projection.  Used to pre-widen the Voronoi initial condition
    towards the sine-shaped equilibrium profile, which avoids the large
    chemical-potential shock a perfectly sharp front produces in the
    first explicit steps.
    """
    from repro.core.simplex import project_simplex_field

    phi = np.asarray(phi, dtype=float).copy()
    dim = phi.ndim - 1
    for _ in range(iterations):
        acc = phi.copy()
        cnt = np.ones(phi.shape[1:])
        for k in range(dim):
            ax = 1 + k
            sl_lo = [slice(None)] * phi.ndim
            sl_hi = [slice(None)] * phi.ndim
            sl_lo[ax] = slice(0, -1)
            sl_hi[ax] = slice(1, None)
            acc[tuple(sl_hi)] += phi[tuple(sl_lo)]
            acc[tuple(sl_lo)] += phi[tuple(sl_hi)]
            c_lo = [slice(None)] * (phi.ndim - 1)
            c_hi = [slice(None)] * (phi.ndim - 1)
            c_lo[k] = slice(0, -1)
            c_hi[k] = slice(1, None)
            cnt[tuple(c_hi)] += 1
            cnt[tuple(c_lo)] += 1
        phi = acc / cnt
    return project_simplex_field(phi)


def allocate_seed_phases(
    fractions: np.ndarray, solid_indices: tuple[int, ...], n_seeds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assign solid phases to *n_seeds* seeds by largest-remainder rounding.

    *fractions* is indexed in phase order (liquid entry ignored); the
    returned array holds a phase index per seed, shuffled.
    """
    if n_seeds < 1:
        raise ValueError("need at least one seed")
    want = np.array([fractions[s] for s in solid_indices], dtype=float)
    total = want.sum()
    if total <= 0:
        raise ValueError("solid fractions must sum to a positive value")
    want = want / total * n_seeds
    counts = np.floor(want).astype(int)
    remainder = want - counts
    missing = n_seeds - counts.sum()
    for i in np.argsort(remainder)[::-1][:missing]:
        counts[i] += 1
    phases = np.repeat(np.asarray(solid_indices), counts)
    rng.shuffle(phases)
    return phases


def voronoi_initial_condition(
    system: TernaryEutecticSystem,
    shape: tuple[int, ...],
    *,
    solid_height: int,
    n_seeds: int,
    rng: np.random.Generator | None = None,
    fractions: np.ndarray | None = None,
    periodic_transverse: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build interior ``(phi, mu)`` arrays: Voronoi nuclei under melt.

    Seeds are placed uniformly in the bottom slab of height *solid_height*
    (cells); every solid cell takes the phase of its nearest seed
    (periodic wrap in the transverse axes).  Cells above the slab are
    liquid.  ``mu`` starts at the eutectic equilibrium (zero).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    dim = len(shape)
    nz = shape[-1]
    if not 0 < solid_height <= nz:
        raise ValueError(f"solid_height must be in (0, {nz}], got {solid_height}")
    if fractions is None:
        fractions = system.lever_rule_fractions()

    solids = system.phase_set.solid_indices
    seed_phase = allocate_seed_phases(fractions, solids, n_seeds, rng)
    # seed positions: transverse uniform, z inside the slab
    seed_pos = np.column_stack(
        [rng.uniform(0, shape[k], size=n_seeds) for k in range(dim - 1)]
        + [rng.uniform(0, solid_height, size=n_seeds)]
    )

    coords = np.meshgrid(
        *[np.arange(s, dtype=float) + 0.5 for s in shape], indexing="ij"
    )
    dist2 = np.zeros((n_seeds,) + shape)
    for k in range(dim):
        d = coords[k][None, ...] - seed_pos[:, k].reshape((-1,) + (1,) * dim)
        if periodic_transverse and k < dim - 1:
            d = np.abs(d)
            d = np.minimum(d, shape[k] - d)
        dist2 += d * d
    nearest = np.argmin(dist2, axis=0)
    cell_phase = seed_phase[nearest]

    n = system.n_phases
    ell = system.liquid_index
    phi = np.zeros((n,) + shape)
    zidx = coords[-1]
    solid_mask = zidx < solid_height
    for s in solids:
        phi[s] = solid_mask & (cell_phase == s)
    phi[ell] = ~solid_mask
    mu = np.zeros((system.n_solutes,) + shape)
    return phi.astype(float), mu
