"""Numerical and interfacial parameters of the phase-field model.

Bundles everything of Eqs. (1)-(4) that is *not* thermodynamic data:
interface width ``eps``, surface-energy matrix ``gamma_ab``, higher-order
obstacle coefficient, relaxation constants ``tau_a``, grid spacing, time
step, spatial dimension, and feature switches (anti-trapping on/off,
temperature scaling of the interfacial terms).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.thermo.system import TernaryEutecticSystem


@dataclass(frozen=True)
class PhaseFieldParameters:
    """Parameter bundle for the grand-potential phase-field model.

    Parameters
    ----------
    n_phases:
        Number of order parameters ``N``.
    dim:
        Spatial dimension (2 or 3); the solidification direction is the
        *last* axis.
    dx, dt:
        Grid spacing and explicit-Euler time step.
    eps:
        Interface width parameter ``epsilon`` (in units of ``dx``;
        typical value ``4 * dx``).
    gamma:
        Symmetric ``(N, N)`` surface-energy matrix ``gamma_ab`` (diagonal
        ignored).  The interfacial terms of Eq. (2) are multiplied by the
        local temperature, so physically sensible values are of order
        ``1 / T_E``.
    gamma_triple:
        Coefficient of the third-order obstacle term suppressing spurious
        third phases in two-phase interfaces.
    tau:
        Relaxation constants ``tau_a`` per phase, shape ``(N,)``.
    anti_trapping:
        Whether the anti-trapping current (Eq. 4) is evaluated.
    interface_tol:
        Threshold distinguishing bulk from diffuse-interface cells when
        building region masks (the "shortcut" optimization).
    """

    n_phases: int
    dim: int
    dx: float
    dt: float
    eps: float
    gamma: np.ndarray
    gamma_triple: float
    tau: np.ndarray
    anti_trapping: bool = True
    interface_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.dim not in (2, 3):
            raise ValueError(f"dim must be 2 or 3, got {self.dim}")
        g = np.asarray(self.gamma, dtype=float)
        if g.shape != (self.n_phases, self.n_phases):
            raise ValueError(
                f"gamma must be ({self.n_phases},{self.n_phases}), got {g.shape}"
            )
        if not np.allclose(g, g.T):
            raise ValueError("gamma must be symmetric")
        t = np.asarray(self.tau, dtype=float)
        if t.shape != (self.n_phases,):
            raise ValueError(f"tau must have shape ({self.n_phases},), got {t.shape}")
        if np.any(t <= 0):
            raise ValueError("tau must be positive")
        for name in ("dx", "dt", "eps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        object.__setattr__(self, "gamma", g)
        object.__setattr__(self, "tau", t)

    def with_(self, **kwargs) -> "PhaseFieldParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_system(
        cls,
        system: TernaryEutecticSystem,
        *,
        dim: int = 3,
        dx: float = 1.0,
        eps: float | None = None,
        gamma_scale: float = 1.0,
        tau_scale: float = 1.0,
        dt_safety: float = 0.2,
        anti_trapping: bool = True,
    ) -> "PhaseFieldParameters":
        """Build numerically consistent defaults for an alloy system.

        Surface energies are chosen so that ``T * gamma`` is O(1) at the
        eutectic temperature; the time step is the stability estimate of
        :meth:`stable_dt` scaled by *dt_safety*.
        """
        n = system.n_phases
        eps = 4.0 * dx if eps is None else eps
        gamma_val = gamma_scale / system.t_eutectic
        gamma = np.full((n, n), gamma_val)
        np.fill_diagonal(gamma, 0.0)
        tau = np.full(n, tau_scale)
        params = cls(
            n_phases=n,
            dim=dim,
            dx=dx,
            dt=1.0,  # placeholder; fixed right below
            eps=eps,
            gamma=gamma,
            gamma_triple=10.0 * gamma_val,
            tau=tau,
            anti_trapping=anti_trapping,
        )
        dt = dt_safety * params.stable_dt(system)
        return params.with_(dt=dt)

    def stable_dt(self, system: TernaryEutecticSystem, temperature: float | None = None) -> float:
        """Explicit-Euler stability estimate (not a guarantee).

        Considers three rates: the interfacial "diffusion" of the phase
        field, the obstacle-potential reaction rate, and chemical diffusion
        ``chi^{-1} M`` which is bounded by the largest phase diffusivity.
        """
        t_ref = system.t_eutectic if temperature is None else float(temperature)
        g_max = float(np.max(self.gamma))
        tau_min = float(np.min(self.tau))
        # phase-field diffusion: d(phi)/dt ~ (T eps / (tau eps)) gamma lap(phi)
        rate_grad = 2.0 * self.dim * t_ref * g_max / (tau_min * self.dx**2)
        # obstacle reaction: (T 16 gamma / (pi^2 eps)) / (tau eps)
        rate_pot = 16.0 * t_ref * g_max / (np.pi**2 * self.eps**2 * tau_min)
        # solute diffusion: chi^{-1} M has spectrum bounded by max D_a
        d_max = float(np.max(system.diffusivities))
        rate_diff = 2.0 * self.dim * d_max / self.dx**2
        return 1.0 / max(rate_grad + rate_pot, rate_diff)

    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        """All unordered phase pairs ``(a, b)`` with ``a < b``."""
        n = self.n_phases
        return tuple((a, b) for a in range(n) for b in range(a + 1, n))

    @property
    def triples(self) -> tuple[tuple[int, int, int], ...]:
        """All unordered phase triples ``(a, b, c)`` with ``a < b < c``."""
        n = self.n_phases
        return tuple(
            (a, b, c)
            for a in range(n)
            for b in range(a + 1, n)
            for c in range(b + 1, n)
        )
