"""Multi-obstacle potential energy density ``w(phi)``.

The obstacle potential of the model,

.. math::

    w(\\phi) = \\frac{16}{\\pi^2} \\sum_{a<b} \\gamma_{ab} \\phi_a \\phi_b
             + \\gamma_{abc} \\sum_{a<b<c} \\phi_a \\phi_b \\phi_c ,

is finite on the Gibbs simplex and ``+inf`` outside (enforced by the
projection in :mod:`repro.core.simplex`).  It produces the sine-shaped
interface profile of width ``~ eps`` that bounds the diffuse interface
region the paper exploits ("the interface region I_Omega is bounded due to
a sinus-shaped interface profile").  The third-order term penalizes spurious
third-phase adsorption at two-phase interfaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OBSTACLE_PREFACTOR", "energy_density", "dW_dphi"]

#: The 16/pi^2 prefactor of the multi-obstacle potential.
OBSTACLE_PREFACTOR = 16.0 / np.pi**2


def energy_density(phi: np.ndarray, gamma: np.ndarray, gamma_triple: float) -> np.ndarray:
    """Potential energy density per cell; *phi* has shape ``(N,) + S``."""
    n = phi.shape[0]
    out = np.zeros(phi.shape[1:])
    for a in range(n):
        for b in range(a + 1, n):
            out += OBSTACLE_PREFACTOR * gamma[a, b] * phi[a] * phi[b]
    if gamma_triple != 0.0:
        for a in range(n):
            for b in range(a + 1, n):
                for c in range(b + 1, n):
                    out += gamma_triple * phi[a] * phi[b] * phi[c]
    return out


def dW_dphi(phi: np.ndarray, gamma: np.ndarray, gamma_triple: float) -> np.ndarray:
    """``dw/dphi_a`` per cell, shape ``(N,) + S``."""
    n = phi.shape[0]
    out = np.zeros_like(np.asarray(phi, dtype=float))
    for a in range(n):
        for b in range(n):
            if b != a:
                out[a] += OBSTACLE_PREFACTOR * gamma[a, b] * phi[b]
    if gamma_triple != 0.0:
        for a in range(n):
            acc = None
            for b in range(n):
                if b == a:
                    continue
                for c in range(b + 1, n):
                    if c == a:
                        continue
                    term = phi[b] * phi[c]
                    acc = term if acc is None else acc + term
            if acc is not None:
                out[a] += gamma_triple * acc
    return out
