"""Region classification of the simulation domain (Sec. 2 of the paper).

The model equations simplify in different parts of the domain, which is
what the "shortcut" optimizations exploit:

* **bulk** ``B_a``: cells where a single phase has value 1 — the phase
  field does not evolve and the anti-trapping current vanishes;
* **diffuse interface** ``I_Omega``: everything that is not bulk — the only
  place where the interfacial terms and driving force act;
* **solidification front** ``F_Omega``: interface cells containing liquid —
  the only place where the anti-trapping current is nonzero;
* **liquid** ``L_Omega`` / **solid** ``S_Omega`` bulk regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegionMasks:
    """Boolean masks over (interior) cells, all of the same spatial shape."""

    interface: np.ndarray
    front: np.ndarray
    liquid: np.ndarray
    solid: np.ndarray

    @property
    def bulk(self) -> np.ndarray:
        """Cells belonging to any single-phase bulk region."""
        return ~self.interface

    def counts(self) -> dict[str, int]:
        """Cell counts per region (diagnostics / load metrics)."""
        return {
            "interface": int(self.interface.sum()),
            "front": int(self.front.sum()),
            "liquid": int(self.liquid.sum()),
            "solid": int(self.solid.sum()),
        }


def classify(phi: np.ndarray, liquid_index: int, tol: float = 1e-9) -> RegionMasks:
    """Build region masks from an order-parameter field.

    *phi* has shape ``(N,) + S`` (no ghost layers expected — pass the
    interior view).  A cell is *bulk* when its largest order parameter
    exceeds ``1 - tol``; the front is the part of the interface where the
    liquid fraction exceeds *tol*.
    """
    phi = np.asarray(phi)
    phi_max = phi.max(axis=0)
    interface = phi_max < 1.0 - tol
    phi_l = phi[liquid_index]
    front = interface & (phi_l > tol)
    liquid = ~interface & (phi_l >= 1.0 - tol)
    solid = ~interface & ~liquid
    return RegionMasks(interface=interface, front=front, liquid=liquid, solid=solid)


def front_position(phi: np.ndarray, liquid_index: int, threshold: float = 0.5) -> float:
    """Mean ``z`` index (last axis) of the solid-liquid front.

    Defined as the highest slice per column where the liquid fraction is
    below *threshold*; averaged over the cross-section.  Returns ``-1.0``
    when the whole domain is liquid.
    """
    phi_l = np.asarray(phi)[liquid_index]
    solidish = phi_l < threshold
    nz = phi_l.shape[-1]
    idx = np.arange(nz)
    # highest solid-ish cell per column; -1 where column is all liquid
    has = solidish.any(axis=-1)
    highest = np.where(has, nz - 1 - np.argmax(solidish[..., ::-1], axis=-1), -1)
    if not np.any(has):
        return -1.0
    return float(highest[has].mean())
