"""Benchmark/test scenario blocks (Sec. 5.1 of the paper).

The kernel performance depends on the composition of the simulation
domain, so the paper benchmarks three representative block types:

* ``solid``     — fully solidified material (lower third of the domain),
* ``interface`` — the solidification front (middle third),
* ``liquid``    — undercooled melt (upper third).

This module constructs ghosted field blocks of those compositions: phi
with a sine-shaped diffuse front and lamellar solid structure, mu at the
eutectic equilibrium, and the frozen-temperature slice profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import PhaseFieldParameters
from repro.core.simplex import project_simplex_field
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["SCENARIOS", "make_scenario", "fill_ghosts_periodic"]

#: Scenario names in the order the paper's figures list them.
SCENARIOS = ("interface", "liquid", "solid")


def fill_ghosts_periodic(field: np.ndarray, dim: int, g: int = 1) -> np.ndarray:
    """Fill all ghost layers periodically, axis by axis.

    Sequential per-axis filling propagates edge and corner ghosts too, so
    the D3C19 accesses of the mu sweep see consistent values — the same
    trick the axis-sequential ghost-layer exchange of the distributed
    runtime uses.
    """
    for k in range(dim):
        ax = field.ndim - dim + k
        src_hi = [slice(None)] * field.ndim
        dst_lo = [slice(None)] * field.ndim
        src_lo = [slice(None)] * field.ndim
        dst_hi = [slice(None)] * field.ndim
        src_hi[ax] = slice(-2 * g, -g)
        dst_lo[ax] = slice(0, g)
        src_lo[ax] = slice(g, 2 * g)
        dst_hi[ax] = slice(-g, None)
        field[tuple(dst_lo)] = field[tuple(src_hi)]
        field[tuple(dst_hi)] = field[tuple(src_lo)]
    return field


def _lamella_pattern(system: TernaryEutecticSystem, shape: tuple[int, ...],
                     lamella_width: int, rng: np.random.Generator) -> np.ndarray:
    """Solid phase index per cell: lamellae stacked along the first axis.

    The repeating unit cycles through the solid phases with widths
    proportional to the lever-rule fractions.
    """
    solids = list(system.phase_set.solid_indices)
    frac = system.lever_rule_fractions()
    widths = np.maximum(
        np.round([frac[s] * lamella_width * len(solids) for s in solids]), 1
    ).astype(int)
    period = int(widths.sum())
    x = np.arange(shape[0]) % period
    lookup = np.empty(period, dtype=int)
    pos = 0
    for s, w in zip(solids, widths):
        lookup[pos : pos + w] = s
        pos += w
    idx = lookup[x]
    out = np.empty(shape, dtype=int)
    out[...] = idx.reshape((-1,) + (1,) * (len(shape) - 1))
    return out


def make_scenario(
    name: str,
    shape: tuple[int, ...],
    system: TernaryEutecticSystem | None = None,
    params: PhaseFieldParameters | None = None,
    *,
    lamella_width: int = 8,
    undercooling: float = 2.0,
    seed: int = 0,
):
    """Build ghosted ``(phi, mu, t_ghost)`` arrays for a benchmark block.

    *shape* is the interior spatial shape; the growth direction is the
    last axis.  Returns ``(phi, mu, t_ghost, system, params)`` so callers
    that passed ``None`` get the constructed defaults back.
    """
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; have {SCENARIOS}")
    system = system if system is not None else TernaryEutecticSystem()
    dim = len(shape)
    if params is None:
        params = PhaseFieldParameters.for_system(system, dim=dim)
    elif params.dim != dim:
        raise ValueError(f"params.dim={params.dim} but shape is {dim}-dimensional")
    rng = np.random.default_rng(seed)
    n = system.n_phases
    ell = system.liquid_index
    gshape = tuple(s + 2 for s in shape)
    nz = shape[-1]

    phi = np.zeros((n,) + gshape)
    mu = np.zeros((system.n_solutes,) + gshape)

    zc = (np.arange(nz, dtype=float) + 0.5)
    if name == "liquid":
        liq_frac = np.ones(nz)
    elif name == "solid":
        liq_frac = np.zeros(nz)
    else:
        # sine-shaped diffuse front across ~eps cells in the middle
        z0 = 0.5 * nz
        w = params.eps / params.dx
        arg = np.clip((zc - z0) / w, -0.5, 0.5)
        liq_frac = 0.5 * (1.0 + np.sin(np.pi * arg))

    lam = _lamella_pattern(system, shape, lamella_width, rng)
    interior = tuple([slice(1, -1)] * dim)
    lf = liq_frac.reshape((1,) * (dim - 1) + (nz,))
    phi_int = np.zeros((n,) + shape)
    phi_int[ell] = lf
    for s in system.phase_set.solid_indices:
        phi_int[s] = (1.0 - lf) * (lam == s)
    project_simplex_field(phi_int, out=phi_int)
    phi[(slice(None),) + interior] = phi_int

    # mu: equilibrium (0) plus a small smooth perturbation in the liquid
    pert = 0.01 * np.sin(2 * np.pi * zc / nz)
    mu_int = np.zeros((system.n_solutes,) + shape)
    mu_int[...] = pert.reshape((1,) * dim + (nz,))[0] * lf
    mu[(slice(None),) + interior] = mu_int

    fill_ghosts_periodic(phi, dim)
    fill_ghosts_periodic(mu, dim)

    # frozen temperature: front sits `undercooling` below T_E, gradient
    # along z; ghost slices included
    zg = np.arange(-1, nz + 1, dtype=float) + 0.5
    gradient = 2.0 * undercooling / max(nz, 1)
    t_ghost = system.t_eutectic - undercooling + gradient * (zg - 0.5 * nz)

    return phi, mu, t_ghost, system, params
