"""Projection onto the Gibbs simplex.

The multi-obstacle potential ``w(phi)`` of the model is ``+inf`` outside
the regular ``N-1`` simplex ``{phi : phi_a >= 0, sum_a phi_a = 1}``.  The
explicit Euler update can therefore step outside the admissible set and
must be projected back — the paper mentions exactly such a "routine that
projects the phi values back into the allowed simplex" (whose branches make
phi-kernel runtimes vary across the domain).

The projection used is the Euclidean nearest-point projection of
Michelot / Condat: sort, find the pivot, clip.  A vectorized variant
operates on whole fields with the phase axis leading.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_simplex", "project_simplex_field", "in_simplex"]


def project_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of a single vector onto the unit simplex.

    Returns the point of ``{x : x_i >= 0, sum x_i = 1}`` closest to *v*.
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValueError("project_simplex expects a 1-D vector; use "
                         "project_simplex_field for fields")
    n = v.size
    u = np.sort(v)[::-1]
    css = np.cumsum(u)
    rho_candidates = u + (1.0 - css) / np.arange(1, n + 1)
    rho = np.nonzero(rho_candidates > 0)[0][-1]
    theta = (1.0 - css[rho]) / (rho + 1.0)
    return np.maximum(v + theta, 0.0)


def project_simplex_field(phi: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Project a whole field onto the simplex, phase axis leading.

    *phi* has shape ``(N,) + S``; every cell's phase vector is projected
    independently.  When *out* is given the result is written in place
    (it may alias *phi*).
    """
    phi = np.asarray(phi, dtype=float)
    n = phi.shape[0]
    flat = phi.reshape(n, -1)
    u = np.sort(flat, axis=0)[::-1]
    css = np.cumsum(u, axis=0)
    ar = np.arange(1, n + 1, dtype=float)[:, None]
    cand = u + (1.0 - css) / ar
    # index of the last positive candidate per cell
    positive = cand > 0
    rho = n - 1 - np.argmax(positive[::-1], axis=0)
    cells = np.arange(flat.shape[1])
    theta = (1.0 - css[rho, cells]) / (rho + 1.0)
    res = np.maximum(flat + theta[None, :], 0.0)
    if out is None:
        return res.reshape(phi.shape)
    out[...] = res.reshape(phi.shape)
    return out


def in_simplex(phi: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Boolean mask of cells whose phase vector lies in the simplex.

    *phi* has shape ``(N,) + S``; the result has shape ``S``.
    """
    phi = np.asarray(phi, dtype=float)
    nonneg = np.all(phi >= -tol, axis=0)
    summed = np.abs(phi.sum(axis=0) - 1.0) <= tol * phi.shape[0]
    return nonneg & summed
