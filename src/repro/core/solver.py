"""Single-block simulation driver (Algorithm 1 of the paper).

:class:`Simulation` owns the double-buffered fields, boundary handling,
frozen temperature and moving window, and advances them with a selectable
kernel rung:

1. ``phi_dst <- phi-kernel(phi_src, mu_src)``
2. phi ghost-layer update (boundaries; exchange in multi-block runs)
3. ``mu_dst <- mu-kernel(mu_src, phi_src, phi_dst)``
4. mu ghost-layer update
5. swap both fields

The distributed driver in :mod:`repro.distributed.solver` reuses the same
kernels and boundary spec and adds the inter-block ghost exchange and the
communication-hiding schedule of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.moving_window import MovingWindow, shift_along_growth_axis
from repro.core.nucleation import voronoi_initial_condition
from repro.core.parameters import PhaseFieldParameters
from repro.core.regions import classify, front_position
from repro.core.temperature import ConstantTemperature, FrozenTemperature
from repro.grid.boundary import BoundarySpec, Dirichlet, Neumann, apply_boundaries
from repro.grid.field import Field
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["Simulation", "SimulationReport"]


@dataclass
class SimulationReport:
    """Summary diagnostics returned by :meth:`Simulation.run`."""

    steps: int
    time: float
    front_z: float
    phase_fractions: np.ndarray
    solute_mass: np.ndarray
    window_shift: int


class Simulation:
    """Grand-potential phase-field simulation on a single block.

    Parameters
    ----------
    shape:
        Interior cell counts; the growth direction is the last axis.
    system:
        Alloy thermodynamics (defaults to the Ag-Al-Cu dataset).
    params:
        Model/numerics parameters (defaults via
        :meth:`PhaseFieldParameters.for_system`).
    temperature:
        A :class:`FrozenTemperature` or :class:`ConstantTemperature`;
        defaults to a gentle gradient pulled at constant velocity with the
        eutectic isotherm near mid-height.
    kernel:
        Optimization-ladder rung used for both sweeps.
    phi_bc, mu_bc:
        Boundary specs; default to the Fig. 2 setup (periodic transverse,
        Neumann bottom, Dirichlet top for mu at the far-field melt value).
    moving_window:
        Optional :class:`MovingWindow` policy.
    imex:
        Use the semi-implicit (spectrally stabilized) mu update instead of
        the explicit kernel — the paper's announced implicit-solver future
        work; allows time steps beyond the diffusive stability limit.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        system: TernaryEutecticSystem | None = None,
        params: PhaseFieldParameters | None = None,
        temperature: FrozenTemperature | ConstantTemperature | None = None,
        kernel: str = "shortcut",
        phi_bc: BoundarySpec | None = None,
        mu_bc: BoundarySpec | None = None,
        moving_window: MovingWindow | None = None,
        imex: bool = False,
    ):
        self.shape = tuple(shape)
        self.dim = len(shape)
        self.system = system if system is not None else TernaryEutecticSystem()
        self.params = (
            params
            if params is not None
            else PhaseFieldParameters.for_system(self.system, dim=self.dim)
        )
        if self.params.dim != self.dim:
            raise ValueError(
                f"params.dim={self.params.dim} does not match shape {shape}"
            )
        self.ctx = make_context(self.system, self.params)
        from repro.core.kernels import COMPILED_RUNGS, compiled

        kernel = compiled.maybe_fallback(kernel)
        self.kernel_name = kernel
        #: Seconds spent compiling/warming the kernel backend before the
        #: first timed step (0.0 for the NumPy rungs).  Benchmarks subtract
        #: this so JIT warmup never pollutes MLUP/s numbers.
        self.compile_seconds = 0.0
        if kernel in COMPILED_RUNGS:
            self.compile_seconds = compiled.warmup(self.ctx, dim=self.dim)
        self._phi_kernel = get_phi_kernel(kernel)
        self.imex = imex
        if imex:
            from repro.core.imex import semi_implicit_mu_step

            def _imex_mu(ctx, mu_src, phi_src, phi_dst, t_old, t_new):
                return semi_implicit_mu_step(
                    ctx, mu_src, phi_src, phi_dst, t_old, t_new
                )

            self._mu_kernel = _imex_mu
        else:
            self._mu_kernel = get_mu_kernel(kernel)

        nz = shape[-1]
        if temperature is None:
            te = self.system.t_eutectic
            temperature = FrozenTemperature(
                t_ref=te,
                gradient=4.0 / nz,
                velocity=0.02,
                z0=0.45 * nz * self.params.dx,
                dx=self.params.dx,
            )
        self.temperature = temperature

        self.phi = Field(self.system.n_phases, self.shape)
        self.mu = Field(self.system.n_solutes, self.shape)
        self.phi_bc = (
            phi_bc if phi_bc is not None else BoundarySpec.directional(self.dim)
        )
        self.mu_bc = (
            mu_bc
            if mu_bc is not None
            else BoundarySpec.directional(
                self.dim, bottom=Neumann(), top=Dirichlet(0.0)
            )
        )
        self.moving_window = moving_window
        self.time = 0.0
        self.step_count = 0
        self.z_offset = 0

        # default initial condition: liquid everywhere
        ell = self.system.liquid_index
        self.phi.src[ell] = 1.0
        self.apply_boundaries("src")

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def initialize(self, phi_interior: np.ndarray, mu_interior: np.ndarray) -> None:
        """Set the initial interior state and fill ghost layers."""
        self.phi.set_interior(phi_interior, "src")
        self.mu.set_interior(mu_interior, "src")
        self.apply_boundaries("src")
        self.time = 0.0
        self.step_count = 0
        self.z_offset = 0

    def initialize_voronoi(
        self, *, solid_height: int | None = None, n_seeds: int | None = None,
        seed: int = 0, smooth: int = 2,
    ) -> None:
        """Voronoi nuclei under melt (the paper's initial setup).

        *smooth* pre-widens the sharp tesselation towards the diffuse
        equilibrium profile (see
        :func:`repro.core.nucleation.smooth_phase_field`).
        """
        from repro.core.nucleation import smooth_phase_field

        nz = self.shape[-1]
        solid_height = max(nz // 5, 2) if solid_height is None else solid_height
        if n_seeds is None:
            cross = int(np.prod(self.shape[:-1]))
            n_seeds = max(cross // 64, len(self.system.phase_set.solid_indices))
        phi0, mu0 = voronoi_initial_condition(
            self.system,
            self.shape,
            solid_height=solid_height,
            n_seeds=n_seeds,
            rng=np.random.default_rng(seed),
        )
        if smooth:
            phi0 = smooth_phase_field(phi0, smooth)
        self.initialize(phi0, mu0)

    def apply_boundaries(self, buffer: str) -> None:
        """Fill ghost layers of both fields' chosen buffer."""
        apply_boundaries(getattr(self.phi, buffer), self.phi_bc)
        apply_boundaries(getattr(self.mu, buffer), self.mu_bc)

    def state_dict(self) -> dict:
        """Restorable snapshot of the interior state and clock.

        The dict matches the layout of
        :func:`repro.io.checkpoint.load_checkpoint`, so it can be fed to
        :meth:`load_state` or to ``repro.io.checkpoint.save_state``.
        """
        return {
            "phi": self.phi.interior_src.copy(),
            "mu": self.mu.interior_src.copy(),
            "time": self.time,
            "step_count": self.step_count,
            "z_offset": self.z_offset,
            "shape": self.shape,
            "kernel": self.kernel_name,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict`-shaped snapshot (clock included)."""
        if tuple(state["shape"]) != self.shape:
            raise ValueError(
                f"state shape {tuple(state['shape'])} does not match "
                f"simulation shape {self.shape}"
            )
        self.initialize(state["phi"], state["mu"])
        self.time = float(state["time"])
        self.step_count = int(state["step_count"])
        self.z_offset = int(state["z_offset"])

    def set_dt(self, dt: float) -> None:
        """Change the time step (rebuilds the kernel context).

        Used by the resilience layer's rollback-with-backoff: after a
        numerical blow-up the run resumes from the last checkpoint with a
        smaller explicit-Euler step.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.params = self.params.with_(dt=dt)
        self.ctx = make_context(self.system, self.params)

    # ------------------------------------------------------------------ #
    # time stepping
    # ------------------------------------------------------------------ #

    def _slice_temps(self, t: float) -> np.ndarray:
        """Ghosted slice temperatures (nz + 2 values) at time *t*."""
        nz = self.shape[-1]
        return self.temperature.at_time(t, nz + 2, self.z_offset - 1)

    def step(self, n: int = 1) -> None:
        """Advance *n* explicit-Euler time steps (Algorithm 1)."""
        for _ in range(n):
            t_old = self._slice_temps(self.time)
            t_new = self._slice_temps(self.time + self.params.dt)

            self.phi.interior_dst[...] = self._phi_kernel(
                self.ctx, self.phi.src, self.mu.src, t_old
            )
            apply_boundaries(self.phi.dst, self.phi_bc)

            self.mu.interior_dst[...] = self._mu_kernel(
                self.ctx, self.mu.src, self.phi.src, self.phi.dst, t_old, t_new
            )
            apply_boundaries(self.mu.dst, self.mu_bc)

            self.phi.swap()
            self.mu.swap()
            self.time += self.params.dt
            self.step_count += 1
            self._maybe_shift_window()

    def _maybe_shift_window(self) -> None:
        mw = self.moving_window
        if mw is None or not mw.enabled:
            return
        if self.step_count % mw.check_every:
            return
        nz = self.shape[-1]
        fz = self.front_position()
        shift = mw.required_shift(fz, nz)
        if shift <= 0:
            return
        ell = self.system.liquid_index
        fill_phi = np.zeros(self.system.n_phases)
        fill_phi[ell] = 1.0
        shift_along_growth_axis(self.phi.src, shift, fill_phi)
        shift_along_growth_axis(self.mu.src, shift, np.zeros(self.system.n_solutes))
        self.z_offset += shift
        mw.record(shift)
        self.apply_boundaries("src")

    def run(self, steps: int, callback=None, callback_every: int = 0) -> SimulationReport:
        """Run *steps* steps, optionally invoking ``callback(sim)``."""
        for i in range(steps):
            self.step()
            if callback is not None and callback_every and (
                self.step_count % callback_every == 0
            ):
                callback(self)
        return self.report()

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def front_position(self) -> float:
        """Mean z index of the solidification front (interior frame)."""
        return front_position(self.phi.interior_src, self.system.liquid_index)

    def phase_fractions(self) -> np.ndarray:
        """Volume fraction of each order parameter."""
        phi_i = self.phi.interior_src
        return phi_i.reshape(phi_i.shape[0], -1).mean(axis=1)

    def solute_mass(self) -> np.ndarray:
        """Total independent-component content ``sum_cells c(phi, mu, T)``.

        Conserved (up to boundary fluxes) by the mu update — the property
        test anchoring Eq. (3).
        """
        from repro.core.interpolation import moelans_h

        t = self._slice_temps(self.time)[1:-1]
        temp = self.ctx.broadcast_slices(t)
        h = moelans_h(self.phi.interior_src)
        c = self.system.concentration(h, self.mu.interior_src, temp)
        return c.reshape(c.shape[0], -1).sum(axis=1)

    def regions(self):
        """Region masks of the current state (bulk/interface/front/...)."""
        return classify(self.phi.interior_src, self.system.liquid_index)

    def report(self) -> SimulationReport:
        """Bundle the standard diagnostics."""
        return SimulationReport(
            steps=self.step_count,
            time=self.time,
            front_z=self.front_position(),
            phase_fractions=self.phase_fractions(),
            solute_mass=self.solute_mass(),
            window_shift=0 if self.moving_window is None else self.moving_window.total_shift,
        )
