"""Finite-difference stencil primitives on ghosted regular grids.

All solver fields are stored with one ghost layer per spatial axis
(sufficient for the D3C7 and D3C19 stencils of the paper — the 19-point
access pattern of the anti-trapping divergence arises from tangential
gradients evaluated at cell faces, which these primitives express as
``face average of centered gradients``).

Conventions
-----------
* Arrays may carry any number of *leading* component axes (phase index,
  solute index, vector component); the trailing ``dim`` axes are spatial.
* ``g`` is the ghost width (default 1).  "Interior" means the region with
  all ghost layers stripped.
* Face arrays along spatial axis ``k`` have extent ``n_k + 1`` along that
  axis (every face between consecutive cells, including the two faces
  adjacent to the ghost cells) and interior extent along all other axes.
  :func:`div_faces` turns per-axis face fluxes into an interior-shaped
  divergence.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interior",
    "interior_slices",
    "shifted",
    "grad",
    "laplacian",
    "face_diff",
    "face_avg",
    "face_tangential_grad",
    "face_grad",
    "div_faces",
]


def _full(a_ndim: int) -> list[slice]:
    return [slice(None)] * a_ndim


def interior_slices(a_ndim: int, dim: int, g: int = 1) -> tuple[slice, ...]:
    """Slice tuple selecting the interior of the trailing *dim* axes."""
    sl = _full(a_ndim)
    for k in range(dim):
        sl[a_ndim - dim + k] = slice(g, -g)
    return tuple(sl)


def interior(a: np.ndarray, dim: int, g: int = 1) -> np.ndarray:
    """View of *a* with all ghost layers stripped from the spatial axes."""
    return a[interior_slices(a.ndim, dim, g)]


def shifted(a: np.ndarray, dim: int, k: int, s: int, g: int = 1) -> np.ndarray:
    """Interior view shifted by *s* cells along spatial axis *k*.

    ``shifted(a, dim, k, +1)`` is "the +k neighbour of every interior
    cell"; shifts up to the ghost width are valid.
    """
    if abs(s) > g:
        raise ValueError(f"shift {s} exceeds ghost width {g}")
    sl = list(interior_slices(a.ndim, dim, g))
    ax = a.ndim - dim + k
    stop = -g + s
    sl[ax] = slice(g + s, stop if stop != 0 else None)
    return a[tuple(sl)]


def _axis(a: np.ndarray, dim: int, k: int) -> int:
    if not 0 <= k < dim:
        raise ValueError(f"spatial axis {k} out of range for dim={dim}")
    return a.ndim - dim + k


def grad(a: np.ndarray, dim: int, dx: float, g: int = 1) -> np.ndarray:
    """Centered gradient at interior cells.

    Returns an array of shape ``(dim,) + lead + interior_spatial`` where
    ``lead`` are the leading component axes of *a*.
    """
    comps = []
    for k in range(dim):
        ax = _axis(a, dim, k)
        lo = list(interior_slices(a.ndim, dim, g))
        hi = list(interior_slices(a.ndim, dim, g))
        lo[ax] = slice(g - 1, -g - 1)
        hi[ax] = slice(g + 1, None if g == 1 else -(g - 1))
        comps.append((a[tuple(hi)] - a[tuple(lo)]) / (2.0 * dx))
    return np.stack(comps)


def laplacian(a: np.ndarray, dim: int, dx: float, g: int = 1) -> np.ndarray:
    """Standard (2*dim+1)-point Laplacian at interior cells (D3C7 / D2C5)."""
    centre = interior(a, dim, g)
    out = (-2.0 * dim) * centre
    for k in range(dim):
        ax = _axis(a, dim, k)
        for shift in (-1, 1):
            sl = list(interior_slices(a.ndim, dim, g))
            sl[ax] = slice(g + shift, -g + shift if -g + shift != 0 else None)
            out = out + a[tuple(sl)]
    return out / (dx * dx)


def face_diff(a: np.ndarray, dim: int, k: int, dx: float, g: int = 1) -> np.ndarray:
    """Normal derivative at the faces along spatial axis *k*.

    ``(a[i+1] - a[i]) / dx`` for every pair of adjacent cells along *k*
    (including ghost-interior faces); other spatial axes interior.
    """
    ax = _axis(a, dim, k)
    lo = _full(a.ndim)
    hi = _full(a.ndim)
    lo[ax] = slice(g - 1, -g)
    hi[ax] = slice(g, None if g == 1 else -(g - 1))
    for j in range(dim):
        if j != k:
            axj = _axis(a, dim, j)
            lo[axj] = slice(g, -g)
            hi[axj] = slice(g, -g)
    return (a[tuple(hi)] - a[tuple(lo)]) / dx


def face_avg(a: np.ndarray, dim: int, k: int, g: int = 1) -> np.ndarray:
    """Arithmetic mean at the faces along spatial axis *k* (same layout
    as :func:`face_diff`)."""
    ax = _axis(a, dim, k)
    lo = _full(a.ndim)
    hi = _full(a.ndim)
    lo[ax] = slice(g - 1, -g)
    hi[ax] = slice(g, None if g == 1 else -(g - 1))
    for j in range(dim):
        if j != k:
            axj = _axis(a, dim, j)
            lo[axj] = slice(g, -g)
            hi[axj] = slice(g, -g)
    return 0.5 * (a[tuple(hi)] + a[tuple(lo)])


def face_tangential_grad(
    a: np.ndarray, dim: int, k: int, t: int, dx: float, g: int = 1
) -> np.ndarray:
    """Tangential derivative ``d a / d x_t`` at the faces along axis *k*.

    Computed as the face average (along *k*) of centered differences along
    the tangential axis *t* — this is what widens the mu-update stencil to
    D3C19 in the paper (edge-diagonal neighbours are touched).
    Requires ``t != k``.
    """
    if t == k:
        raise ValueError("tangential axis must differ from the face axis")
    ax_k = _axis(a, dim, k)
    ax_t = _axis(a, dim, t)
    lo = _full(a.ndim)
    hi = _full(a.ndim)
    # centered difference along t, full extent along k, interior elsewhere
    lo[ax_t] = slice(g - 1, -g - 1)
    hi[ax_t] = slice(g + 1, None if g == 1 else -(g - 1))
    for j in range(dim):
        if j not in (k, t):
            axj = _axis(a, dim, j)
            lo[axj] = slice(g, -g)
            hi[axj] = slice(g, -g)
    cgrad = (a[tuple(hi)] - a[tuple(lo)]) / (2.0 * dx)
    # average onto the faces along k (axis position unchanged: slicing
    # preserved axis order)
    lo2 = _full(cgrad.ndim)
    hi2 = _full(cgrad.ndim)
    lo2[ax_k] = slice(0, -1)
    hi2[ax_k] = slice(1, None)
    return 0.5 * (cgrad[tuple(hi2)] + cgrad[tuple(lo2)])


def face_grad(a: np.ndarray, dim: int, k: int, dx: float, g: int = 1) -> np.ndarray:
    """Full gradient vector at the faces along axis *k*.

    Component *k* is the exact normal difference, tangential components are
    face-averaged centered differences.  Returns shape
    ``(dim,) + lead + face_spatial``.
    """
    comps = []
    for t in range(dim):
        if t == k:
            comps.append(face_diff(a, dim, k, dx, g))
        else:
            comps.append(face_tangential_grad(a, dim, k, t, dx, g))
    return np.stack(comps)


def div_faces(fluxes, dim: int, dx: float) -> np.ndarray:
    """Divergence at interior cells from per-axis face-flux arrays.

    *fluxes* is a sequence of ``dim`` arrays in the :func:`face_diff`
    layout (axis *k* has extent ``n_k + 1``).  The result is
    interior-shaped: ``div = sum_k (F_k[i] - F_k[i-1]) / dx``.
    """
    if len(fluxes) != dim:
        raise ValueError(f"expected {dim} flux arrays, got {len(fluxes)}")
    out = None
    for k, f in enumerate(fluxes):
        ax = f.ndim - dim + k
        hi = _full(f.ndim)
        lo = _full(f.ndim)
        hi[ax] = slice(1, None)
        lo[ax] = slice(0, -1)
        term = (f[tuple(hi)] - f[tuple(lo)]) / dx
        out = term if out is None else out + term
    return out
