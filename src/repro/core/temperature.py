"""Frozen-temperature ansatz for directional solidification.

The paper imprints an analytical temperature field: at time ``t`` the
temperature is constant in slices orthogonal to the solidification
direction (the last spatial axis, called ``z``) and moves with the pulling
velocity ``v`` along the gradient ``G``:

.. math::

    T(z, t) = T_{ref} + G \\, (z \\, dx - z_0 - v t)

This is what makes the ``T(z)`` slice-precomputation optimization of
Sec. 3.3 possible: every temperature-dependent model quantity is a function
of the slice index only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrozenTemperature:
    """Analytic moving temperature gradient.

    Parameters
    ----------
    t_ref:
        Temperature at the reference position ``z0`` at ``t = 0``
        (typically the eutectic temperature).
    gradient:
        Thermal gradient ``G`` in K per physical length unit.
    velocity:
        Pulling velocity ``v`` of the isotherms (positive moves the
        ``T = t_ref`` isotherm towards larger ``z``).
    z0:
        Physical ``z`` position of the reference isotherm at ``t = 0``.
    dx:
        Grid spacing used to convert cell indices to physical positions;
        cell centres sit at ``(k + 0.5) dx``.
    """

    t_ref: float
    gradient: float
    velocity: float
    z0: float
    dx: float = 1.0

    def at_time(self, t: float, nz: int, z_offset: int = 0) -> np.ndarray:
        """Temperature of each of *nz* slices at time *t*.

        *z_offset* shifts the cell indices — used by the moving-window
        technique where the window origin travels with the front.
        """
        z = (np.arange(nz, dtype=float) + z_offset + 0.5) * self.dx
        return self.t_ref + self.gradient * (z - self.z0 - self.velocity * t)

    def at_position(self, t: float, z_index: float, z_offset: int = 0) -> float:
        """Temperature of a single slice (fractional indices allowed)."""
        z = (float(z_index) + z_offset + 0.5) * self.dx
        return self.t_ref + self.gradient * (z - self.z0 - self.velocity * t)

    @property
    def dT_dt(self) -> float:
        """Time derivative ``dT/dt = -G v`` (uniform in space)."""
        return -self.gradient * self.velocity

    def isotherm_position(self, t: float, temperature: float | None = None) -> float:
        """Physical ``z`` of the given isotherm (default: ``t_ref``)."""
        temperature = self.t_ref if temperature is None else temperature
        return self.z0 + self.velocity * t + (temperature - self.t_ref) / self.gradient


@dataclass(frozen=True)
class ConstantTemperature:
    """Uniform, steady temperature — isothermal solidification studies."""

    value: float

    def at_time(self, t: float, nz: int, z_offset: int = 0) -> np.ndarray:
        """Constant profile of length *nz* (interface-compatible)."""
        return np.full(nz, self.value)

    def at_position(self, t: float, z_index: float, z_offset: int = 0) -> float:
        """Constant value (interface-compatible)."""
        return self.value

    @property
    def dT_dt(self) -> float:
        """No temporal drift."""
        return 0.0
