"""Distributed (multi-rank) solver: Algorithms 1 and 2 across blocks.

Runs the same kernels as the single-block driver, with per-rank blocks,
ghost-layer exchange over the simulated MPI runtime, and the optional
communication-hiding schedule (mu exchange hidden behind the phi sweep,
phi exchange hidden behind the split local mu sweep).
"""

from repro.distributed.exchange import exchange_ghosts
from repro.distributed.solver import DistributedSimulation

__all__ = ["exchange_ghosts", "DistributedSimulation"]
