"""Ghost-layer exchange between rank-local blocks.

The exchange proceeds axis by axis; each slab message spans the *full
ghosted extent* of the previously exchanged axes, so edge and corner ghost
cells arrive without dedicated diagonal messages — the standard
dimensional-ordering trick, required because the mu sweep reads the D3C19
(edge-diagonal) neighbourhood.

At non-periodic domain edges the axis has no neighbour; the caller's
boundary handler fills those ghosts instead.

Both routines post every receive *before* the matching sends (Algorithm
2's discipline).  The thread backend would tolerate any ordering because
its mailboxes buffer unboundedly, but the process backend bounds
in-flight payloads per channel, and there posting receives first is what
guarantees progress (see :mod:`repro.simmpi.transport`).
"""

from __future__ import annotations

import time

import numpy as np

from repro.grid.boundary import BoundarySpec
from repro.simmpi.cart import CartComm

__all__ = ["exchange_ghosts", "exchange_block_ghosts", "ExchangeTimer"]


class ExchangeTimer:
    """Accumulates wall time and byte counts spent in ghost exchange.

    Beyond the plain totals, per-call extrema are tracked so a timing
    report can show jitter (a late neighbour, an injected delay fault)
    rather than only the mean; an optional
    :class:`repro.telemetry.timing.TimingTree` receives the same
    measured duration under *scope*, keeping tree and timer in exact
    agreement.
    """

    def __init__(self, tree=None, scope: str = "exchange") -> None:
        self.seconds = 0.0
        self.bytes = 0
        self.messages = 0
        self.calls = 0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self.tree = tree
        self.scope = scope

    def add(self, seconds: float, nbytes: int, messages: int) -> None:
        self.seconds += seconds
        self.bytes += nbytes
        self.messages += messages
        self.calls += 1
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if self.tree is not None:
            self.tree.record(
                self.scope, seconds,
                span_args={"bytes": nbytes, "messages": messages},
            )

    def stats(self) -> dict:
        """Structured dump (count/total/avg/min/max seconds, bytes, msgs)."""
        return {
            "calls": self.calls,
            "total": self.seconds,
            "avg": self.seconds / self.calls if self.calls else 0.0,
            "min": self.min_seconds if self.calls else 0.0,
            "max": self.max_seconds,
            "bytes": self.bytes,
            "messages": self.messages,
        }


def _slab(arr: np.ndarray, dim: int, k: int, which: str, g: int = 1):
    """Slice tuple of an exchange slab along spatial axis *k*.

    ``which`` is one of ``send_lo`` / ``send_hi`` (interior edges) or
    ``recv_lo`` / ``recv_hi`` (ghost layers).  All other axes keep their
    full ghosted extent.
    """
    ax = arr.ndim - dim + k
    sl = [slice(None)] * arr.ndim
    sl[ax] = {
        "send_lo": slice(g, 2 * g),
        "send_hi": slice(-2 * g, -g),
        "recv_lo": slice(0, g),
        "recv_hi": slice(-g, None),
    }[which]
    return tuple(sl)


def _validate_ghost(arr: np.ndarray, dim: int, g: int) -> None:
    """Reject ghost widths the slab geometry cannot express.

    The ``send_lo`` slab is ``slice(g, 2g)``, so every exchanged axis
    needs at least *g* interior cells — a ghosted extent below ``3g``
    would silently send ghost (or wrapped-around) cells as if they were
    interior, which is exactly the corruption this check turns into an
    error.
    """
    if g < 1:
        raise ValueError(f"ghost width must be >= 1, got {g}")
    for k in range(dim):
        extent = arr.shape[arr.ndim - dim + k]
        if extent < 3 * g:
            raise ValueError(
                f"ghost width {g} unsupported: axis {k} has ghosted "
                f"extent {extent} < 3*{g} (fewer interior cells than "
                "ghost layers)"
            )


def _recv_completions(comm):
    """The receive-posting/completion pair of one exchange.

    Prefers ``irecv_into`` (both simmpi backends): the payload lands in
    the ghost slice in a single copy — on the process backend straight
    out of the staged shared-memory segment, eliminating the legacy
    materialize-then-assign double copy.  Falls back to
    ``irecv``/``wait`` + slab assignment for foreign communicators.
    """
    irecv_into = getattr(comm, "irecv_into", None)
    if irecv_into is not None:
        return (lambda view, source, tag: irecv_into(view, source, tag),
                lambda _view, req: req.wait())

    def post(view, source, tag):
        return comm.irecv(source, tag=tag)

    def complete(view, req):
        view[...] = req.wait()

    return post, complete


def exchange_ghosts(
    cart: CartComm,
    arr: np.ndarray,
    dim: int,
    spec: BoundarySpec,
    *,
    tag_base: int = 0,
    timer: ExchangeTimer | None = None,
    ghost: int = 1,
    halo=None,
) -> None:
    """Fill all ghost layers of *arr* from neighbours or boundaries.

    *spec* provides the handlers for non-periodic domain edges; periodic
    axes wrap through the cartesian topology (which may be a
    self-neighbour when the axis has a single rank).  *ghost* is the
    field's ghost-layer width (it must match the array's allocation).
    *halo* — a :class:`repro.distributed.halo.CartHaloRegistry` — routes
    the axis rounds through persistent registered channels instead of
    staged per-slab messages (one notify per neighbour per direction,
    no acks); results are bitwise identical.
    """
    comm = cart.comm
    g = int(ghost)
    _validate_ghost(arr, dim, g)
    t0 = time.perf_counter()
    nbytes = 0
    nmsg = 0
    post, complete = _recv_completions(comm) if halo is None else (None, None)
    for k in range(dim):
        lo_rank, hi_rank = cart.shift(k, 1)  # (source=low side, dest=high side)
        if halo is not None:
            b, m = halo.exchange_axis(arr, k, g)
            nbytes += b
            nmsg += m
        else:
            tag_lo = tag_base + 2 * k
            tag_hi = tag_base + 2 * k + 1
            # Post receives BEFORE sending (Algorithm 2 discipline).  The
            # thread backend buffers unboundedly so ordering is cosmetic
            # there, but under the process backend's bounded channels a
            # blocked sender only makes progress by completing the *peer's*
            # posted receives — send-first would genuinely deadlock once a
            # slab exceeds the channel capacity.
            reqs = []
            if lo_rank is not None:
                view = arr[_slab(arr, dim, k, "recv_lo", g)]
                reqs.append((view, post(view, lo_rank, tag_hi)))
            if hi_rank is not None:
                view = arr[_slab(arr, dim, k, "recv_hi", g)]
                reqs.append((view, post(view, hi_rank, tag_lo)))
            # Send the (possibly strided) slab views directly: both backends
            # snapshot the payload at send time, so an extra
            # ascontiguousarray here would just double the copies.
            if hi_rank is not None:
                payload = arr[_slab(arr, dim, k, "send_hi", g)]
                comm.send(payload, hi_rank, tag=tag_hi)
                nbytes += payload.nbytes
                nmsg += 1
            if lo_rank is not None:
                payload = arr[_slab(arr, dim, k, "send_lo", g)]
                comm.send(payload, lo_rank, tag=tag_lo)
                nbytes += payload.nbytes
                nmsg += 1
            for view, req in reqs:
                complete(view, req)
        # non-periodic domain edges: boundary handlers
        lo_h, hi_h = spec.handlers[k]
        if lo_rank is None:
            lo_h.apply(arr, dim, k, 0)
        if hi_rank is None:
            hi_h.apply(arr, dim, k, 1)
    if timer is not None:
        timer.add(time.perf_counter() - t0, nbytes, nmsg)


def _owner_of(owner: list[int], block_id: int) -> int:
    return owner[block_id]


def exchange_block_ghosts(
    comm,
    forest,
    owner: list[int],
    arrays: dict[int, np.ndarray],
    dim: int,
    spec: BoundarySpec,
    *,
    tag_base: int = 1000,
    timer: ExchangeTimer | None = None,
    ghost: int = 1,
    halo=None,
) -> None:
    """Ghost exchange for several blocks per rank (waLBerla style).

    *arrays* maps this rank's block ids to their ghosted field arrays.
    Neighbouring blocks on the same rank exchange by direct memory copy;
    remote neighbours by messages tagged with the *receiving* block id, so
    any number of blocks per rank coexist on one communicator.  Axes are
    processed in dimensional order across all local blocks, keeping edge
    and corner ghosts consistent.

    *ghost* is the fields' ghost-layer width.  *halo* — a
    :class:`repro.distributed.halo.BlockHaloRegistry` — takes over the
    whole exchange through persistent registered channels: all slabs
    headed to one neighbour in one axis direction travel as a single
    packed buffer plus one notify, no per-message acks or segment
    checkouts, bitwise-identical results.
    """
    g = int(ghost)
    for arr in arrays.values():
        _validate_ghost(arr, dim, g)
    if halo is not None:
        halo.exchange(arrays, spec, ghost=g, timer=timer)
        return
    t0 = time.perf_counter()
    nbytes = 0
    nmsg = 0
    rank = comm.rank
    post, complete = _recv_completions(comm)
    for k in range(dim):
        # 1) post all remote receives for this axis first — required for
        #    deadlock freedom under the process backend's bounded
        #    channels (a blocked sender completes the peer's posted
        #    receives while waiting for a free slot).
        reqs = []
        for bid, arr in arrays.items():
            block = forest.blocks[bid]
            for side, recv_which in ((0, "recv_lo"), (1, "recv_hi")):
                nb = forest.neighbor(block, k, side)
                if nb is None or _owner_of(owner, nb.id) == rank:
                    continue
                tag = tag_base + (bid * dim + k) * 2 + side
                view = arr[_slab(arr, dim, k, recv_which, g)]
                reqs.append((
                    view, post(view, _owner_of(owner, nb.id), tag),
                ))
        # 2) post all remote sends (slab views; both backends snapshot
        #    at send time, so no ascontiguousarray copy is needed)
        for bid, arr in arrays.items():
            block = forest.blocks[bid]
            for side, send_which, dest_side in (
                (1, "send_hi", 0),  # my high edge fills neighbour's low ghost
                (0, "send_lo", 1),
            ):
                nb = forest.neighbor(block, k, side)
                if nb is None:
                    continue
                dest_rank = _owner_of(owner, nb.id)
                if dest_rank == rank:
                    continue  # handled by the local-copy pass
                payload = arr[_slab(arr, dim, k, send_which, g)]
                tag = tag_base + (nb.id * dim + k) * 2 + dest_side
                comm.send(payload, dest_rank, tag=tag)
                nbytes += payload.nbytes
                nmsg += 1
        # 3) local copies between same-rank neighbours
        for bid, arr in arrays.items():
            block = forest.blocks[bid]
            for side, recv_which in ((0, "recv_lo"), (1, "recv_hi")):
                nb = forest.neighbor(block, k, side)
                if nb is None or _owner_of(owner, nb.id) != rank:
                    continue
                src = arrays[nb.id]
                send_which = "send_hi" if side == 0 else "send_lo"
                arr[_slab(arr, dim, k, recv_which, g)] = src[
                    _slab(src, dim, k, send_which, g)
                ]
        # 4) complete the posted receives for this axis
        for view, req in reqs:
            complete(view, req)
        # 5) boundary handlers at non-periodic domain edges
        lo_h, hi_h = spec.handlers[k]
        for bid, arr in arrays.items():
            block = forest.blocks[bid]
            if forest.neighbor(block, k, 0) is None:
                lo_h.apply(arr, dim, k, 0)
            if forest.neighbor(block, k, 1) is None:
                hi_h.apply(arr, dim, k, 1)
    if timer is not None:
        timer.add(time.perf_counter() - t0, nbytes, nmsg)
