"""Persistent registered halo channels over the simmpi backends.

The legacy exchange path pays, per slab message and per step, a staging
segment checkout, a pickle or ``copyto`` snapshot, a control-pipe round
trip and an ack (process backend), plus a receive-side copy into the
ghost slice.  This module moves all of that to *setup time*, mirroring
waLBerla's preregistered communication buffers and the MPI
persistent-request idiom the paper's production code relies on: at
topology construction every rank registers one double-buffered channel
per (neighbour, axis, direction) — a shared-memory segment on the
process backend, a plain shared ndarray on the thread backend — sized
once from the ghosted field shapes and reused every step.

A steady-state exchange round then packs the slab views of *all* fields
and blocks headed to one neighbour in one axis direction into the
registered buffer (vectorized, contiguous), sends **one** tiny notify
message carrying a sequence number, and unpacks on the receiver straight
into the ghost slices: ``2 * dim * n_fields`` staged messages plus acks
per step collapse into one notification per neighbour per axis
direction, with zero acks and zero segment checkouts.

Slot reuse without acks is safe because exchange rounds are lockstep —
see :class:`repro.simmpi.comm.HaloSendChannel` for the inductive
argument; the sequence number travelling in every notify turns any
violation of that discipline into a loud ``RuntimeError`` instead of a
silent stale-data unpack.

Both sides derive channel ids, capacities and pack plans
deterministically from the shared topology (block forest + ownership, or
cartesian grid), so registration needs no negotiation: every rank first
announces all its send channels (non-blocking) and then accepts all its
receive channels (blocking), which is deadlock-free in any order.

``REPRO_SIMMPI_HALO_CHANNELS=0`` opts out (for A/B benchmarking against
the legacy staged path); the default is on.
"""

from __future__ import annotations

import os

import numpy as np

from repro.distributed.exchange import _slab

__all__ = [
    "BlockHaloRegistry",
    "CartHaloRegistry",
    "halo_channels_enabled",
]


def halo_channels_enabled(override: bool | None = None) -> bool:
    """Resolve the halo-channel switch (param beats env, default on)."""
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_SIMMPI_HALO_CHANNELS", "1") not in ("", "0")


def _slab_elements(n_comps: int, shape, axis: int, g: int) -> int:
    """Element count of one exchange slab of a block.

    The slab spans *g* cells along *axis* and the full ghosted extent of
    every other spatial axis (dimensional-ordering exchange), times the
    leading component axis.
    """
    n = int(n_comps) * int(g)
    for i, s in enumerate(shape):
        if i != axis:
            n *= int(s) + 2 * int(g)
    return n


def _capacity(pairs, shapes, axis: int, streams) -> int:
    """Channel capacity in elements: the largest per-round packed size
    over all field streams sharing the channel."""
    best = 0
    for n_comps, g in streams:
        total = sum(
            _slab_elements(n_comps, shapes[bid], axis, g)
            for bid, _nb in pairs
        )
        best = max(best, total)
    return best


def _pack(slot: np.ndarray, views) -> int:
    """Pack slab *views* contiguously into *slot*; returns elements used."""
    offset = 0
    for view in views:
        n = view.size
        np.copyto(slot[offset:offset + n].reshape(view.shape), view)
        offset += n
    return offset


def _unpack(slot: np.ndarray, views) -> int:
    """Scatter *slot* back into slab *views*; returns elements consumed."""
    offset = 0
    for view in views:
        n = view.size
        np.copyto(view, slot[offset:offset + n].reshape(view.shape))
        offset += n
    return offset


class BlockHaloRegistry:
    """Halo channels of a block-forest decomposition (waLBerla style).

    One send and/or receive channel per (peer rank, axis, direction),
    shared by every field stream and every block pair crossing that
    rank boundary; *streams* — ``[(n_components, ghost_width), ...]`` —
    sizes the channels once for the largest stream.  Construction is
    collective over the communicator.

    :meth:`exchange` is the drop-in fast path of
    :func:`repro.distributed.exchange.exchange_block_ghosts`: identical
    dimensional ordering, identical local-copy and boundary handling,
    bitwise-identical results — only the remote transport differs.
    """

    def __init__(self, comm, forest, owner, dim: int, streams,
                 dtype=np.float64) -> None:
        self.comm = comm
        self.forest = forest
        self.owner = list(owner)
        self.dim = int(dim)
        self.streams = [(int(c), int(g)) for c, g in streams]
        if not self.streams:
            raise ValueError("halo registry needs at least one field stream")
        rank = comm.rank
        shapes = {b.id: tuple(b.shape) for b in forest.blocks}

        # Deterministic plans, derived identically on both endpoints:
        # pairs are (sender block id, receiver block id), sorted by the
        # sender's block id so packer and unpacker agree on slot layout.
        send_plans: dict[tuple, list] = {}
        recv_plans: dict[tuple, list] = {}
        self._local: dict[int, list] = {k: [] for k in range(self.dim)}
        self._edges: dict[int, list] = {k: [] for k in range(self.dim)}
        for axis in range(self.dim):
            for b in forest.blocks:
                mine = self.owner[b.id] == rank
                for side in (0, 1):
                    nb = forest.neighbor(b, axis, side)
                    if nb is None:
                        if mine:
                            self._edges[axis].append((b.id, side))
                        continue
                    nb_rank = self.owner[nb.id]
                    if mine and nb_rank == rank:
                        # Same-rank neighbour (possibly the block itself
                        # on a single-block periodic axis): direct copy,
                        # recorded once per receiving side.
                        self._local[axis].append((b.id, nb.id, side))
                        continue
                    if mine and nb_rank != rank:
                        key = (nb_rank, axis, side)
                        send_plans.setdefault(key, []).append((b.id, nb.id))
                    elif not mine and nb_rank == rank:
                        key = (self.owner[b.id], axis, side)
                        recv_plans.setdefault(key, []).append((b.id, nb.id))

        # All send endpoints announce first (non-blocking), then every
        # receive endpoint blocks on its registration message — no
        # ordering constraint between ranks, hence no deadlock.
        self._send: dict[tuple, object] = {}
        self._recv: dict[tuple, object] = {}
        self._send_plans = send_plans
        self._recv_plans = recv_plans
        for key in sorted(send_plans):
            peer, axis, side = key
            cap = _capacity(send_plans[key], shapes, axis, self.streams)
            self._send[key] = comm.register_halo(
                peer, axis * 2 + side, cap, dtype
            )
        for key in sorted(recv_plans):
            peer, axis, side = key
            self._recv[key] = comm.accept_halo(peer, axis * 2 + side)

        # Per-axis channel orderings of the steady-state loop.
        self._send_by_axis = {
            k: [(key, self._send[key]) for key in sorted(self._send)
                if key[1] == k]
            for k in range(self.dim)
        }
        self._recv_by_axis = {
            k: [(key, self._recv[key]) for key in sorted(self._recv)
                if key[1] == k]
            for k in range(self.dim)
        }

    @property
    def n_channels(self) -> int:
        """Registered channel endpoints on this rank (send + recv)."""
        return len(self._send) + len(self._recv)

    def exchange(self, arrays: dict[int, np.ndarray], spec, *,
                 ghost: int = 1, timer=None) -> None:
        """Fill every ghost layer of *arrays* through the registered
        channels; same contract as ``exchange_block_ghosts``."""
        import time as _time

        t0 = _time.perf_counter()
        g = int(ghost)
        dim = self.dim
        itemsize = next(iter(arrays.values())).itemsize if arrays else 8
        nbytes = 0
        nmsg = 0
        for k in range(dim):
            # 1) pack + notify every outgoing channel of this axis (the
            #    snapshot happens here, exactly where the legacy path
            #    snapshots its sends, so results match bitwise).
            for (peer, axis, side), ch in self._send_by_axis[k]:
                which = "send_hi" if side == 1 else "send_lo"
                used = _pack(ch.slot(), (
                    arrays[bid][_slab(arrays[bid], dim, k, which, g)]
                    for bid, _nb in self._send_plans[(peer, axis, side)]
                ))
                ch.notify(used)
                nbytes += used * itemsize
                nmsg += 1
            # 2) local copies between same-rank neighbours
            for bid, nb_id, side in self._local[k]:
                arr = arrays[bid]
                src = arrays[nb_id]
                recv_which = "recv_lo" if side == 0 else "recv_hi"
                send_which = "send_hi" if side == 0 else "send_lo"
                arr[_slab(arr, dim, k, recv_which, g)] = src[
                    _slab(src, dim, k, send_which, g)
                ]
            # 3) wait for every incoming channel, unpack straight into
            #    the ghost slices (single copy out of the slot).
            for (peer, axis, side), ch in self._recv_by_axis[k]:
                slot = ch.wait()
                # The sender's high edge fills my low ghost and vice
                # versa; *side* is the sender's.
                which = "recv_lo" if side == 1 else "recv_hi"
                _unpack(slot, (
                    arrays[nb_id][_slab(arrays[nb_id], dim, k, which, g)]
                    for _bid, nb_id in self._recv_plans[(peer, axis, side)]
                ))
            # 4) boundary handlers at non-periodic domain edges
            lo_h, hi_h = spec.handlers[k]
            for bid, side in self._edges[k]:
                (lo_h if side == 0 else hi_h).apply(arrays[bid], dim, k, side)
        if timer is not None:
            timer.add(_time.perf_counter() - t0, nbytes, nmsg)


class CartHaloRegistry:
    """Halo channels of a one-block-per-rank cartesian decomposition.

    The fast-path twin of
    :func:`repro.distributed.exchange.exchange_ghosts`: one channel per
    (neighbour, axis, direction) derived from ``cart.shift``, with
    self-neighbours (single-rank periodic axes) handled by direct
    interior-to-ghost copies.  *spatial_shape* is the local interior
    cell count, *streams* the ``(n_components, ghost)`` field streams
    sharing the channels.
    """

    def __init__(self, cart, dim: int, spatial_shape, streams,
                 dtype=np.float64) -> None:
        self.cart = cart
        self.comm = cart.comm
        self.dim = int(dim)
        self.shape = tuple(int(s) for s in spatial_shape)
        self.streams = [(int(c), int(g)) for c, g in streams]
        if not self.streams:
            raise ValueError("halo registry needs at least one field stream")
        rank = self.comm.rank
        # links[k] = (lo_rank, hi_rank); None at non-periodic edges.
        self._links = [cart.shift(k, 1) for k in range(self.dim)]
        sends = []   # (axis, side, dest)
        recvs = []   # (axis, side_of_sender, source)
        for k, (lo, hi) in enumerate(self._links):
            if hi is not None and hi != rank:
                sends.append((k, 1, hi))
            if lo is not None and lo != rank:
                sends.append((k, 0, lo))
            # My low ghost is filled by the low neighbour's high edge.
            if lo is not None and lo != rank:
                recvs.append((k, 1, lo))
            if hi is not None and hi != rank:
                recvs.append((k, 0, hi))
        self._send: dict[tuple, object] = {}
        self._recv: dict[tuple, object] = {}
        for k, side, dest in sorted(sends):
            cap = max(
                _slab_elements(c, self.shape, k, g) for c, g in self.streams
            )
            self._send[(k, side)] = self.comm.register_halo(
                dest, k * 2 + side, cap, dtype
            )
        for k, side, source in sorted(recvs):
            self._recv[(k, side)] = self.comm.accept_halo(
                source, k * 2 + side
            )

    @property
    def n_channels(self) -> int:
        """Registered channel endpoints on this rank (send + recv)."""
        return len(self._send) + len(self._recv)

    def exchange_axis(self, arr: np.ndarray, k: int,
                      g: int = 1) -> tuple[int, int]:
        """One axis round over the channels; returns ``(nbytes, nmsg)``.

        Boundary handling at non-periodic edges stays with the caller
        (:func:`exchange_ghosts`), which knows the boundary spec.
        """
        rank = self.comm.rank
        lo, hi = self._links[k]
        nbytes = 0
        nmsg = 0
        dim = self.dim
        for side, which in ((1, "send_hi"), (0, "send_lo")):
            ch = self._send.get((k, side))
            if ch is None:
                continue
            used = _pack(ch.slot(), (arr[_slab(arr, dim, k, which, g)],))
            ch.notify(used)
            nbytes += used * arr.itemsize
            nmsg += 1
        if lo == rank and hi == rank:
            # Single-rank periodic axis: wrap by direct copy.
            arr[_slab(arr, dim, k, "recv_lo", g)] = arr[
                _slab(arr, dim, k, "send_hi", g)
            ]
            arr[_slab(arr, dim, k, "recv_hi", g)] = arr[
                _slab(arr, dim, k, "send_lo", g)
            ]
        for side, which in ((1, "recv_lo"), (0, "recv_hi")):
            ch = self._recv.get((k, side))
            if ch is None:
                continue
            _unpack(ch.wait(), (arr[_slab(arr, dim, k, which, g)],))
        return nbytes, nmsg
