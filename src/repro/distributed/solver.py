"""Distributed phase-field driver (Algorithms 1 & 2 over simulated ranks).

The domain is split by a :class:`BlockForest`; blocks are assigned to
simulated MPI ranks by a load-balancing strategy (one block per rank by
default, several per rank like waLBerla when ``n_ranks`` is smaller).
Ghost layers travel through
:func:`repro.distributed.exchange.exchange_block_ghosts` — same-rank
neighbours copy directly, remote neighbours exchange messages.

Two schedules are provided, mirroring the paper:

* ``overlap=False`` — Algorithm 1: sweep, exchange, sweep, exchange.
* ``overlap=True`` — Algorithm 2: the mu ghost exchange is deferred behind
  the phi sweep (the phi sweep only needs local mu values) and the phi
  exchange behind the *local* part of the split mu sweep; the neighbour
  part (anti-trapping divergence) runs after the phi ghosts arrived.

Both schedules produce identical fields (validated by the integration
tests), as the paper notes: "the order of communication and boundary
handling routines can also be interchanged without altering the results".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.kernels.optimized import (
    mu_step_local_impl,
    mu_step_neighbor_impl,
)
from repro.core.parameters import PhaseFieldParameters
from repro.core.temperature import ConstantTemperature, FrozenTemperature
from repro.distributed.exchange import ExchangeTimer, exchange_block_ghosts
from repro.grid.balance import assign_blocks
from repro.grid.blockforest import BlockForest
from repro.grid.boundary import BoundarySpec, Dirichlet, Neumann
from repro.grid.field import Field
from repro.simmpi.runtime import run_spmd
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["DistributedSimulation", "DistributedResult", "RankStats"]

_KERNEL_FLAGS = {
    "fused": dict(full_field_t=True, buffered=False, shortcuts=False),
    "tz": dict(full_field_t=False, buffered=False, shortcuts=False),
    "buffered": dict(full_field_t=False, buffered=True, shortcuts=False),
    "shortcut": dict(full_field_t=False, buffered=True, shortcuts=True),
}


@dataclass
class RankStats:
    """Per-rank communication accounting of one run."""

    rank: int
    comm_phi_seconds: float
    comm_mu_seconds: float
    comm_bytes: int
    comm_messages: int
    n_blocks: int = 1


@dataclass
class DistributedResult:
    """Gathered outcome of a distributed run."""

    phi: np.ndarray
    mu: np.ndarray
    stats: list[RankStats] = field(default_factory=list)


class DistributedSimulation:
    """SPMD phase-field run over a block partition.

    Parameters
    ----------
    shape:
        Global interior cell counts (growth axis last).
    blocks_per_axis:
        Block grid; every axis extent must divide the domain.
    n_ranks:
        Simulated MPI ranks; defaults to one rank per block.  With fewer
        ranks, blocks are distributed by *balance_strategy* and same-rank
        neighbours exchange ghosts by direct copy.
    balance_strategy:
        Block-to-rank assignment (see :func:`repro.grid.balance.assign_blocks`).
    kernel:
        Optimization rung (``overlap=True`` requires a rung with a split
        mu sweep, i.e. any optimized rung).
    overlap:
        Use the Algorithm 2 communication-hiding schedule.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        blocks_per_axis: tuple[int, ...],
        system: TernaryEutecticSystem | None = None,
        params: PhaseFieldParameters | None = None,
        temperature: FrozenTemperature | ConstantTemperature | None = None,
        kernel: str = "buffered",
        overlap: bool = False,
        phi_bc: BoundarySpec | None = None,
        mu_bc: BoundarySpec | None = None,
        n_ranks: int | None = None,
        balance_strategy: str = "contiguous",
    ):
        self.shape = tuple(shape)
        self.dim = len(shape)
        self.system = system if system is not None else TernaryEutecticSystem()
        self.params = (
            params
            if params is not None
            else PhaseFieldParameters.for_system(self.system, dim=self.dim)
        )
        if overlap and kernel not in _KERNEL_FLAGS:
            raise ValueError(
                f"kernel {kernel!r} has no split mu sweep; choose one of "
                f"{sorted(_KERNEL_FLAGS)} for overlap runs"
            )
        self.kernel = kernel
        self.overlap = overlap
        periodicity = tuple([True] * (self.dim - 1) + [False])
        self.forest = BlockForest(self.shape, tuple(blocks_per_axis), periodicity)
        self.n_ranks = self.forest.n_blocks if n_ranks is None else int(n_ranks)
        self.owner = assign_blocks(self.forest, self.n_ranks, balance_strategy)

        nz = self.shape[-1]
        if temperature is None:
            te = self.system.t_eutectic
            temperature = FrozenTemperature(
                t_ref=te, gradient=4.0 / nz, velocity=0.02,
                z0=0.45 * nz * self.params.dx, dx=self.params.dx,
            )
        self.temperature = temperature
        self.phi_bc = phi_bc if phi_bc is not None else BoundarySpec.directional(self.dim)
        self.mu_bc = (
            mu_bc
            if mu_bc is not None
            else BoundarySpec.directional(self.dim, bottom=Neumann(), top=Dirichlet(0.0))
        )

    # ------------------------------------------------------------------ #

    def _block_slices(self, block) -> tuple[slice, ...]:
        return tuple(
            slice(o, o + s) for o, s in zip(block.offset, block.shape)
        )

    def run(
        self,
        steps: int,
        phi0: np.ndarray,
        mu0: np.ndarray,
        *,
        t0: float = 0.0,
        step0: int = 0,
        fault_plan=None,
        guard: bool = False,
    ) -> DistributedResult:
        """Advance *steps* steps from the global initial interior state.

        *t0* / *step0* place the run on the campaign clock, so a restart
        from a checkpoint sees the same frozen-temperature history as an
        uninterrupted run.  *fault_plan* injects scheduled faults (see
        :mod:`repro.resilience.faults`); *guard* enables a cheap
        per-step finiteness check on every rank that turns silent NaN
        contamination (e.g. from a corrupted ghost message) into an
        :class:`~repro.resilience.errors.InvariantViolation` abort.
        """
        if phi0.shape != (self.system.n_phases,) + self.shape:
            raise ValueError(f"phi0 must have shape (N,){self.shape}")
        if mu0.shape != (self.system.n_solutes,) + self.shape:
            raise ValueError(f"mu0 must have shape (K-1,){self.shape}")

        results = run_spmd(
            self.n_ranks, self._rank_main, steps, phi0, mu0,
            t0=t0, step0=step0, fault_plan=fault_plan, guard=guard,
        )

        phi = np.empty_like(phi0)
        mu = np.empty_like(mu0)
        stats = []
        for rank_result in results:
            blocks, st = rank_result
            stats.append(st)
            for bid, (phi_loc, mu_loc) in blocks.items():
                block = self.forest.blocks[bid]
                sl = (slice(None),) + self._block_slices(block)
                phi[sl] = phi_loc
                mu[sl] = mu_loc
        return DistributedResult(phi=phi, mu=mu, stats=stats)

    # ------------------------------------------------------------------ #

    def _rank_main(self, comm, steps: int, phi0, mu0, *,
                   t0: float = 0.0, step0: int = 0,
                   fault_plan=None, guard: bool = False):
        if fault_plan is not None:
            from repro.resilience.faults import FaultyComm

            comm = FaultyComm(comm, fault_plan)
            comm.step = step0
        ctx = make_context(self.system, self.params)
        phi_kernel = get_phi_kernel(self.kernel)
        mu_kernel = get_mu_kernel(self.kernel)
        flags = _KERNEL_FLAGS.get(self.kernel)
        owned = [b for b in self.forest.blocks if self.owner[b.id] == comm.rank]

        # initial state: root scatters per-rank block bundles
        if comm.rank == 0:
            pieces = [dict() for _ in range(self.n_ranks)]
            for b in self.forest.blocks:
                sl = (slice(None),) + self._block_slices(b)
                pieces[self.owner[b.id]][b.id] = (
                    np.ascontiguousarray(phi0[sl]),
                    np.ascontiguousarray(mu0[sl]),
                )
        else:
            pieces = None
        mine = comm.scatter(pieces, root=0)

        phi_fields: dict[int, Field] = {}
        mu_fields: dict[int, Field] = {}
        for b in owned:
            phi_loc, mu_loc = mine[b.id]
            pf = Field(self.system.n_phases, b.shape)
            mf = Field(self.system.n_solutes, b.shape)
            pf.set_interior(phi_loc, "src")
            mf.set_interior(mu_loc, "src")
            phi_fields[b.id] = pf
            mu_fields[b.id] = mf

        timer_phi = ExchangeTimer()
        timer_mu = ExchangeTimer()

        def exchange(fields: dict[int, Field], buffer: str, spec, tag, timer):
            arrays = {bid: getattr(f, buffer) for bid, f in fields.items()}
            exchange_block_ghosts(
                comm, self.forest, self.owner, arrays, self.dim, spec,
                tag_base=tag, timer=timer,
            )

        exchange(phi_fields, "src", self.phi_bc, 1000, timer_phi)
        exchange(mu_fields, "src", self.mu_bc, 3000, timer_mu)

        dt = self.params.dt
        time_now = t0
        mu_ghosts_stale = False
        for local_step in range(steps):
            global_step = step0 + local_step
            if fault_plan is not None:
                comm.step = global_step
                fault = fault_plan.fires(
                    "rank_kill", step=global_step, rank=comm.rank
                )
                if fault is not None:
                    from repro.resilience.errors import InjectedFault

                    raise InjectedFault(
                        "rank_kill", step=global_step, rank=comm.rank
                    )
                fault = fault_plan.fires(
                    "nan_inject", step=global_step, rank=comm.rank
                )
                if fault is not None and owned:
                    from repro.resilience.faults import poison

                    poison(phi_fields[owned[0].id].interior_src)
            temps = {}
            for b in owned:
                z_off = b.offset[-1]
                nz_loc = b.shape[-1]
                temps[b.id] = (
                    self.temperature.at_time(time_now, nz_loc + 2, z_off - 1),
                    self.temperature.at_time(time_now + dt, nz_loc + 2, z_off - 1),
                )

            if not self.overlap:
                # Algorithm 1
                for b in owned:
                    t_old, _ = temps[b.id]
                    phi_fields[b.id].interior_dst[...] = phi_kernel(
                        ctx, phi_fields[b.id].src, mu_fields[b.id].src, t_old
                    )
                exchange(phi_fields, "dst", self.phi_bc, 5000, timer_phi)
                for b in owned:
                    t_old, t_new = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_kernel(
                        ctx, mu_fields[b.id].src, phi_fields[b.id].src,
                        phi_fields[b.id].dst, t_old, t_new,
                    )
                exchange(mu_fields, "dst", self.mu_bc, 7000, timer_mu)
            else:
                # Algorithm 2: the phi sweep needs only local mu values, so
                # the (deferred) mu ghost refresh hides behind it; the phi
                # exchange hides behind the local part of the split mu sweep.
                for b in owned:
                    t_old, _ = temps[b.id]
                    phi_fields[b.id].interior_dst[...] = phi_kernel(
                        ctx, phi_fields[b.id].src, mu_fields[b.id].src, t_old
                    )
                if mu_ghosts_stale:
                    exchange(mu_fields, "src", self.mu_bc, 3000, timer_mu)
                for b in owned:
                    t_old, t_new = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_step_local_impl(
                        ctx, mu_fields[b.id].src, phi_fields[b.id].src,
                        phi_fields[b.id].dst, t_old, t_new, **flags,
                    )
                exchange(phi_fields, "dst", self.phi_bc, 5000, timer_phi)
                for b in owned:
                    t_old, _ = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_step_neighbor_impl(
                        ctx, mu_fields[b.id].interior_dst, mu_fields[b.id].src,
                        phi_fields[b.id].src, phi_fields[b.id].dst, t_old,
                        **flags,
                    )
                mu_ghosts_stale = True

            for b in owned:
                phi_fields[b.id].swap()
                mu_fields[b.id].swap()
            time_now += dt
            if guard:
                for b in owned:
                    phi_i = phi_fields[b.id].interior_src
                    mu_i = mu_fields[b.id].interior_src
                    if not (np.isfinite(phi_i).all() and np.isfinite(mu_i).all()):
                        from repro.resilience.errors import InvariantViolation

                        raise InvariantViolation(
                            f"non-finite field values in block {b.id}",
                            step=global_step + 1, rank=comm.rank,
                        )

        stats = RankStats(
            rank=comm.rank,
            comm_phi_seconds=timer_phi.seconds,
            comm_mu_seconds=timer_mu.seconds,
            comm_bytes=timer_phi.bytes + timer_mu.bytes,
            comm_messages=timer_phi.messages + timer_mu.messages,
            n_blocks=len(owned),
        )
        out = {
            b.id: (
                phi_fields[b.id].interior_src.copy(),
                mu_fields[b.id].interior_src.copy(),
            )
            for b in owned
        }
        return out, stats
