"""Distributed phase-field driver (Algorithms 1 & 2 over simulated ranks).

The domain is split by a :class:`BlockForest`; blocks are assigned to
simulated MPI ranks by a load-balancing strategy (one block per rank by
default, several per rank like waLBerla when ``n_ranks`` is smaller).
Ghost layers travel through
:func:`repro.distributed.exchange.exchange_block_ghosts` — same-rank
neighbours copy directly, remote neighbours exchange messages.

Two schedules are provided, mirroring the paper:

* ``overlap=False`` — Algorithm 1: sweep, exchange, sweep, exchange.
* ``overlap=True`` — Algorithm 2: the mu ghost exchange is deferred behind
  the phi sweep (the phi sweep only needs local mu values) and the phi
  exchange behind the *local* part of the split mu sweep; the neighbour
  part (anti-trapping divergence) runs after the phi ghosts arrived.

Both schedules produce identical fields (validated by the integration
tests), as the paper notes: "the order of communication and boundary
handling routines can also be interchanged without altering the results".
"""

from __future__ import annotations

import logging
import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import (
    COMPILED_RUNGS,
    get_mu_kernel,
    get_phi_kernel,
    get_split_mu_kernel,
    make_context,
)
from repro.core.parameters import PhaseFieldParameters
from repro.core.temperature import ConstantTemperature, FrozenTemperature
from repro.distributed.exchange import ExchangeTimer, exchange_block_ghosts
from repro.distributed.halo import BlockHaloRegistry, halo_channels_enabled
from repro.grid.balance import assign_blocks
from repro.grid.blockforest import BlockForest
from repro.grid.boundary import BoundarySpec, Dirichlet, Neumann
from repro.grid.field import Field
from repro.simmpi.runtime import run_spmd
from repro.thermo.system import TernaryEutecticSystem

__all__ = ["DistributedSimulation", "DistributedResult", "RankStats"]

logger = logging.getLogger(__name__)


@dataclass
class RankStats:
    """Per-rank communication accounting of one run."""

    rank: int
    comm_phi_seconds: float
    comm_mu_seconds: float
    comm_bytes: int
    comm_messages: int
    n_blocks: int = 1


@dataclass
class DistributedResult:
    """Gathered outcome of a distributed run.

    With telemetry enabled, *timing* carries the cross-rank-reduced
    timing tree (see :mod:`repro.telemetry.reduce`), *counters* the
    summed per-rank counter snapshots, and *report* the schema-valid
    :mod:`repro.telemetry.report` document of the run.  With span
    tracing on (``REPRO_TRACE=1`` or ``RunTelemetry(trace=True)``),
    *spans* holds the per-rank span timeline gathered to rank 0 and
    *trace_path* the exported Chrome trace-event JSON (``None`` when the
    telemetry session has no directory).
    """

    phi: np.ndarray
    mu: np.ndarray
    stats: list[RankStats] = field(default_factory=list)
    timing: dict | None = None
    counters: dict | None = None
    report: dict | None = None
    spans: list | None = None
    trace_path: object = None


class DistributedSimulation:
    """SPMD phase-field run over a block partition.

    Parameters
    ----------
    shape:
        Global interior cell counts (growth axis last).
    blocks_per_axis:
        Block grid; every axis extent must divide the domain.
    n_ranks:
        Simulated MPI ranks; defaults to one rank per block.  With fewer
        ranks, blocks are distributed by *balance_strategy* and same-rank
        neighbours exchange ghosts by direct copy.
    balance_strategy:
        Block-to-rank assignment (see :func:`repro.grid.balance.assign_blocks`).
    kernel:
        Optimization rung (``overlap=True`` requires a rung with a split
        mu sweep, i.e. any optimized rung).
    overlap:
        Use the Algorithm 2 communication-hiding schedule.
    backend:
        simmpi execution substrate for the SPMD region: ``"thread"``
        (default — deterministic, GIL-serialized) or ``"process"`` (one
        OS process per rank, field buffers in shared memory, kernels
        genuinely parallel).  Results are bitwise identical between the
        two: per-block arithmetic does not depend on where a rank runs.
    halo_channels:
        Route ghost exchange through persistent registered halo
        channels (see :mod:`repro.distributed.halo`) — one packed
        buffer + one notify per neighbour per axis direction instead of
        per-slab staged messages with acks.  ``None`` (default) follows
        ``REPRO_SIMMPI_HALO_CHANNELS`` (opt-out, on unless ``0``);
        results are bitwise identical either way.  Fault-injected runs
        always use the legacy path so every message stays visible to
        the injection layer.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        blocks_per_axis: tuple[int, ...],
        system: TernaryEutecticSystem | None = None,
        params: PhaseFieldParameters | None = None,
        temperature: FrozenTemperature | ConstantTemperature | None = None,
        kernel: str = "buffered",
        overlap: bool = False,
        phi_bc: BoundarySpec | None = None,
        mu_bc: BoundarySpec | None = None,
        n_ranks: int | None = None,
        balance_strategy: str = "contiguous",
        backend: str = "thread",
        halo_channels: bool | None = None,
    ):
        self.shape = tuple(shape)
        self.dim = len(shape)
        self.system = system if system is not None else TernaryEutecticSystem()
        self.params = (
            params
            if params is not None
            else PhaseFieldParameters.for_system(self.system, dim=self.dim)
        )
        from repro.core.kernels import compiled
        from repro.core.kernels.api import SPLIT_MU_KERNELS

        kernel = compiled.maybe_fallback(kernel)
        if overlap and get_split_mu_kernel(kernel) is None:
            raise ValueError(
                f"kernel {kernel!r} has no split mu sweep; choose one of "
                f"{sorted(SPLIT_MU_KERNELS)} for overlap runs"
            )
        self.kernel = kernel
        self.overlap = overlap
        self.backend = backend
        self.halo_channels = halo_channels
        periodicity = tuple([True] * (self.dim - 1) + [False])
        self.forest = BlockForest(self.shape, tuple(blocks_per_axis), periodicity)
        self.n_ranks = self.forest.n_blocks if n_ranks is None else int(n_ranks)
        self.balance_strategy = balance_strategy
        self.owner = assign_blocks(self.forest, self.n_ranks, balance_strategy)

        nz = self.shape[-1]
        if temperature is None:
            te = self.system.t_eutectic
            temperature = FrozenTemperature(
                t_ref=te, gradient=4.0 / nz, velocity=0.02,
                z0=0.45 * nz * self.params.dx, dx=self.params.dx,
            )
        self.temperature = temperature
        self.phi_bc = phi_bc if phi_bc is not None else BoundarySpec.directional(self.dim)
        self.mu_bc = (
            mu_bc
            if mu_bc is not None
            else BoundarySpec.directional(self.dim, bottom=Neumann(), top=Dirichlet(0.0))
        )

    # ------------------------------------------------------------------ #

    def _block_slices(self, block) -> tuple[slice, ...]:
        return tuple(
            slice(o, o + s) for o, s in zip(block.offset, block.shape)
        )

    def shrunk(self, n_ranks: int) -> "DistributedSimulation":
        """A copy of this simulation re-decomposed for *n_ranks* ranks.

        The domain, forest geometry, physics and schedule are identical —
        only the block-to-rank assignment is re-derived — so a shrunk
        simulation continued from a (resharded) checkpoint reproduces the
        original run bit-for-bit: per-block arithmetic does not depend on
        which rank owns the block.  Used by the elastic campaign driver
        after a permanent rank loss.
        """
        if not 1 <= n_ranks <= self.forest.n_blocks:
            raise ValueError(
                f"cannot run {self.forest.n_blocks} blocks on {n_ranks} "
                "rank(s)"
            )
        return DistributedSimulation(
            self.shape,
            self.forest.blocks_per_axis,
            system=self.system,
            params=self.params,
            temperature=self.temperature,
            kernel=self.kernel,
            overlap=self.overlap,
            phi_bc=self.phi_bc,
            mu_bc=self.mu_bc,
            n_ranks=n_ranks,
            balance_strategy=self.balance_strategy,
            backend=self.backend,
            halo_channels=self.halo_channels,
        )

    def topology(self) -> dict:
        """Manifest topology record of the current decomposition."""
        return {
            **self.forest.meta(),
            "n_ranks": int(self.n_ranks),
            "owner": [int(r) for r in self.owner],
        }

    def run(
        self,
        steps: int,
        phi0: np.ndarray,
        mu0: np.ndarray,
        *,
        t0: float = 0.0,
        step0: int = 0,
        fault_plan=None,
        guard: bool = False,
        telemetry=None,
        shard_store=None,
        checkpoint_every: int | None = None,
    ) -> DistributedResult:
        """Advance *steps* steps from the global initial interior state.

        *t0* / *step0* place the run on the campaign clock, so a restart
        from a checkpoint sees the same frozen-temperature history as an
        uninterrupted run.  *fault_plan* injects scheduled faults (see
        :mod:`repro.resilience.faults`); *guard* enables a cheap
        per-step finiteness check on every rank that turns silent NaN
        contamination (e.g. from a corrupted ghost message) into an
        :class:`~repro.resilience.errors.InvariantViolation` abort.

        *telemetry* — a :class:`repro.telemetry.RunTelemetry` — makes
        every rank collect a timing tree (compute vs. communication vs.
        guard, the Fig. 8 readout), stream structured events and sample
        counters; the trees are reduced across ranks inside the SPMD
        region and the merged breakdown, counter sums and a schema-valid
        run report are attached to the result (and written to
        ``telemetry.directory`` when set).  ``None`` leaves the hot path
        untouched.

        *shard_store* — a
        :class:`~repro.resilience.store.ShardedCheckpointStore` — makes
        every rank write its own block shard whenever the **global** step
        count reaches a multiple of *checkpoint_every* (boundaries are
        therefore stable across restarts, whatever *step0* is).  Shard
        manifest entries are gathered to rank 0, which publishes the
        manifest only if every rank's write succeeded — the two-phase
        commit that keeps a mid-checkpoint failure from ever producing a
        half-valid restart point.  A rank whose write fails persistently
        (after the store's bounded retries) contributes no entry; the
        checkpoint is skipped with a logged event and the run continues.
        """
        if phi0.shape != (self.system.n_phases,) + self.shape:
            raise ValueError(f"phi0 must have shape (N,){self.shape}")
        if mu0.shape != (self.system.n_solutes,) + self.shape:
            raise ValueError(f"mu0 must have shape (K-1,){self.shape}")

        if shard_store is not None and (
            checkpoint_every is None or checkpoint_every < 1
        ):
            raise ValueError("shard_store requires checkpoint_every >= 1")

        wall0 = _time.perf_counter()
        results = run_spmd(
            self.n_ranks, self._rank_main, steps, phi0, mu0,
            t0=t0, step0=step0, fault_plan=fault_plan, guard=guard,
            telemetry=telemetry, shard_store=shard_store,
            checkpoint_every=checkpoint_every,
            backend=self.backend,
        )
        wall = _time.perf_counter() - wall0

        phi = np.empty_like(phi0)
        mu = np.empty_like(mu0)
        stats = []
        extras = []
        for rank_result in results:
            blocks, st, extra = rank_result
            stats.append(st)
            extras.append(extra)
            for bid, (phi_loc, mu_loc) in blocks.items():
                block = self.forest.blocks[bid]
                sl = (slice(None),) + self._block_slices(block)
                phi[sl] = phi_loc
                mu[sl] = mu_loc
        result = DistributedResult(phi=phi, mu=mu, stats=stats)
        if telemetry is not None:
            self._finalize_telemetry(
                result, telemetry, extras, steps=steps, wall=wall,
                fault_plan=fault_plan, guard=guard,
            )
        return result

    def _finalize_telemetry(
        self, result: DistributedResult, telemetry, extras, *,
        steps: int, wall: float, fault_plan, guard: bool,
    ) -> None:
        """Merge per-rank telemetry and emit the run report."""
        from repro.telemetry.report import build_run_report, write_run_report

        result.timing = next(
            (e["tree"] for e in extras if e and e.get("tree")), None
        )
        counters: dict = {}
        for extra in extras:
            for name, value in (extra or {}).get("counters", {}).items():
                if name.startswith("mlups"):
                    counters[name] = max(counters.get(name, 0.0), value)
                else:
                    counters[name] = counters.get(name, 0) + value
        result.counters = counters

        cells = int(np.prod(self.shape))
        mlups = steps * cells / wall / 1.0e6 if wall > 0 else 0.0
        merged_events = telemetry.merge_events()
        event_count = len(merged_events) or sum(
            (extra or {}).get("event_count", 0) for extra in extras
        )
        event_path = (
            str(telemetry.directory / "events-merged.jsonl")
            if telemetry.directory is not None else None
        )
        fault_stats = None
        if fault_plan is not None:
            fault_stats = {
                "fired": [
                    {"kind": f.kind, "step": s, "rank": r}
                    for f, s, r in fault_plan.fired()
                ],
                "pending": len(fault_plan.pending()),
            }
        tracing_stats = None
        spans = next(
            (e["spans"] for e in extras if e and e.get("spans") is not None),
            None,
        )
        if spans is not None:
            from repro.telemetry.spans import tracing_section
            from repro.telemetry.tracing import write_chrome_trace

            trace_stats = next(
                (e["trace_stats"] for e in extras
                 if e and e.get("trace_stats")),
                [],
            )
            tracing_stats = tracing_section(spans, trace_stats)
            result.spans = spans
            trace_path = telemetry.trace_path()
            if trace_path is not None:
                result.trace_path = write_chrome_trace(trace_path, spans)
                logger.info("chrome trace written to %s", result.trace_path)
        report = build_run_report(
            run_id=telemetry.run_id,
            config={
                "shape": list(self.shape),
                "blocks_per_axis": list(self.forest.blocks_per_axis),
                "n_ranks": self.n_ranks,
                "kernel": self.kernel,
                "overlap": self.overlap,
                "backend": self.backend,
                "halo_channels": (
                    halo_channels_enabled(self.halo_channels)
                    and fault_plan is None
                ),
                "guard": guard,
                "dt": self.params.dt,
            },
            grid_shape=self.shape,
            n_ranks=self.n_ranks,
            steps=steps,
            wall_seconds=wall,
            mlups=mlups,
            timings=result.timing,
            counters=counters,
            event_stats={"count": event_count, "path": event_path},
            fault_stats=fault_stats,
            tracing_stats=tracing_stats,
        )
        result.report = report
        path = telemetry.report_path()
        if path is not None:
            write_run_report(path, report)
            logger.info("run report written to %s", path)

    # ------------------------------------------------------------------ #

    def _rank_main(self, comm, steps: int, phi0, mu0, *,
                   t0: float = 0.0, step0: int = 0,
                   fault_plan=None, guard: bool = False,
                   telemetry=None, shard_store=None,
                   checkpoint_every: int | None = None):
        if fault_plan is not None:
            from repro.resilience.faults import FaultyComm

            comm = FaultyComm(comm, fault_plan)
            comm.step = step0
        ctx = make_context(self.system, self.params)
        compile_seconds = 0.0
        if self.kernel in COMPILED_RUNGS:
            # Compile/warm once per rank *before* the timed loop starts, so
            # JIT or dlopen cost never pollutes the per-step timings.
            from repro.core.kernels import compiled

            compile_seconds = compiled.warmup(ctx, dim=self.dim)
        phi_kernel = get_phi_kernel(self.kernel)
        mu_kernel = get_mu_kernel(self.kernel)
        split = get_split_mu_kernel(self.kernel)
        owned = [b for b in self.forest.blocks if self.owner[b.id] == comm.rank]

        tree = events = heartbeat = registry = None
        if telemetry is not None:
            from repro.telemetry.counters import Heartbeat, MetricsRegistry
            from repro.telemetry.timing import TimingTree

            # Span tracing (REPRO_TRACE=1 / RunTelemetry(trace=True)):
            # the tree forwards every timed scope to the recorder as a
            # timestamped span; tracer=None keeps the hot path at one
            # attribute check per measurement.
            tree = TimingTree(tracer=telemetry.open_tracer(comm.rank))
            if compile_seconds:
                tree.record("compile", compile_seconds)
            if hasattr(comm, "attach_timing"):
                # Process backend: time the pipe control-message phases
                # (send/recv/ack) under comm/pipe so the fig7 RunReport
                # quantifies transport overhead.
                comm.attach_timing(tree)
            events = telemetry.open_events(comm.rank)
            if hasattr(comm, "attach_events"):
                # Process backend: route transport degradation and
                # shared-memory reclamation events into the rank's log.
                comm.attach_events(events)
            registry = MetricsRegistry()
            cells_owned = sum(int(np.prod(b.shape)) for b in owned)
            heartbeat = Heartbeat(
                registry, cells_per_step=cells_owned,
                every=telemetry.heartbeat_every, events=events,
            )
            events.emit(
                "run_start", steps=steps, step0=step0,
                blocks=len(owned), cells=cells_owned,
            )
        try:
            return self._rank_loop(
                comm, steps, phi0, mu0, t0=t0, step0=step0,
                fault_plan=fault_plan, guard=guard,
                ctx=ctx, phi_kernel=phi_kernel, mu_kernel=mu_kernel,
                split=split, owned=owned, tree=tree, events=events,
                heartbeat=heartbeat, registry=registry,
                shard_store=shard_store, checkpoint_every=checkpoint_every,
            )
        except BaseException as exc:
            if events is not None:
                events.emit("rank_failed", "ERROR", error=repr(exc))
                events.close()
            raise

    def _sharded_checkpoint(self, comm, shard_store, owned,
                            phi_fields, mu_fields, *, step: int,
                            time: float, events) -> None:
        """Two-phase sharded checkpoint from inside the SPMD region.

        Write phase: this rank durably writes its own shard (bounded
        retries inside the store).  Publish phase: manifest entries are
        gathered to rank 0, which commits the generation only when every
        rank succeeded; otherwise the checkpoint is skipped — never
        half-published — and the run continues.
        """
        entry = None
        try:
            entry = shard_store.write_rank_shard(
                rank=comm.rank, step=step,
                blocks={
                    b.id: (
                        phi_fields[b.id].interior_src,
                        mu_fields[b.id].interior_src,
                    )
                    for b in owned
                },
                events=events,
            )
        except OSError as exc:
            logger.error(
                "rank %d: shard write failed persistently at step %d: %r",
                comm.rank, step, exc,
            )
            if events is not None:
                events.emit(
                    "checkpoint_skipped", "ERROR", step=step,
                    error=repr(exc),
                )
        entries = comm.gather(entry, root=0)
        if comm.rank != 0:
            return
        if all(e is not None for e in entries):
            path = shard_store.publish_manifest(
                entries, step=step, time=time,
                topology=self.topology(), kernel=self.kernel,
            )
            if events is not None:
                events.emit("checkpoint", step=step, path=str(path))
        else:
            shard_store.note_skipped()
            failed = [r for r, e in enumerate(entries) if e is None]
            logger.warning(
                "checkpoint at step %d skipped: rank(s) %s failed their "
                "shard write", step, failed,
            )
            if events is not None:
                events.emit(
                    "checkpoint_skipped", "WARNING", step=step,
                    failed_ranks=failed,
                )

    def _rank_loop(self, comm, steps: int, phi0, mu0, *,
                   t0: float, step0: int, fault_plan, guard: bool,
                   ctx, phi_kernel, mu_kernel, split, owned,
                   tree, events, heartbeat, registry,
                   shard_store=None, checkpoint_every=None):

        # initial state: root scatters per-rank block bundles
        if comm.rank == 0:
            pieces = [dict() for _ in range(self.n_ranks)]
            for b in self.forest.blocks:
                sl = (slice(None),) + self._block_slices(b)
                pieces[self.owner[b.id]][b.id] = (
                    np.ascontiguousarray(phi0[sl]),
                    np.ascontiguousarray(mu0[sl]),
                )
        else:
            pieces = None
        mine = comm.scatter(pieces, root=0)

        # Under the process backend this places the double buffers in
        # shared memory, so ghost slabs between co-resident ranks move
        # by memcpy; thread ranks get None (plain heap arrays).
        allocator = (
            comm.field_allocator() if hasattr(comm, "field_allocator")
            else None
        )

        phi_fields: dict[int, Field] = {}
        mu_fields: dict[int, Field] = {}
        for b in owned:
            phi_loc, mu_loc = mine[b.id]
            pf = Field(self.system.n_phases, b.shape, allocator=allocator)
            mf = Field(self.system.n_solutes, b.shape, allocator=allocator)
            pf.set_interior(phi_loc, "src")
            mf.set_interior(mu_loc, "src")
            phi_fields[b.id] = pf
            mu_fields[b.id] = mf

        timer_phi = ExchangeTimer(tree, "comm/phi")
        timer_mu = ExchangeTimer(tree, "comm/mu")
        tracer = tree.tracer if tree is not None else None
        _pc = _time.perf_counter

        ghost = next(iter(phi_fields.values())).ghost if phi_fields else 1
        halo_reg = None
        if halo_channels_enabled(self.halo_channels) and fault_plan is None:
            # Collective: every rank registers its send channels and
            # accepts its receive channels here, once — the steady-state
            # loop then runs ack- and staging-free.  Fault-injected runs
            # keep the legacy path so FaultyComm sees every message.
            halo_reg = BlockHaloRegistry(
                comm, self.forest, self.owner, self.dim,
                streams=[
                    (self.system.n_phases, ghost),
                    (self.system.n_solutes, ghost),
                ],
            )
            if events is not None:
                events.emit(
                    "halo_channels_registered",
                    channels=halo_reg.n_channels,
                )

        def exchange(fields: dict[int, Field], buffer: str, spec, tag, timer):
            arrays = {bid: getattr(f, buffer) for bid, f in fields.items()}
            exchange_block_ghosts(
                comm, self.forest, self.owner, arrays, self.dim, spec,
                tag_base=tag, timer=timer, ghost=ghost, halo=halo_reg,
            )

        exchange(phi_fields, "src", self.phi_bc, 1000, timer_phi)
        exchange(mu_fields, "src", self.mu_bc, 3000, timer_mu)

        dt = self.params.dt
        time_now = t0
        mu_ghosts_stale = False
        note_progress = getattr(comm, "note_progress", None)
        # Transport counters snapshotted around the step loop: the diff
        # is the *steady-state* control-message cost (registration and
        # initial exchanges excluded) the fig7 report gates on.
        counters0 = (
            comm.transport_counters()
            if hasattr(comm, "transport_counters") else None
        )
        for local_step in range(steps):
            global_step = step0 + local_step
            # Whole-step spans are recorded to the tracer only (not the
            # tree), so the aggregated timing breakdown keeps its
            # pre-tracing shape; per-rank step totals are the imbalance
            # signal of the report's "tracing" section.
            step_t0 = _pc() if tracer is not None else 0.0
            if note_progress is not None:
                # Feed the liveness watchdog even on steps with little
                # communication: one tick per step keeps a busy rank
                # distinguishable from a hung one.
                note_progress()
            if fault_plan is not None:
                comm.step = global_step
                for kind in ("rank_kill", "kill_rank"):
                    fault = fault_plan.fires(
                        kind, step=global_step, rank=comm.rank
                    )
                    if fault is not None:
                        from repro.resilience.errors import InjectedFault

                        if events is not None:
                            events.emit(
                                "fault", "ERROR", fault=kind,
                                step=global_step,
                            )
                        raise InjectedFault(
                            kind, step=global_step, rank=comm.rank
                        )
                fault = fault_plan.fires(
                    "rank_slow", step=global_step, rank=comm.rank
                )
                if fault is not None:
                    # Transient straggler: the rank pauses but keeps its
                    # heartbeat alive, so the watchdog must NOT kill it.
                    if events is not None:
                        events.emit(
                            "fault", "WARNING", fault="rank_slow",
                            step=global_step, seconds=fault.delay,
                        )
                    _time.sleep(fault.delay)
                fault = fault_plan.fires(
                    "rank_stall", step=global_step, rank=comm.rank
                )
                if fault is not None:
                    # Permanent hang: freeze this rank's progress until
                    # a peer deadline or the watchdog contains it (the
                    # delay is only a safety cap for undeadlined runs).
                    from repro.resilience.faults import stall

                    if events is not None:
                        events.emit(
                            "fault", "ERROR", fault="rank_stall",
                            step=global_step, cap_seconds=fault.delay,
                        )
                    stall(comm, fault.delay)
                fault = fault_plan.fires(
                    "nan_inject", step=global_step, rank=comm.rank
                )
                if fault is not None and owned:
                    from repro.resilience.faults import poison

                    if events is not None:
                        events.emit(
                            "fault", "WARNING", fault="nan_inject",
                            step=global_step,
                        )
                    poison(phi_fields[owned[0].id].interior_src)
            temps = {}
            for b in owned:
                z_off = b.offset[-1]
                nz_loc = b.shape[-1]
                temps[b.id] = (
                    self.temperature.at_time(time_now, nz_loc + 2, z_off - 1),
                    self.temperature.at_time(time_now + dt, nz_loc + 2, z_off - 1),
                )

            if not self.overlap:
                # Algorithm 1
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    t_old, _ = temps[b.id]
                    phi_fields[b.id].interior_dst[...] = phi_kernel(
                        ctx, phi_fields[b.id].src, mu_fields[b.id].src, t_old
                    )
                if tree is not None:
                    tree.record("compute/phi", _pc() - mark)
                exchange(phi_fields, "dst", self.phi_bc, 5000, timer_phi)
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    t_old, t_new = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_kernel(
                        ctx, mu_fields[b.id].src, phi_fields[b.id].src,
                        phi_fields[b.id].dst, t_old, t_new,
                    )
                if tree is not None:
                    tree.record("compute/mu", _pc() - mark)
                exchange(mu_fields, "dst", self.mu_bc, 7000, timer_mu)
            else:
                # Algorithm 2: the phi sweep needs only local mu values, so
                # the (deferred) mu ghost refresh hides behind it; the phi
                # exchange hides behind the local part of the split mu sweep.
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    t_old, _ = temps[b.id]
                    phi_fields[b.id].interior_dst[...] = phi_kernel(
                        ctx, phi_fields[b.id].src, mu_fields[b.id].src, t_old
                    )
                if tree is not None:
                    tree.record("compute/phi", _pc() - mark)
                if mu_ghosts_stale:
                    exchange(mu_fields, "src", self.mu_bc, 3000, timer_mu)
                mu_local, mu_neighbor = split
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    t_old, t_new = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_local(
                        ctx, mu_fields[b.id].src, phi_fields[b.id].src,
                        phi_fields[b.id].dst, t_old, t_new,
                    )
                if tree is not None:
                    tree.record("compute/mu_local", _pc() - mark)
                exchange(phi_fields, "dst", self.phi_bc, 5000, timer_phi)
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    t_old, _ = temps[b.id]
                    mu_fields[b.id].interior_dst[...] = mu_neighbor(
                        ctx, mu_fields[b.id].interior_dst, mu_fields[b.id].src,
                        phi_fields[b.id].src, phi_fields[b.id].dst, t_old,
                    )
                if tree is not None:
                    tree.record("compute/mu_neighbor", _pc() - mark)
                mu_ghosts_stale = True

            for b in owned:
                phi_fields[b.id].swap()
                mu_fields[b.id].swap()
            time_now += dt
            if guard:
                mark = _pc() if tree is not None else 0.0
                for b in owned:
                    phi_i = phi_fields[b.id].interior_src
                    mu_i = mu_fields[b.id].interior_src
                    if not (np.isfinite(phi_i).all() and np.isfinite(mu_i).all()):
                        from repro.resilience.errors import InvariantViolation

                        if events is not None:
                            events.emit(
                                "guard_trip", "ERROR", block=b.id,
                                step=global_step + 1,
                                reason="non-finite field values",
                            )
                        logger.warning(
                            "guard tripped: non-finite values in block %d "
                            "at step %d (rank %d)",
                            b.id, global_step + 1, comm.rank,
                        )
                        raise InvariantViolation(
                            f"non-finite field values in block {b.id}",
                            step=global_step + 1, rank=comm.rank,
                        )
                if tree is not None:
                    tree.record("guard", _pc() - mark)
            if tracer is not None:
                tracer.record("step", step_t0, _pc(), step=global_step + 1)
            if heartbeat is not None:
                heartbeat.sample(global_step=global_step + 1)
            if (
                shard_store is not None
                and (global_step + 1) % checkpoint_every == 0
            ):
                self._sharded_checkpoint(
                    comm, shard_store, owned, phi_fields, mu_fields,
                    step=global_step + 1, time=time_now, events=events,
                )

        stats = RankStats(
            rank=comm.rank,
            comm_phi_seconds=timer_phi.seconds,
            comm_mu_seconds=timer_mu.seconds,
            comm_bytes=timer_phi.bytes + timer_mu.bytes,
            comm_messages=timer_phi.messages + timer_mu.messages,
            n_blocks=len(owned),
        )
        out = {
            b.id: (
                phi_fields[b.id].interior_src.copy(),
                mu_fields[b.id].interior_src.copy(),
            )
            for b in owned
        }
        extra = None
        if tree is not None:
            from repro.telemetry.reduce import reduce_tree_over_ranks

            registry.counter("halo_bytes").add(
                timer_phi.bytes + timer_mu.bytes
            )
            registry.counter("halo_messages").add(
                timer_phi.messages + timer_mu.messages
            )
            if counters0 is not None:
                # Steady-state transport traffic of the step loop alone
                # (zeros on the thread backend, so report shapes agree).
                counters1 = comm.transport_counters()
                registry.counter("pipe_messages").add(
                    counters1["pipe_messages"] - counters0["pipe_messages"]
                )
                registry.counter("halo_acks").add(
                    counters1["acks"] - counters0["acks"]
                )
                registry.counter("segments_created").add(
                    counters1["segments_created"]
                    - counters0["segments_created"]
                )
            events.emit(
                "run_end",
                steps_done=steps,
                comm_seconds=timer_phi.seconds + timer_mu.seconds,
                exchange_phi=timer_phi.stats(),
                exchange_mu=timer_mu.stats(),
            )
            event_count = events.count()
            events.close()
            merged = reduce_tree_over_ranks(comm, tree)
            spans_gathered = trace_stats = None
            if tracer is not None:
                # Per-rank span buffers travel to rank 0 over the same
                # simmpi collectives the run used; every rank resolved
                # the same trace switch, so the gather is uniform.
                gathered = comm.gather(
                    (tracer.drain(), tracer.stats()), root=0
                )
                if gathered is not None:
                    spans_gathered = [
                        s for rank_spans, _ in gathered for s in rank_spans
                    ]
                    trace_stats = [st for _, st in gathered]
            extra = {
                "tree": merged,
                "tree_local": tree.to_dict(),
                "counters": registry.snapshot(),
                "event_count": event_count,
                "spans": spans_gathered,
                "trace_stats": trace_stats,
            }
        return out, stats, extra
