"""waLBerla-like block-structured grid substrate.

The paper's framework partitions the domain into equally sized *blocks*,
each carrying a regular grid extended by ghost layers; communication fills
the ghost layers from neighbouring blocks (or boundary conditions at the
domain edge).  This package provides:

* :mod:`repro.grid.field` — ghosted double-buffered fields,
* :mod:`repro.grid.boundary` — Dirichlet/Neumann/periodic handlers,
* :mod:`repro.grid.blockforest` — the block partition and neighbourhood,
* :mod:`repro.grid.balance` — block-to-process assignment,
* :mod:`repro.grid.timeloop` — functor scheduling incl. the
  communication-hiding order of Algorithm 2.
"""

from repro.grid.field import Field
from repro.grid.boundary import (
    BoundarySpec,
    Dirichlet,
    Neumann,
    Periodic,
    apply_boundaries,
)
from repro.grid.blockforest import Block, BlockForest

__all__ = [
    "Field",
    "BoundarySpec",
    "Dirichlet",
    "Neumann",
    "Periodic",
    "apply_boundaries",
    "Block",
    "BlockForest",
]
