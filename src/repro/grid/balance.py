"""Block-to-process assignment (load balancing).

The paper experimented with the load-balancing options of waLBerla but
found them unnecessary once the moving window keeps most blocks at an
interface-like composition; nevertheless the assignment layer exists and
supports several strategies so the distributed driver and the scaling
model can study their effect.
"""

from __future__ import annotations

import numpy as np

from repro.grid.blockforest import BlockForest

__all__ = ["assign_blocks", "weighted_assign"]


def assign_blocks(
    forest: BlockForest, n_ranks: int, strategy: str = "contiguous"
) -> list[int]:
    """Return ``owner_rank[block_id]`` for all blocks.

    Strategies
    ----------
    ``contiguous``
        Lexicographic chunks of near-equal size (preserves locality, the
        default of static curve-based balancing).
    ``round_robin``
        Cyclic distribution (spreads interface-heavy z-slabs over ranks).
    """
    n_blocks = forest.n_blocks
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > n_blocks:
        raise ValueError(
            f"{n_ranks} ranks but only {n_blocks} blocks; use "
            "BlockForest.for_processes to size the forest"
        )
    if strategy == "contiguous":
        bounds = np.linspace(0, n_blocks, n_ranks + 1).astype(int)
        owner = np.empty(n_blocks, dtype=int)
        for r in range(n_ranks):
            owner[bounds[r] : bounds[r + 1]] = r
        return owner.tolist()
    if strategy == "round_robin":
        return [b % n_ranks for b in range(n_blocks)]
    raise ValueError(f"unknown strategy {strategy!r}")


def weighted_assign(weights: np.ndarray, n_ranks: int) -> list[int]:
    """Greedy longest-processing-time assignment by block weight.

    *weights* holds a cost estimate per block (e.g. interface cell counts);
    returns ``owner_rank[block_id]`` minimizing the maximum rank load
    greedily.
    """
    weights = np.asarray(weights, dtype=float)
    n_blocks = weights.size
    if n_ranks > n_blocks:
        raise ValueError("more ranks than blocks")
    order = np.argsort(weights)[::-1]
    loads = np.zeros(n_ranks)
    owner = np.empty(n_blocks, dtype=int)
    for b in order:
        r = int(np.argmin(loads))
        owner[b] = r
        loads[r] += weights[b]
    return owner.tolist()
