"""Block partition of the simulation domain (the waLBerla "block forest").

The domain is split into equally sized chunks ("blocks"); each block
carries a regular grid with ghost layers.  The data structure is fully
distributed in the paper (each process knows only local and adjacent
blocks); here the forest is lightweight metadata, and the distributed
driver hands each simulated rank only its assigned blocks plus the
neighbourhood links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Block", "BlockForest"]


@dataclass(frozen=True)
class Block:
    """One chunk of the domain.

    Attributes
    ----------
    id:
        Dense integer id (lexicographic over the block grid).
    index:
        Position in the block grid, one entry per spatial axis.
    offset:
        Global cell offset of the block's first interior cell.
    shape:
        Interior cell counts of this block.
    """

    id: int
    index: tuple[int, ...]
    offset: tuple[int, ...]
    shape: tuple[int, ...]

    @property
    def n_cells(self) -> int:
        """Interior cell count."""
        return int(np.prod(self.shape))


class BlockForest:
    """Equally sized block partition with neighbourhood topology.

    Parameters
    ----------
    domain_shape:
        Global interior cell counts.
    blocks_per_axis:
        Number of blocks along each axis; must divide the domain shape.
    periodicity:
        Per-axis wrap flags (transverse axes are periodic in the Fig. 2
        setup, the growth axis is not).
    """

    def __init__(
        self,
        domain_shape: tuple[int, ...],
        blocks_per_axis: tuple[int, ...],
        periodicity: tuple[bool, ...] | None = None,
    ):
        domain_shape = tuple(int(s) for s in domain_shape)
        blocks_per_axis = tuple(int(b) for b in blocks_per_axis)
        if len(domain_shape) != len(blocks_per_axis):
            raise ValueError("dimension mismatch")
        for s, b in zip(domain_shape, blocks_per_axis):
            if b < 1:
                raise ValueError("need at least one block per axis")
            if s % b:
                raise ValueError(
                    f"blocks must evenly divide the domain: {s} % {b} != 0"
                )
        self.domain_shape = domain_shape
        self.blocks_per_axis = blocks_per_axis
        self.block_shape = tuple(
            s // b for s, b in zip(domain_shape, blocks_per_axis)
        )
        self.periodicity = (
            tuple(periodicity)
            if periodicity is not None
            else tuple([True] * (len(domain_shape) - 1) + [False])
        )
        self.blocks: list[Block] = []
        for bid, idx in enumerate(np.ndindex(*blocks_per_axis)):
            offset = tuple(i * s for i, s in zip(idx, self.block_shape))
            self.blocks.append(
                Block(id=bid, index=tuple(idx), offset=offset, shape=self.block_shape)
            )

    @property
    def dim(self) -> int:
        """Number of spatial axes."""
        return len(self.domain_shape)

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        return len(self.blocks)

    def block_id(self, index: tuple[int, ...]) -> int:
        """Dense id of the block at grid position *index*."""
        bid = 0
        for i, b in zip(index, self.blocks_per_axis):
            if not 0 <= i < b:
                raise IndexError(f"block index {index} out of range")
            bid = bid * b + i
        return bid

    def neighbor(self, block: Block, axis: int, side: int) -> Block | None:
        """Face neighbour of *block* along *axis* (side 0=low, 1=high).

        Returns ``None`` at non-periodic domain edges (boundary handling
        applies there instead of ghost exchange).
        """
        idx = list(block.index)
        idx[axis] += 1 if side else -1
        b = self.blocks_per_axis[axis]
        if idx[axis] < 0 or idx[axis] >= b:
            if not self.periodicity[axis]:
                return None
            idx[axis] %= b
        if tuple(idx) == block.index:
            # single periodic block wraps onto itself; the exchange code
            # handles self-neighbours like any other pair
            return block
        return self.blocks[self.block_id(tuple(idx))]

    def meta(self) -> dict:
        """JSON-serializable topology record (checkpoint manifests).

        Everything needed to rebuild an identical forest on a different
        process count: the domain itself never changes across an elastic
        restart, only the block-to-rank assignment does.
        """
        return {
            "domain_shape": list(self.domain_shape),
            "blocks_per_axis": list(self.blocks_per_axis),
            "periodicity": [bool(p) for p in self.periodicity],
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "BlockForest":
        """Rebuild the forest recorded by :meth:`meta`."""
        return cls(
            tuple(meta["domain_shape"]),
            tuple(meta["blocks_per_axis"]),
            tuple(meta["periodicity"]),
        )

    @classmethod
    def for_processes(
        cls,
        block_shape: tuple[int, ...],
        n_processes: int,
        periodicity: tuple[bool, ...] | None = None,
        blocks_per_process: int = 1,
    ) -> "BlockForest":
        """Weak-scaling construction: one (or more) blocks per process.

        Factorizes ``n_processes * blocks_per_process`` into a near-cubic
        block grid — the setup the scaling experiments of Sec. 5.1.2 use
        (domain grows with the process count, block size constant).
        """
        total = n_processes * blocks_per_process
        dims = _balanced_factors(total, len(block_shape))
        domain = tuple(d * s for d, s in zip(dims, block_shape))
        return cls(domain, dims, periodicity)


def _balanced_factors(n: int, dim: int) -> tuple[int, ...]:
    """Factorize *n* into *dim* near-equal factors (MPI_Dims_create-like)."""
    dims = [1] * dim
    remaining = n
    f = 2
    primes = []
    while f * f <= remaining:
        while remaining % f == 0:
            primes.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        primes.append(remaining)
    for p in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))
