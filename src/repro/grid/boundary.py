"""Domain boundary handling: Dirichlet, Neumann and periodic conditions.

The directional-solidification setup of Fig. 2 uses periodic conditions in
the transverse directions, a no-flux (Neumann) condition at the solid
bottom and a Dirichlet condition at the liquid top (fresh melt at the
far-field chemical potential).

Handlers fill ghost layers from the interior; they are applied axis by
axis so edge/corner ghost cells receive consistent values (required by the
D3C19 accesses of the mu sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Periodic", "Neumann", "Dirichlet", "BoundarySpec", "apply_boundaries"]


def _edge_slices(arr_ndim: int, dim: int, k: int, side: int, g: int):
    """(ghost, interior-edge) slice tuples for axis *k*, side 0=low/1=high."""
    ax = arr_ndim - dim + k
    ghost = [slice(None)] * arr_ndim
    edge = [slice(None)] * arr_ndim
    if side == 0:
        ghost[ax] = slice(0, g)
        edge[ax] = slice(g, 2 * g)
    else:
        ghost[ax] = slice(-g, None)
        edge[ax] = slice(-2 * g, -g)
    return tuple(ghost), tuple(edge)


@dataclass(frozen=True)
class Periodic:
    """Wrap-around: the ghost layer copies the opposite interior edge.

    In multi-block/distributed runs the wrap is realized by the ghost
    exchange instead; this handler covers the single-block case.
    """

    def apply(self, arr: np.ndarray, dim: int, k: int, side: int, g: int = 1) -> None:
        ax = arr.ndim - dim + k
        ghost, _ = _edge_slices(arr.ndim, dim, k, side, g)
        src = [slice(None)] * arr.ndim
        src[ax] = slice(-2 * g, -g) if side == 0 else slice(g, 2 * g)
        arr[ghost] = arr[tuple(src)]


@dataclass(frozen=True)
class Neumann:
    """Zero-gradient: the ghost layer mirrors the adjacent interior edge."""

    def apply(self, arr: np.ndarray, dim: int, k: int, side: int, g: int = 1) -> None:
        ghost, edge = _edge_slices(arr.ndim, dim, k, side, g)
        arr[ghost] = arr[edge]


@dataclass(frozen=True)
class Dirichlet:
    """Fixed boundary value: linear extrapolation so the *face* value is
    exactly ``value`` (``ghost = 2 v - interior_edge``).

    ``value`` may be a scalar or per-component array of shape ``(C,)``.
    """

    value: object = 0.0

    def apply(self, arr: np.ndarray, dim: int, k: int, side: int, g: int = 1) -> None:
        ghost, edge = _edge_slices(arr.ndim, dim, k, side, g)
        v = np.asarray(self.value, dtype=arr.dtype)
        if v.ndim == 1:
            v = v.reshape((-1,) + (1,) * dim)
        arr[ghost] = 2.0 * v - arr[edge]


@dataclass(frozen=True)
class BoundarySpec:
    """Per-axis, per-side boundary handlers for one field.

    ``handlers[k] = (low, high)`` for spatial axis *k*.  Periodic handlers
    must come in matching pairs.
    """

    handlers: tuple

    def __post_init__(self) -> None:
        for k, (lo, hi) in enumerate(self.handlers):
            if isinstance(lo, Periodic) != isinstance(hi, Periodic):
                raise ValueError(
                    f"axis {k}: periodic boundaries must be paired on both sides"
                )

    @property
    def dim(self) -> int:
        return len(self.handlers)

    def periodic_axes(self) -> tuple[int, ...]:
        """Axes with periodic wrap."""
        return tuple(
            k for k, (lo, _) in enumerate(self.handlers) if isinstance(lo, Periodic)
        )

    @classmethod
    def directional(
        cls, dim: int, *, bottom=None, top=None
    ) -> "BoundarySpec":
        """Fig.-2 defaults: periodic transverse, Neumann bottom, configurable top."""
        bottom = Neumann() if bottom is None else bottom
        top = Neumann() if top is None else top
        handlers = tuple(
            (Periodic(), Periodic()) for _ in range(dim - 1)
        ) + ((bottom, top),)
        return cls(handlers=handlers)


def apply_boundaries(arr: np.ndarray, spec: BoundarySpec, g: int = 1) -> None:
    """Fill all ghost layers of *arr* according to *spec*, axis by axis."""
    dim = spec.dim
    for k in range(dim):
        lo, hi = spec.handlers[k]
        lo.apply(arr, dim, k, 0, g)
        hi.apply(arr, dim, k, 1, g)
