"""Ghosted, double-buffered block fields.

Each model variable keeps two lattices (``src`` holding time ``t``, ``dst``
receiving ``t + dt``) exactly as described in Sec. 2.1; after both sweeps
the roles are swapped without copying.
"""

from __future__ import annotations

import numpy as np


class Field:
    """A multi-component cell field with ghost layers and two buffers.

    Parameters
    ----------
    n_components:
        Leading axis size (order parameters, chemical potentials, ...).
    spatial_shape:
        Interior cell counts per spatial axis.
    ghost:
        Ghost-layer width (1 suffices for the D3C7/D3C19 stencils).
    dtype:
        Storage dtype; computations run in float64, checkpoints may
        down-convert (Sec. 3.2).
    allocator:
        Optional ``allocator(shape, dtype) -> ndarray`` placing the two
        buffers in special memory.  The simmpi process backend passes a
        ``multiprocessing.shared_memory`` allocator here (via
        ``Communicator.field_allocator()``) so ghost slabs move between
        co-resident ranks by memcpy.  ``None`` means plain heap arrays.
        Buffers are zeroed either way.
    """

    def __init__(
        self,
        n_components: int,
        spatial_shape: tuple[int, ...],
        ghost: int = 1,
        dtype=np.float64,
        allocator=None,
    ):
        if n_components < 1:
            raise ValueError("need at least one component")
        if any(s < 1 for s in spatial_shape):
            raise ValueError(f"invalid spatial shape {spatial_shape}")
        self.n_components = n_components
        self.spatial_shape = tuple(spatial_shape)
        self.ghost = ghost
        gshape = tuple(s + 2 * ghost for s in spatial_shape)
        full = (n_components,) + gshape
        if allocator is None:
            self.src = np.zeros(full, dtype=dtype)
            self.dst = np.zeros(full, dtype=dtype)
        else:
            self.src = allocator(full, dtype)
            self.dst = allocator(full, dtype)
            self.src.fill(0)
            self.dst.fill(0)

    @property
    def dim(self) -> int:
        """Number of spatial axes."""
        return len(self.spatial_shape)

    @property
    def ghosted_shape(self) -> tuple[int, ...]:
        """Spatial shape including ghost layers."""
        return self.src.shape[1:]

    def _interior_slices(self) -> tuple[slice, ...]:
        g = self.ghost
        return (slice(None),) + tuple(slice(g, -g) for _ in self.spatial_shape)

    @property
    def interior_src(self) -> np.ndarray:
        """Interior view of the current-time buffer."""
        return self.src[self._interior_slices()]

    @property
    def interior_dst(self) -> np.ndarray:
        """Interior view of the next-time buffer."""
        return self.dst[self._interior_slices()]

    def swap(self) -> None:
        """Exchange the roles of ``src`` and ``dst`` (no copy)."""
        self.src, self.dst = self.dst, self.src

    def set_interior(self, values: np.ndarray, buffer: str = "src") -> None:
        """Write *values* (interior-shaped) into the chosen buffer."""
        target = getattr(self, buffer)
        target[self._interior_slices()] = values

    def copy(self) -> "Field":
        """Deep copy (checkpointing, moving-window snapshots)."""
        f = Field(self.n_components, self.spatial_shape, self.ghost, self.src.dtype)
        f.src[...] = self.src
        f.dst[...] = self.dst
        return f
