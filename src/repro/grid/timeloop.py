"""Functor-based time loop (the waLBerla "Timeloop" class).

"The computation kernels as well as the ghost layer exchange routines are
implemented as C++ functors, which are registered at a 'Timeloop' class to
manage the communication hiding."  This module reproduces that scheduling
layer: named functors are registered in execution order, each invocation
is timed individually, and pre-built schedules encode Algorithm 1 and the
Algorithm 2 overlap order.  The per-functor timing is what a Fig. 8-style
"time spent in communication" measurement reads out.

Timing is read through :meth:`Timeloop.timing_report` — a structured
``{name: {calls, total, avg, min, max, category}}`` dict — or, when a
:class:`repro.telemetry.timing.TimingTree` is attached, through the tree
(which then feeds the cross-rank reduction of
:mod:`repro.telemetry.reduce`).  Poking the ``Functor`` fields directly
still works but is deprecated; the report and the tree are the API.
When the attached tree carries a span tracer
(:mod:`repro.telemetry.tracing`), every functor invocation recorded into
the tree also becomes a ``timeloop/<name>`` span on the trace timeline —
the loop itself needs no extra wiring.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

__all__ = ["Functor", "FunctorError", "Timeloop"]

logger = logging.getLogger(__name__)


class FunctorError(RuntimeError):
    """A functor raised; carries its name and the step it failed in.

    Produced by :meth:`Timeloop.run` so that a failure deep inside a
    sweep or exchange routine still identifies *which* registered step of
    *which* time step broke — essential when a resilience watchdog
    triggers halfway through a long campaign.
    """

    def __init__(self, functor: str, step: int, original: BaseException):
        super().__init__(
            f"functor {functor!r} failed at step {step}: {original!r}"
        )
        self.functor = functor
        self.step = step
        self.original = original


@dataclass
class Functor:
    """One named step of the loop with accumulated timing.

    Every invocation — including one that raises — updates *all* the
    accumulators together (``calls``, ``seconds`` and the extrema), so
    ``seconds / calls`` read from a timing report after a crash is a true
    per-invocation average.  (An earlier version accumulated ``seconds``
    for failing invocations but bumped ``calls`` only on success, which
    silently inflated averages whenever the guard/rollback path raised.)

    The accumulator fields (``calls``, ``seconds``, ``min_seconds``,
    ``max_seconds``) are implementation details — read timings through
    :meth:`Timeloop.timing_report` instead, which is stable across
    refactors of this class.
    """

    name: str
    fn: object
    category: str = "compute"
    calls: int = field(default=0, init=False)
    seconds: float = field(default=0.0, init=False)
    min_seconds: float = field(default=float("inf"), init=False)
    max_seconds: float = field(default=0.0, init=False)

    def __call__(self) -> float:
        """Invoke and time the functor; returns the measured seconds."""
        t0 = time.perf_counter()
        try:
            self.fn()
        finally:
            # Stats update is atomic with the measurement: a raising
            # invocation is timed AND counted, keeping avg/min/max
            # consistent with the accumulated total.
            dt = time.perf_counter() - t0
            self.seconds += dt
            self.calls += 1
            if dt < self.min_seconds:
                self.min_seconds = dt
            if dt > self.max_seconds:
                self.max_seconds = dt
        return dt

    def reset(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0


class Timeloop:
    """Ordered functor executor with per-functor timing.

    Functors run in registration order each time step; categories
    (``compute`` / ``communication`` / ``boundary`` / ...) make it easy to
    report "time spent in communication" separately from kernel time.

    An optional :class:`repro.telemetry.timing.TimingTree` receives the
    *same* measured duration per completed invocation (scope
    ``timeloop/<functor-name>``), so tree totals and functor accumulators
    agree exactly, not merely to within timer resolution.
    """

    def __init__(self, tree=None) -> None:
        self._functors: list[Functor] = []
        self.steps = 0
        self.partial_steps = 0
        self.tree = tree

    def add(self, name: str, fn, category: str = "compute") -> Functor:
        """Register a functor; returns the handle (for timing queries)."""
        if any(f.name == name for f in self._functors):
            raise ValueError(f"functor {name!r} already registered")
        functor = Functor(name=name, fn=fn, category=category)
        self._functors.append(functor)
        return functor

    def insert_before(self, anchor: str, name: str, fn,
                      category: str = "compute") -> Functor:
        """Register *name* immediately before the *anchor* functor.

        This is how the overlap schedule is derived from the plain one:
        the deferred exchange functor moves ahead of the sweep it hides
        behind.
        """
        idx = self._index(anchor)
        functor = Functor(name=name, fn=fn, category=category)
        if any(f.name == name for f in self._functors):
            raise ValueError(f"functor {name!r} already registered")
        self._functors.insert(idx, functor)
        return functor

    def remove(self, name: str) -> None:
        """Unregister a functor."""
        self._functors.pop(self._index(name))

    def _index(self, name: str) -> int:
        for i, f in enumerate(self._functors):
            if f.name == name:
                return i
        raise KeyError(f"no functor named {name!r}")

    @property
    def order(self) -> list[str]:
        """Functor names in execution order."""
        return [f.name for f in self._functors]

    def run(self, steps: int = 1) -> None:
        """Execute all functors in order, *steps* times.

        A functor exception is re-raised as :class:`FunctorError`
        annotated with the functor name and the (zero-based) step number;
        the aborted step is counted in ``partial_steps``, not ``steps``.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        tree = self.tree
        for _ in range(steps):
            for f in self._functors:
                try:
                    dt = f()
                except Exception as exc:
                    self.partial_steps += 1
                    logger.error(
                        "functor %r failed at step %d: %r",
                        f.name, self.steps, exc,
                    )
                    raise FunctorError(f.name, self.steps, exc) from exc
                if tree is not None:
                    tree.record(("timeloop", f.name), dt)
            self.steps += 1

    def timing_report(self) -> dict[str, dict]:
        """Structured per-functor and per-category timing.

        Per functor: ``calls``, ``total`` / ``avg`` / ``min`` / ``max``
        seconds and the ``category``; plus per-category totals and the
        completed/aborted step counts.  This dict (not the ``Functor``
        fields) is the supported way to read timings; ``seconds`` is kept
        as a deprecated alias of ``total``.
        """
        per_functor = {
            f.name: {
                "category": f.category,
                "calls": f.calls,
                "total": f.seconds,
                "avg": f.seconds / f.calls if f.calls else 0.0,
                "min": f.min_seconds if f.calls else 0.0,
                "max": f.max_seconds,
                # deprecated alias (pre-telemetry callers)
                "seconds": f.seconds,
            }
            for f in self._functors
        }
        per_category: dict[str, float] = {}
        for f in self._functors:
            per_category[f.category] = per_category.get(f.category, 0.0) + f.seconds
        return {"functors": per_functor, "categories": per_category,
                "steps": self.steps, "partial_steps": self.partial_steps}

    def reset_timers(self) -> None:
        """Zero all accumulated timings (keep the schedule)."""
        for f in self._functors:
            f.reset()
        self.steps = 0
        self.partial_steps = 0
