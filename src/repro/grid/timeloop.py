"""Functor-based time loop (the waLBerla "Timeloop" class).

"The computation kernels as well as the ghost layer exchange routines are
implemented as C++ functors, which are registered at a 'Timeloop' class to
manage the communication hiding."  This module reproduces that scheduling
layer: named functors are registered in execution order, each invocation
is timed individually, and pre-built schedules encode Algorithm 1 and the
Algorithm 2 overlap order.  The per-functor timing is what a Fig. 8-style
"time spent in communication" measurement reads out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Functor", "FunctorError", "Timeloop"]


class FunctorError(RuntimeError):
    """A functor raised; carries its name and the step it failed in.

    Produced by :meth:`Timeloop.run` so that a failure deep inside a
    sweep or exchange routine still identifies *which* registered step of
    *which* time step broke — essential when a resilience watchdog
    triggers halfway through a long campaign.
    """

    def __init__(self, functor: str, step: int, original: BaseException):
        super().__init__(
            f"functor {functor!r} failed at step {step}: {original!r}"
        )
        self.functor = functor
        self.step = step
        self.original = original


@dataclass
class Functor:
    """One named step of the loop with accumulated timing.

    Time spent in a failing invocation is still accumulated (``calls``
    only counts completed ones), so a timing report taken after a crash
    reflects the partially-completed step.
    """

    name: str
    fn: object
    category: str = "compute"
    calls: int = field(default=0, init=False)
    seconds: float = field(default=0.0, init=False)

    def __call__(self) -> None:
        t0 = time.perf_counter()
        try:
            self.fn()
        finally:
            self.seconds += time.perf_counter() - t0
        self.calls += 1


class Timeloop:
    """Ordered functor executor with per-functor timing.

    Functors run in registration order each time step; categories
    (``compute`` / ``communication`` / ``boundary`` / ...) make it easy to
    report "time spent in communication" separately from kernel time.
    """

    def __init__(self) -> None:
        self._functors: list[Functor] = []
        self.steps = 0
        self.partial_steps = 0

    def add(self, name: str, fn, category: str = "compute") -> Functor:
        """Register a functor; returns the handle (for timing queries)."""
        if any(f.name == name for f in self._functors):
            raise ValueError(f"functor {name!r} already registered")
        functor = Functor(name=name, fn=fn, category=category)
        self._functors.append(functor)
        return functor

    def insert_before(self, anchor: str, name: str, fn,
                      category: str = "compute") -> Functor:
        """Register *name* immediately before the *anchor* functor.

        This is how the overlap schedule is derived from the plain one:
        the deferred exchange functor moves ahead of the sweep it hides
        behind.
        """
        idx = self._index(anchor)
        functor = Functor(name=name, fn=fn, category=category)
        if any(f.name == name for f in self._functors):
            raise ValueError(f"functor {name!r} already registered")
        self._functors.insert(idx, functor)
        return functor

    def remove(self, name: str) -> None:
        """Unregister a functor."""
        self._functors.pop(self._index(name))

    def _index(self, name: str) -> int:
        for i, f in enumerate(self._functors):
            if f.name == name:
                return i
        raise KeyError(f"no functor named {name!r}")

    @property
    def order(self) -> list[str]:
        """Functor names in execution order."""
        return [f.name for f in self._functors]

    def run(self, steps: int = 1) -> None:
        """Execute all functors in order, *steps* times.

        A functor exception is re-raised as :class:`FunctorError`
        annotated with the functor name and the (zero-based) step number;
        the aborted step is counted in ``partial_steps``, not ``steps``.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for _ in range(steps):
            for f in self._functors:
                try:
                    f()
                except Exception as exc:
                    self.partial_steps += 1
                    raise FunctorError(f.name, self.steps, exc) from exc
            self.steps += 1

    def timing_report(self) -> dict[str, dict]:
        """Per-functor and per-category accumulated seconds."""
        per_functor = {
            f.name: {"seconds": f.seconds, "calls": f.calls,
                     "category": f.category}
            for f in self._functors
        }
        per_category: dict[str, float] = {}
        for f in self._functors:
            per_category[f.category] = per_category.get(f.category, 0.0) + f.seconds
        return {"functors": per_functor, "categories": per_category,
                "steps": self.steps, "partial_steps": self.partial_steps}

    def reset_timers(self) -> None:
        """Zero all accumulated timings (keep the schedule)."""
        for f in self._functors:
            f.calls = 0
            f.seconds = 0.0
        self.steps = 0
        self.partial_steps = 0
