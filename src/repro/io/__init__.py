"""I/O subsystem (Sec. 3.2 of the paper).

Large-scale runs cannot afford to dump full fields often, so the paper
writes (a) infrequent single-precision checkpoints and (b) frequent
*surface meshes* of the phase interfaces, generated locally per block,
optionally coarsened with quadric-error edge collapse, and reduced
hierarchically over the process tree.

* :mod:`repro.io.checkpoint` — float32 checkpoints with exact restart,
* :mod:`repro.io.mesh` — triangle meshes, stitching, OBJ export,
* :mod:`repro.io.marching_cubes` — isosurface extraction (tetrahedral
  decomposition variant; consistent across block boundaries),
* :mod:`repro.io.simplify` — quadric-error-metric edge collapse,
* :mod:`repro.io.reduction` — the log2(P) gather-stitch-coarsen pipeline.
"""

from repro.io.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    save_state,
)
from repro.io.marching_cubes import extract_isosurface
from repro.io.mesh import TriangleMesh
from repro.io.simplify import simplify_mesh
from repro.io.reduction import hierarchical_mesh_reduction

__all__ = [
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "save_state",
    "extract_isosurface",
    "TriangleMesh",
    "simplify_mesh",
    "hierarchical_mesh_reduction",
]
