"""Single-precision checkpointing (Sec. 3.2).

"While all computations are carried out in double precision, checkpoints
use only single precision to save disk space and I/O bandwidth."  A
checkpoint stores the interior of both fields (four phi values and two mu
values per cell in the Ag-Al-Cu setup), the simulation clock and the
moving-window offset; restarting reproduces the run up to the float32
rounding of the stored state.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "restore_simulation"]

_FORMAT_VERSION = 1


def save_checkpoint(path, sim) -> dict:
    """Write the state of a :class:`repro.core.solver.Simulation`.

    Returns a summary dict (sizes) useful for I/O accounting.  The fields
    are down-converted to float32; metadata stays exact.
    """
    path = Path(path)
    phi = sim.phi.interior_src.astype(np.float32)
    mu = sim.mu.interior_src.astype(np.float32)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        phi=phi,
        mu=mu,
        time=np.float64(sim.time),
        step_count=np.int64(sim.step_count),
        z_offset=np.int64(sim.z_offset),
        shape=np.asarray(sim.shape, dtype=np.int64),
        kernel=np.bytes_(sim.kernel_name.encode()),
    )
    return {
        "path": str(path),
        "payload_bytes": phi.nbytes + mu.nbytes,
        "cells": int(np.prod(sim.shape)),
        "values_per_cell": phi.shape[0] + mu.shape[0],
    }


def load_checkpoint(path) -> dict:
    """Read a checkpoint into a plain dict (fields as float64 again)."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        return {
            "phi": data["phi"].astype(np.float64),
            "mu": data["mu"].astype(np.float64),
            "time": float(data["time"]),
            "step_count": int(data["step_count"]),
            "z_offset": int(data["z_offset"]),
            "shape": tuple(int(s) for s in data["shape"]),
            "kernel": bytes(data["kernel"]).decode(),
        }


def restore_simulation(path, sim) -> None:
    """Load a checkpoint into an existing, shape-compatible simulation."""
    state = load_checkpoint(path)
    if tuple(state["shape"]) != tuple(sim.shape):
        raise ValueError(
            f"checkpoint shape {state['shape']} does not match simulation "
            f"shape {sim.shape}"
        )
    sim.initialize(state["phi"], state["mu"])
    sim.time = state["time"]
    sim.step_count = state["step_count"]
    sim.z_offset = state["z_offset"]
