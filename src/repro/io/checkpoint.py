"""Durable single-precision checkpointing (Sec. 3.2).

"While all computations are carried out in double precision, checkpoints
use only single precision to save disk space and I/O bandwidth."  A
checkpoint stores the interior of both fields (four phi values and two mu
values per cell in the Ag-Al-Cu setup), the simulation clock and the
moving-window offset; restarting reproduces the run up to the float32
rounding of the stored state.

Durability guarantees (the production runs of Sec. 6 depend on
checkpoint/restart surviving multi-day jobs):

* **Atomic writes** — the archive is written to ``<name>.tmp``, flushed
  and fsynced, then moved into place with :func:`os.replace`.  A crash
  mid-write never leaves a half-written file under the final name.
* **Integrity manifest** (format v2) — a JSON manifest records a CRC32
  checksum, shape and dtype per array; :func:`load_checkpoint` verifies
  them and raises :class:`CheckpointError` on any mismatch.
* **Version negotiation** — v1 files (no manifest) still load; unknown
  future versions are rejected with a clear error.

:class:`CheckpointError` subclasses :class:`ValueError` so call sites
that predate the resilience subsystem keep working.
"""

from __future__ import annotations

import json
import logging
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

logger = logging.getLogger(__name__)

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "save_state",
    "load_checkpoint",
    "restore_simulation",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Arrays covered by the integrity manifest.
_CHECKED_ARRAYS = ("phi", "mu")


class CheckpointError(ValueError):
    """A checkpoint file is corrupt, incomplete or incompatible."""


def _crc32(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives machine crash.

    ``os.replace`` makes the rename atomic with respect to *process*
    crashes, but the new directory entry itself lives in the page cache
    until the directory inode is flushed — a power loss can still forget
    the file.  Best-effort: platforms without directory fds (Windows)
    skip silently.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _atomic_savez(path: Path, payload: dict) -> None:
    """Write an ``.npz`` archive atomically and durably.

    ``np.savez`` appends ``.npz`` to plain path arguments, so the archive
    is written through an open file object under a ``.tmp`` name and only
    renamed into place once it is fully on disk.  The temp file is fsynced
    before the rename and the parent directory after it, so a *committed*
    checkpoint survives a crash of the machine, not just of the process.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_state(
    path,
    *,
    phi: np.ndarray,
    mu: np.ndarray,
    time: float,
    step_count: int,
    z_offset: int = 0,
    kernel: str = "",
) -> dict:
    """Write interior field arrays plus clock metadata as a v2 checkpoint.

    The fields are down-converted to float32; metadata stays exact.
    Returns a summary dict (sizes, checksums) useful for I/O accounting.
    """
    path = Path(path)
    phi32 = np.ascontiguousarray(phi, dtype=np.float32)
    mu32 = np.ascontiguousarray(mu, dtype=np.float32)
    shape = tuple(phi32.shape[1:])
    if tuple(mu32.shape[1:]) != shape:
        raise CheckpointError(
            f"phi spatial shape {shape} and mu spatial shape "
            f"{tuple(mu32.shape[1:])} disagree"
        )
    checksums = {"phi": _crc32(phi32), "mu": _crc32(mu32)}
    manifest = {
        "format_version": _FORMAT_VERSION,
        "arrays": {
            name: {
                "crc32": checksums[name],
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
            }
            for name, arr in (("phi", phi32), ("mu", mu32))
        },
        "meta": {"step_count": int(step_count), "kernel": kernel},
    }
    _atomic_savez(
        path,
        dict(
            format_version=np.int64(_FORMAT_VERSION),
            manifest=np.bytes_(json.dumps(manifest).encode()),
            phi=phi32,
            mu=mu32,
            time=np.float64(time),
            step_count=np.int64(step_count),
            z_offset=np.int64(z_offset),
            shape=np.asarray(shape, dtype=np.int64),
            kernel=np.bytes_(kernel.encode()),
        ),
    )
    logger.debug(
        "checkpoint saved to %s (%d payload bytes, step %d)",
        path, phi32.nbytes + mu32.nbytes, step_count,
    )
    return {
        "path": str(path),
        "payload_bytes": phi32.nbytes + mu32.nbytes,
        "cells": int(np.prod(shape)),
        "values_per_cell": phi32.shape[0] + mu32.shape[0],
        "format_version": _FORMAT_VERSION,
        "checksums": checksums,
    }


def save_checkpoint(path, sim) -> dict:
    """Write the state of a :class:`repro.core.solver.Simulation`.

    Atomic (write-to-temp then rename) and checksummed; see
    :func:`save_state` for the format details.
    """
    return save_state(
        path,
        phi=sim.phi.interior_src,
        mu=sim.mu.interior_src,
        time=sim.time,
        step_count=sim.step_count,
        z_offset=sim.z_offset,
        kernel=sim.kernel_name,
    )


def _read_archive(data) -> dict:
    version = int(data["format_version"])
    if version not in _SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version} "
            f"(supported: {list(_SUPPORTED_VERSIONS)})"
        )
    phi32 = data["phi"]
    mu32 = data["mu"]
    shape = tuple(int(s) for s in data["shape"])

    if version < 2:
        logger.warning(
            "loading legacy v%d checkpoint without integrity manifest", version
        )
    if version >= 2:
        manifest = json.loads(bytes(data["manifest"]).decode())
        for name, arr in (("phi", phi32), ("mu", mu32)):
            entry = manifest["arrays"].get(name)
            if entry is None:
                raise CheckpointError(f"manifest lacks an entry for {name!r}")
            if tuple(entry["shape"]) != arr.shape:
                raise CheckpointError(
                    f"manifest shape {tuple(entry['shape'])} does not match "
                    f"stored {name} array shape {arr.shape}"
                )
            crc = _crc32(arr)
            if crc != int(entry["crc32"]):
                raise CheckpointError(
                    f"checksum mismatch for {name}: stored "
                    f"{int(entry['crc32']):#010x}, computed {crc:#010x}"
                )

    for name, arr in (("phi", phi32), ("mu", mu32)):
        if tuple(arr.shape[1:]) != shape:
            raise CheckpointError(
                f"{name} array shape {arr.shape} disagrees with the stored "
                f"shape metadata {shape}"
            )

    return {
        "phi": phi32.astype(np.float64),
        "mu": mu32.astype(np.float64),
        "time": float(data["time"]),
        "step_count": int(data["step_count"]),
        "z_offset": int(data["z_offset"]),
        "shape": shape,
        "kernel": bytes(data["kernel"]).decode(),
        "format_version": version,
    }


def load_checkpoint(path) -> dict:
    """Read and verify a checkpoint into a plain dict (fields as float64).

    Raises :class:`FileNotFoundError` when the file is absent and
    :class:`CheckpointError` when it is truncated, corrupt (checksum or
    shape-metadata mismatch), missing required entries, or written by an
    unsupported format version.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    try:
        with np.load(path) as data:
            return _read_archive(data)
    except CheckpointError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc


def restore_simulation(path, sim) -> None:
    """Load a checkpoint into an existing, shape-compatible simulation."""
    state = load_checkpoint(path)
    if tuple(state["shape"]) != tuple(sim.shape):
        raise CheckpointError(
            f"checkpoint shape {state['shape']} does not match simulation "
            f"shape {sim.shape}"
        )
    sim.load_state(state)
