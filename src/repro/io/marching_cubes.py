"""Isosurface extraction on block-local fields (Sec. 3.2).

The paper implements a custom marching-cubes pass (based on Lorensen &
Cline) that runs per block, extends into the ghost region so local meshes
stitch seamlessly, and produces one interface mesh per phase.  This module
implements the *tetrahedral-decomposition* member of the marching-cubes
family (marching tetrahedra on the 6-tet Kuhn split of each cube):

* the case tables are generated programmatically instead of embedding the
  classic 256-entry triangle table (a documented substitution — the
  emitted surface is equivalent up to triangulation, with ~2x triangles,
  which the edge-collapse coarsening step removes again);
* the Kuhn split uses the same main diagonal in every cube, so the
  triangulation of a cube face is identical from both adjacent cubes —
  including across block boundaries, which is what makes the stitched
  global mesh watertight.

Input volumes are cell-centred fields; corner values live on the cell
lattice.  Pass a block's ghost-extended field so neighbouring blocks share
their boundary cube layer (the paper's "extends to the ghost regions").
"""

from __future__ import annotations

import numpy as np

from repro.io.mesh import TriangleMesh

__all__ = ["extract_isosurface", "extract_phase_meshes"]

# corner index = 4*x + 2*y + z over the unit cube
_CORNERS = np.array(
    [
        [0, 0, 0], [0, 0, 1], [0, 1, 0], [0, 1, 1],
        [1, 0, 0], [1, 0, 1], [1, 1, 0], [1, 1, 1],
    ],
    dtype=np.int64,
)


def _corner_index(offset) -> int:
    return 4 * offset[0] + 2 * offset[1] + offset[2]


def _kuhn_tets() -> np.ndarray:
    """The six tetrahedra of the Kuhn split, as cube-corner indices."""
    from itertools import permutations

    tets = []
    for perm in permutations(range(3)):
        path = [np.zeros(3, dtype=int)]
        for axis in perm:
            nxt = path[-1].copy()
            nxt[axis] = 1
            path.append(nxt)
        # tet corners: start, first step, second step, opposite corner
        tets.append([_corner_index(path[0]), _corner_index(path[1]),
                     _corner_index(path[2]), _corner_index(path[3])])
    return np.array(tets, dtype=np.int64)


_TETS = _kuhn_tets()


def _tet_cases() -> dict[int, list[list[tuple[int, int]]]]:
    """Triangles per 4-bit inside-mask, as lists of crossing edges.

    Each triangle is three ``(inside_corner, outside_corner)`` pairs whose
    interpolated surface points form the triangle.  Generated from first
    principles: one triangle when a single corner is separated, two when
    the tet is split 2-2.
    """
    cases: dict[int, list[list[tuple[int, int]]]] = {}
    for mask in range(1, 15):
        inside = [i for i in range(4) if mask & (1 << i)]
        outside = [i for i in range(4) if not mask & (1 << i)]
        tris: list[list[tuple[int, int]]] = []
        if len(inside) == 1:
            s = inside[0]
            tris.append([(s, outside[0]), (s, outside[1]), (s, outside[2])])
        elif len(inside) == 3:
            o = outside[0]
            tris.append([(inside[0], o), (inside[1], o), (inside[2], o)])
        else:
            s0, s1 = inside
            o0, o1 = outside
            quad = [(s0, o0), (s0, o1), (s1, o1), (s1, o0)]
            tris.append([quad[0], quad[1], quad[2]])
            tris.append([quad[0], quad[2], quad[3]])
        cases[mask] = tris
    return cases


_CASES = _tet_cases()


def extract_isosurface(
    volume: np.ndarray,
    level: float = 0.5,
    origin=(0.0, 0.0, 0.0),
    spacing: float = 1.0,
) -> TriangleMesh:
    """Extract the ``volume == level`` surface as a triangle mesh.

    *volume* is a 3-D array of lattice (cell-centre) values; triangles are
    oriented with normals pointing from the ``> level`` region outward.
    """
    v = np.asarray(volume, dtype=float)
    if v.ndim != 3:
        raise ValueError(f"need a 3-D volume, got shape {v.shape}")
    if min(v.shape) < 2:
        return TriangleMesh.empty()

    # corner values per cube: (8, cx, cy, cz)
    cshape = tuple(s - 1 for s in v.shape)
    corner_vals = np.empty((8,) + cshape)
    for c, (dx, dy, dz) in enumerate(_CORNERS):
        corner_vals[c] = v[
            dx : dx + cshape[0], dy : dy + cshape[1], dz : dz + cshape[2]
        ]
    inside = corner_vals > level

    tri_points: list[np.ndarray] = []
    origin = np.asarray(origin, dtype=float)

    # cube base coordinates, flattened once
    gx, gy, gz = np.meshgrid(
        np.arange(cshape[0]), np.arange(cshape[1]), np.arange(cshape[2]),
        indexing="ij",
    )
    base = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3).astype(float)

    flat_vals = corner_vals.reshape(8, -1)
    flat_inside = inside.reshape(8, -1)

    for tet in _TETS:
        mask = np.zeros(flat_vals.shape[1], dtype=np.int64)
        for bit, corner in enumerate(tet):
            mask |= flat_inside[corner].astype(np.int64) << bit
        for case, tris in _CASES.items():
            sel = np.nonzero(mask == case)[0]
            if sel.size == 0:
                continue
            for tri in tris:
                pts = []
                for s_loc, o_loc in tri:
                    cs, co = tet[s_loc], tet[o_loc]
                    vs = flat_vals[cs, sel]
                    vo = flat_vals[co, sel]
                    t = (level - vs) / (vo - vs)
                    ps = base[sel] + _CORNERS[cs]
                    po = base[sel] + _CORNERS[co]
                    pts.append(ps + t[:, None] * (po - ps))
                p0, p1, p2 = pts
                # orient: normal points from the inside region outward
                normal = np.cross(p1 - p0, p2 - p0)
                icorners = [tet[i] for i in range(4) if case & (1 << i)]
                pin = np.mean(
                    [base[sel] + _CORNERS[c] for c in icorners], axis=0
                )
                centroid = (p0 + p1 + p2) / 3.0
                flip = np.einsum("ij,ij->i", normal, centroid - pin) < 0
                p1f = np.where(flip[:, None], p2, p1)
                p2f = np.where(flip[:, None], p1, p2)
                tri_points.append(np.stack([p0, p1f, p2f], axis=1))

    if not tri_points:
        return TriangleMesh.empty()
    all_tris = np.concatenate(tri_points, axis=0)  # (m, 3, 3)
    all_tris = all_tris * spacing + origin
    m = all_tris.shape[0]
    mesh = TriangleMesh(all_tris.reshape(-1, 3), np.arange(3 * m).reshape(-1, 3))
    return mesh.weld()


def extract_phase_meshes(
    phi: np.ndarray, level: float = 0.5, origin=(0.0, 0.0, 0.0),
    spacing: float = 1.0, phases=None,
) -> dict[int, TriangleMesh]:
    """Per-phase interface meshes (the paper writes one mesh per phase).

    *phi* has shape ``(N, nx, ny, nz)``; returns ``{phase_index: mesh}``
    for the requested (default: all) phases.
    """
    phases = range(phi.shape[0]) if phases is None else phases
    return {
        a: extract_isosurface(phi[a], level=level, origin=origin, spacing=spacing)
        for a in phases
    }
