"""Triangle surface meshes: storage, stitching, topology checks, export.

The mesh output pipeline of the paper generates per-block interface meshes
that "can be stitched together to a single mesh describing the complete
domain".  Stitching here means welding vertices that coincide (block-
boundary duplicates) and dropping degenerate faces; topology queries
(boundary edges, Euler characteristic, watertightness) back the property
tests of the pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TriangleMesh"]

#: Vertices are welded on a grid of this resolution (in mesh units).
WELD_DECIMALS = 7


class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(n, 3)`` float array of positions.
    faces:
        ``(m, 3)`` int array of vertex indices (counter-clockwise as seen
        from the outward normal side).
    """

    def __init__(self, vertices: np.ndarray, faces: np.ndarray):
        self.vertices = np.asarray(vertices, dtype=float).reshape(-1, 3)
        self.faces = np.asarray(faces, dtype=np.int64).reshape(-1, 3)
        if self.faces.size and self.faces.max() >= len(self.vertices):
            raise ValueError("face index out of range")

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_faces(self) -> int:
        return len(self.faces)

    def face_normals(self, normalized: bool = True) -> np.ndarray:
        """Per-face normal vectors (zero for degenerate faces)."""
        v = self.vertices
        f = self.faces
        n = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
        if normalized:
            norm = np.linalg.norm(n, axis=1, keepdims=True)
            norm[norm == 0] = 1.0
            n = n / norm
        return n

    def area(self) -> float:
        """Total surface area."""
        v = self.vertices
        f = self.faces
        n = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
        return float(0.5 * np.linalg.norm(n, axis=1).sum())

    def edges(self, unique: bool = True) -> np.ndarray:
        """Edge list ``(e, 2)``; sorted per edge, optionally deduplicated."""
        f = self.faces
        e = np.concatenate([f[:, [0, 1]], f[:, [1, 2]], f[:, [2, 0]]])
        e = np.sort(e, axis=1)
        if unique:
            e = np.unique(e, axis=0)
        return e

    def edge_face_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique edges and the number of faces incident to each."""
        f = self.faces
        e = np.concatenate([f[:, [0, 1]], f[:, [1, 2]], f[:, [2, 0]]])
        e = np.sort(e, axis=1)
        uniq, counts = np.unique(e, axis=0, return_counts=True)
        return uniq, counts

    def boundary_vertices(self) -> np.ndarray:
        """Indices of vertices on open boundaries (edges with one face).

        These are the vertices the hierarchical reduction protects with a
        high collapse weight so later stitching still matches.
        """
        uniq, counts = self.edge_face_counts()
        return np.unique(uniq[counts == 1])

    def is_watertight(self) -> bool:
        """True when every edge borders exactly two faces."""
        if self.n_faces == 0:
            return False
        _, counts = self.edge_face_counts()
        return bool(np.all(counts == 2))

    def euler_characteristic(self) -> int:
        """V - E + F of the referenced sub-complex."""
        used = np.unique(self.faces)
        return int(used.size - len(self.edges()) + self.n_faces)

    # ------------------------------------------------------------------ #
    # cleanup and merging
    # ------------------------------------------------------------------ #

    def compact(self) -> "TriangleMesh":
        """Drop unreferenced vertices and reindex faces."""
        used, inverse = np.unique(self.faces, return_inverse=True)
        return TriangleMesh(self.vertices[used], inverse.reshape(-1, 3))

    def weld(self, decimals: int = WELD_DECIMALS) -> "TriangleMesh":
        """Merge coincident vertices (grid snap) and drop degenerate faces."""
        if self.n_vertices == 0:
            return TriangleMesh(self.vertices, self.faces)
        key = np.round(self.vertices, decimals)
        _, first, inverse = np.unique(
            key, axis=0, return_index=True, return_inverse=True
        )
        verts = self.vertices[first]
        faces = inverse[self.faces]
        good = (
            (faces[:, 0] != faces[:, 1])
            & (faces[:, 1] != faces[:, 2])
            & (faces[:, 2] != faces[:, 0])
        )
        return TriangleMesh(verts, faces[good]).compact()

    def stitch(self, other: "TriangleMesh") -> "TriangleMesh":
        """Concatenate and weld two meshes (block-boundary seams close)."""
        verts = np.vstack([self.vertices, other.vertices])
        faces = np.vstack([self.faces, other.faces + self.n_vertices])
        return TriangleMesh(verts, faces).weld()

    def translated(self, offset) -> "TriangleMesh":
        """Copy shifted by *offset* (block origin placement)."""
        return TriangleMesh(self.vertices + np.asarray(offset, dtype=float),
                            self.faces.copy())

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def write_obj(self, path) -> int:
        """Write Wavefront OBJ; returns the number of bytes written."""
        lines = ["# repro interface mesh\n"]
        for v in self.vertices:
            lines.append(f"v {v[0]:.6g} {v[1]:.6g} {v[2]:.6g}\n")
        for f in self.faces:
            lines.append(f"f {f[0] + 1} {f[1] + 1} {f[2] + 1}\n")
        data = "".join(lines)
        with open(path, "w", encoding="ascii") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def empty(cls) -> "TriangleMesh":
        """A mesh with no geometry (blocks without interface)."""
        return cls(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64))
