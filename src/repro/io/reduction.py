"""Hierarchical gather-stitch-coarsen mesh reduction (Sec. 3.2).

"In a first step, each process calls the edge-collapse algorithm on its
local mesh ... Then, two local meshes are gathered on a process, stitched
together, and again coarsened in the stitched region.  This step is
repeated log2(processes) times where in each step only half of the
processes take part."

This module runs exactly that pipeline on the simulated MPI runtime: the
local pre-coarsening protects block-boundary vertices (high collapse
weight, here a hard pin) so the later stitching can weld the seams, and
every pairwise merge re-coarsens the combined mesh.  A memory guard stops
the reduction when the merged mesh exceeds a per-node budget — the paper's
"cannot be stored in the memory of a single node" case, where
postprocessing would resume on a larger machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.mesh import TriangleMesh
from repro.io.simplify import simplify_mesh
from repro.simmpi.reduce_tree import run_pairwise_reduction

__all__ = ["hierarchical_mesh_reduction", "ReductionLimits"]


@dataclass(frozen=True)
class ReductionLimits:
    """Budgets of the reduction pipeline.

    Parameters
    ----------
    local_ratio:
        Pre-coarsening ratio applied to each block-local mesh.
    merge_ratio:
        Coarsening ratio applied after every pairwise stitch.
    max_faces:
        Per-node memory guard: once a merged mesh would exceed this face
        count even after coarsening, merging continues without further
        coarsening and the pipeline reports the overflow.
    """

    local_ratio: float = 0.5
    merge_ratio: float = 0.7
    max_faces: int = 2_000_000


def _coarsen_protected(mesh: TriangleMesh, ratio: float) -> TriangleMesh:
    """Coarsen while pinning open-boundary vertices (block seams)."""
    if mesh.n_faces < 8:
        return mesh
    protected = mesh.boundary_vertices()
    return simplify_mesh(mesh, target_ratio=ratio, protected_vertices=protected)


def hierarchical_mesh_reduction(
    comm,
    local_mesh: TriangleMesh,
    limits: ReductionLimits | None = None,
) -> TriangleMesh | None:
    """Reduce per-rank meshes to one global mesh on rank 0.

    *local_mesh* is this rank's marching-cubes output (already placed in
    global coordinates).  Returns the stitched, coarsened global mesh on
    rank 0 and ``None`` on all other ranks.
    """
    limits = limits if limits is not None else ReductionLimits()
    mesh = _coarsen_protected(local_mesh, limits.local_ratio)

    def combine(a: TriangleMesh, b: TriangleMesh) -> TriangleMesh:
        merged = a.stitch(b)
        if merged.n_faces > limits.max_faces:
            return merged  # memory guard: keep as is, defer coarsening
        return _coarsen_protected(merged, limits.merge_ratio)

    return run_pairwise_reduction(comm, mesh, combine)
