"""Globally consistent sharded checkpoints (elastic restart format).

At the paper's scale (Sec. 6 runs on 262,144 cores) a checkpoint cannot
be a single file written by one rank: every rank writes its **own shard**
holding the interior of the blocks it owns, and rank 0 publishes a JSON
**manifest** naming all shards, their per-array CRC32 checksums and the
domain topology.  The manifest is the commit record of a two-phase
protocol:

1. *write phase* — every rank writes its shard atomically (temp file,
   fsync, rename, directory fsync).  A crash here leaves orphan shards
   that no manifest references; they are garbage, never a restart point.
2. *publish phase* — once every shard is durably on disk, rank 0 writes
   the manifest (again atomic + fsynced).  Only the appearance of the
   manifest makes the checkpoint loadable.

Because the manifest records the full topology
(:meth:`repro.grid.blockforest.BlockForest.meta` plus the block-owner
map), a checkpoint written by N ranks can be **resharded** and restored
on any M ≥ 1 ranks: :func:`reshard` rebuilds the identical forest,
reassigns blocks to the surviving process count and regroups the stored
block arrays per new rank — the loader that makes shrink-and-resume
restarts possible after a rank failure.

Fields are stored in float32 like the single-file format of
:mod:`repro.io.checkpoint` ("checkpoints use only single precision to
save disk space and I/O bandwidth", Sec. 3.2).
"""

from __future__ import annotations

import json
import logging
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.io.checkpoint import CheckpointError, _fsync_dir

__all__ = [
    "SHARD_FORMAT_VERSION",
    "shard_path",
    "manifest_path",
    "write_shard",
    "write_manifest",
    "load_shard",
    "load_sharded",
    "reshard",
]

logger = logging.getLogger(__name__)

SHARD_FORMAT_VERSION = 1


def _crc32(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


# --------------------------------------------------------------------- #
# naming
# --------------------------------------------------------------------- #


def shard_path(directory, prefix: str, step: int, rank: int) -> Path:
    """Shard file of one rank at one step."""
    return Path(directory) / f"{prefix}-{step:010d}.rank{rank:04d}.npz"


def manifest_path(directory, prefix: str, step: int) -> Path:
    """Manifest (commit record) of one step's checkpoint."""
    return Path(directory) / f"{prefix}-{step:010d}.manifest.json"


# --------------------------------------------------------------------- #
# write phase
# --------------------------------------------------------------------- #


def write_shard(path, blocks: dict, *, rank: int) -> dict:
    """Atomically write one rank's blocks; returns its manifest entry.

    *blocks* maps global block ids to ``(phi, mu)`` interior arrays
    (any float dtype; stored as float32).  The returned entry carries the
    per-array CRCs the manifest needs — computed from the exact bytes
    written, so a torn or bit-flipped shard is caught at load time.
    """
    path = Path(path)
    payload: dict = {
        "format_version": np.int64(SHARD_FORMAT_VERSION),
        "rank": np.int64(rank),
        "block_ids": np.asarray(sorted(blocks), dtype=np.int64),
    }
    arrays_meta: dict = {}
    for bid in sorted(blocks):
        phi, mu = blocks[bid]
        for name, arr in ((f"phi_{bid}", phi), (f"mu_{bid}", mu)):
            arr32 = np.ascontiguousarray(arr, dtype=np.float32)
            payload[name] = arr32
            arrays_meta[name] = {
                "crc32": _crc32(arr32),
                "shape": list(arr32.shape),
                "dtype": str(arr32.dtype),
            }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return {
        "rank": int(rank),
        "file": path.name,
        "blocks": [int(b) for b in sorted(blocks)],
        "arrays": arrays_meta,
    }


def write_manifest(
    path,
    shard_entries: list[dict],
    *,
    step: int,
    time: float,
    topology: dict,
    z_offset: int = 0,
    kernel: str = "",
) -> Path:
    """Publish the manifest — the commit point of the two-phase write.

    Must only be called after **every** entry in *shard_entries* refers
    to a durably written shard; the caller (rank 0) collects the entries
    from all ranks, so a rank that failed its write simply contributes no
    entry and the checkpoint is not committed.

    *topology* carries the forest record
    (:meth:`~repro.grid.blockforest.BlockForest.meta`) plus ``n_ranks``
    and the block ``owner`` list of the writing decomposition.
    """
    path = Path(path)
    ranks = [e["rank"] for e in shard_entries]
    if len(set(ranks)) != len(ranks):
        raise CheckpointError(f"duplicate shard ranks in manifest: {ranks}")
    owned: list[int] = sorted(
        b for e in shard_entries for b in e["blocks"]
    )
    n_blocks = 1
    for b in topology["blocks_per_axis"]:
        n_blocks *= int(b)
    if owned != list(range(n_blocks)):
        raise CheckpointError(
            f"shards cover blocks {owned}, expected all of 0..{n_blocks - 1}"
        )
    manifest = {
        "format_version": SHARD_FORMAT_VERSION,
        "step": int(step),
        "time": float(time),
        "z_offset": int(z_offset),
        "kernel": kernel,
        "topology": topology,
        "shards": sorted(shard_entries, key=lambda e: e["rank"]),
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    logger.debug(
        "sharded checkpoint committed: %s (%d shards, step %d)",
        path, len(shard_entries), step,
    )
    return path


# --------------------------------------------------------------------- #
# load phase
# --------------------------------------------------------------------- #


def load_shard(path, entry: dict) -> dict:
    """Read one shard, verifying every array against its manifest entry.

    Returns ``{block_id: (phi64, mu64)}``.  Raises
    :class:`~repro.io.checkpoint.CheckpointError` on truncation, CRC or
    shape mismatch, or missing arrays.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"manifest references missing shard {path}")
    blocks: dict = {}
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version != SHARD_FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported shard format version {version}"
                )
            for name, meta in entry["arrays"].items():
                if name not in data:
                    raise CheckpointError(f"shard {path} lacks array {name!r}")
                arr = data[name]
                if list(arr.shape) != list(meta["shape"]):
                    raise CheckpointError(
                        f"shard {path}: {name} shape {arr.shape} does not "
                        f"match manifest {meta['shape']}"
                    )
                crc = _crc32(arr)
                if crc != int(meta["crc32"]):
                    raise CheckpointError(
                        f"shard {path}: checksum mismatch for {name} "
                        f"(stored {int(meta['crc32']):#010x}, "
                        f"computed {crc:#010x})"
                    )
            for bid in entry["blocks"]:
                blocks[int(bid)] = (
                    data[f"phi_{bid}"].astype(np.float64),
                    data[f"mu_{bid}"].astype(np.float64),
                )
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError) as exc:
        raise CheckpointError(f"corrupt shard {path}: {exc}") from exc
    return blocks


def _read_manifest(path) -> dict:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt manifest {path}: {exc}") from exc
    if manifest.get("format_version") != SHARD_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported manifest format version "
            f"{manifest.get('format_version')!r} in {path}"
        )
    for key in ("step", "time", "topology", "shards"):
        if key not in manifest:
            raise CheckpointError(f"manifest {path} lacks key {key!r}")
    return manifest


def load_sharded(manifest_file) -> dict:
    """Load a committed sharded checkpoint, reassembling the global state.

    Every shard is verified (existence, CRC, shape) before any data is
    trusted.  Returns the usual state dict (``phi`` / ``mu`` as float64
    global arrays, ``time``, ``step_count``, ``z_offset``, ``kernel``)
    plus ``blocks`` (``{block_id: (phi, mu)}``) and the recorded
    ``topology`` so callers can reshard.
    """
    manifest_file = Path(manifest_file)
    manifest = _read_manifest(manifest_file)
    from repro.grid.blockforest import BlockForest

    topology = manifest["topology"]
    forest = BlockForest.from_meta(topology)
    blocks: dict = {}
    for entry in manifest["shards"]:
        shard_file = manifest_file.parent / entry["file"]
        blocks.update(load_shard(shard_file, entry))
    missing = [b.id for b in forest.blocks if b.id not in blocks]
    if missing:
        raise CheckpointError(
            f"sharded checkpoint {manifest_file} lacks blocks {missing}"
        )

    first_phi, first_mu = blocks[0]
    n_phases, n_solutes = first_phi.shape[0], first_mu.shape[0]
    phi = np.empty((n_phases, *forest.domain_shape), dtype=np.float64)
    mu = np.empty((n_solutes, *forest.domain_shape), dtype=np.float64)
    for b in forest.blocks:
        phi_loc, mu_loc = blocks[b.id]
        if tuple(phi_loc.shape[1:]) != b.shape:
            raise CheckpointError(
                f"block {b.id} stored shape {phi_loc.shape[1:]} does not "
                f"match forest block shape {b.shape}"
            )
        sl = (slice(None),) + tuple(
            slice(o, o + s) for o, s in zip(b.offset, b.shape)
        )
        phi[sl] = phi_loc
        mu[sl] = mu_loc
    return {
        "phi": phi,
        "mu": mu,
        "time": float(manifest["time"]),
        "step_count": int(manifest["step"]),
        "z_offset": int(manifest.get("z_offset", 0)),
        "kernel": manifest.get("kernel", ""),
        "blocks": blocks,
        "topology": topology,
        "format_version": SHARD_FORMAT_VERSION,
    }


def reshard(state: dict, n_ranks: int, *, strategy: str = "contiguous") -> dict:
    """Regroup a loaded sharded checkpoint for a new process count.

    *state* is the result of :func:`load_sharded` (written by N ranks);
    the blocks are reassigned to *n_ranks* ranks by re-running the same
    deterministic decomposition the distributed driver uses
    (:func:`repro.grid.balance.assign_blocks` over the manifest's forest),
    so loading a 4-rank checkpoint on 2 ranks hands each new rank exactly
    the blocks it would own in a fresh 2-rank run.

    Returns ``{"owner": [...], "blocks_by_rank": {rank: {bid: (phi,
    mu)}}, "n_ranks": M}``.
    """
    from repro.grid.balance import assign_blocks
    from repro.grid.blockforest import BlockForest

    forest = BlockForest.from_meta(state["topology"])
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > forest.n_blocks:
        raise CheckpointError(
            f"cannot reshard {forest.n_blocks} blocks onto {n_ranks} ranks"
        )
    owner = assign_blocks(forest, n_ranks, strategy)
    blocks_by_rank: dict[int, dict] = {r: {} for r in range(n_ranks)}
    for bid, (phi_loc, mu_loc) in state["blocks"].items():
        blocks_by_rank[owner[bid]][bid] = (phi_loc, mu_loc)
    return {"owner": owner, "blocks_by_rank": blocks_by_rank, "n_ranks": n_ranks}
