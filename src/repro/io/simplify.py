"""Quadric-error-metric edge-collapse mesh simplification.

The paper coarsens the (unnecessarily fine, ~dx edge length) marching-cubes
meshes with the Garland-Heckbert quadric-error edge-collapse algorithm of
the VCG library; boundary vertices get a high weight so block seams stay
intact for the later stitching.  This module implements the same algorithm
from scratch:

* per-vertex 4x4 plane quadrics accumulated from incident faces,
* boundary edges additionally constrained by perpendicular "virtual
  planes" (so open boundaries keep their shape),
* greedy collapse via a lazy min-heap with version stamps,
* optimal collapse position from the 3x3 normal system, falling back to
  the best of (midpoint, both endpoints),
* optional hard protection of caller-specified vertices (used by the
  hierarchical reduction to pin block-boundary vertices exactly).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.io.mesh import TriangleMesh

__all__ = ["simplify_mesh"]

#: Weight of the boundary-preserving virtual planes.
BOUNDARY_WEIGHT = 1e3


def _plane_quadric(p0, p1, p2) -> np.ndarray:
    """Fundamental quadric of the plane through a triangle (4x4)."""
    n = np.cross(p1 - p0, p2 - p0)
    norm = np.linalg.norm(n)
    if norm == 0.0:
        return np.zeros((4, 4))
    n = n / norm
    d = -float(n @ p0)
    plane = np.append(n, d)
    return np.outer(plane, plane) * norm  # area weighting


def _boundary_quadric(p0, p1, face_normal) -> np.ndarray:
    """Virtual plane through a boundary edge, perpendicular to its face."""
    edge = p1 - p0
    n = np.cross(edge, face_normal)
    norm = np.linalg.norm(n)
    if norm == 0.0:
        return np.zeros((4, 4))
    n = n / norm
    d = -float(n @ p0)
    plane = np.append(n, d)
    return np.outer(plane, plane) * (BOUNDARY_WEIGHT * np.linalg.norm(edge))


def _optimal_position(q: np.ndarray, p_a, p_b):
    """Collapse target minimizing ``v' Q v`` with robust fallbacks."""
    a3 = q[:3, :3]
    b3 = -q[:3, 3]
    try:
        if abs(np.linalg.det(a3)) > 1e-12:
            v = np.linalg.solve(a3, b3)
            return v, _vertex_error(q, v)
    except np.linalg.LinAlgError:  # pragma: no cover - det guard above
        pass
    candidates = [0.5 * (p_a + p_b), p_a, p_b]
    errs = [_vertex_error(q, c) for c in candidates]
    i = int(np.argmin(errs))
    return candidates[i], errs[i]


def _vertex_error(q: np.ndarray, v) -> float:
    vh = np.append(v, 1.0)
    return float(vh @ q @ vh)


def simplify_mesh(
    mesh: TriangleMesh,
    target_faces: int | None = None,
    target_ratio: float | None = None,
    max_error: float = np.inf,
    protected_vertices=None,
) -> TriangleMesh:
    """Collapse edges until the face budget or error bound is reached.

    Parameters
    ----------
    target_faces / target_ratio:
        Stop when the face count drops to the target (ratio is relative
        to the input size); exactly one may be given, default ratio 0.5.
    max_error:
        Skip collapses whose quadric error exceeds this bound.
    protected_vertices:
        Vertex indices that must not move (e.g. block-boundary vertices
        during the hierarchical reduction).  Edges with both ends
        protected are never collapsed; edges with one protected end
        collapse onto the protected position.
    """
    if target_faces is not None and target_ratio is not None:
        raise ValueError("give either target_faces or target_ratio, not both")
    if target_faces is None:
        ratio = 0.5 if target_ratio is None else float(target_ratio)
        target_faces = max(int(mesh.n_faces * ratio), 4)
    if mesh.n_faces <= target_faces:
        return TriangleMesh(mesh.vertices.copy(), mesh.faces.copy())

    verts = mesh.vertices.copy()
    faces = mesh.faces.copy()
    nv = len(verts)
    protected = np.zeros(nv, dtype=bool)
    if protected_vertices is not None:
        protected[np.asarray(protected_vertices, dtype=int)] = True

    # accumulate quadrics
    quadrics = np.zeros((nv, 4, 4))
    normals = mesh.face_normals()
    for fi, f in enumerate(faces):
        kq = _plane_quadric(verts[f[0]], verts[f[1]], verts[f[2]])
        for v in f:
            quadrics[v] += kq
    # boundary constraints
    edge_faces: dict[tuple[int, int], list[int]] = {}
    for fi, f in enumerate(faces):
        for a, b in ((f[0], f[1]), (f[1], f[2]), (f[2], f[0])):
            key = (min(a, b), max(a, b))
            edge_faces.setdefault(key, []).append(fi)
    for (a, b), fs in edge_faces.items():
        if len(fs) == 1:
            bq = _boundary_quadric(verts[a], verts[b], normals[fs[0]])
            quadrics[a] += bq
            quadrics[b] += bq

    # union-find over vertices
    parent = np.arange(nv)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    # vertex adjacency for face bookkeeping
    vertex_faces: list[set[int]] = [set() for _ in range(nv)]
    for fi, f in enumerate(faces):
        for v in f:
            vertex_faces[v].add(fi)
    face_alive = np.ones(len(faces), dtype=bool)
    n_alive = len(faces)

    version = np.zeros(nv, dtype=np.int64)
    heap: list[tuple[float, int, int, int, int]] = []

    def push_edge(a: int, b: int) -> None:
        a, b = find(a), find(b)
        if a == b:
            return
        if protected[a] and protected[b]:
            return
        q = quadrics[a] + quadrics[b]
        if protected[a]:
            pos, err = verts[a], _vertex_error(q, verts[a])
        elif protected[b]:
            pos, err = verts[b], _vertex_error(q, verts[b])
        else:
            pos, err = _optimal_position(q, verts[a], verts[b])
        heapq.heappush(
            heap, (err, a, b, int(version[a]), int(version[b]))
        )
        _positions[(a, b)] = pos

    _positions: dict[tuple[int, int], np.ndarray] = {}
    for a, b in edge_faces:
        push_edge(a, b)

    while n_alive > target_faces and heap:
        err, a, b, va, vb = heapq.heappop(heap)
        if err > max_error:
            break
        ra, rb = find(a), find(b)
        if ra != a or rb != b or version[a] != va or version[b] != vb:
            continue  # stale entry
        pos = _positions.pop((a, b), None)
        if pos is None:
            continue
        # collapse b into a
        parent[b] = a
        verts[a] = pos
        quadrics[a] = quadrics[a] + quadrics[b]
        protected[a] = protected[a] or protected[b]
        version[a] += 1
        # update faces
        changed_neighbors: set[int] = set()
        for fi in list(vertex_faces[b]):
            f = faces[fi]
            f[f == b] = a
            if not face_alive[fi]:
                continue
            if f[0] == f[1] or f[1] == f[2] or f[2] == f[0]:
                face_alive[fi] = False
                n_alive -= 1
            else:
                vertex_faces[a].add(fi)
        vertex_faces[a].update(vertex_faces[b])
        vertex_faces[b] = set()
        # re-push edges around the merged vertex
        for fi in vertex_faces[a]:
            if not face_alive[fi]:
                continue
            for v in faces[fi]:
                if v != a:
                    changed_neighbors.add(find(int(v)))
        for v in changed_neighbors:
            push_edge(a, v)

    live = faces[face_alive]
    # resolve union-find on remaining faces
    resolved = np.array([[find(int(v)) for v in f] for f in live], dtype=np.int64)
    good = (
        (resolved[:, 0] != resolved[:, 1])
        & (resolved[:, 1] != resolved[:, 2])
        & (resolved[:, 2] != resolved[:, 0])
    )
    return TriangleMesh(verts, resolved[good]).compact()
