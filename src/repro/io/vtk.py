"""Legacy-VTK output of cell fields (structured points).

The paper's result output is mesh-based, but checkpoint inspection and
debugging want full fields occasionally; this writer emits ASCII legacy
VTK (``STRUCTURED_POINTS``) readable by ParaView/VisIt without any
dependency.  2-D fields are written as one-cell-thick volumes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_vtk_fields"]


def _as_3d(arr: np.ndarray) -> np.ndarray:
    if arr.ndim == 2:
        return arr[:, :, None]
    if arr.ndim == 3:
        return arr
    raise ValueError(f"expected a 2-D or 3-D scalar field, got shape {arr.shape}")


def write_vtk_fields(
    path,
    fields: dict[str, np.ndarray],
    spacing: float = 1.0,
    origin=(0.0, 0.0, 0.0),
) -> int:
    """Write named scalar cell fields to one legacy VTK file.

    All fields must share one spatial shape.  Returns bytes written.
    """
    if not fields:
        raise ValueError("need at least one field")
    arrays = {name: _as_3d(np.asarray(a, dtype=float)) for name, a in fields.items()}
    shapes = {a.shape for a in arrays.values()}
    if len(shapes) != 1:
        raise ValueError(f"fields must share one shape, got {shapes}")
    nx, ny, nz = shapes.pop()

    lines = [
        "# vtk DataFile Version 3.0",
        "repro phase-field output",
        "ASCII",
        "DATASET STRUCTURED_POINTS",
        f"DIMENSIONS {nx} {ny} {nz}",
        f"ORIGIN {origin[0]:g} {origin[1]:g} {origin[2]:g}",
        f"SPACING {spacing:g} {spacing:g} {spacing:g}",
        f"POINT_DATA {nx * ny * nz}",
    ]
    for name, arr in arrays.items():
        lines.append(f"SCALARS {name} double 1")
        lines.append("LOOKUP_TABLE default")
        # VTK expects x fastest; our arrays are C-ordered (z fastest)
        flat = arr.transpose(2, 1, 0).ravel()
        lines.extend(
            " ".join(f"{v:.6g}" for v in flat[i : i + 9])
            for i in range(0, flat.size, 9)
        )
    text = "\n".join(lines) + "\n"
    Path(path).write_text(text, encoding="ascii")
    return len(text)
