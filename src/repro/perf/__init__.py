"""Performance-engineering substrate.

The paper's evaluation rests on node-level performance engineering
(roofline + IACA static analysis, LIKWID counters) and machine-scale
models (intranode scaling, communication hiding, weak scaling on three
supercomputers).  Hardware counters and half a million cores are not
available here, so this package provides faithful analytic stand-ins
(documented in DESIGN.md):

* :mod:`repro.perf.metrics` — MLUP/s measurement helpers,
* :mod:`repro.perf.flopcount` — instrumented arrays counting the floating
  point operations a kernel actually performs (LIKWID analog),
* :mod:`repro.perf.kernel_analysis` — static per-cell cost model and
  port-pressure bound (IACA analog),
* :mod:`repro.perf.machines` — SuperMUC / Hornet / JUQUEEN descriptions,
* :mod:`repro.perf.netmodel` — LogGP-style message model with topology
  penalties,
* :mod:`repro.perf.roofline` — roofline bounds,
* :mod:`repro.perf.scaling` — intranode, communication-hiding and weak
  scaling simulators (Figs. 7, 8, 9),
* :mod:`repro.perf.history` — append-only perf history over the
  ``BENCH_*.json`` reports with rolling-baseline regression verdicts
  (``python -m repro.perf.history``).
"""

from repro.perf.machines import HORNET, JUQUEEN, MACHINES, SUPERMUC, MachineSpec
from repro.perf.metrics import measure_kernel_rate, mlups
from repro.perf.roofline import RooflineResult, roofline

__all__ = [
    "machine_fingerprint",
    "entry_from_report",
    "load_history",
    "append_history",
    "detect_regressions",
    "MachineSpec",
    "MACHINES",
    "SUPERMUC",
    "HORNET",
    "JUQUEEN",
    "measure_kernel_rate",
    "mlups",
    "roofline",
    "RooflineResult",
]

_HISTORY_NAMES = (
    "machine_fingerprint",
    "entry_from_report",
    "load_history",
    "append_history",
    "detect_regressions",
)


def __getattr__(name):
    # Lazy re-export: importing repro.perf must not pre-load the history
    # module, or `python -m repro.perf.history` trips the runpy
    # found-in-sys.modules warning.
    if name in _HISTORY_NAMES:
        from repro.perf import history

        return getattr(history, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
