"""Performance-engineering substrate.

The paper's evaluation rests on node-level performance engineering
(roofline + IACA static analysis, LIKWID counters) and machine-scale
models (intranode scaling, communication hiding, weak scaling on three
supercomputers).  Hardware counters and half a million cores are not
available here, so this package provides faithful analytic stand-ins
(documented in DESIGN.md):

* :mod:`repro.perf.metrics` — MLUP/s measurement helpers,
* :mod:`repro.perf.flopcount` — instrumented arrays counting the floating
  point operations a kernel actually performs (LIKWID analog),
* :mod:`repro.perf.kernel_analysis` — static per-cell cost model and
  port-pressure bound (IACA analog),
* :mod:`repro.perf.machines` — SuperMUC / Hornet / JUQUEEN descriptions,
* :mod:`repro.perf.netmodel` — LogGP-style message model with topology
  penalties,
* :mod:`repro.perf.roofline` — roofline bounds,
* :mod:`repro.perf.scaling` — intranode, communication-hiding and weak
  scaling simulators (Figs. 7, 8, 9).
"""

from repro.perf.machines import HORNET, JUQUEEN, MACHINES, SUPERMUC, MachineSpec
from repro.perf.metrics import measure_kernel_rate, mlups
from repro.perf.roofline import RooflineResult, roofline

__all__ = [
    "MachineSpec",
    "MACHINES",
    "SUPERMUC",
    "HORNET",
    "JUQUEEN",
    "measure_kernel_rate",
    "mlups",
    "roofline",
    "RooflineResult",
]
