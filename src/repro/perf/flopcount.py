"""Dynamic floating-point operation counting (LIKWID analog).

Wrapping the kernel inputs in :class:`CountingArray` makes every ufunc
application and einsum contraction report its scalar operation count to a
shared :class:`FlopCounter` — the software equivalent of reading the FP
hardware counters the paper's LIKWID analysis used.  Dividing the total by
the number of interior cells yields the FLOPs-per-cell figure the roofline
analysis needs (the paper reports 1384 FLOPs/cell for the mu update).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

__all__ = ["FlopCounter", "CountingArray", "count_kernel_flops"]

_UFUNC_KIND = {
    "add": "add", "subtract": "add", "negative": "add",
    "multiply": "mul",
    "true_divide": "div", "divide": "div", "reciprocal": "div",
    "sqrt": "sqrt",
    "maximum": "cmp", "minimum": "cmp", "absolute": "cmp", "clip": "cmp",
    "greater": "cmp", "less": "cmp", "greater_equal": "cmp",
    "less_equal": "cmp", "sign": "cmp",
    "power": "mul", "square": "mul", "float_power": "mul",
    "exp": "transcend", "log": "transcend", "sin": "transcend",
    "cos": "transcend",
}

#: Operation kinds counted as floating-point work in :meth:`FlopCounter.flops`.
FLOP_KINDS = ("add", "mul", "div", "sqrt")


class FlopCounter:
    """Accumulates scalar-operation counts by kind."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def add(self, kind: str, n: int) -> None:
        self.counts[kind] += int(n)

    def flops(self) -> int:
        """Total floating-point operations (add+mul+div+sqrt)."""
        return sum(self.counts[k] for k in FLOP_KINDS)

    def reset(self) -> None:
        self.counts.clear()

    def summary(self) -> dict[str, int]:
        """Counts by kind plus the FLOP total."""
        out = dict(self.counts)
        out["flops"] = self.flops()
        return out


def _einsum_cost(subscripts: str, operands) -> tuple[int, int]:
    """(muls, adds) of an einsum evaluated naively.

    Total index-space size T = product of all distinct index extents;
    ``muls = T * (n_operands - 1)`` and ``adds = T - output_size``.
    """
    if "->" in subscripts:
        in_spec, out_spec = subscripts.split("->")
    else:
        in_spec, out_spec = subscripts, None
    specs = in_spec.split(",")
    extents: dict[str, int] = {}
    ell_shape: tuple[int, ...] = ()
    for spec, op in zip(specs, operands):
        shape = np.shape(op)
        if "..." in spec:
            named = spec.replace("...", "")
            n_named = len(named)
            ell = shape[: len(shape) - n_named] if spec.endswith(named) else None
            # assume ellipsis leads or trails; kernels only use trailing names
            n_ell = len(shape) - n_named
            before = spec.index("...")
            ell = shape[before : before + n_ell]
            ell_shape = ell if len(ell) > len(ell_shape) else ell_shape
            letters = spec.replace("...", "")
            # letters before the ellipsis
            pre = spec.split("...")[0]
            for i, ch in enumerate(pre):
                extents[ch] = shape[i]
            post = spec.split("...")[1]
            for i, ch in enumerate(post):
                extents[ch] = shape[len(shape) - len(post) + i]
        else:
            for ch, s in zip(spec, shape):
                extents[ch] = s
    t = int(np.prod(ell_shape)) if ell_shape else 1
    for ch, s in extents.items():
        t *= s
    if out_spec is None:
        out_size = 1
    else:
        out_size = int(np.prod(ell_shape)) if "..." in out_spec else 1
        for ch in out_spec.replace("...", ""):
            out_size *= extents.get(ch, 1)
    muls = t * max(len(specs) - 1, 1)
    adds = max(t - out_size, 0)
    return muls, adds


class CountingArray(np.ndarray):
    """ndarray subclass reporting its operations to a :class:`FlopCounter`."""

    _counter: FlopCounter | None = None

    @classmethod
    def wrap(cls, arr: np.ndarray, counter: FlopCounter) -> "CountingArray":
        obj = np.asarray(arr).view(cls)
        obj._counter = counter
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is not None and self._counter is None:
            self._counter = getattr(obj, "_counter", None)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        counter = None
        clean = []
        for x in inputs:
            if isinstance(x, CountingArray):
                counter = counter or x._counter
                clean.append(x.view(np.ndarray))
            else:
                clean.append(x)
        out = kwargs.pop("out", None)
        if out is not None:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, CountingArray) else o
                for o in out
            )
        result = getattr(ufunc, method)(*clean, **kwargs)
        kind = _UFUNC_KIND.get(ufunc.__name__, "other")
        n = np.size(result) if not isinstance(result, tuple) else sum(
            np.size(r) for r in result
        )
        if counter is not None:
            counter.add(kind, n)

        def wrap(r):
            if isinstance(r, np.ndarray) and counter is not None:
                return CountingArray.wrap(r, counter)
            return r

        if isinstance(result, tuple):
            return tuple(wrap(r) for r in result)
        return wrap(result)

    def __array_function__(self, func, types, args, kwargs):
        counter = self._counter

        def unwrap(x):
            if isinstance(x, CountingArray):
                return x.view(np.ndarray)
            if isinstance(x, (list, tuple)):
                t = type(x)
                return t(unwrap(v) for v in x)
            return x

        clean_args = unwrap(args)
        clean_kwargs = {k: unwrap(v) for k, v in kwargs.items()}
        result = func(*clean_args, **clean_kwargs)
        if counter is not None and func is np.einsum:
            subscripts = clean_args[0]
            operands = clean_args[1:]
            muls, adds = _einsum_cost(subscripts, operands)
            counter.add("mul", muls)
            counter.add("add", adds)

        def wrap(r):
            if isinstance(r, np.ndarray) and counter is not None:
                return CountingArray.wrap(r, counter)
            if isinstance(r, (list, tuple)):
                return type(r)(wrap(v) for v in r)
            return r

        return wrap(result)


def count_kernel_flops(kernel, ctx, arrays: list[np.ndarray], cells: int) -> dict:
    """Run *kernel* with counting inputs; return per-cell operation counts.

    *arrays* are the positional field arguments (wrapped), *cells* the
    interior cell count used for normalization.
    """
    counter = FlopCounter()
    wrapped = [CountingArray.wrap(a, counter) for a in arrays]
    kernel(ctx, *wrapped)
    summary = counter.summary()
    per_cell = {k: v / cells for k, v in summary.items()}
    per_cell["cells"] = cells
    return per_cell
