"""Perf-regression history: BENCH reports -> trend line -> verdicts.

The benchmark suite writes one schema-validated ``BENCH_*.json`` run
report per figure (:mod:`repro.telemetry.report`); each file is a
*snapshot*.  This module turns the snapshots into a *history*: an
append-only ``history.jsonl`` of compact entries keyed by
``run_id @ config_hash @ machine-fingerprint``, so the performance
trajectory of every benchmark series survives across commits and a 2x
kernel slowdown is caught by CI instead of a reviewer's memory.

Regression detection is a rolling-baseline comparison, not a fixed
threshold against absolute numbers: for each ``(series, metric)`` the
newest value is compared against the *median of the previous window*
(default 5 entries).  Medians shrug off one noisy run; per-machine
series keys keep a laptop from gating against a CI runner's baseline.

CLI (``python -m repro.perf.history RESULTS_DIR [--history PATH]``)
ingests reports, appends new entries, prints per-series verdicts and —
with ``--gate`` — exits non-zero when a non-smoke series regressed.
Smoke-mode entries (``REPRO_BENCH_SMOKE=1`` runs, tiny grids, minimum
steps) are recorded for trend context but never gate: their timings are
dominated by fixed overheads, exactly the noise the gate must ignore.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

__all__ = [
    "HISTORY_VERSION",
    "machine_fingerprint",
    "flatten_metrics",
    "entry_from_report",
    "load_history",
    "append_history",
    "detect_regressions",
]

HISTORY_VERSION = 1

#: Metric-name fragments that mean "lower is better": durations, plus
#: the steady-state communication counters (pipe messages, acks, fresh
#: segments) — more of any of those per step is a transport regression.
#: The default direction is "higher is better" (rates: MLUP/s,
#: efficiency).
_LOWER_IS_BETTER = ("seconds", "_ms", "_us", "latency",
                    "messages", "acks", "segments")


def machine_fingerprint() -> str:
    """Stable 12-hex id of the machine *class* running the benchmarks.

    Hashes platform, architecture, Python major.minor and core count —
    deliberately **not** the hostname, so identically-provisioned CI
    runners accumulate one shared baseline instead of one orphan series
    per ephemeral runner name.
    """
    blob = "|".join((
        platform.system(),
        platform.machine(),
        "py%d.%d" % sys.version_info[:2],
        str(os.cpu_count() or 0),
    ))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def flatten_metrics(report: dict) -> dict[str, float]:
    """Extract the numeric trend metrics of one run report.

    Top-level ``mlups`` / ``wall_seconds``, every numeric leaf of the
    ``series`` tree (paths joined with ``/``; list-valued series such as
    fig8's per-core model curves are skipped — a history entry tracks
    scalars), and the tracing overlap efficiency when present.
    """
    metrics: dict[str, float] = {}
    for key in ("mlups", "wall_seconds"):
        value = report.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)

    def walk(prefix: str, node) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            metrics[prefix] = float(node)
        elif isinstance(node, dict):
            for name, child in node.items():
                walk(f"{prefix}/{name}", child)
        # lists (per-core curves, violation logs) are not trend scalars

    walk("series", report.get("series", {}))
    eff = (report.get("tracing") or {}).get("overlap", {}).get("efficiency")
    if isinstance(eff, (int, float)) and not isinstance(eff, bool):
        metrics["tracing/overlap_efficiency"] = float(eff)
    return metrics


def entry_from_report(report: dict, *, source: str | None = None,
                      machine: str | None = None) -> dict:
    """Compact history entry of one run report.

    ``series_key`` — ``run_id@config_hash@machine`` — is what regression
    detection groups by: same benchmark, same configuration, same class
    of machine.  A config change (new grid size, different rungs) starts
    a fresh series instead of tripping a false regression.
    """
    if machine is None:
        machine = machine_fingerprint()
    run_id = str(report.get("run_id", "unknown"))
    config_hash = str(report.get("config_hash", "none"))
    return {
        "version": HISTORY_VERSION,
        "series_key": f"{run_id}@{config_hash}@{machine}",
        "run_id": run_id,
        "config_hash": config_hash,
        "machine": machine,
        "created": float(report.get("created", time.time())),
        "smoke": bool((report.get("config") or {}).get("smoke", False)),
        "source": source,
        "metrics": flatten_metrics(report),
    }


def load_history(path) -> list[dict]:
    """Read ``history.jsonl`` (missing file -> empty history)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for i, line in enumerate(path.read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: invalid JSON line") from exc
        if not isinstance(entry, dict) or "series_key" not in entry:
            raise ValueError(f"{path}:{i + 1}: not a history entry")
        entries.append(entry)
    return entries


def append_history(path, entries) -> list[dict]:
    """Append *entries* to ``history.jsonl``, skipping duplicates.

    An entry is a duplicate when its ``(series_key, created)`` pair is
    already on file — re-running the CLI over an unchanged results
    directory is idempotent.  Returns the entries actually appended.
    """
    path = Path(path)
    existing = {
        (e["series_key"], e.get("created")) for e in load_history(path)
    }
    fresh = []
    for entry in entries:
        key = (entry["series_key"], entry.get("created"))
        if key in existing:
            continue
        existing.add(key)
        fresh.append(entry)
    if fresh:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for entry in fresh:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return fresh


def _direction(metric: str) -> int:
    """+1 when higher is better (rates), -1 when lower is (durations)."""
    name = metric.rsplit("/", 1)[-1]
    if any(frag in name for frag in _LOWER_IS_BETTER):
        return -1
    return 1


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def detect_regressions(entries, *, window: int = 5,
                       threshold: float = 0.6) -> list[dict]:
    """Per-(series, metric) verdicts of the newest entry vs its baseline.

    The baseline is the median of up to *window* immediately preceding
    entries of the same series.  With direction-normalised ratio
    ``r`` (= value/baseline for rates, baseline/value for durations):

    * ``r < threshold``      -> ``"regression"`` (default 0.6 flags a
      1.67x slowdown; a synthetic 2x slowdown lands at r = 0.5),
    * ``r > 1/threshold``    -> ``"improved"``,
    * otherwise              -> ``"ok"``;
    * no preceding entries   -> ``"new"`` (nothing to compare).

    Metrics whose baseline is 0 (e.g. overlap efficiency on a run too
    small to hide anything) report ``"ok"`` — a ratio against zero means
    nothing.  Returns one verdict dict per (series, metric) with the
    value, baseline, ratio and the entry's smoke flag.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    by_series: dict[str, list[dict]] = {}
    for entry in sorted(entries, key=lambda e: e.get("created", 0.0)):
        by_series.setdefault(entry["series_key"], []).append(entry)
    verdicts = []
    for series_key, series in by_series.items():
        newest = series[-1]
        previous = series[max(0, len(series) - 1 - window):-1]
        for metric, value in sorted(newest.get("metrics", {}).items()):
            history = [
                e["metrics"][metric] for e in previous
                if isinstance(e.get("metrics", {}).get(metric),
                              (int, float))
            ]
            verdict = {
                "series_key": series_key,
                "metric": metric,
                "value": value,
                "smoke": bool(newest.get("smoke", False)),
                "baseline": None,
                "ratio": None,
                "verdict": "new",
            }
            if history:
                baseline = _median(history)
                verdict["baseline"] = baseline
                if baseline > 0 and value > 0:
                    ratio = (
                        value / baseline if _direction(metric) > 0
                        else baseline / value
                    )
                    verdict["ratio"] = ratio
                    if ratio < threshold:
                        verdict["verdict"] = "regression"
                    elif ratio > 1.0 / threshold:
                        verdict["verdict"] = "improved"
                    else:
                        verdict["verdict"] = "ok"
                else:
                    verdict["verdict"] = "ok"
            verdicts.append(verdict)
    return verdicts


def _collect_reports(paths) -> list[tuple[str, dict]]:
    """(source, report) pairs from files and/or results directories."""
    from repro.telemetry.report import validate_run_report

    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    out = []
    for f in files:
        try:
            report = json.loads(f.read_text())
            validate_run_report(report)
        except (OSError, ValueError) as exc:
            print(f"history: skipping {f}: {exc}", file=sys.stderr)
            continue
        out.append((str(f), report))
    return out


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.history",
        description="Append BENCH_*.json run reports to a perf history "
                    "and detect regressions against rolling baselines.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="results directories (scanned for BENCH_*.json) or report "
             "files",
    )
    parser.add_argument(
        "--history", default="benchmarks/results/history.jsonl",
        help="history JSONL to append to (default: %(default)s)",
    )
    parser.add_argument(
        "--window", type=int, default=5,
        help="baseline window: median of up to N previous entries "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.6,
        help="normalised ratio below which a metric is a regression "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any non-smoke series regressed (CI mode; "
             "local runs only warn)",
    )
    args = parser.parse_args(argv)

    reports = _collect_reports(args.paths)
    if not reports:
        print("history: no valid BENCH reports found", file=sys.stderr)
        return 2
    entries = [
        entry_from_report(report, source=source) for source, report in reports
    ]
    appended = append_history(args.history, entries)
    history = load_history(args.history)
    print(
        f"history: {len(appended)} new entries appended "
        f"({len(history)} total) -> {args.history}"
    )
    verdicts = detect_regressions(
        history, window=args.window, threshold=args.threshold
    )
    flagged = [v for v in verdicts if v["verdict"] == "regression"]
    gated = [v for v in flagged if not v["smoke"]]
    for v in verdicts:
        if v["verdict"] == "new":
            continue
        ratio = "" if v["ratio"] is None else f" (x{v['ratio']:.2f})"
        print(
            f"  [{v['verdict']:>10}] {v['series_key']} :: {v['metric']} "
            f"= {v['value']:.6g} vs baseline "
            f"{v['baseline']:.6g}{ratio}"
        )
    if flagged:
        print(
            f"history: {len(flagged)} regression(s), "
            f"{len(gated)} gating (non-smoke)"
        )
    if args.gate and gated:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(_main())
