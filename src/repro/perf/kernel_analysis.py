"""Static per-cell kernel cost model (IACA analog).

The paper runs the Intel Architecture Code Analyzer over the compiled
kernels to find that, although fully vectorized, the mu-kernel cannot
exceed ~43 % of peak because of add/multiply imbalance and division
latency.  This module reproduces that style of analysis from a *static
operation count* of the model equations: it tallies adds, multiplies,
divides and square roots per cell update for both kernels (as implemented
by the buffered rung) and derives a port-pressure bound for a generic
2-port (add + mul), 4-wide SIMD core.

The counts are validated against the dynamic instrumentation of
:mod:`repro.perf.flopcount` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCost", "phi_kernel_cost", "mu_kernel_cost", "port_pressure_bound"]


@dataclass(frozen=True)
class KernelCost:
    """Scalar operation counts for one cell update."""

    adds: float
    muls: float
    divs: float
    sqrts: float

    @property
    def flops(self) -> float:
        """Total floating point operations."""
        return self.adds + self.muls + self.divs + self.sqrts

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            self.adds + other.adds,
            self.muls + other.muls,
            self.divs + other.divs,
            self.sqrts + other.sqrts,
        )

    def scaled(self, f: float) -> "KernelCost":
        """Cost multiplied by an occupancy factor (e.g. face sharing)."""
        return KernelCost(self.adds * f, self.muls * f, self.divs * f, self.sqrts * f)


def phi_kernel_cost(n_phases: int = 4, n_solutes: int = 2, dim: int = 3) -> KernelCost:
    """Per-cell cost of the phi sweep (buffered rung, no shortcuts).

    Terms: centred gradients, pairwise gradient-energy dA/dphi, buffered
    face fluxes of the divergence (each face costed once, i.e. ``dim``
    faces per cell), obstacle potential, driving force via the O(N)
    common-subexpression form, projection onto the simplex.
    """
    n, k, d = n_phases, n_solutes, dim
    pairs = n * (n - 1) // 2
    adds = muls = divs = sqrts = 0.0

    # centred gradients of all phases: d * n * (1 sub + 1 mul-by-1/2dx)
    adds += d * n
    muls += d * n
    # dA/dphi: for each ordered pair (a,b), q_ab (2 muls + 1 sub per dim),
    # dot with grad phi_b (d muls + d-1 adds), scale + accumulate
    ordered = n * (n - 1)
    adds += ordered * (d + (d - 1) + 1)
    muls += ordered * (2 * d + d + 1)
    # buffered divergence: per face and pair: 2 avgs (2 add, 2 mul),
    # 2 diffs (2 add, 2 mul), flux combo (3 mul, 1 add, 1 mul-by-gamma);
    # d faces amortized per cell, both orientations of (a,b) folded in
    faces = d
    adds += faces * pairs * (2 + 2 + 1) * 2
    muls += faces * pairs * (2 + 2 + 4) * 2
    # divergence accumulation: d * n (sub + mul by 1/dx)
    adds += d * n
    muls += d * n
    # obstacle potential: n*(n-1) mul-add + triple terms
    adds += ordered
    muls += ordered
    triples = n * (n - 1) * (n - 2) // 6
    adds += 3 * triples
    muls += 2 * 3 * triples
    # driving force: psi_a per phase: quadratic form (k^2 muls, k^2 adds)
    # + linear (2k) + offset; O(N) combination
    adds += n * (k * k + k + 2) + 2 * n
    muls += n * (k * k + 2 * k + 2) + 2 * n
    divs += 2  # 1/sq_sum shared, tau division
    # assembly: rhs scaling, mean subtraction, euler update
    adds += 3 * n
    muls += 3 * n
    # simplex projection: sort ~ n log n comparisons (not FLOPs), cumsum n,
    # candidate n (add+div), clip
    adds += 2 * n
    divs += n
    return KernelCost(adds, muls, divs, sqrts)


def mu_kernel_cost(n_phases: int = 4, n_solutes: int = 2, dim: int = 3) -> KernelCost:
    """Per-cell cost of the mu sweep (buffered rung, anti-trapping on).

    Dominated by the staggered face values of ``M grad mu - J_at``
    (the quantity the paper's staggered buffer halves): mobility
    contraction, anti-trapping with two vector normalizations per face
    and phase, susceptibility solve, phase-change and dT/dt sources.
    """
    n, k, d = n_phases, n_solutes, dim
    solids = n - 1
    adds = muls = divs = sqrts = 0.0

    # interpolation weights h (old and new): n squares, sum, divide
    adds += 2 * (n - 1 + n)
    muls += 2 * n
    divs += 2 * n
    # phase concentrations c_a(mu): per phase k x k matvec + c_min(T)
    adds += n * (k * k + k)
    muls += n * (k * k + k)
    # phase-change source: n * (k mul + k add) + dT/dt source
    adds += n * k + k + n * k
    muls += n * k + k + n * k
    # diffusive face flux (buffered: d faces/cell): weights (n avg),
    # dmu (k diff), contraction n*k*k mul-add
    adds += d * (n + k + n * k * k)
    muls += d * (n + k + n * k * k + n)
    # anti-trapping per face and solid phase: face grads of phi_a and
    # phi_l (d * 4 ops each), two normalizations (d mul, d-1 add, sqrt,
    # div), n.n dot (d), amplitude (sqrt + 3 mul + div), c_l - c_a (k),
    # outer scale (k mul)
    per_face_pair = KernelCost(
        adds=2 * (2 * d) + 2 * (d - 1) + d + k,
        muls=2 * (2 * d) + 2 * d + d + 4 + 2 * k,
        divs=2 + 1,
        sqrts=2 + 1,
    )
    at = per_face_pair.scaled(d * solids)
    adds += at.adds
    muls += at.muls
    divs += at.divs
    sqrts += at.sqrts
    # divergence accumulation + susceptibility 2x2 solve + euler update
    adds += d * k + (k * k * n) + 3 + 2 * k
    muls += d * k + (k * k * n) + 6 + 2 * k
    divs += k
    return KernelCost(adds, muls, divs, sqrts)


def port_pressure_bound(
    cost: KernelCost,
    vector_width: int = 4,
    div_cycles: float = 7.0,
    sqrt_cycles: float = 7.0,
) -> float:
    """Attainable fraction of peak under ideal conditions (IACA-style).

    A generic core issues one ``vector_width``-wide add and one multiply
    per cycle (peak = ``2 * vector_width`` FLOPs/cycle).  Divisions and
    square roots block the multiply port for several cycles.  The bound is
    ``flops / (cycles * peak_per_cycle)`` where the cycle count is set by
    the busier port — add/multiply imbalance therefore caps the fraction
    below 1 exactly as the paper's IACA report shows.
    """
    add_cycles = cost.adds / vector_width
    mul_cycles = (
        cost.muls / vector_width
        + cost.divs * div_cycles / vector_width
        + cost.sqrts * sqrt_cycles / vector_width
    )
    cycles = max(add_cycles, mul_cycles)
    if cycles <= 0:
        raise ValueError("cost must be positive")
    return cost.flops / (cycles * 2 * vector_width)
