"""Machine descriptions of the three HPC systems (Sec. 4 of the paper).

The weak-scaling and communication models are parametrized by the
published characteristics of SuperMUC (LRZ), Hornet (Cray XC40, HLRS) and
JUQUEEN (Blue Gene/Q, JSC).  ``kernel_efficiency`` is the fraction of peak
the paper's kernels attain on each architecture (~25 % on the out-of-order
Intel cores per the roofline section; the in-order BG/Q A2 cores reach far
less per core, which is why the paper's Fig. 9 right panel sits at
~0.2 MLUP/s per core while employing 4-way SMT).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "SUPERMUC", "HORNET", "JUQUEEN", "MACHINES"]

GiB = 1024.0**3


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one cluster.

    Attributes (units)
    ------------------
    clock_hz, flops_per_cycle:
        Per-core peak = product (8 on SNB/QPX via AVX mul+add or FMA-ish
        4-wide, 16 on Haswell via two 4-wide FMAs).
    cores_per_node, total_cores, smt:
        Node geometry; *smt* is the hardware-thread multiplier actually
        used (4 on JUQUEEN).
    stream_bw_node:
        Attainable node memory bandwidth (STREAM), bytes/s.
    net_latency, net_bandwidth:
        Per-message latency (s) and per-link bandwidth (bytes/s).
    topology:
        ``fat-tree-pruned`` / ``dragonfly`` / ``torus5d`` — selects the
        congestion model of :mod:`repro.perf.netmodel`.
    island_cores:
        Cores per fully provisioned network island (SuperMUC: 512 nodes x
        16 cores with a 4:1 pruned tree above).
    kernel_efficiency:
        Fraction of per-core peak the optimized kernels attain.
    """

    name: str
    clock_hz: float
    flops_per_cycle: int
    cores_per_node: int
    total_cores: int
    smt: int
    stream_bw_node: float
    net_latency: float
    net_bandwidth: float
    topology: str
    island_cores: int
    kernel_efficiency: float

    @property
    def peak_flops_core(self) -> float:
        """Per-core peak FLOP rate."""
        return self.clock_hz * self.flops_per_cycle

    @property
    def peak_flops_node(self) -> float:
        """Per-node peak FLOP rate."""
        return self.peak_flops_core * self.cores_per_node


SUPERMUC = MachineSpec(
    name="SuperMUC",
    clock_hz=2.7e9,
    flops_per_cycle=8,          # AVX: 4-wide add + 4-wide mul
    cores_per_node=16,          # 2 sockets x 8 cores (Xeon E5-2680)
    total_cores=147_456,
    smt=1,
    stream_bw_node=80.0 * GiB,  # measured with STREAM in the paper
    net_latency=2.0e-6,
    net_bandwidth=5.0e9,        # FDR10 InfiniBand per node
    topology="fat-tree-pruned",
    island_cores=512 * 16,
    kernel_efficiency=0.25,     # "approximately 25% of the peak FLOP rate"
)

HORNET = MachineSpec(
    name="Hornet",
    clock_hz=2.5e9,
    flops_per_cycle=16,         # AVX2: two 4-wide FMAs (E5-2680v3)
    cores_per_node=24,
    total_cores=94_656,
    smt=1,
    stream_bw_node=110.0 * GiB,
    net_latency=1.5e-6,
    net_bandwidth=8.0e9,        # Aries per node
    topology="dragonfly",
    island_cores=384 * 24,      # electrical group
    kernel_efficiency=0.14,     # FMA peak doubles but add/mul imbalance
                                # keeps the attained rate near SuperMUC's
)

JUQUEEN = MachineSpec(
    name="JUQUEEN",
    clock_hz=1.6e9,
    flops_per_cycle=8,          # QPX: 4-wide FMA
    cores_per_node=16,
    total_cores=458_752,
    smt=4,                      # 4-way SMT used to fill the in-order pipes
    stream_bw_node=28.0 * GiB,
    net_latency=0.7e-6,         # "latencies in the range of a few hundred ns"
    net_bandwidth=2.0e9,        # per torus link share
    topology="torus5d",
    island_cores=512 * 16,      # midplane
    kernel_efficiency=0.03,     # in-order A2 core: far below Intel
)

MACHINES = {m.name: m for m in (SUPERMUC, HORNET, JUQUEEN)}
