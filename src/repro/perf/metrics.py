"""Performance metrics: MLUP/s and kernel timing helpers.

"The presented performance results are measured in MLUP/s, which stands
for million lattice cell updates per second."
"""

from __future__ import annotations

import time

__all__ = ["mlups", "measure_kernel_rate"]


def mlups(cells: int, seconds: float) -> float:
    """Million lattice-cell updates per second."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return cells / seconds / 1.0e6


def measure_kernel_rate(
    fn,
    cells: int,
    *,
    min_time: float = 0.25,
    max_repeats: int = 50,
) -> float:
    """Measure the MLUP/s of a zero-argument kernel invocation.

    One warm-up call (also used to calibrate the repeat count), then the
    kernel is repeated until *min_time* of wall time accumulates.
    """
    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    repeats = max(1, min(max_repeats, int(min_time / max(first, 1e-9))))
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = (time.perf_counter() - t0) / repeats
    return mlups(cells, elapsed)
