"""Performance metrics: MLUP/s and kernel timing helpers.

"The presented performance results are measured in MLUP/s, which stands
for million lattice cell updates per second."
"""

from __future__ import annotations

import math
import statistics
import time

__all__ = ["mlups", "KernelRate", "measure_kernel_rate"]


def mlups(cells: int, seconds: float) -> float:
    """Million lattice-cell updates per second."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return cells / seconds / 1.0e6


class KernelRate(float):
    """A measured MLUP/s value carrying its own noise statistics.

    Behaves as a plain float (the median-sample rate) in arithmetic and
    comparisons, so existing call sites keep working; the measurement
    detail rides along as attributes:

    ``repeats``
        number of timed samples,
    ``calls_per_repeat``
        kernel invocations per sample (timeit-style batching),
    ``seconds_min`` / ``seconds_mean`` / ``seconds_median`` / ``seconds_std``
        per-call wall time statistics over the samples,
    ``noise``
        relative spread ``seconds_std / seconds_min`` — the usual
        benchmark-stability indicator (0 for a single sample),
    ``warmup_seconds``
        wall time of the untimed warm-up call that preceded calibration
        (for a JIT/compiled kernel this is where compilation lands, so
        it never pollutes the rate samples).
    """

    def __new__(cls, value: float, *, samples: list, calls_per_repeat: int,
                warmup_seconds: float = 0.0):
        self = super().__new__(cls, value)
        self.repeats = len(samples)
        self.calls_per_repeat = calls_per_repeat
        self.warmup_seconds = warmup_seconds
        self.seconds_min = min(samples)
        self.seconds_mean = statistics.fmean(samples)
        self.seconds_median = statistics.median(samples)
        self.seconds_std = (
            statistics.stdev(samples) if len(samples) > 1 else 0.0
        )
        self.noise = (
            self.seconds_std / self.seconds_min if self.seconds_min > 0 else 0.0
        )
        return self

    def as_dict(self) -> dict:
        """Structured dump for run reports and benchmark JSON."""
        return {
            "mlups": float(self),
            "repeats": self.repeats,
            "calls_per_repeat": self.calls_per_repeat,
            "seconds_min": self.seconds_min,
            "seconds_mean": self.seconds_mean,
            "seconds_median": self.seconds_median,
            "seconds_std": self.seconds_std,
            "noise": self.noise,
            "warmup_seconds": self.warmup_seconds,
        }


def measure_kernel_rate(
    fn,
    cells: int,
    *,
    min_time: float = 0.25,
    max_repeats: int = 50,
) -> KernelRate:
    """Measure the MLUP/s of a zero-argument kernel invocation.

    One explicit **untimed warm-up call** runs first; its wall time is
    recorded as ``warmup_seconds`` but never enters calibration or the
    rate samples.  A cold first call is systematically slower than
    steady state (cache/allocator effects for the NumPy rungs, JIT or
    ``dlopen`` cost for the compiled rungs — potentially *orders of
    magnitude*), and the previous scheme let it seed the auto-range, so
    a compiled kernel calibrated against its own compilation time.

    The batch size is then auto-ranged like :mod:`timeit`: starting from
    one call per batch, the batch grows geometrically until a single
    batch meets the per-sample time target ``min_time / max_repeats``,
    then batches are sampled until *min_time* of wall time accumulates
    (or *max_repeats* samples are taken).

    Returns a :class:`KernelRate`: a float (MLUP/s of the **median**
    sample, robust against scheduler hiccups) that also exposes
    min/mean/std per-call seconds, the relative ``noise`` and
    ``warmup_seconds``.
    """
    t0 = time.perf_counter()
    fn()
    warmup_seconds = time.perf_counter() - t0

    target = min_time / max_repeats
    calls = 1
    while True:  # auto-range the batch size on warm steady-state calls
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        dt = time.perf_counter() - t0
        if dt >= target * 0.5:
            break
        calls = max(calls * 2, math.ceil(calls * target / max(dt, 1e-9)))
    samples: list[float] = [dt / calls]
    total = dt
    while total < min_time and len(samples) < max_repeats:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        dt = time.perf_counter() - t0
        samples.append(dt / calls)
        total += dt
    rate = mlups(cells, statistics.median(samples))
    return KernelRate(rate, samples=samples, calls_per_repeat=calls,
                      warmup_seconds=warmup_seconds)
