"""LogGP-style communication model with topology penalties.

Message cost = latency + bytes / bandwidth, with a topology-dependent
congestion factor that grows mildly with the job size:

* ``fat-tree-pruned`` (SuperMUC): full bisection inside an island, a 4:1
  pruned tree above — inter-island messages see a quarter of the link
  bandwidth;
* ``dragonfly`` (Hornet/Aries): near-flat, small global-link penalty;
* ``torus5d`` (JUQUEEN): neighbour exchange maps perfectly onto the torus,
  nearly size-independent.

The ghost-layer volumes follow from the block geometry: per axis two slab
messages of (face area x components x 8 B), with the slabs of later axes
widened by the ghost layers of earlier ones (the dimensional-ordering
exchange the implementation uses).
"""

from __future__ import annotations

from repro.perf.machines import MachineSpec

__all__ = ["message_time", "topology_factor", "ghost_bytes_per_step", "exchange_time"]


#: Slope of the mild per-doubling congestion growth (noise, synchronization
#: variance and routing conflicts accumulate with the job size; the Fig. 8
#: measurements rise by roughly 50 % from 2^5 to 2^12 cores).
_CONGESTION_PER_DOUBLING = {
    "fat-tree-pruned": 0.06,
    "dragonfly": 0.04,
    "torus5d": 0.015,
}


def topology_factor(machine: MachineSpec, total_cores: int) -> float:
    """Effective bandwidth divisor for a job of *total_cores*."""
    import math

    if machine.topology not in _CONGESTION_PER_DOUBLING:
        raise ValueError(f"unknown topology {machine.topology!r}")
    if total_cores <= machine.island_cores:
        base = 1.0
    elif machine.topology == "fat-tree-pruned":
        base = 4.0  # 4:1 pruning above the island level
    elif machine.topology == "dragonfly":
        base = 1.3  # adaptive routing over global links
    else:  # torus5d
        base = 1.05  # nearest-neighbour exchange stays local on the torus
    # only the fraction of traffic crossing the island boundary pays the
    # pruning penalty; for ghost exchange that fraction is small
    if base > 1.0:
        boundary_fraction = 0.25
        base = 1.0 + boundary_fraction * (base - 1.0)
    growth = _CONGESTION_PER_DOUBLING[machine.topology]
    return base * (1.0 + growth * math.log2(max(total_cores, 1)))


def message_time(
    machine: MachineSpec,
    nbytes: int,
    total_cores: int = 1,
    *,
    per_rank: bool = True,
) -> float:
    """Seconds to deliver one message of *nbytes*.

    With ``per_rank=True`` (the default, matching one MPI rank per core)
    the node injection bandwidth is shared by all ranks of a node — the
    regime the Fig. 8 measurements are taken in.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    factor = topology_factor(machine, total_cores)
    bw = machine.net_bandwidth
    if per_rank:
        bw = bw / machine.cores_per_node
    return machine.net_latency + nbytes * factor / bw


def ghost_bytes_per_step(
    block_shape: tuple[int, ...],
    n_components: int,
    value_bytes: int = 8,
    ghost: int = 1,
) -> list[int]:
    """Per-axis ghost-slab bytes (both directions summed) for one field.

    Later axes include the ghost extents of earlier axes (dimensional
    ordering), matching the actual exchange payloads.
    """
    dim = len(block_shape)
    out = []
    for k in range(dim):
        area = 1
        for j in range(dim):
            if j == k:
                continue
            ext = block_shape[j] + (2 * ghost if j < k else 0)
            area *= ext
        out.append(2 * ghost * area * n_components * value_bytes)
    return out


def exchange_time(
    machine: MachineSpec,
    block_shape: tuple[int, ...],
    n_components: int,
    total_cores: int,
    *,
    overlap: bool = False,
    pack_bandwidth: float | None = None,
) -> float:
    """Modeled seconds per time step spent in one field's ghost exchange.

    Without overlap the wire time is exposed; with overlap only the
    pack/unpack memory traffic remains visible ("the remaining time in the
    communication routines is spent for packing and unpacking messages
    which cannot be overlapped").
    """
    per_axis = ghost_bytes_per_step(block_shape, n_components)
    pack_bw = (
        machine.stream_bw_node / machine.cores_per_node
        if pack_bandwidth is None
        else pack_bandwidth
    )
    # pack + unpack copies touch the payload twice
    pack = sum(2.0 * b / pack_bw for b in per_axis)
    if overlap:
        return pack
    wire = sum(
        2.0 * message_time(machine, b // 2, total_cores) for b in per_axis
    )
    return pack + wire
