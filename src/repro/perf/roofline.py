"""Roofline model (Williams et al.) — Sec. 5.1.1 of the paper.

The paper's argument: one mu-cell update needs 1384 FLOPs and at most
680 bytes from main memory (half the stencil data is served from cache
when an x-y slice of all fields fits in L2), so the arithmetic intensity
is >= 2 FLOP/B; the memory roof at 80 GiB/s would allow 126.3 MLUP/s per
node, far above the measured 4.2 MLUP/s x 16 cores — hence the kernel is
*compute bound* and the in-core analysis (IACA) applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.machines import MachineSpec

__all__ = ["RooflineResult", "roofline", "bytes_per_cell"]


@dataclass(frozen=True)
class RooflineResult:
    """Outcome of a roofline evaluation for one kernel on one machine."""

    flops_per_cell: float
    bytes_per_cell: float
    arithmetic_intensity: float
    memory_bound_mlups_node: float
    compute_bound_mlups_node: float
    attainable_mlups_node: float
    memory_bound: bool

    def peak_fraction(self, measured_mlups_core: float, machine: MachineSpec) -> float:
        """Fraction of single-core peak a measured rate corresponds to."""
        flops_rate = measured_mlups_core * 1e6 * self.flops_per_cell
        return flops_rate / machine.peak_flops_core


def bytes_per_cell(
    n_phases: int,
    n_solutes: int,
    value_bytes: int = 8,
    cache_reuse: float = 0.5,
    time_levels_phi: int = 2,
) -> float:
    """Main-memory traffic per mu-cell update under the paper's assumption.

    Streams: read both phi time levels (D3C19 -> 19 cells each), read mu
    (D3C7 -> 7 cells), write mu.  With an x-y slice of all fields resident
    in L2, a ``cache_reuse`` fraction of the reads is served from cache.
    The paper's 680 B figure for N=4, K-1=2 doubles is reproduced by this
    accounting.
    """
    reads = (
        n_phases * 19 * time_levels_phi  # phi(t) and phi(t+dt)
        + n_solutes * 7                  # mu(t)
    )
    writes = n_solutes
    return (reads * (1.0 - cache_reuse) + writes) * value_bytes


def roofline(
    machine: MachineSpec,
    flops_per_cell: float,
    bytes_per_cell_value: float,
    efficiency: float | None = None,
) -> RooflineResult:
    """Evaluate memory and compute roofs for a kernel on *machine*.

    *efficiency* scales the compute roof to the attainable in-core rate
    (defaults to the machine's ``kernel_efficiency``).
    """
    if flops_per_cell <= 0 or bytes_per_cell_value <= 0:
        raise ValueError("per-cell costs must be positive")
    eff = machine.kernel_efficiency if efficiency is None else efficiency
    ai = flops_per_cell / bytes_per_cell_value
    mem = machine.stream_bw_node / bytes_per_cell_value / 1e6
    comp = machine.peak_flops_node * eff / flops_per_cell / 1e6
    return RooflineResult(
        flops_per_cell=flops_per_cell,
        bytes_per_cell=bytes_per_cell_value,
        arithmetic_intensity=ai,
        memory_bound_mlups_node=mem,
        compute_bound_mlups_node=comp,
        attainable_mlups_node=min(mem, comp),
        memory_bound=mem < comp,
    )
