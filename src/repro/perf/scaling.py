"""Scaling simulators regenerating Figs. 7, 8 and 9 of the paper.

All three figures combine a *compute* model (per-core kernel rate derived
from the static operation counts and the machine's attainable peak
fraction) with the *communication* model of :mod:`repro.perf.netmodel`.
The models are calibrated only by machine constants and the kernel cost
model — no per-figure fitting — so the reproduced curves carry the same
shape information the paper reports: near-flat weak scaling with the
interface scenario slowest, communication times growing mildly with the
job size, and mu-only overlap as the best schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.kernel_analysis import mu_kernel_cost, phi_kernel_cost
from repro.perf.machines import MachineSpec
from repro.perf.netmodel import exchange_time

__all__ = [
    "intranode_scaling",
    "comm_time_per_step",
    "weak_scaling_curve",
    "SCENARIO_COST",
]

#: Relative whole-step cost per benchmark scenario with the shortcut
#: kernels: interface blocks pay the full bill, solid blocks skip the
#: anti-trapping current, liquid blocks skip the interfacial phi terms.
SCENARIO_COST = {"interface": 1.0, "liquid": 0.80, "solid": 0.76}


def _mu_rate_core(machine: MachineSpec) -> float:
    """Single-core mu-kernel rate (MLUP/s) from the static cost model."""
    cost = mu_kernel_cost()
    return machine.peak_flops_core * machine.kernel_efficiency / cost.flops / 1e6


def _step_rate_core(machine: MachineSpec, scenario: str = "interface") -> float:
    """Single-core whole-timestep rate (MLUP/s), scenario adjusted."""
    total = mu_kernel_cost().flops + phi_kernel_cost().flops
    total *= SCENARIO_COST[scenario]
    return machine.peak_flops_core * machine.kernel_efficiency / total / 1e6


def intranode_scaling(
    machine: MachineSpec,
    cores: list[int],
    block_edge: int = 40,
    *,
    contention: float = 0.012,
) -> list[float]:
    """Fig. 7: aggregate mu-kernel MLUP/s over the cores of one node.

    Nearly linear (the kernel is compute bound) with a mild shared-cache/
    uncore contention term, capped by the node memory roof.  Smaller
    blocks (20^3) fit entirely in L3, raising the memory roof but adding
    relative ghost overhead — "changes the performance only slightly".
    """
    from repro.perf.roofline import bytes_per_cell

    r1 = _mu_rate_core(machine)
    # ghost overhead: the kernel also streams the ghost shell
    overhead = ((block_edge + 2) ** 3) / block_edge**3
    r1 = r1 / overhead
    if block_edge <= 20:
        bpc = bytes_per_cell(4, 2, cache_reuse=0.9)  # resident in L3
    else:
        bpc = bytes_per_cell(4, 2, cache_reuse=0.5)
    mem_cap = machine.stream_bw_node / bpc / 1e6
    out = []
    for c in cores:
        if c < 1 or c > machine.cores_per_node:
            raise ValueError(f"core count {c} outside node size")
        rate = c * r1 / (1.0 + contention * (c - 1))
        out.append(min(rate, mem_cap))
    return out


@dataclass(frozen=True)
class CommTimes:
    """Per-step communication time (seconds) of one schedule point."""

    cores: int
    phi: float
    mu: float


def comm_time_per_step(
    machine: MachineSpec,
    cores_list: list[int],
    block_edge: int = 60,
    *,
    overlap_phi: bool = False,
    overlap_mu: bool = False,
    n_phases: int = 4,
    n_solutes: int = 2,
) -> list[CommTimes]:
    """Fig. 8: time in the two ghost-exchange routines per time step.

    phi messages carry ``n_phases`` values per cell, mu messages
    ``n_solutes`` — hence "the amount of exchanged data is higher in the
    phi-communication".  Overlapping leaves only pack/unpack visible.
    """
    block = (block_edge,) * 3
    out = []
    for cores in cores_list:
        t_phi = exchange_time(
            machine, block, n_phases, cores, overlap=overlap_phi
        )
        t_mu = exchange_time(
            machine, block, n_solutes, cores, overlap=overlap_mu
        )
        out.append(CommTimes(cores=cores, phi=t_phi, mu=t_mu))
    return out


def weak_scaling_curve(
    machine: MachineSpec,
    cores_list: list[int],
    scenario: str = "interface",
    block_edge: int = 60,
    *,
    overlap_mu: bool = True,
    overlap_phi: bool = False,
    split_overhead: float = 0.05,
    rate_core_override: float | None = None,
) -> list[float]:
    """Fig. 9: per-core whole-step MLUP/s versus total core count.

    One block per core; the exposed communication time (phi un-hidden by
    default — the schedule the paper selects — plus the pack time of the
    hidden mu exchange) eats into the per-step budget as the job grows and
    the topology factor rises.  ``split_overhead`` models the extra work
    when the phi exchange is also hidden (the mu sweep must be split and
    slice-temperature values recomputed).

    *rate_core_override* substitutes a measured single-core rate (MLUP/s)
    for the model-derived one — the benchmarks feed the actual Python
    kernel measurements through the same machinery.
    """
    if scenario not in SCENARIO_COST:
        raise ValueError(f"unknown scenario {scenario!r}")
    block = (block_edge,) * 3
    cells = block_edge**3
    r_core = (
        rate_core_override
        if rate_core_override is not None
        else _step_rate_core(machine, scenario)
    )
    t_comp = cells / (r_core * 1e6)
    if overlap_phi:
        t_comp *= 1.0 + split_overhead
    out = []
    for cores in cores_list:
        t_phi = exchange_time(machine, block, 4, cores, overlap=overlap_phi)
        t_mu = exchange_time(machine, block, 2, cores, overlap=overlap_mu)
        t_step = t_comp + t_phi + t_mu
        out.append(cells / t_step / 1e6)
    return out
