"""Resilience subsystem: durable checkpoints, guardrails, fault injection.

Production phase-field campaigns (Sec. 6 of the paper) run for days on
hundreds of thousands of cores; they finish because the tooling around
them survives crashes, torn checkpoint writes and numerical blow-ups.
This package reproduces that operational layer:

* :mod:`repro.resilience.store` — rotating store of the last K good
  checkpoints over the atomic, checksummed writer of
  :mod:`repro.io.checkpoint`; corrupt generations are quarantined.
* :mod:`repro.resilience.guards` — per-step physical invariants
  (finiteness, partition of unity, Gibbs-simplex bounds, solute
  conservation), Timeloop watchdog functors, and
  :class:`GuardedSimulation` with rollback + dt-backoff retry.
* :mod:`repro.resilience.faults` — deterministic seeded
  :class:`FaultPlan` (rank kills, dropped/corrupted/delayed ghost
  messages, truncated checkpoints, NaN injection, checkpoint-write I/O
  failures).
* :mod:`repro.resilience.retry` — bounded exponential-backoff retry with
  deterministic jitter for transient checkpoint I/O failures.
* :mod:`repro.resilience.campaign` — chunked distributed campaigns that
  relaunch from the checkpoint store after any rank failure; with a
  :class:`ShardedCheckpointStore` they run elastically, shrinking to the
  surviving ranks after a permanent rank loss and resuming from the
  newest committed sharded checkpoint.
"""

from repro.resilience.campaign import CampaignResult, run_campaign
from repro.resilience.errors import (
    CheckpointError,
    DivergenceError,
    InjectedFault,
    InvariantViolation,
)
from repro.resilience.faults import FAULT_KINDS, Fault, FaultPlan, FaultyComm, stall
from repro.resilience.guards import (
    GuardedSimulation,
    StateGuard,
    attach_watchdog,
    find_violations,
)
from repro.resilience.retry import RetryPolicy, retry_io
from repro.resilience.store import CheckpointStore, ShardedCheckpointStore

__all__ = [
    "CampaignResult",
    "run_campaign",
    "CheckpointError",
    "DivergenceError",
    "InjectedFault",
    "InvariantViolation",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultyComm",
    "stall",
    "GuardedSimulation",
    "StateGuard",
    "attach_watchdog",
    "find_violations",
    "CheckpointStore",
    "ShardedCheckpointStore",
    "RetryPolicy",
    "retry_io",
]
