"""Fault-tolerant distributed campaign driver.

The paper's 262k-core runs (Sec. 6) only finish because the job system
relaunches them from checkpoints after node failures.  This module
reproduces that operational loop on top of the simulated-MPI driver:
advance in checkpoint-sized chunks, persist every chunk boundary through
a rotating :class:`~repro.resilience.store.CheckpointStore`, and on any
rank failure — injected or real — reload the newest checkpoint that
verifies and relaunch the remaining steps.  Because the dynamics are
deterministic and faults fire once, a recovered campaign converges to
the unfaulted result up to the float32 rounding of the restart state.

With a :class:`repro.telemetry.RunTelemetry` attached, the campaign
streams structured events (checkpoint writes, restarts, chunk
boundaries), accumulates the cross-rank timing trees of every chunk and
emits one run report covering the whole campaign — restarts, faults and
all.
"""

from __future__ import annotations

import logging
import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.io.checkpoint import CheckpointError
from repro.resilience.errors import (
    DivergenceError,
    InjectedFault,
    InvariantViolation,
)
from repro.resilience.store import ShardedCheckpointStore
from repro.simmpi.comm import RankFailure, RankTimeout, RemoteError

__all__ = ["CampaignResult", "run_campaign"]

logger = logging.getLogger(__name__)

#: Failures the campaign recovers from; anything else propagates.
_RECOVERABLE = (InjectedFault, InvariantViolation, RemoteError, CheckpointError)


@dataclass
class CampaignResult:
    """Outcome of a (possibly fault-ridden) campaign."""

    phi: np.ndarray
    mu: np.ndarray
    steps: int
    time: float
    restarts: int
    checkpoints_written: int
    faults_fired: list = field(default_factory=list)
    timing: dict | None = None
    report: dict | None = None
    #: Elastic-recovery accounting (sharded-store campaigns).
    rank_failures: int = 0
    shrinks: int = 0
    final_ranks: int | None = None
    io_retries: int = 0
    checkpoints_skipped: int = 0


def _lost_ranks(exc) -> list[int]:
    """Ranks permanently lost in *exc* (empty for transient failures).

    ``kill_rank`` / ``rank_stall`` injected faults and
    :class:`RankFailure` (including :class:`RankTimeout` hang verdicts)
    model node death — the rank will not come back, so the campaign must
    shrink.  ``rank_kill`` (transient crash) and everything else restart
    at the same size.
    """
    if isinstance(exc, InjectedFault) and exc.kind in ("kill_rank",
                                                       "rank_stall"):
        rank = exc.rank if exc.rank is not None else getattr(
            exc, "simmpi_rank", None
        )
        return [rank] if rank is not None else []
    if isinstance(exc, RankFailure):
        return list(exc.failed_ranks)
    return []


def run_campaign(
    dsim,
    steps: int,
    phi0: np.ndarray,
    mu0: np.ndarray,
    *,
    store,
    checkpoint_every: int = 4,
    max_restarts: int = 8,
    fault_plan=None,
    guard: bool = True,
    telemetry=None,
) -> CampaignResult:
    """Run *steps* steps of a :class:`DistributedSimulation`, surviving faults.

    The initial state is checkpointed before the first step, so even a
    fault in the first chunk has a restart target.  If every stored
    checkpoint fails verification, the campaign restarts from the
    pristine initial condition.  Exhausting *max_restarts* raises a
    structured :class:`DivergenceError` chained to the last failure.

    *telemetry* (a :class:`repro.telemetry.RunTelemetry`) is forwarded to
    every chunk; the per-chunk merged timing trees are accumulated into
    :attr:`CampaignResult.timing` and a campaign-wide run report —
    including guard/restart and fault statistics — is attached (and
    written to ``telemetry.directory`` when set).

    With a :class:`~repro.resilience.store.ShardedCheckpointStore` the
    campaign runs **elastically**: the ranks checkpoint in-run through
    two-phase sharded writes, and a *permanent* rank loss (``kill_rank``
    fault or :class:`~repro.simmpi.comm.RankFailure`) shrinks the
    simulation to the survivors, reloads the newest committed manifest —
    which restores on any rank count — and resumes.  Transient failures
    restart at the same size, exactly as with a plain store.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    sharded = isinstance(store, ShardedCheckpointStore)
    phi = np.array(phi0, dtype=float)
    mu = np.array(mu0, dtype=float)
    time_now = 0.0
    step_now = 0
    restarts = 0
    checkpoints_written = 0
    rank_failures = 0
    shrinks = 0
    hangs_detected = 0
    restart_reasons: list[str] = []

    events = None
    timing_total: dict | None = None
    counters_total: dict = {}
    wall0 = _time.perf_counter()
    if telemetry is not None:
        events = telemetry.open_events(0)
        events.emit(
            "campaign_start", steps=steps,
            checkpoint_every=checkpoint_every, n_ranks=dsim.n_ranks,
        )
    logger.info(
        "campaign: %d steps on %d ranks, checkpoint every %d",
        steps, dsim.n_ranks, checkpoint_every,
    )

    def snapshot() -> dict:
        return {
            "phi": phi, "mu": mu, "time": time_now, "step_count": step_now,
            "z_offset": 0, "kernel": dsim.kernel,
        }

    def checkpoint() -> None:
        nonlocal checkpoints_written
        if sharded:
            try:
                path = store.save_global(
                    snapshot(), forest=dsim.forest, owner=dsim.owner,
                    n_ranks=dsim.n_ranks, events=events,
                )
            except OSError as exc:
                store.note_skipped()
                logger.warning(
                    "sharded checkpoint at step %d skipped after persistent "
                    "I/O failure: %r", step_now, exc,
                )
                if events is not None:
                    events.emit(
                        "checkpoint_skipped", "WARNING", step=step_now,
                        error=repr(exc),
                    )
                return
        else:
            path = store.save_state(snapshot())
        checkpoints_written += 1
        logger.info("checkpoint %d written at step %d: %s",
                    checkpoints_written, step_now, path)
        if events is not None:
            events.emit("checkpoint", step=step_now, path=str(path))

    checkpoint()

    while step_now < steps:
        # a sharded store checkpoints from inside the run, so the whole
        # remainder is one chunk; a plain store checkpoints per chunk
        chunk = (
            steps - step_now if sharded
            else min(checkpoint_every, steps - step_now)
        )
        try:
            res = dsim.run(
                chunk, phi, mu,
                t0=time_now, step0=step_now,
                fault_plan=fault_plan, guard=guard,
                telemetry=telemetry,
                shard_store=store if sharded else None,
                checkpoint_every=checkpoint_every if sharded else None,
            )
        except _RECOVERABLE as exc:
            restarts += 1
            restart_reasons.append(repr(exc))
            logger.warning(
                "campaign chunk failed at step %d (%r); restart %d/%d",
                step_now, exc, restarts, max_restarts,
            )
            if isinstance(exc, RankTimeout):
                # Deadline/watchdog containment verdict: a hung rank was
                # detected and converted into a recoverable failure.
                hangs_detected += 1
                if events is not None:
                    events.emit(
                        "hang_detected", "ERROR", step=step_now,
                        op=exc.op, timeout=exc.timeout,
                        ranks=list(exc.failed_ranks),
                    )
            if restarts > max_restarts:
                if events is not None:
                    events.emit(
                        "campaign_failed", "ERROR",
                        step=step_now, error=repr(exc), restarts=restarts - 1,
                    )
                    events.close()
                raise DivergenceError(
                    step=step_now,
                    violations=[f"restart budget exhausted: {exc}"],
                    attempts=restarts - 1,
                ) from exc
            lost = sorted(set(_lost_ranks(exc)))
            if sharded and lost and dsim.n_ranks - len(lost) >= 1:
                old_n = dsim.n_ranks
                new_n = old_n - len(lost)
                rank_failures += len(lost)
                shrinks += 1
                if events is not None:
                    for rank in lost:
                        events.emit(
                            "rank_failed", "ERROR", rank=rank,
                            step=step_now, error=repr(exc),
                        )
                    events.emit(
                        "comm_shrunk", "WARNING",
                        old_ranks=old_n, new_ranks=new_n, lost=lost,
                    )
                dsim = dsim.shrunk(new_n)
                logger.warning(
                    "rank(s) %s lost permanently; shrinking %d -> %d ranks",
                    lost, old_n, new_n,
                )
                if events is not None:
                    events.emit(
                        "reshard", n_ranks=new_n,
                        n_blocks=dsim.forest.n_blocks,
                        owner=[int(r) for r in dsim.owner],
                    )
            state = store.load_latest()
            if state is None:
                # every generation failed verification: cold restart
                phi = np.array(phi0, dtype=float)
                mu = np.array(mu0, dtype=float)
                time_now, step_now = 0.0, 0
                logger.warning("no loadable checkpoint; cold restart from t=0")
            else:
                phi, mu = state["phi"], state["mu"]
                time_now, step_now = state["time"], state["step_count"]
            if events is not None:
                events.emit(
                    "restart", "WARNING", step=step_now,
                    error=repr(exc), attempt=restarts,
                )
            continue
        phi, mu = res.phi, res.mu
        time_now += chunk * dsim.params.dt
        step_now += chunk
        if telemetry is not None and res.timing is not None:
            from repro.telemetry.reduce import accumulate_reduced

            timing_total = (
                res.timing if timing_total is None
                else accumulate_reduced(timing_total, res.timing)
            )
            for name, value in (res.counters or {}).items():
                if name.startswith("mlups"):
                    counters_total[name] = max(
                        counters_total.get(name, 0.0), value
                    )
                else:
                    counters_total[name] = counters_total.get(name, 0) + value
        if not sharded:
            checkpoint()

    if sharded:
        checkpoints_written = store.stats["manifests_published"]
    result = CampaignResult(
        phi=phi,
        mu=mu,
        steps=step_now,
        time=time_now,
        restarts=restarts,
        checkpoints_written=checkpoints_written,
        faults_fired=[] if fault_plan is None else fault_plan.fired(),
        timing=timing_total,
        rank_failures=rank_failures,
        shrinks=shrinks,
        final_ranks=dsim.n_ranks,
        io_retries=store.stats["io_retries"] if sharded else 0,
        checkpoints_skipped=(
            store.stats["checkpoints_skipped"] if sharded else 0
        ),
    )
    if telemetry is not None:
        elastic_stats = None
        if sharded:
            elastic_stats = {
                "rank_failures": result.rank_failures,
                "shrinks": result.shrinks,
                "final_ranks": int(result.final_ranks),
                "io_retries": result.io_retries,
                "checkpoints_skipped": result.checkpoints_skipped,
            }
        _finalize_campaign_telemetry(
            dsim, telemetry, events, result, counters_total,
            wall=_time.perf_counter() - wall0, guard=guard,
            fault_plan=fault_plan, restart_reasons=restart_reasons,
            elastic_stats=elastic_stats, hangs_detected=hangs_detected,
        )
    return result


def _finalize_campaign_telemetry(
    dsim, telemetry, events, result: CampaignResult, counters: dict, *,
    wall: float, guard: bool, fault_plan, restart_reasons: list[str],
    elastic_stats: dict | None = None, hangs_detected: int = 0,
) -> None:
    from repro.telemetry.report import build_run_report, write_run_report

    events.emit(
        "campaign_end", steps=result.steps, restarts=result.restarts,
        checkpoints=result.checkpoints_written, wall_seconds=wall,
    )
    event_count = events.count()
    events.close()
    merged_events = telemetry.merge_events()
    cells = int(np.prod(dsim.shape))
    fault_stats = None
    if fault_plan is not None:
        fault_stats = {
            "fired": [
                {"kind": f.kind, "step": s, "rank": r}
                for f, s, r in fault_plan.fired()
            ],
            "pending": len(fault_plan.pending()),
        }
    def _count_kind(kind: str) -> int:
        return sum(1 for r in merged_events if r.get("kind") == kind)

    from repro.simmpi.deadline import DeadlinePolicy
    from repro.simmpi.liveness import WatchdogConfig

    liveness_stats = {
        "hangs_detected": hangs_detected,
        "stalls_injected": (
            0 if fault_plan is None else sum(
                1 for f, _s, _r in fault_plan.fired()
                if f.kind in ("rank_stall", "rank_slow")
            )
        ),
        "transport_degradations": _count_kind("transport_degraded"),
        "shm_reclaimed": _count_kind("shm_reclaimed"),
        "deadlines_enabled": DeadlinePolicy.from_env().enabled,
        "watchdog_enabled": WatchdogConfig.from_env().enabled,
    }
    report = build_run_report(
        run_id=telemetry.run_id,
        config={
            "shape": list(dsim.shape),
            "blocks_per_axis": list(dsim.forest.blocks_per_axis),
            "n_ranks": dsim.n_ranks,
            "kernel": dsim.kernel,
            "overlap": dsim.overlap,
            "guard": guard,
            "dt": dsim.params.dt,
            "campaign": True,
        },
        grid_shape=dsim.shape,
        n_ranks=dsim.n_ranks,
        steps=result.steps,
        wall_seconds=wall,
        mlups=result.steps * cells / wall / 1.0e6 if wall > 0 else 0.0,
        timings=result.timing,
        counters={
            **counters,
            "checkpoints_written": result.checkpoints_written,
        },
        guard_stats={
            "rollbacks": 0,
            "restarts": result.restarts,
            "violations": restart_reasons,
        },
        fault_stats=fault_stats,
        event_stats={
            "count": len(merged_events) or event_count,
            "path": (
                str(telemetry.directory / "events-merged.jsonl")
                if telemetry.directory is not None else None
            ),
        },
        elastic_stats=elastic_stats,
        liveness_stats=liveness_stats,
    )
    result.report = report
    path = telemetry.report_path()
    if path is not None:
        write_run_report(path, report)
        logger.info("campaign report written to %s", path)
