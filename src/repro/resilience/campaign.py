"""Fault-tolerant distributed campaign driver.

The paper's 262k-core runs (Sec. 6) only finish because the job system
relaunches them from checkpoints after node failures.  This module
reproduces that operational loop on top of the simulated-MPI driver:
advance in checkpoint-sized chunks, persist every chunk boundary through
a rotating :class:`~repro.resilience.store.CheckpointStore`, and on any
rank failure — injected or real — reload the newest checkpoint that
verifies and relaunch the remaining steps.  Because the dynamics are
deterministic and faults fire once, a recovered campaign converges to
the unfaulted result up to the float32 rounding of the restart state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io.checkpoint import CheckpointError
from repro.resilience.errors import (
    DivergenceError,
    InjectedFault,
    InvariantViolation,
)
from repro.simmpi.comm import RemoteError

__all__ = ["CampaignResult", "run_campaign"]

#: Failures the campaign recovers from; anything else propagates.
_RECOVERABLE = (InjectedFault, InvariantViolation, RemoteError, CheckpointError)


@dataclass
class CampaignResult:
    """Outcome of a (possibly fault-ridden) campaign."""

    phi: np.ndarray
    mu: np.ndarray
    steps: int
    time: float
    restarts: int
    checkpoints_written: int
    faults_fired: list = field(default_factory=list)


def run_campaign(
    dsim,
    steps: int,
    phi0: np.ndarray,
    mu0: np.ndarray,
    *,
    store,
    checkpoint_every: int = 4,
    max_restarts: int = 8,
    fault_plan=None,
    guard: bool = True,
) -> CampaignResult:
    """Run *steps* steps of a :class:`DistributedSimulation`, surviving faults.

    The initial state is checkpointed before the first step, so even a
    fault in the first chunk has a restart target.  If every stored
    checkpoint fails verification, the campaign restarts from the
    pristine initial condition.  Exhausting *max_restarts* raises a
    structured :class:`DivergenceError` chained to the last failure.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    phi = np.array(phi0, dtype=float)
    mu = np.array(mu0, dtype=float)
    time_now = 0.0
    step_now = 0
    restarts = 0
    checkpoints_written = 0

    def snapshot() -> dict:
        return {
            "phi": phi, "mu": mu, "time": time_now, "step_count": step_now,
            "z_offset": 0, "kernel": dsim.kernel,
        }

    store.save_state(snapshot())
    checkpoints_written += 1

    last_exc = None
    while step_now < steps:
        chunk = min(checkpoint_every, steps - step_now)
        try:
            res = dsim.run(
                chunk, phi, mu,
                t0=time_now, step0=step_now,
                fault_plan=fault_plan, guard=guard,
            )
        except _RECOVERABLE as exc:
            restarts += 1
            last_exc = exc
            if restarts > max_restarts:
                raise DivergenceError(
                    step=step_now,
                    violations=[f"restart budget exhausted: {exc}"],
                    attempts=restarts - 1,
                ) from exc
            state = store.load_latest()
            if state is None:
                # every generation failed verification: cold restart
                phi = np.array(phi0, dtype=float)
                mu = np.array(mu0, dtype=float)
                time_now, step_now = 0.0, 0
            else:
                phi, mu = state["phi"], state["mu"]
                time_now, step_now = state["time"], state["step_count"]
            continue
        phi, mu = res.phi, res.mu
        time_now += chunk * dsim.params.dt
        step_now += chunk
        store.save_state(snapshot())
        checkpoints_written += 1

    return CampaignResult(
        phi=phi,
        mu=mu,
        steps=step_now,
        time=time_now,
        restarts=restarts,
        checkpoints_written=checkpoints_written,
        faults_fired=[] if fault_plan is None else fault_plan.fired(),
    )
