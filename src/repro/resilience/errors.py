"""Exception types of the resilience subsystem.

:class:`CheckpointError` lives in :mod:`repro.io.checkpoint` (the layer
that raises it) and is re-exported here so campaign code can catch every
resilience-related failure from one module.
"""

from __future__ import annotations

from repro.io.checkpoint import CheckpointError

__all__ = [
    "CheckpointError",
    "InvariantViolation",
    "DivergenceError",
    "InjectedFault",
]


class InvariantViolation(RuntimeError):
    """A per-step guardrail check failed (NaN/Inf, phase-sum drift, ...).

    Raised by watchdog functors and the distributed per-step guard; the
    guarded drivers catch it and roll back to the last good checkpoint.
    """

    def __init__(self, violations, *, step: int | None = None,
                 rank: int | None = None):
        if isinstance(violations, str):
            violations = [violations]
        self.violations = list(violations)
        self.step = step
        self.rank = rank
        where = "" if step is None else f" at step {step}"
        who = "" if rank is None else f" on rank {rank}"
        super().__init__(
            f"invariant violation{where}{who}: " + "; ".join(self.violations)
        )


class DivergenceError(RuntimeError):
    """Rollback-with-retry exhausted its attempts.

    Carries the structured failure record a campaign driver needs to
    report: the step the run could not get past, the violations seen
    there, and how many restart attempts were spent.
    """

    def __init__(self, *, step: int, violations, attempts: int):
        self.step = step
        self.violations = list(violations)
        self.attempts = attempts
        super().__init__(
            f"run diverged at step {step} after {attempts} recovery "
            f"attempt(s): " + "; ".join(self.violations)
        )


class InjectedFault(RuntimeError):
    """A fault fired by a :class:`repro.resilience.faults.FaultPlan`.

    Models an external failure (rank crash, lost message); campaign
    drivers treat it like any other crash and restart from checkpoint.
    """

    def __init__(self, kind: str, *, step: int | None = None,
                 rank: int | None = None):
        self.kind = kind
        self.step = step
        self.rank = rank
        where = "" if step is None else f" at step {step}"
        who = "" if rank is None else f" on rank {rank}"
        super().__init__(f"injected fault {kind!r}{where}{who}")
