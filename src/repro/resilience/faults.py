"""Deterministic fault injection.

A :class:`FaultPlan` is a seeded, reproducible list of faults that the
guarded drivers consult at well-defined points: the start of each time
step (``rank_kill`` / ``kill_rank`` / ``rank_stall`` / ``rank_slow`` /
``nan_inject``), each outgoing message (``msg_drop`` / ``msg_corrupt``
/ ``msg_delay``), each received staged segment (``ack_drop``, process
backend) and each checkpoint write (``ckpt_truncate`` after commit;
``io_enospc`` / ``io_torn_write`` during the write, exercised through
the sharded store's retry layer).  Every fault fires **once** — the whole point of
recovery testing is that the retry after a restart runs clean — and the
plan records what fired, so a failing test can print the exact schedule
(and seed) needed to reproduce it.  Scheduling the same fault K times at
one step models a *persistent* failure that outlasts K retries.
"""

from __future__ import annotations

import logging
import threading
import time as _time
from dataclasses import dataclass

import numpy as np

from repro.resilience.errors import InjectedFault

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "FaultyComm", "poison",
           "stall"]

logger = logging.getLogger(__name__)

FAULT_KINDS = (
    "rank_kill",      # the rank raises InjectedFault (transient process
                      # crash; the campaign restarts at the same size)
    "kill_rank",      # the rank is lost permanently (node death); an
                      # elastic campaign shrinks to the survivors
    "rank_stall",     # the rank hangs: it stops communicating without
                      # raising, for up to `delay` seconds (permanent from
                      # the peers' view; deadline/watchdog must contain it
                      # and the elastic campaign shrinks to the survivors)
    "rank_slow",      # the rank pauses for `delay` seconds then continues
                      # (transient OS-jitter analog; must be harmless
                      # below the hang threshold)
    "msg_drop",       # a ghost message is lost; the sender detects the
                      # failed transfer and aborts (walltime-kill analog)
    "msg_corrupt",    # a ghost message arrives NaN-poisoned
    "msg_delay",      # a ghost message is delivered late (must be harmless)
    "ack_drop",       # the process transport loses one segment ack: the
                      # sender's channel slot leaks and it eventually
                      # blocks (silent-NIC analog; deadline-contained)
    "ckpt_truncate",  # a finished checkpoint file is cut short on disk
    "nan_inject",     # a field value blows up to NaN mid-run
    "io_enospc",      # a checkpoint write fails with ENOSPC (full disk)
    "io_torn_write",  # a checkpoint write tears: a prefix reaches the
                      # final name, then the device errors out
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``rank=None`` matches any rank (first claimant wins); *fraction* is
    the surviving byte fraction for ``ckpt_truncate``; *delay* the extra
    latency in seconds for ``msg_delay``.
    """

    kind: str
    step: int
    rank: int | None = None
    fraction: float = 0.5
    #: Extra latency in seconds: the delivery lag for ``msg_delay``, the
    #: pause for ``rank_slow``, and the stall *cap* for ``rank_stall``
    #: (a safety bound so an uncontained stall still ends eventually).
    delay: float = 0.005

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )


class FaultPlan:
    """Seeded, thread-safe, fire-once fault schedule."""

    def __init__(self, faults=(), *, seed: int = 0):
        self.faults = [f if isinstance(f, Fault) else Fault(**f) for f in faults]
        self.seed = seed
        self._fired: dict[int, tuple] = {}
        self._lock = threading.Lock()
        #: Optional ``callback((kind, step, rank))`` invoked when a fault
        #: fires.  The process backend uses it to mirror fires from a
        #: forked child copy of the plan back to the parent's copy (via
        #: :meth:`mark_fired`), so a campaign restart does not re-fire
        #: faults that already happened in a killed child.
        self.on_fire = None

    @classmethod
    def random(cls, seed: int, *, steps: int, n_ranks: int = 1,
               kinds=FAULT_KINDS, n_faults: int = 1) -> "FaultPlan":
        """Deterministically sample *n_faults* faults from *seed*.

        Steps are drawn from ``[1, steps)`` so a fault never fires before
        the initial checkpoint exists.
        """
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            step = int(rng.integers(1, max(2, steps)))
            rank = int(rng.integers(n_ranks))
            faults.append(Fault(kind=kind, step=step, rank=rank))
        return cls(faults, seed=seed)

    def fires(self, kind: str, *, step: int, rank: int | None = None):
        """Claim-and-return the matching unfired fault, or ``None``.

        Thread-safe: simulated ranks race for rank-wildcard faults, but
        each fault is claimed exactly once.
        """
        fault = None
        with self._lock:
            for i, f in enumerate(self.faults):
                if i in self._fired or f.kind != kind or f.step != step:
                    continue
                if f.rank is not None and rank is not None and f.rank != rank:
                    continue
                self._fired[i] = (step, rank)
                logger.warning(
                    "injecting fault %s at step %d on rank %s", kind, step, rank
                )
                fault = f
                break
        if fault is not None and self.on_fire is not None:
            try:
                self.on_fire((kind, step, rank))
            except Exception:  # notification must never mask the fault
                logger.debug("fault on_fire notification failed", exc_info=True)
        return fault

    def mark_fired(self, kind: str, step: int, rank: int | None = None) -> bool:
        """Record that a matching fault fired *elsewhere* (no injection).

        Claims the first pending fault matching ``(kind, step[, rank])``
        — the bookkeeping half of the process-backend fire
        notifications (see :attr:`on_fire`).  Returns ``True`` when a
        fault was claimed.
        """
        with self._lock:
            for i, f in enumerate(self.faults):
                if i in self._fired or f.kind != kind or f.step != step:
                    continue
                if f.rank is not None and rank is not None and f.rank != rank:
                    continue
                self._fired[i] = (step, rank)
                logger.debug(
                    "fault %s at step %d on rank %s marked fired remotely",
                    kind, step, rank,
                )
                return True
        return False

    def fired(self) -> list[tuple[Fault, int, int | None]]:
        """Faults that fired, with the (step, rank) they fired at."""
        with self._lock:
            return [(self.faults[i], s, r) for i, (s, r) in self._fired.items()]

    def pending(self) -> list[Fault]:
        """Faults that have not fired yet."""
        with self._lock:
            return [f for i, f in enumerate(self.faults) if i not in self._fired]

    def describe(self) -> str:
        """Reproduction string (seed + schedule) for test reports."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for f in self.faults:
            lines.append(
                f"  {f.kind} @ step {f.step}"
                + ("" if f.rank is None else f" rank {f.rank}")
            )
        return "\n".join(lines)


def stall(comm, max_seconds: float, poll: float = 0.05) -> None:
    """Simulate a hung rank: stop communicating without raising.

    Spins until the world is aborted (peers' deadlines fired, or the
    watchdog killed this process before this returns at all) or until
    the *max_seconds* safety cap elapses — a stall must not hang the
    host forever even when no containment layer is armed.  Always
    raises: :class:`~repro.simmpi.comm.RemoteError` when the abort was
    observed (a *secondary* failure, so the peer's typed
    :class:`~repro.simmpi.comm.RankTimeout` wins error selection), or
    :class:`InjectedFault` when the cap expired first (the campaign
    treats an expired ``rank_stall`` as a permanent rank loss).
    """
    from repro.simmpi.comm import RemoteError

    t0 = _time.monotonic()
    aborted = getattr(comm, "aborted", None)
    while _time.monotonic() - t0 < max_seconds:
        if aborted is not None and aborted():
            raise RemoteError(
                f"rank {comm.rank} stalled for "
                f"{_time.monotonic() - t0:.2f}s until peers aborted"
            )
        _time.sleep(poll)
    raise InjectedFault("rank_stall", rank=getattr(comm, "rank", None))


def poison(arr: np.ndarray) -> None:
    """Overwrite one central value of *arr* with NaN, in place.

    Index-based write so it works on non-contiguous views (the ghosted
    interior of a :class:`repro.grid.field.Field` is one).
    """
    arr[tuple(s // 2 for s in arr.shape)] = np.nan


class FaultyComm:
    """Communicator proxy that injects message faults on outgoing traffic.

    Wraps a :class:`repro.simmpi.comm.Communicator`; the driver advances
    :attr:`step` once per time step so message faults are matched against
    the simulation clock.  Every operation with an outgoing payload is
    intercepted — blocking and non-blocking point-to-point (``send`` /
    ``isend`` / ``sendrecv``) *and* the rooted collectives — so an
    injected ``msg_drop`` / ``msg_corrupt`` / ``msg_delay`` hits whichever
    path the exchange code actually takes.  Receives pass through.
    """

    def __init__(self, comm, plan: FaultPlan):
        self._comm = comm
        self._plan = plan
        self._step = 0
        # Process backend: hand the plan to the transport so it can
        # fire receive-side faults (ack_drop) the proxy never sees.
        transport = getattr(comm, "_transport", None)
        if transport is not None and hasattr(transport, "fault_plan"):
            transport.fault_plan = plan
            transport.fault_step = 0

    @property
    def step(self) -> int:
        """Simulation clock; the driver advances it once per time step."""
        return self._step

    @step.setter
    def step(self, value: int) -> None:
        self._step = value
        transport = getattr(self._comm, "_transport", None)
        if transport is not None and hasattr(transport, "fault_step"):
            transport.fault_step = value

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def _outgoing(self, obj, collective: bool = False):
        """Apply any scheduled message fault to an outgoing payload."""
        if self._plan.fires("msg_drop", step=self.step, rank=self.rank):
            # the transfer fails outright; the sending rank notices and
            # aborts — peers waiting on the message see the world fail
            # instead of deadlocking on a payload that will never arrive
            raise InjectedFault("msg_drop", step=self.step, rank=self.rank)
        fault = self._plan.fires("msg_corrupt", step=self.step, rank=self.rank)
        if fault is not None and isinstance(obj, np.ndarray):
            obj = np.array(obj, dtype=float)
            obj.flat[::3] = np.nan
        if collective:
            # A collective contribution leaving late IS late delivery:
            # the caller blocks inside the collective until the message
            # lands anyway, so sleeping here delays nothing else.
            fault = self._plan.fires("msg_delay", step=self.step,
                                     rank=self.rank)
            if fault is not None:
                _time.sleep(fault.delay)
        return obj

    def _delayed_send(self, obj, dest: int, tag: int) -> bool:
        """Late-*delivery* model of ``msg_delay`` for point-to-point.

        The sender returns immediately (the fault must stay harmless —
        delaying the whole sending rank would be a stall, not a slow
        message); a daemon timer injects the snapshot into the peer's
        matching machinery *delay* seconds later.  Returns ``True``
        when the send was taken over.
        """
        fault = self._plan.fires("msg_delay", step=self.step, rank=self.rank)
        if fault is None:
            return False
        payload = obj.copy() if isinstance(obj, np.ndarray) else obj
        transport = getattr(self._comm, "_transport", None)
        if transport is not None and hasattr(transport, "send_inline"):
            deliver = lambda: transport.send_inline(payload, dest, tag)  # noqa: E731
        else:
            comm = self._comm
            deliver = lambda: comm.send(payload, dest, tag)  # noqa: E731

        def fire():
            try:
                deliver()
            except Exception:
                # The world may be gone by delivery time; a late message
                # into a dead run is exactly a message that never mattered.
                logger.debug("delayed message delivery failed", exc_info=True)

        timer = threading.Timer(fault.delay, fire)
        timer.daemon = True
        timer.start()
        return True

    # -- point to point (blocking and non-blocking) ---------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        obj = self._outgoing(obj)
        if self._delayed_send(obj, dest, tag):
            return
        self._comm.send(obj, dest, tag)

    def isend(self, obj, dest: int, tag: int = 0):
        obj = self._outgoing(obj)
        if self._delayed_send(obj, dest, tag):
            from repro.simmpi.comm import Request

            return Request(_result=None, _ready=True)
        return self._comm.isend(obj, dest, tag)

    def sendrecv(self, sendobj, dest: int, source: int, sendtag: int = 0,
                 recvtag: int = -1):
        sendobj = self._outgoing(sendobj)
        if self._delayed_send(sendobj, dest, sendtag):
            return self._comm.recv(source, recvtag)
        return self._comm.sendrecv(sendobj, dest, source, sendtag, recvtag)

    # -- collectives (fault applies to this rank's contribution) --------

    def bcast(self, obj, root: int = 0):
        if self.rank == root:
            obj = self._outgoing(obj, collective=True)
        return self._comm.bcast(obj, root)

    def gather(self, obj, root: int = 0):
        return self._comm.gather(self._outgoing(obj, collective=True), root)

    def allgather(self, obj):
        return self._comm.allgather(self._outgoing(obj, collective=True))

    def scatter(self, objs, root: int = 0):
        if self.rank == root and objs is not None:
            objs = [self._outgoing(o, collective=True) for o in objs]
        return self._comm.scatter(objs, root)

    def reduce(self, obj, op=None, root: int = 0):
        return self._comm.reduce(self._outgoing(obj, collective=True), op, root)

    def allreduce(self, obj, op=None):
        return self._comm.allreduce(self._outgoing(obj, collective=True), op)

    def __getattr__(self, name):
        return getattr(self._comm, name)
