"""Guarded time-stepping: per-step invariants, rollback, dt backoff.

The explicit scheme of the paper is only conditionally stable; on a
multi-day campaign a too-aggressive ``dt`` (or a cosmic-ray bit flip)
shows up as NaNs or a drifting phase sum long before anyone looks at the
output.  :class:`StateGuard` encodes the model's cheap physical
invariants; :class:`GuardedSimulation` checks them while stepping and,
on violation, rolls back to the last checkpoint of a
:class:`~repro.resilience.store.CheckpointStore` — retrying with a
smaller time step when the same failure repeats, and raising a
structured :class:`~repro.resilience.errors.DivergenceError` once the
attempt budget is spent.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.resilience.errors import DivergenceError, InvariantViolation
from repro.resilience.faults import poison

__all__ = [
    "find_violations",
    "StateGuard",
    "attach_watchdog",
    "GuardedSimulation",
]

logger = logging.getLogger(__name__)


def find_violations(
    phi: np.ndarray,
    mu: np.ndarray,
    *,
    sum_tol: float = 1e-6,
    bounds_tol: float = 1e-6,
) -> list[str]:
    """Check the cheap per-state invariants; return violation messages.

    * all phi and mu values finite,
    * the order parameters sum to 1 in every cell (partition of unity),
    * every phi value lies inside the Gibbs simplex bounds ``[0, 1]``
      (up to *bounds_tol* — the projection of
      :mod:`repro.core.simplex` guarantees this for a healthy state).
    """
    violations: list[str] = []
    if not np.isfinite(phi).all():
        violations.append(f"phi has {int(np.sum(~np.isfinite(phi)))} non-finite values")
    if not np.isfinite(mu).all():
        violations.append(f"mu has {int(np.sum(~np.isfinite(mu)))} non-finite values")
    if violations:
        # the remaining checks would only re-report the NaNs
        return violations
    sums = phi.sum(axis=0)
    err = float(np.abs(sums - 1.0).max()) if sums.size else 0.0
    if err > sum_tol:
        violations.append(f"phase sum deviates from 1 by {err:.3e} (tol {sum_tol:.1e})")
    lo, hi = float(phi.min()), float(phi.max())
    if lo < -bounds_tol or hi > 1.0 + bounds_tol:
        violations.append(
            f"phi leaves the Gibbs simplex bounds: min {lo:.3e}, max {hi:.3e}"
        )
    return violations


@dataclass
class StateGuard:
    """Configurable invariant checker for a :class:`Simulation`.

    *mass_drift_rtol* bounds the relative drift of the total solute
    content (:meth:`Simulation.solute_mass`, the conservation law of
    Eq. (3)) against a captured reference; boundary fluxes through the
    open top make small drift legitimate, so the default is loose.  Set
    it to ``None`` to disable the conservation check.
    """

    sum_tol: float = 1e-6
    bounds_tol: float = 1e-6
    mass_drift_rtol: float | None = 0.25
    _mass_ref: np.ndarray | None = field(default=None, repr=False)

    def capture_reference(self, sim) -> None:
        """Record the conservation reference from the current state."""
        if self.mass_drift_rtol is not None:
            self._mass_ref = sim.solute_mass()

    def violations(self, sim) -> list[str]:
        """All violated invariants of *sim*'s current state."""
        out = find_violations(
            sim.phi.interior_src,
            sim.mu.interior_src,
            sum_tol=self.sum_tol,
            bounds_tol=self.bounds_tol,
        )
        if out or self.mass_drift_rtol is None or self._mass_ref is None:
            return out
        mass = sim.solute_mass()
        scale = np.maximum(np.abs(self._mass_ref), 1e-30)
        drift = float(np.abs((mass - self._mass_ref) / scale).max())
        if drift > self.mass_drift_rtol:
            out.append(
                f"solute mass drifted by {drift:.3e} relative "
                f"(tol {self.mass_drift_rtol:.1e})"
            )
        return out


def attach_watchdog(timeloop, sim, guard: StateGuard | None = None,
                    name: str = "watchdog"):
    """Register an invariant-checking functor on a Timeloop.

    The functor raises :class:`InvariantViolation` when any guard check
    fails; through :class:`repro.grid.timeloop.FunctorError` the failure
    is annotated with the functor name and step number.  Returns the
    functor handle (category ``"watchdog"``, so timing reports separate
    guard overhead from compute and communication).
    """
    guard = StateGuard() if guard is None else guard

    def check() -> None:
        violations = guard.violations(sim)
        if violations:
            raise InvariantViolation(violations, step=sim.step_count)

    return timeloop.add(name, check, category="watchdog")


class GuardedSimulation:
    """Run a :class:`Simulation` under invariant guards with rollback.

    Parameters
    ----------
    sim:
        The wrapped simulation (stepped in place).
    store:
        Checkpoint store used for both the periodic checkpoints and the
        rollback source.
    guard:
        Invariant configuration; defaults to :class:`StateGuard`.
    check_every / checkpoint_every:
        Cadence (in steps) of the guard checks and of the good-state
        checkpoints.
    max_retries:
        Rollback budget before :class:`DivergenceError`.
    dt_backoff:
        Factor applied to ``dt`` when a rollback does **not** get past
        the previous failure point — a repeating blow-up means the step
        size itself is the problem.  A transient fault (e.g. an injected
        NaN that does not recur) is retried at the original ``dt``, so an
        undisturbed replay stays comparable to an unfaulted run.
    fault_plan:
        Optional :class:`FaultPlan`; ``nan_inject`` faults scheduled for
        a step poison the phase field just before that step runs.
    events:
        Optional :class:`repro.telemetry.events.EventLog`; guard trips,
        rollbacks, dt backoffs and checkpoint writes are emitted as
        structured events in addition to the stdlib log records.
    """

    def __init__(
        self,
        sim,
        store,
        *,
        guard: StateGuard | None = None,
        check_every: int = 1,
        checkpoint_every: int = 8,
        max_retries: int = 3,
        dt_backoff: float = 0.5,
        fault_plan=None,
        events=None,
    ):
        if check_every < 1 or checkpoint_every < 1:
            raise ValueError("check_every and checkpoint_every must be >= 1")
        if not 0.0 < dt_backoff < 1.0:
            raise ValueError("dt_backoff must lie in (0, 1)")
        self.sim = sim
        self.store = store
        self.guard = StateGuard() if guard is None else guard
        self.check_every = check_every
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.dt_backoff = dt_backoff
        self.fault_plan = fault_plan
        self.events = events
        self.rollbacks = 0
        self._last_failure_step: int | None = None

    def _emit(self, kind: str, level: str = "INFO", **data) -> None:
        if self.events is not None:
            self.events.emit(kind, level, **data)

    def run(self, steps: int):
        """Advance *steps* guarded steps; returns the simulation report.

        The state on entry is checkpointed first, so even a violation in
        the very first step has a rollback target.
        """
        sim = self.sim
        if self.guard.mass_drift_rtol is not None and self.guard._mass_ref is None:
            self.guard.capture_reference(sim)
        self.store.save(sim)
        target = sim.step_count + steps
        retries = 0
        while sim.step_count < target:
            if self.fault_plan is not None:
                fault = self.fault_plan.fires("nan_inject", step=sim.step_count)
                if fault is not None:
                    poison(sim.phi.interior_src)
                    self._emit("fault", "WARNING", fault="nan_inject",
                               step=sim.step_count)
            sim.step()
            at_checkpoint = sim.step_count % self.checkpoint_every == 0
            due = sim.step_count % self.check_every == 0
            if due or at_checkpoint or sim.step_count >= target:
                violations = self.guard.violations(sim)
                if violations:
                    retries += 1
                    self._emit("guard_trip", "ERROR",
                               step=sim.step_count, violations=violations)
                    self._rollback(violations, retries)
                    continue
            if at_checkpoint:
                self.store.save(sim)
                self._emit("checkpoint", step=sim.step_count)
                retries = 0
        return sim.report()

    def _rollback(self, violations: list[str], retries: int) -> None:
        sim = self.sim
        failed_at = sim.step_count
        logger.warning(
            "guard tripped at step %d (retry %d/%d): %s",
            failed_at, retries, self.max_retries, "; ".join(violations),
        )
        if retries > self.max_retries:
            raise DivergenceError(
                step=failed_at, violations=violations, attempts=retries - 1
            )
        state = self.store.load_latest()
        if state is None:
            raise DivergenceError(
                step=failed_at,
                violations=violations + ["no loadable checkpoint to roll back to"],
                attempts=retries - 1,
            )
        sim.load_state(state)
        if (
            self._last_failure_step is not None
            and failed_at <= self._last_failure_step
        ):
            new_dt = sim.params.dt * self.dt_backoff
            logger.warning(
                "repeated failure at step %d: backing off dt to %.3e",
                failed_at, new_dt,
            )
            sim.set_dt(new_dt)
            self._emit("dt_backoff", "WARNING", step=failed_at, dt=new_dt)
        self._last_failure_step = failed_at
        self.rollbacks += 1
        self._emit("rollback", "WARNING", failed_at=failed_at,
                   resumed_at=sim.step_count, attempt=retries)
