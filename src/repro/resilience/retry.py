"""Bounded retry with exponential backoff and deterministic jitter.

Checkpoint I/O at production scale fails transiently all the time — a
full scratch quota, a flaky OST, a torn write under memory pressure.
The paper's campaigns survive because the job tooling retries; this
module is that wrapper, sized for the simulated runs: delays are
milliseconds, attempts are few, and the jitter is drawn from a **seeded**
generator so fault-injected tests replay byte-identically.

The policy is deliberately bounded: a persistent failure exhausts the
attempts and re-raises, and the *caller* decides whether that is fatal —
the sharded checkpoint writer, for example, skips the checkpoint with a
logged event rather than killing a multi-day run over a full disk.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "retry_io"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base * 2**attempt``, capped, with jitter.

    *jitter* scales each delay by a factor drawn uniformly from
    ``[1 - jitter, 1]`` — backing off slightly early de-synchronizes
    ranks hammering the same filesystem, the standard thundering-herd
    fix.  ``attempts`` counts total tries (first call included).
    """

    attempts: int = 4
    base_delay: float = 0.002
    max_delay: float = 0.05
    jitter: float = 0.5

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return delay * (1.0 - self.jitter * float(rng.random()))


def retry_io(
    fn,
    *,
    policy: RetryPolicy | None = None,
    seed: int = 0,
    retry_on: tuple = (OSError,),
    on_retry=None,
    describe: str = "io operation",
):
    """Call ``fn()`` until it succeeds or the policy is exhausted.

    Exceptions matching *retry_on* trigger another attempt after a
    backoff sleep; the last attempt's exception propagates unchanged.
    *on_retry* (``fn(attempt, exc, delay)``) observes every retry — the
    checkpoint stores use it to emit ``io_retry`` telemetry events.
    """
    policy = policy if policy is not None else RetryPolicy()
    if policy.attempts < 1:
        raise ValueError("need at least one attempt")
    rng = np.random.default_rng(seed)
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:  # noqa: PERF203 - retry loop
            if attempt == policy.attempts - 1:
                logger.error(
                    "%s failed after %d attempt(s): %r",
                    describe, policy.attempts, exc,
                )
                raise
            delay = policy.delay_for(attempt, rng)
            logger.warning(
                "%s failed (%r); retry %d/%d in %.1f ms",
                describe, exc, attempt + 1, policy.attempts - 1, delay * 1e3,
            )
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            time.sleep(delay)
