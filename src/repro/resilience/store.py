"""Rotating store of the last K good checkpoints.

The paper's production campaigns (Sec. 6) checkpoint periodically and
keep several generations, because a crash can strike *during* a
checkpoint write and the newest file may be the broken one.  The store
pairs the atomic, checksummed writer of :mod:`repro.io.checkpoint` with
a load path that walks generations newest-first, quarantines anything
that fails verification, and hands back the newest checkpoint that
actually loads.
"""

from __future__ import annotations

import errno
import logging
import os
import threading
from pathlib import Path

from repro.io.checkpoint import CheckpointError, load_checkpoint, save_state
from repro.io.sharded import (
    load_sharded,
    manifest_path,
    reshard,
    shard_path,
    write_manifest,
    write_shard,
)
from repro.resilience.retry import RetryPolicy, retry_io

__all__ = ["CheckpointStore", "ShardedCheckpointStore"]

logger = logging.getLogger(__name__)


class CheckpointStore:
    """Directory of ``<prefix>-<step>.npz`` checkpoints with rotation.

    Parameters
    ----------
    directory:
        Where checkpoints live; created if missing.
    keep:
        Number of most-recent checkpoints retained; older generations are
        deleted after each successful save.
    prefix:
        File-name prefix (lets several campaigns share a directory).
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`; a
        ``ckpt_truncate`` fault scheduled for the saved step truncates
        the file *after* it reaches its final name, simulating torn
        storage that atomic rename alone cannot prevent.
    """

    def __init__(self, directory, *, keep: int = 3, prefix: str = "ck",
                 fault_plan=None):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def path_for(self, step: int) -> Path:
        """Checkpoint path of a given step count."""
        return self.directory / f"{self.prefix}-{step:010d}.npz"

    def _step_of(self, path: Path) -> int:
        return int(path.stem.split("-")[-1])

    def checkpoints(self) -> list[Path]:
        """Present checkpoint files, oldest first."""
        paths = self.directory.glob(f"{self.prefix}-*.npz")
        return sorted(paths, key=self._step_of)

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def quarantined(self) -> list[Path]:
        """Files moved aside after failing verification."""
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.iterdir())

    # ------------------------------------------------------------------ #
    # save
    # ------------------------------------------------------------------ #

    def save_state(self, state: dict) -> Path:
        """Write a ``state_dict``-shaped snapshot, then rotate."""
        step = int(state["step_count"])
        path = self.path_for(step)
        save_state(
            path,
            phi=state["phi"],
            mu=state["mu"],
            time=state["time"],
            step_count=step,
            z_offset=int(state.get("z_offset", 0)),
            kernel=state.get("kernel", ""),
        )
        self._maybe_truncate(path, step)
        self._rotate()
        return path

    def save(self, sim) -> Path:
        """Checkpoint a :class:`repro.core.solver.Simulation`."""
        return self.save_state(sim.state_dict())

    def _maybe_truncate(self, path: Path, step: int) -> None:
        if self.fault_plan is None:
            return
        fault = self.fault_plan.fires("ckpt_truncate", step=step)
        if fault is None:
            return
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(max(1, int(size * fault.fraction)))

    def _rotate(self) -> None:
        paths = self.checkpoints()
        for path in paths[: max(0, len(paths) - self.keep)]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # load
    # ------------------------------------------------------------------ #

    def load_latest(self) -> dict | None:
        """Newest checkpoint that verifies, or ``None`` if none does.

        Corrupt generations (truncated archives, checksum or shape
        mismatches, unsupported versions) are moved into
        ``quarantine/`` — never deleted, so they stay available for
        post-mortems — and the walk continues with the next-older file.
        """
        for path in reversed(self.checkpoints()):
            try:
                return load_checkpoint(path)
            except CheckpointError as exc:
                self._quarantine(path, exc)
        return None

    def _quarantine(self, path: Path, exc: CheckpointError) -> None:
        logger.warning("quarantining corrupt checkpoint %s: %s", path, exc)
        self.quarantine_dir.mkdir(exist_ok=True)
        os.replace(path, self.quarantine_dir / path.name)


class ShardedCheckpointStore:
    """Store of two-phase sharded checkpoints with rotation and quarantine.

    The elastic counterpart of :class:`CheckpointStore`: every simulated
    rank writes its own block shard (:func:`repro.io.sharded.write_shard`)
    and rank 0 commits the generation by publishing a manifest — a
    checkpoint without a manifest was interrupted mid-write and is never
    loaded.  Because the manifest records the domain topology and block
    ownership, :meth:`load_latest` restores on **any** process count
    (N→M resharding), which is what lets a campaign shrink after a rank
    failure and resume.

    Writes go through a bounded exponential-backoff retry
    (:mod:`repro.resilience.retry`); scheduled ``io_enospc`` /
    ``io_torn_write`` faults from *fault_plan* are injected inside the
    retried attempt, so one scheduled fault exercises the retry path and
    K ≥ attempts scheduled faults model a persistent outage.

    Thread-safe: simulated ranks share one instance across threads.
    """

    def __init__(self, directory, *, keep: int = 3, prefix: str = "ck",
                 fault_plan=None, retry_policy: RetryPolicy | None = None,
                 retry_seed: int = 0):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self.fault_plan = fault_plan
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.retry_seed = retry_seed
        self._lock = threading.Lock()
        self.stats = {
            "shards_written": 0,
            "manifests_published": 0,
            "io_retries": 0,
            "checkpoints_skipped": 0,
        }

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def manifest_for(self, step: int) -> Path:
        return manifest_path(self.directory, self.prefix, step)

    def shard_for(self, step: int, rank: int) -> Path:
        return shard_path(self.directory, self.prefix, step, rank)

    def _step_of(self, path: Path) -> int:
        return int(path.name.split("-")[-1].split(".")[0])

    def manifests(self) -> list[Path]:
        """Committed checkpoint generations, oldest first."""
        paths = self.directory.glob(f"{self.prefix}-*.manifest.json")
        return sorted(paths, key=self._step_of)

    def shards(self) -> list[Path]:
        """All shard files present, committed or orphaned."""
        paths = self.directory.glob(f"{self.prefix}-*.rank*.npz")
        return sorted(paths, key=lambda p: (self._step_of(p), p.name))

    def steps(self) -> list[int]:
        """Steps with a committed (manifest-published) checkpoint."""
        return [self._step_of(p) for p in self.manifests()]

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def quarantined(self) -> list[Path]:
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.iterdir())

    # ------------------------------------------------------------------ #
    # write phase (per rank)
    # ------------------------------------------------------------------ #

    def write_rank_shard(self, *, rank: int, step: int, blocks: dict,
                         events=None) -> dict:
        """Durably write one rank's shard; returns its manifest entry.

        Retries transient I/O failures with backoff (each retry emits an
        ``io_retry`` event when *events* is given); a persistent failure
        re-raises ``OSError`` and the caller skips this checkpoint.
        """
        path = self.shard_for(step, rank)

        def attempt():
            self._maybe_inject_io_fault(path, step=step, rank=rank,
                                        blocks=blocks)
            return write_shard(path, blocks, rank=rank)

        def on_retry(attempt_i, exc, delay):
            with self._lock:
                self.stats["io_retries"] += 1
            if events is not None:
                events.emit(
                    "io_retry", "WARNING", step=step, rank=rank,
                    attempt=attempt_i + 1, error=repr(exc), delay=delay,
                )

        entry = retry_io(
            attempt,
            policy=self.retry_policy,
            seed=self.retry_seed + 7919 * step + rank,
            on_retry=on_retry,
            describe=f"shard write (step {step}, rank {rank})",
        )
        with self._lock:
            self.stats["shards_written"] += 1
        return entry

    def _maybe_inject_io_fault(self, path: Path, *, step: int, rank: int,
                               blocks: dict) -> None:
        if self.fault_plan is None:
            return
        fault = self.fault_plan.fires("io_enospc", step=step, rank=rank)
        if fault is not None:
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        fault = self.fault_plan.fires("io_torn_write", step=step, rank=rank)
        if fault is not None:
            # model a non-atomic filesystem: a prefix of the shard reaches
            # the final name before the device errors out — the retry must
            # overwrite the torn file with a complete one
            write_shard(path, blocks, rank=rank)
            size = path.stat().st_size
            with open(path, "r+b") as fh:
                fh.truncate(max(1, int(size * fault.fraction)))
            raise OSError(errno.EIO, "injected: torn write")

    # ------------------------------------------------------------------ #
    # publish phase (rank 0)
    # ------------------------------------------------------------------ #

    def publish_manifest(self, shard_entries: list[dict], *, step: int,
                         time: float, topology: dict, z_offset: int = 0,
                         kernel: str = "") -> Path:
        """Commit one generation (write-all-then-publish), then rotate."""
        path = write_manifest(
            self.manifest_for(step), shard_entries,
            step=step, time=time, topology=topology,
            z_offset=z_offset, kernel=kernel,
        )
        with self._lock:
            self.stats["manifests_published"] += 1
        self._rotate()
        return path

    def note_skipped(self) -> None:
        """Record a checkpoint that was skipped after persistent I/O failure."""
        with self._lock:
            self.stats["checkpoints_skipped"] += 1

    def save_global(self, state: dict, *, forest, owner, n_ranks: int,
                    events=None) -> Path:
        """Shard and commit a gathered global state (initial checkpoints).

        Plays all ranks' write phases sequentially, then publishes — the
        same bytes and the same two-phase ordering an SPMD region
        produces, usable from the single-threaded campaign driver.
        """
        step = int(state["step_count"])
        entries = []
        for rank in range(n_ranks):
            blocks = {}
            for b in forest.blocks:
                if owner[b.id] != rank:
                    continue
                sl = (slice(None),) + tuple(
                    slice(o, o + s) for o, s in zip(b.offset, b.shape)
                )
                blocks[b.id] = (state["phi"][sl], state["mu"][sl])
            entries.append(
                self.write_rank_shard(rank=rank, step=step, blocks=blocks,
                                      events=events)
            )
        return self.publish_manifest(
            entries, step=step, time=float(state["time"]),
            topology={**forest.meta(), "n_ranks": int(n_ranks),
                      "owner": [int(r) for r in owner]},
            z_offset=int(state.get("z_offset", 0)),
            kernel=state.get("kernel", ""),
        )

    # ------------------------------------------------------------------ #
    # load / reshard
    # ------------------------------------------------------------------ #

    def load_latest(self) -> dict | None:
        """Newest committed generation that verifies, or ``None``.

        Walks manifests newest-first; a generation whose manifest or any
        shard fails verification is quarantined (moved, never deleted)
        and the walk continues.  Orphan shards with no manifest — an
        interrupted write phase — are invisible here by construction.
        """
        for path in reversed(self.manifests()):
            try:
                return load_sharded(path)
            except CheckpointError as exc:
                self._quarantine(path, exc)
        return None

    def load_resharded(self, n_ranks: int, *,
                       strategy: str = "contiguous") -> dict | None:
        """:meth:`load_latest` plus the N→M regrouping for *n_ranks*.

        The returned state carries a ``reshard`` key: the new owner map
        and each new rank's block bundle
        (:func:`repro.io.sharded.reshard`).
        """
        state = self.load_latest()
        if state is None:
            return None
        state["reshard"] = reshard(state, n_ranks, strategy=strategy)
        return state

    # ------------------------------------------------------------------ #
    # housekeeping
    # ------------------------------------------------------------------ #

    def _generation_files(self, manifest: Path) -> list[Path]:
        step = self._step_of(manifest)
        return [p for p in self.shards() if self._step_of(p) == step]

    def _rotate(self) -> None:
        manifests = self.manifests()
        for manifest in manifests[: max(0, len(manifests) - self.keep)]:
            for shard in self._generation_files(manifest):
                shard.unlink(missing_ok=True)
            manifest.unlink(missing_ok=True)
        # garbage-collect orphan shards of *older* steps that never got a
        # manifest (interrupted write phase); the newest step may still be
        # mid-write, so it is left alone
        committed = {self._step_of(p) for p in self.manifests()}
        if committed:
            newest = max(committed)
            for shard in self.shards():
                step = self._step_of(shard)
                if step < newest and step not in committed:
                    shard.unlink(missing_ok=True)

    def _quarantine(self, manifest: Path, exc: CheckpointError) -> None:
        logger.warning(
            "quarantining corrupt sharded checkpoint %s: %s", manifest, exc
        )
        self.quarantine_dir.mkdir(exist_ok=True)
        for path in (*self._generation_files(manifest), manifest):
            if path.exists():
                os.replace(path, self.quarantine_dir / path.name)
