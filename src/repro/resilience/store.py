"""Rotating store of the last K good checkpoints.

The paper's production campaigns (Sec. 6) checkpoint periodically and
keep several generations, because a crash can strike *during* a
checkpoint write and the newest file may be the broken one.  The store
pairs the atomic, checksummed writer of :mod:`repro.io.checkpoint` with
a load path that walks generations newest-first, quarantines anything
that fails verification, and hands back the newest checkpoint that
actually loads.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path

from repro.io.checkpoint import CheckpointError, load_checkpoint, save_state

__all__ = ["CheckpointStore"]

logger = logging.getLogger(__name__)


class CheckpointStore:
    """Directory of ``<prefix>-<step>.npz`` checkpoints with rotation.

    Parameters
    ----------
    directory:
        Where checkpoints live; created if missing.
    keep:
        Number of most-recent checkpoints retained; older generations are
        deleted after each successful save.
    prefix:
        File-name prefix (lets several campaigns share a directory).
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`; a
        ``ckpt_truncate`` fault scheduled for the saved step truncates
        the file *after* it reaches its final name, simulating torn
        storage that atomic rename alone cannot prevent.
    """

    def __init__(self, directory, *, keep: int = 3, prefix: str = "ck",
                 fault_plan=None):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def path_for(self, step: int) -> Path:
        """Checkpoint path of a given step count."""
        return self.directory / f"{self.prefix}-{step:010d}.npz"

    def _step_of(self, path: Path) -> int:
        return int(path.stem.split("-")[-1])

    def checkpoints(self) -> list[Path]:
        """Present checkpoint files, oldest first."""
        paths = self.directory.glob(f"{self.prefix}-*.npz")
        return sorted(paths, key=self._step_of)

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def quarantined(self) -> list[Path]:
        """Files moved aside after failing verification."""
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.iterdir())

    # ------------------------------------------------------------------ #
    # save
    # ------------------------------------------------------------------ #

    def save_state(self, state: dict) -> Path:
        """Write a ``state_dict``-shaped snapshot, then rotate."""
        step = int(state["step_count"])
        path = self.path_for(step)
        save_state(
            path,
            phi=state["phi"],
            mu=state["mu"],
            time=state["time"],
            step_count=step,
            z_offset=int(state.get("z_offset", 0)),
            kernel=state.get("kernel", ""),
        )
        self._maybe_truncate(path, step)
        self._rotate()
        return path

    def save(self, sim) -> Path:
        """Checkpoint a :class:`repro.core.solver.Simulation`."""
        return self.save_state(sim.state_dict())

    def _maybe_truncate(self, path: Path, step: int) -> None:
        if self.fault_plan is None:
            return
        fault = self.fault_plan.fires("ckpt_truncate", step=step)
        if fault is None:
            return
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(max(1, int(size * fault.fraction)))

    def _rotate(self) -> None:
        paths = self.checkpoints()
        for path in paths[: max(0, len(paths) - self.keep)]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # load
    # ------------------------------------------------------------------ #

    def load_latest(self) -> dict | None:
        """Newest checkpoint that verifies, or ``None`` if none does.

        Corrupt generations (truncated archives, checksum or shape
        mismatches, unsupported versions) are moved into
        ``quarantine/`` — never deleted, so they stay available for
        post-mortems — and the walk continues with the next-older file.
        """
        for path in reversed(self.checkpoints()):
            try:
                return load_checkpoint(path)
            except CheckpointError as exc:
                self._quarantine(path, exc)
        return None

    def _quarantine(self, path: Path, exc: CheckpointError) -> None:
        logger.warning("quarantining corrupt checkpoint %s: %s", path, exc)
        self.quarantine_dir.mkdir(exist_ok=True)
        os.replace(path, self.quarantine_dir / path.name)
