"""Simulated MPI: an in-process SPMD runtime with MPI semantics.

The paper runs on up to 1,048,576 MPI processes; this environment has no
MPI implementation, so the repo ships a small message-passing runtime
instead (see DESIGN.md, substitution table).  Each simulated rank runs the
same SPMD function; communication goes through per-rank mailboxes with
(source, tag) matching, and the collectives are built from point-to-point
messages using binomial trees — so the *algorithms* (ghost exchange,
Algorithm 2 overlap, hierarchical mesh reduction) run unmodified and are
exercised end-to-end.

Two backends share the Communicator semantics: ``backend="thread"``
(default — one thread per rank; deterministic, GIL-serialized) and
``backend="process"`` (one OS process per rank with shared-memory payload
transport, :mod:`repro.simmpi.transport` — kernels genuinely run in
parallel, which is what turns Fig. 7 into a measured curve).

Main entry points:

* :func:`repro.simmpi.runtime.run_spmd` — launch an SPMD function,
* :func:`repro.simmpi.runtime.run_spmd_elastic` — launch with ULFM-style
  failure containment (peer death becomes a typed
  :class:`~repro.simmpi.comm.RankFailure`; survivors
  :meth:`~repro.simmpi.comm.Communicator.shrink` and continue),
* :class:`repro.simmpi.comm.Communicator` — send/recv/collectives,
* :class:`repro.simmpi.cart.CartComm` — cartesian topology helper,
* :mod:`repro.simmpi.reduce_tree` — the log2(P) pairwise reduction
  schedule used by the mesh output pipeline.
"""

from repro.simmpi.comm import (
    Communicator,
    RankFailure,
    RankTimeout,
    RemoteError,
    Request,
)
from repro.simmpi.deadline import Deadline, DeadlinePolicy
from repro.simmpi.liveness import WatchdogConfig
from repro.simmpi.runtime import run_spmd, run_spmd_elastic
from repro.simmpi.cart import CartComm

BACKENDS = ("thread", "process")

__all__ = [
    "BACKENDS",
    "Communicator",
    "Deadline",
    "DeadlinePolicy",
    "RankFailure",
    "RankTimeout",
    "RemoteError",
    "Request",
    "WatchdogConfig",
    "run_spmd",
    "run_spmd_elastic",
    "CartComm",
]
