"""Cartesian topology helper (``MPI_Cart_create`` analog).

Maps ranks onto a d-dimensional process grid with optional periodic wrap —
the layout the ghost-layer exchange of the distributed solver uses.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.comm import Communicator

__all__ = ["CartComm", "dims_create"]


def dims_create(n: int, dim: int) -> tuple[int, ...]:
    """Near-cubic factorization of *n* ranks (``MPI_Dims_create`` analog)."""
    dims = [1] * dim
    remaining = n
    f = 2
    primes = []
    while f * f <= remaining:
        while remaining % f == 0:
            primes.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        primes.append(remaining)
    for p in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


class CartComm:
    """Cartesian view over a :class:`Communicator`.

    Parameters
    ----------
    comm:
        The underlying communicator; every rank must construct the cart
        with identical *dims* and *periods*.
    dims:
        Process-grid extents (product must equal ``comm.size``).
    periods:
        Per-axis wrap flags.
    """

    def __init__(self, comm: Communicator, dims: tuple[int, ...],
                 periods: tuple[bool, ...]):
        if int(np.prod(dims)) != comm.size:
            raise ValueError(
                f"process grid {dims} does not cover {comm.size} ranks"
            )
        if len(dims) != len(periods):
            raise ValueError("dims/periods length mismatch")
        self.comm = comm
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)

    @property
    def rank(self) -> int:
        return self.comm.rank

    def coords(self, rank: int | None = None) -> tuple[int, ...]:
        """Grid coordinates of *rank* (default: this rank)."""
        rank = self.comm.rank if rank is None else rank
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank at grid position *coords* (no wrap applied)."""
        r = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise IndexError(f"coords {coords} outside grid {self.dims}")
            r = r * d + c
        return r

    def shift(self, axis: int, disp: int = 1) -> tuple[int | None, int | None]:
        """``(source, dest)`` ranks for a shift along *axis*.

        Mirrors ``MPI_Cart_shift``: *dest* is the rank *disp* steps in the
        positive direction, *source* the mirror partner; ``None`` marks an
        edge of a non-periodic axis.
        """
        me = list(self.coords())

        def resolve(c: int) -> int | None:
            d = self.dims[axis]
            if 0 <= c < d:
                pass
            elif self.periods[axis]:
                c %= d
            else:
                return None
            coords = list(me)
            coords[axis] = c
            return self.rank_of(tuple(coords))

        dest = resolve(me[axis] + disp)
        source = resolve(me[axis] - disp)
        return source, dest
