"""Communicator with MPI point-to-point and collective semantics.

Messages are matched by ``(source, tag)`` like MPI; ``ANY_SOURCE`` /
``ANY_TAG`` wildcards are supported.  NumPy payloads are copied on send so
the receiver never aliases sender memory (mimicking buffer semantics —
mutating an array after ``isend`` must not corrupt the message).

Collectives are implemented on top of point-to-point using binomial trees
(``log2 P`` rounds), the same communication structure the paper's
hierarchical mesh reduction uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.simmpi.deadline import DeadlinePolicy

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "HaloRecvChannel",
    "HaloSendChannel",
    "Request",
    "CommStats",
    "RemoteError",
    "RankFailure",
    "RankTimeout",
]

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds between deadlock/failure checks while blocked in recv/barrier.
_POLL = 0.05


class RemoteError(RuntimeError):
    """Raised on ranks blocked in communication when a peer rank failed."""


class RankFailure(RemoteError):
    """A peer rank died; the communicator is revoked (ULFM-style).

    Carries the identities of the dead ranks so survivors can decide how
    to :meth:`Communicator.shrink`.  Once any rank is marked dead, every
    operation on the old communicator that would have to *wait* raises
    this instead of hanging; already-queued matching messages still
    drain, mirroring how MPI ULFM lets posted receives complete.
    """

    def __init__(self, failed_ranks):
        self.failed_ranks = tuple(sorted(set(failed_ranks)))
        super().__init__(
            f"peer rank(s) {list(self.failed_ranks)} failed; "
            "communicator revoked — shrink() to continue on survivors"
        )


class RankTimeout(RankFailure):
    """A blocking operation exceeded its configured deadline.

    Raised instead of hanging when a :class:`~repro.simmpi.deadline.
    DeadlinePolicy` bounds the operation (``REPRO_SIMMPI_TIMEOUT``) or
    when the process-backend watchdog declares a rank hung.  Subclasses
    :class:`RankFailure` so every containment path — world abort,
    elastic shrink, campaign restart — treats a hang exactly like a
    rank death; :attr:`failed_ranks` carries the blamed peer(s) (may be
    empty when no specific peer can be identified).
    """

    def __init__(self, op: str, timeout: float, *, peers=()):
        self.op = op
        self.timeout = float(timeout)
        self.failed_ranks = tuple(sorted(set(peers)))
        blame = (
            f" waiting on rank(s) {list(self.failed_ranks)}"
            if self.failed_ranks else ""
        )
        RuntimeError.__init__(
            self,
            f"simmpi {op} exceeded its {self.timeout:.3g}s deadline"
            f"{blame}; treating the stalled peer as failed",
        )

    def __reduce__(self):
        # The keyword-only *peers* defeats the default exception pickle
        # (args holds only the message); the process backend ships these
        # over result pipes, so rebuild from the typed parts instead.
        return (_rebuild_rank_timeout,
                (self.op, self.timeout, self.failed_ranks))


def _rebuild_rank_timeout(op, timeout, peers):
    return RankTimeout(op, timeout, peers=peers)


def _copy_payload(obj):
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return obj


@dataclass
class CommStats:
    """Per-rank message accounting (drives the Fig. 8 byte-count model)."""

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0

    def account_send(self, payload) -> None:
        self.sends += 1
        if isinstance(payload, np.ndarray):
            self.bytes_sent += payload.nbytes


class _Mailbox:
    """Incoming-message store of one rank with condition-variable waits."""

    def __init__(self) -> None:
        self._messages: list[tuple[int, int, object]] = []
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def get(self, source: int, tag: int, world: "_World", deadline=None):
        with self._cond:
            while True:
                for i, (src, tg, payload) in enumerate(self._messages):
                    if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                        del self._messages[i]
                        return src, tg, payload
                if world.failed.is_set():
                    raise RemoteError("a peer rank failed while this rank waited")
                dead = world.dead_ranks()
                if dead:
                    raise RankFailure(dead)
                if deadline is not None:
                    deadline.check()
                self._cond.wait(timeout=_POLL)

    def kick(self) -> None:
        """Wake all waiters so they re-check the world's failure state."""
        with self._cond:
            self._cond.notify_all()

    def probe(self, source: int, tag: int) -> bool:
        with self._cond:
            return any(
                (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg))
                for src, tg, _ in self._messages
            )


class _PollBarrier:
    """Deadline-aware barrier that can never strand a rank.

    Replaces :class:`threading.Barrier`, whose ``wait(timeout=...)``
    *breaks* the barrier for everyone on a timeout — useless for
    polling.  This one polls a condition variable every ``_POLL``
    seconds, re-checking the world's failure/death flags and the
    caller's deadline, so a revoked or shrunk world (or an expired
    deadline) surfaces as a typed exception instead of an eternal wait.
    """

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self._cond = threading.Condition()
        self._count = 0
        self._generation = 0
        self._broken = False

    def abort(self) -> None:
        """Break the barrier; all current and future waits raise."""
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    @property
    def broken(self) -> bool:
        return self._broken

    def wait(self, world: "_World | None" = None, deadline=None) -> None:
        with self._cond:
            if self._broken:
                self._raise_broken(world)
            self._count += 1
            if self._count >= self.parties:
                self._count = 0
                self._generation += 1
                self._cond.notify_all()
                return
            generation = self._generation
            while True:
                self._cond.wait(timeout=_POLL)
                if self._generation != generation:
                    return
                if self._broken:
                    self._raise_broken(world)
                if world is not None and (
                    world.failed.is_set() or world.dead_ranks()
                ):
                    self._broken = True
                    self._cond.notify_all()
                    self._raise_broken(world)
                if deadline is not None and deadline.expired():
                    self._broken = True
                    self._cond.notify_all()
                    deadline.check()

    def _raise_broken(self, world: "_World | None") -> None:
        dead = world.dead_ranks() if world is not None else ()
        if dead:
            raise RankFailure(dead)
        raise RemoteError("barrier broken by a failed peer")


class _World:
    """Shared state of one SPMD run.

    Two failure modes coexist:

    * ``failed`` — fatal whole-world abort (:func:`~repro.simmpi.runtime.
      run_spmd`): every blocked rank raises :class:`RemoteError` and the
      run is torn down.
    * ``dead`` — contained rank death (:func:`~repro.simmpi.runtime.
      run_spmd_elastic`): the world is *revoked*, blocked survivors raise
      :class:`RankFailure` and may rendezvous in :meth:`shrink` to obtain
      a fresh sub-world spanning only the survivors.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = _PollBarrier(size)
        self.failed = threading.Event()
        self.stats = [CommStats() for _ in range(size)]
        self.dead: set[int] = set()
        self._dead_lock = threading.Lock()
        self._shrink_cond = threading.Condition()
        self._shrink_waiting: set[int] = set()
        self._shrink_result: tuple[list[int], "_World"] | None = None

    def dead_ranks(self) -> tuple[int, ...]:
        with self._dead_lock:
            return tuple(sorted(self.dead))

    def mark_dead(self, rank: int) -> None:
        """Record a contained rank death and revoke the world.

        Blocked peers are woken (mailboxes kicked, barrier aborted) so
        they observe the death as a :class:`RankFailure` instead of
        hanging on a message or barrier slot that will never be filled.
        """
        with self._dead_lock:
            self.dead.add(rank)
        self.barrier.abort()
        for mailbox in self.mailboxes:
            mailbox.kick()
        with self._shrink_cond:
            self._shrink_cond.notify_all()

    def shrink_rendezvous(self, rank: int,
                          deadline=None) -> tuple[list[int], "_World"]:
        """Collective among survivors: agree on and build the sub-world.

        Blocks until every currently-live rank has arrived (ranks that
        die while others wait shrink the expected set further).  The
        first completer builds one shared ``(survivor_order, new_world)``
        pair; everyone returns the same object, so payload mailboxes and
        the barrier are common to all survivors.
        """
        with self._shrink_cond:
            self._shrink_waiting.add(rank)
            self._shrink_cond.notify_all()
            while True:
                if self._shrink_result is not None:
                    return self._shrink_result
                with self._dead_lock:
                    survivors = set(range(self.size)) - self.dead
                if survivors and survivors <= self._shrink_waiting:
                    order = sorted(survivors)
                    self._shrink_result = (order, _World(len(order)))
                    self._shrink_cond.notify_all()
                    return self._shrink_result
                if deadline is not None:
                    deadline.check()
                self._shrink_cond.wait(timeout=_POLL)


def _halo_tags(channel_id: int) -> tuple[int, int]:
    """``(notify_tag, register_tag)`` of halo channel *channel_id*.

    Halo channels live in a reserved negative-tag band below the
    collective tags, two tags per channel, so notify and registration
    messages can never collide with user traffic (non-negative tags) or
    with each other: channel identity plus message role is fully encoded
    in the ``(source, tag)`` pair the mailbox already matches on.
    """
    if channel_id < 0:
        raise ValueError(f"invalid halo channel id {channel_id}")
    base = _TAG_HALO_BASE - 2 * channel_id
    return base, base - 1


class HaloSendChannel:
    """Sender endpoint of a persistent registered halo channel.

    One channel per (neighbour, axis, direction), allocated once at
    topology setup and reused every step: two payload slots (double
    buffering) plus a monotonically increasing sequence counter.  A
    steady-state halo exchange packs the outgoing slab(s) into the
    current slot and sends **one** tiny notify message — no per-message
    ack, no segment checkout.

    Slot reuse is safe without acks because exchange rounds are
    lockstep: the sender only reaches sequence ``n + 2`` (the same slot
    as ``n``) after completing round ``n + 1``, which required the
    peer's round-``n + 1`` notify, which the peer only sends after fully
    finishing round ``n`` — including consuming this channel's slot
    ``n``.  The sequence number travelling in every notify lets the
    receiver verify that discipline and fail loudly on a protocol skew
    instead of silently unpacking stale data.

    This base class is the thread-backend implementation (the two ranks
    share one address space, so the slots are a plain ndarray handed to
    the receiver by reference); the process backend subclasses it to
    place the slots in a named shared-memory segment (see
    :mod:`repro.simmpi.transport`).
    """

    def __init__(self, comm, dest: int, channel_id: int, capacity: int,
                 dtype=np.float64) -> None:
        if capacity < 1:
            raise ValueError("halo channel capacity must be >= 1 element")
        self.dest = dest
        self.channel_id = channel_id
        self.capacity = int(capacity)
        self.dtype = np.dtype(dtype)
        self.seq = 0
        self.notify_tag, self.reg_tag = _halo_tags(channel_id)
        self._comm = comm
        self._slots = self._allocate(comm)
        self._announce(comm)

    # -- backend hooks -------------------------------------------------------

    def _allocate(self, comm) -> np.ndarray:
        """Allocate the ``(2, capacity)`` slot array (thread: plain heap)."""
        return np.empty((2, self.capacity), dtype=self.dtype)

    def _announce(self, comm) -> None:
        """Ship the registration record to the receiver.

        The slot array rides inside a tuple on purpose: the mailbox only
        snapshots bare ndarray payloads, so the receiver ends up holding
        a *reference* to the very same buffer — that aliasing is the
        channel.
        """
        comm.send(
            ("haloreg", self.channel_id, self.capacity, self.dtype.str,
             self._slots),
            self.dest, tag=self.reg_tag,
        )

    # -- steady-state protocol -----------------------------------------------

    def slot(self) -> np.ndarray:
        """Flat view of the slot the next :meth:`notify` will publish."""
        return self._slots[self.seq % 2]

    def notify(self, used: int | None = None) -> None:
        """Publish the current slot: one tiny control message, no ack.

        *used* (the packed element count) is ignored here — the receiver
        aliases the whole slot — but the degraded process-backend channel
        needs it to snapshot only the live prefix into its inline
        fallback message.
        """
        self._comm.send(self.seq, self.dest, tag=self.notify_tag)
        self.seq += 1


class HaloRecvChannel:
    """Receiver endpoint of a persistent registered halo channel.

    Constructed by :meth:`Communicator.accept_halo`, which blocks on the
    sender's registration message; thereafter :meth:`wait` blocks on one
    notify per exchange round and returns a view of the published slot
    for the caller to unpack straight into its ghost slices.
    """

    def __init__(self, comm, source: int, channel_id: int) -> None:
        self.source = source
        self.channel_id = channel_id
        self.seq = 0
        self.notify_tag, self.reg_tag = _halo_tags(channel_id)
        self._comm = comm
        reg = comm.recv(source, tag=self.reg_tag)
        kind = reg[0] if isinstance(reg, tuple) else None
        if kind != "haloreg" or reg[1] != channel_id:
            raise RuntimeError(
                f"halo channel {channel_id} from rank {source}: malformed "
                f"registration message {reg!r}"
            )
        _, _, self.capacity, dtypestr, handle = reg
        self.dtype = np.dtype(dtypestr)
        self._slots = self._attach(handle)

    def _attach(self, handle) -> np.ndarray:
        """Resolve the registration handle to the slot array (thread:
        the handle *is* the sender's array, shared by reference)."""
        return handle

    def wait(self) -> np.ndarray:
        """Block for the next notify; returns a flat view of its slot.

        The view is only valid until the peer's next-next round begins
        (double buffering) — callers must unpack before returning to the
        exchange loop, which every exchange routine here does.
        """
        seq = self._comm.recv(self.source, tag=self.notify_tag)
        if seq != self.seq:
            raise RuntimeError(
                f"halo channel {self.channel_id} from rank {self.source}: "
                f"expected sequence {self.seq}, got {seq} — exchange rounds "
                "out of lockstep (registered and legacy paths mixed?)"
            )
        self.seq += 1
        return self._slots[seq % 2]


@dataclass
class Request:
    """Handle for a non-blocking operation."""

    _result: object = None
    _ready: bool = True
    _fn: object = field(default=None, repr=False)

    def wait(self):
        """Complete the operation; returns the received object for irecv."""
        if not self._ready:
            self._result = self._fn()
            self._ready = True
        return self._result

    def test(self) -> bool:
        """Non-destructive readiness check."""
        return self._ready


class Communicator:
    """Rank-local view of the world, mimicking ``mpi4py.MPI.Comm``.

    *deadlines* bounds the blocking operations (see
    :mod:`repro.simmpi.deadline`); by default it is read from the
    environment, which leaves every wait unbounded unless
    ``REPRO_SIMMPI_TIMEOUT`` (or a per-op override) is set.
    """

    def __init__(self, world: _World, rank: int,
                 deadlines: DeadlinePolicy | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.deadlines = (
            DeadlinePolicy.from_env() if deadlines is None else deadlines
        )

    # -- point to point ----------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send (buffered: completes immediately)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        payload = _copy_payload(obj)
        self._world.stats[self.rank].account_send(payload)
        self._world.mailboxes[dest].put(self.rank, tag, payload)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eager: the copy happens at call time)."""
        self.send(obj, dest, tag)
        return Request(_result=None, _ready=True)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        deadline = self.deadlines.start(
            "recv", peers=(source,) if source >= 0 else ()
        )
        _, _, payload = self._world.mailboxes[self.rank].get(
            source, tag, self._world, deadline
        )
        self._world.stats[self.rank].recvs += 1
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completion in :meth:`Request.wait`."""
        return Request(
            _ready=False, _fn=lambda: self.recv(source, tag)
        )

    def irecv_into(self, out: np.ndarray, source: int = ANY_SOURCE,
                   tag: int = ANY_TAG) -> Request:
        """Non-blocking receive completing directly into the view *out*.

        The thread backend already snapshots payloads at send time, so
        this is the same single copy as ``out[...] = irecv().wait()`` —
        the API exists so exchange code can use one completion style on
        both backends; on the process backend it is what removes the
        receive-side double copy of shared-memory payloads.
        """

        def complete():
            payload = self.recv(source, tag)
            if (isinstance(payload, np.ndarray)
                    and payload.shape != out.shape):
                raise ValueError(
                    f"irecv_into shape mismatch: message {payload.shape}"
                    f" vs destination {out.shape}"
                )
            out[...] = payload
            return out

        return Request(_ready=False, _fn=complete)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already queued."""
        return self._world.mailboxes[self.rank].probe(source, tag)

    def sendrecv(self, sendobj, dest: int, source: int, sendtag: int = 0,
                 recvtag: int = ANY_TAG):
        """Combined exchange (deadlock-free in this buffered runtime)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives (binomial trees over point-to-point) -------------------

    def barrier(self) -> None:
        """Synchronize all ranks.

        The barrier polls (``_POLL`` cadence) rather than waiting
        unboundedly, so a revoked/shrunk world — or an armed deadline
        policy — can never strand a rank in an unkillable barrier.
        """
        self._world.barrier.wait(
            self._world, deadline=self.deadlines.start("barrier")
        )

    # -- failure containment -------------------------------------------------

    def failed_ranks(self) -> tuple[int, ...]:
        """Ranks of this world marked dead (empty while healthy)."""
        return self._world.dead_ranks()

    def aborted(self) -> bool:
        """True once this world is failed or revoked.

        Cheap enough to poll from a long-running loop; fault-injection
        stall loops use it to notice that peers gave up on this rank.
        """
        return self._world.failed.is_set() or bool(self._world.dead_ranks())

    def shrink(self) -> "Communicator":
        """Build a working sub-communicator from the surviving ranks.

        Collective over the survivors of a revoked world: every live rank
        must call it (typically from its ``except RankFailure`` handler).
        Ranks are renumbered densely — old rank order is preserved, so
        survivor ``k`` of the sorted survivor list becomes new rank ``k``
        — and the returned communicator has fresh mailboxes, barrier and
        statistics.  The old communicator stays revoked.
        """
        order, new_world = self._world.shrink_rendezvous(
            self.rank, deadline=self.deadlines.start("shrink")
        )
        return Communicator(new_world, order.index(self.rank),
                            deadlines=self.deadlines)

    def bcast(self, obj, root: int = 0):
        """Binomial-tree broadcast from *root*."""
        vrank = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if vrank & mask:
                src = ((vrank - mask) + root) % self.size
                obj = self.recv(src, tag=_TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask >= 1:
            if vrank + mask < self.size:
                dst = ((vrank + mask) + root) % self.size
                self.send(obj, dst, tag=_TAG_BCAST)
            mask >>= 1
        return _copy_payload(obj)

    def gather(self, obj, root: int = 0):
        """Binomial-tree gather; returns the list at *root*, else ``None``."""
        vrank = (self.rank - root) % self.size
        items = {vrank: _copy_payload(obj)}
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self.send(items, dst, tag=_TAG_GATHER)
                items = None
                break
            partner = vrank | mask
            if partner < self.size:
                got = self.recv(((partner) + root) % self.size, tag=_TAG_GATHER)
                items.update(got)
            mask <<= 1
        if vrank == 0:
            return [items[i] for i in range(self.size)]
        return None

    def allgather(self, obj):
        """Gather to rank 0 then broadcast."""
        res = self.gather(obj, root=0)
        return self.bcast(res, root=0)

    def scatter(self, objs, root: int = 0):
        """Scatter a length-``size`` sequence from *root*."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one item per rank at the root")
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], r, tag=_TAG_SCATTER)
            return _copy_payload(objs[root])
        return self.recv(root, tag=_TAG_SCATTER)

    def reduce(self, obj, op=None, root: int = 0):
        """Binomial-tree reduction; *op* defaults to addition."""
        op = _add if op is None else op
        vrank = (self.rank - root) % self.size
        acc = _copy_payload(obj)
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self.send(acc, dst, tag=_TAG_REDUCE)
                acc = None
                break
            partner = vrank | mask
            if partner < self.size:
                got = self.recv((partner + root) % self.size, tag=_TAG_REDUCE)
                acc = op(acc, got)
            mask <<= 1
        return acc if vrank == 0 else None

    def allreduce(self, obj, op=None):
        """Reduce to rank 0 then broadcast."""
        res = self.reduce(obj, op=op, root=0)
        return self.bcast(res, root=0)

    # -- persistent halo channels --------------------------------------------

    def register_halo(self, dest: int, channel_id: int, capacity: int,
                      dtype=np.float64) -> HaloSendChannel:
        """Create + announce the sender endpoint of a halo channel.

        *capacity* is in elements of *dtype*; the channel holds two
        slots of that size (double buffering).  The matching receiver
        must call :meth:`accept_halo` with the same *channel_id* — both
        sides derive ids deterministically from the topology, so no
        further negotiation is needed.
        """
        return HaloSendChannel(self, dest, channel_id, capacity, dtype)

    def accept_halo(self, source: int, channel_id: int) -> HaloRecvChannel:
        """Block for the sender's registration; returns the receiver
        endpoint of the halo channel."""
        return HaloRecvChannel(self, source, channel_id)

    # -- diagnostics ---------------------------------------------------------

    @property
    def stats(self) -> CommStats:
        """This rank's message accounting."""
        return self._world.stats[self.rank]

    def transport_counters(self) -> dict:
        """Low-level transport counters (pipe posts, acks, segments).

        The thread backend has no control pipes and no shared-memory
        segments, so everything is zero; the keys exist so telemetry
        snapshots have the same shape on both backends (the process
        backend reports real values — see
        :meth:`repro.simmpi.transport.ProcessCommunicator.
        transport_counters`).
        """
        return {"pipe_messages": 0, "acks": 0, "segments_created": 0}

    # -- memory placement ----------------------------------------------------

    def field_allocator(self):
        """Array allocator for rank-local field buffers, or ``None``.

        Thread ranks already share one address space, so plain heap
        NumPy arrays are the right placement and this returns ``None``.
        The process backend overrides it with a shared-memory allocator
        (see :meth:`repro.simmpi.transport.ProcessCommunicator.
        field_allocator`) so ghost exchange between co-resident ranks is
        a memcpy instead of a pickle round-trip.
        """
        return None


def _add(a, b):
    return a + b


_TAG_BCAST = -101
_TAG_GATHER = -102
_TAG_SCATTER = -103
_TAG_REDUCE = -104

#: Halo channels occupy the band below the collective tags, growing
#: downward two tags per channel (notify + registration).
_TAG_HALO_BASE = -200
