"""Communicator with MPI point-to-point and collective semantics.

Messages are matched by ``(source, tag)`` like MPI; ``ANY_SOURCE`` /
``ANY_TAG`` wildcards are supported.  NumPy payloads are copied on send so
the receiver never aliases sender memory (mimicking buffer semantics —
mutating an array after ``isend`` must not corrupt the message).

Collectives are implemented on top of point-to-point using binomial trees
(``log2 P`` rounds), the same communication structure the paper's
hierarchical mesh reduction uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "Request", "CommStats"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds between deadlock/failure checks while blocked in recv/barrier.
_POLL = 0.05


class RemoteError(RuntimeError):
    """Raised on ranks blocked in communication when a peer rank failed."""


def _copy_payload(obj):
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return obj


@dataclass
class CommStats:
    """Per-rank message accounting (drives the Fig. 8 byte-count model)."""

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0

    def account_send(self, payload) -> None:
        self.sends += 1
        if isinstance(payload, np.ndarray):
            self.bytes_sent += payload.nbytes


class _Mailbox:
    """Incoming-message store of one rank with condition-variable waits."""

    def __init__(self) -> None:
        self._messages: list[tuple[int, int, object]] = []
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def get(self, source: int, tag: int, failed: threading.Event):
        with self._cond:
            while True:
                for i, (src, tg, payload) in enumerate(self._messages):
                    if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                        del self._messages[i]
                        return src, tg, payload
                if failed.is_set():
                    raise RemoteError("a peer rank failed while this rank waited")
                self._cond.wait(timeout=_POLL)

    def probe(self, source: int, tag: int) -> bool:
        with self._cond:
            return any(
                (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg))
                for src, tg, _ in self._messages
            )


class _World:
    """Shared state of one SPMD run."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.failed = threading.Event()
        self.stats = [CommStats() for _ in range(size)]


@dataclass
class Request:
    """Handle for a non-blocking operation."""

    _result: object = None
    _ready: bool = True
    _fn: object = field(default=None, repr=False)

    def wait(self):
        """Complete the operation; returns the received object for irecv."""
        if not self._ready:
            self._result = self._fn()
            self._ready = True
        return self._result

    def test(self) -> bool:
        """Non-destructive readiness check."""
        return self._ready


class Communicator:
    """Rank-local view of the world, mimicking ``mpi4py.MPI.Comm``."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- point to point ----------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send (buffered: completes immediately)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        payload = _copy_payload(obj)
        self._world.stats[self.rank].account_send(payload)
        self._world.mailboxes[dest].put(self.rank, tag, payload)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eager: the copy happens at call time)."""
        self.send(obj, dest, tag)
        return Request(_result=None, _ready=True)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        _, _, payload = self._world.mailboxes[self.rank].get(
            source, tag, self._world.failed
        )
        self._world.stats[self.rank].recvs += 1
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completion in :meth:`Request.wait`."""
        return Request(
            _ready=False, _fn=lambda: self.recv(source, tag)
        )

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already queued."""
        return self._world.mailboxes[self.rank].probe(source, tag)

    def sendrecv(self, sendobj, dest: int, source: int, sendtag: int = 0,
                 recvtag: int = ANY_TAG):
        """Combined exchange (deadlock-free in this buffered runtime)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives (binomial trees over point-to-point) -------------------

    def barrier(self) -> None:
        """Synchronize all ranks."""
        while True:
            try:
                self._world.barrier.wait(timeout=None)
                return
            except threading.BrokenBarrierError:
                raise RemoteError("barrier broken by a failed peer")

    def bcast(self, obj, root: int = 0):
        """Binomial-tree broadcast from *root*."""
        vrank = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if vrank & mask:
                src = ((vrank - mask) + root) % self.size
                obj = self.recv(src, tag=_TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask >= 1:
            if vrank + mask < self.size:
                dst = ((vrank + mask) + root) % self.size
                self.send(obj, dst, tag=_TAG_BCAST)
            mask >>= 1
        return _copy_payload(obj)

    def gather(self, obj, root: int = 0):
        """Binomial-tree gather; returns the list at *root*, else ``None``."""
        vrank = (self.rank - root) % self.size
        items = {vrank: _copy_payload(obj)}
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self.send(items, dst, tag=_TAG_GATHER)
                items = None
                break
            partner = vrank | mask
            if partner < self.size:
                got = self.recv(((partner) + root) % self.size, tag=_TAG_GATHER)
                items.update(got)
            mask <<= 1
        if vrank == 0:
            return [items[i] for i in range(self.size)]
        return None

    def allgather(self, obj):
        """Gather to rank 0 then broadcast."""
        res = self.gather(obj, root=0)
        return self.bcast(res, root=0)

    def scatter(self, objs, root: int = 0):
        """Scatter a length-``size`` sequence from *root*."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one item per rank at the root")
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], r, tag=_TAG_SCATTER)
            return _copy_payload(objs[root])
        return self.recv(root, tag=_TAG_SCATTER)

    def reduce(self, obj, op=None, root: int = 0):
        """Binomial-tree reduction; *op* defaults to addition."""
        op = _add if op is None else op
        vrank = (self.rank - root) % self.size
        acc = _copy_payload(obj)
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dst = ((vrank ^ mask) + root) % self.size
                self.send(acc, dst, tag=_TAG_REDUCE)
                acc = None
                break
            partner = vrank | mask
            if partner < self.size:
                got = self.recv((partner + root) % self.size, tag=_TAG_REDUCE)
                acc = op(acc, got)
            mask <<= 1
        return acc if vrank == 0 else None

    def allreduce(self, obj, op=None):
        """Reduce to rank 0 then broadcast."""
        res = self.reduce(obj, op=op, root=0)
        return self.bcast(res, root=0)

    # -- diagnostics ---------------------------------------------------------

    @property
    def stats(self) -> CommStats:
        """This rank's message accounting."""
        return self._world.stats[self.rank]


def _add(a, b):
    return a + b


_TAG_BCAST = -101
_TAG_GATHER = -102
_TAG_SCATTER = -103
_TAG_REDUCE = -104
