"""Configurable deadlines for blocking simmpi operations.

The paper's 262k-core runs are governed by the slowest participant; a
rank that *hangs* (stuck NIC, wedged I/O) rather than crashes would
deadlock the whole world forever, because every blocking wait in the
runtime — ``recv``, ``barrier``, channel-slot waits in the process
transport — polls without a bound.  This module supplies the bound: a
:class:`DeadlinePolicy` maps each blocking-operation class to an
optional timeout, and a started :class:`Deadline` is checked on every
poll cycle, raising a typed :class:`~repro.simmpi.comm.RankTimeout`
(a :class:`~repro.simmpi.comm.RankFailure` subclass, so the elastic
shrink-and-resume machinery treats a hang exactly like a death).

Deadlines are **disabled by default** (``None`` everywhere): the tier-1
suite and every existing workload run bit-for-bit unchanged unless
``REPRO_SIMMPI_TIMEOUT`` — or a per-op override such as
``REPRO_SIMMPI_TIMEOUT_RECV`` — is set to a positive number of seconds.
A value ``<= 0`` (or empty) also means "no deadline", so a matrix job
can switch the layer off explicitly.

Operation classes (``<OP>`` in the override variables):

``recv``
    Blocking receives and posted-receive completion (both backends).
``send``
    Channel-slot waits of the process transport (a sender blocked on a
    full channel whose receiver never acks).
``barrier``
    Barrier waits (both backends).
``shrink``
    The survivor rendezvous of :meth:`Communicator.shrink`.
``ack``
    The ack drain in the process transport's teardown.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["DEADLINE_OPS", "Deadline", "DeadlinePolicy"]

#: Blocking-operation classes a policy can bound.
DEADLINE_OPS = ("recv", "send", "barrier", "shrink", "ack")

_ENV = "REPRO_SIMMPI_TIMEOUT"


def _parse(raw: str | None) -> float | None:
    """Timeout seconds from an environment value; ``None`` disables."""
    if raw is None:
        return None
    raw = raw.strip()
    if not raw or raw.lower() in ("none", "off"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"invalid simmpi timeout {raw!r}; expected seconds (float), "
            "empty/'none'/'off' to disable"
        ) from None
    return value if value > 0 else None


class Deadline:
    """One started countdown for a blocking operation.

    Cheap to poll: ``expired()`` is a single ``time.monotonic`` call.
    *peers* names the rank(s) the operation is waiting on, so the raised
    :class:`~repro.simmpi.comm.RankTimeout` can blame them.
    """

    __slots__ = ("op", "timeout", "peers", "_expiry")

    def __init__(self, op: str, timeout: float, peers=()) -> None:
        self.op = op
        self.timeout = float(timeout)
        self.peers = tuple(peers)
        self._expiry = time.monotonic() + self.timeout

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expiry - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self._expiry

    def check(self) -> None:
        """Raise :class:`~repro.simmpi.comm.RankTimeout` once expired."""
        if self.expired():
            from repro.simmpi.comm import RankTimeout

            raise RankTimeout(self.op, self.timeout, peers=self.peers)


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-operation timeout configuration (``None`` = wait forever)."""

    default: float | None = None
    overrides: Mapping[str, float | None] = field(default_factory=dict)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None
                 ) -> "DeadlinePolicy":
        """Policy from ``REPRO_SIMMPI_TIMEOUT`` (+ ``_<OP>`` overrides)."""
        env = os.environ if environ is None else environ
        default = _parse(env.get(_ENV))
        overrides = {}
        for op in DEADLINE_OPS:
            raw = env.get(f"{_ENV}_{op.upper()}")
            if raw is not None:
                overrides[op] = _parse(raw)
        return cls(default=default, overrides=overrides)

    @property
    def enabled(self) -> bool:
        """True when any operation class has a bound."""
        return self.default is not None or any(
            v is not None for v in self.overrides.values()
        )

    def limit(self, op: str) -> float | None:
        """Timeout seconds for *op*, or ``None`` (unbounded)."""
        if op in self.overrides:
            return self.overrides[op]
        return self.default

    def start(self, op: str, peers=()) -> Deadline | None:
        """Begin a countdown for *op*; ``None`` when *op* is unbounded."""
        limit = self.limit(op)
        if limit is None:
            return None
        return Deadline(op, limit, peers)
