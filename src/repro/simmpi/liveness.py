"""Liveness watchdog for the process backend: heartbeats + hang detection.

A process rank that hangs holds the world hostage without ever raising;
the parent launcher cannot tell it apart from a rank doing a long
compute unless the rank *reports progress*.  This module provides both
halves of that protocol:

* :class:`LivenessBeacon` — a daemon thread inside each child process
  that periodically publishes the transport's monotonically increasing
  progress counter over the rank's result pipe (``("hb", rank, count)``
  control messages, interleaved safely with the final result under a
  shared lock).
* :class:`RankMonitor` — parent-side bookkeeping that distinguishes
  *slow* from *hung*: a rank whose counter keeps advancing is slow and
  left alone; a rank whose counter froze longer than
  :attr:`WatchdogConfig.hang_timeout` is a hang **suspect**.  The
  suspect is only declared dead on consensus-style evidence: some peer
  made progress *after* the suspect froze (so the world is not just
  globally paused), or the freeze outlasts ``grace_factor x
  hang_timeout`` (a collective deadlock — every rank frozen — is also
  contained, just later).  Only the *oldest* frozen rank is declared
  per sweep: ranks that froze later are almost always victims blocked
  on the real culprit.

The watchdog is **disabled by default**; set ``REPRO_SIMMPI_HANG_TIMEOUT``
to a positive number of seconds to arm it (heartbeat interval defaults
to a quarter of that, overridable via ``REPRO_SIMMPI_HEARTBEAT``).  A
declared rank is killed by the launcher and surfaces as a
:class:`~repro.simmpi.comm.RankTimeout`, which the elastic campaign
treats exactly like a rank death: shrink N -> N-1, reload the newest
sharded checkpoint, resume.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Mapping

__all__ = ["LivenessBeacon", "RankMonitor", "WatchdogConfig"]

logger = logging.getLogger(__name__)

_ENV_HANG = "REPRO_SIMMPI_HANG_TIMEOUT"
_ENV_BEAT = "REPRO_SIMMPI_HEARTBEAT"


@dataclass(frozen=True)
class WatchdogConfig:
    """Hang-detection settings of one process-backend launch."""

    #: Seconds of frozen progress before a rank becomes a hang suspect;
    #: ``None`` disables the watchdog entirely.
    hang_timeout: float | None = None
    #: Seconds between child heartbeat messages.
    heartbeat: float = 0.25
    #: A suspect is declared even without peer progress once its freeze
    #: exceeds ``grace_factor * hang_timeout`` (collective deadlock).
    grace_factor: float = 3.0

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None
                 ) -> "WatchdogConfig":
        env = os.environ if environ is None else environ
        raw = (env.get(_ENV_HANG) or "").strip()
        hang: float | None = None
        if raw and raw.lower() not in ("none", "off"):
            try:
                hang = float(raw)
            except ValueError:
                raise ValueError(
                    f"invalid {_ENV_HANG}={raw!r}; expected seconds"
                ) from None
            if hang <= 0:
                hang = None
        beat_raw = (env.get(_ENV_BEAT) or "").strip()
        if beat_raw:
            beat = max(0.01, float(beat_raw))
        elif hang is not None:
            beat = max(0.01, hang / 4.0)
        else:
            beat = 0.25
        return cls(hang_timeout=hang, heartbeat=beat)

    @property
    def enabled(self) -> bool:
        return self.hang_timeout is not None


class LivenessBeacon:
    """Child-side heartbeat publisher (daemon thread, crash-silent)."""

    def __init__(self, conn, lock: threading.Lock, rank: int,
                 progress_fn, interval: float) -> None:
        self._conn = conn
        self._lock = lock
        self._rank = rank
        self._progress_fn = progress_fn
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"simmpi-beacon-{rank}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    self._conn.send(("hb", self._rank,
                                     self._progress_fn()))
            except Exception:
                # Result pipe gone (parent exited / rank finishing):
                # the beacon's job is over either way.
                return


class RankMonitor:
    """Parent-side slow-vs-hung classifier over heartbeat streams."""

    def __init__(self, config: WatchdogConfig, n_ranks: int) -> None:
        now = time.monotonic()
        self._config = config
        self._progress = {r: -1 for r in range(n_ranks)}
        self._changed = {r: now for r in range(n_ranks)}
        self._declared: set[int] = set()
        #: After a declaration the surviving ranks need time to observe
        #: the abort and report on their own; no further declarations
        #: until this instant (else every blocked victim gets killed in
        #: the sweeps right after the culprit).
        self._cooldown_until = 0.0

    def beat(self, rank: int, progress) -> None:
        """Record a heartbeat; only *advancing* progress resets the clock.

        *progress* is either a bare counter or a ``(counter, stamp)``
        pair; the stamp is the child-side ``CLOCK_MONOTONIC`` time of
        the last counter move (comparable across processes on one
        host), which orders near-simultaneous freezes exactly instead
        of by heartbeat arrival time.
        """
        stamp = None
        if isinstance(progress, (tuple, list)):
            progress, stamp = progress
        if progress != self._progress[rank]:
            self._progress[rank] = progress
            self._changed[rank] = (
                time.monotonic() if stamp is None else float(stamp)
            )

    def frozen_for(self, rank: int) -> float:
        """Seconds since *rank* last advanced its progress counter."""
        return time.monotonic() - self._changed[rank]

    def hung_rank(self, alive) -> int | None:
        """The rank to declare hung this sweep, or ``None``.

        At most one per call — the oldest-frozen suspect — because ranks
        that froze later are typically victims blocked on it; killing
        the culprit lets them abort and report on their own.
        """
        timeout = self._config.hang_timeout
        if timeout is None:
            return None
        now = time.monotonic()
        if now < self._cooldown_until:
            return None
        suspects = [
            r for r in alive
            if r not in self._declared
            and now - self._changed[r] > timeout
        ]
        if not suspects:
            return None
        suspect = min(suspects, key=lambda r: self._changed[r])
        peers = [r for r in alive if r != suspect and r not in self._declared]
        # A peer whose last advance lies within one heartbeat of the
        # suspect's freeze is no evidence — in a collective deadlock the
        # final heartbeats land microseconds apart.  Only a peer that
        # advanced clearly *after* the freeze proves the world is not
        # just globally paused.
        margin = self._config.heartbeat
        peer_advanced = any(
            self._changed[p] > self._changed[suspect] + margin
            for p in peers
        )
        frozen = now - self._changed[suspect]
        if (peer_advanced or not peers
                or frozen > timeout * self._config.grace_factor):
            self._declared.add(suspect)
            self._cooldown_until = now + timeout
            logger.error(
                "watchdog: rank %d progress frozen for %.2fs "
                "(timeout %.2fs, peer_advanced=%s); declaring it hung",
                suspect, frozen, timeout, peer_advanced,
            )
            return suspect
        return None
