"""Pairwise log2(P) reduction schedule (Sec. 3.2 mesh output pipeline).

The hierarchical mesh coarsening gathers two local meshes on one process,
stitches and re-coarsens them, and repeats ``log2(P)`` times with half of
the processes participating in each round.  This module computes that
schedule as data so both the real simmpi pipeline and the analytic I/O
model can use it.
"""

from __future__ import annotations

__all__ = ["reduction_rounds", "run_pairwise_reduction"]


def reduction_rounds(n_ranks: int) -> list[list[tuple[int, int]]]:
    """Rounds of ``(receiver, sender)`` pairs reducing everything to rank 0.

    Round *k* pairs ranks whose bit *k* is set with their partner below;
    works for non-powers of two (lone ranks simply advance).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    rounds: list[list[tuple[int, int]]] = []
    stride = 1
    while stride < n_ranks:
        pairs = []
        for receiver in range(0, n_ranks, 2 * stride):
            sender = receiver + stride
            if sender < n_ranks:
                pairs.append((receiver, sender))
        rounds.append(pairs)
        stride *= 2
    return rounds


def run_pairwise_reduction(comm, value, combine, tag: int = -201):
    """Execute the pairwise reduction over a live communicator.

    ``combine(a, b)`` merges two partial results (e.g. stitch + coarsen
    two meshes).  Returns the fully reduced value on rank 0 and ``None``
    elsewhere.  Exactly ``log2(P)`` rounds with half the ranks active per
    round, as in the paper.
    """
    rank, size = comm.rank, comm.size
    for pairs in reduction_rounds(size):
        for receiver, sender in pairs:
            if rank == sender:
                comm.send(value, receiver, tag=tag)
                return None
            if rank == receiver:
                other = comm.recv(sender, tag=tag)
                value = combine(value, other)
    return value if rank == 0 else None
