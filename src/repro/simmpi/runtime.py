"""SPMD launcher for the simulated MPI runtime.

:func:`run_spmd` plays the role of ``mpiexec``: it spawns one worker per
rank, hands each a :class:`Communicator`, runs the same function
everywhere and collects the per-rank return values.  A failure on any rank
sets a world-wide flag so peers blocked in communication abort instead of
deadlocking, and the first exception is re-raised in the caller.

Two execution backends share these semantics:

* ``"thread"`` (default) — one thread per rank, unbounded in-process
  mailboxes.  Deterministic, debuggable, zero startup cost; kernels
  serialize on the GIL, so it models but does not measure speedup.
* ``"process"`` — one OS process per rank with shared-memory payload
  transport (:mod:`repro.simmpi.transport`).  Kernels genuinely run in
  parallel; channels are bounded, so exchanges must post receives
  before sending (the repo's exchange routines do).
"""

from __future__ import annotations

import logging
import os
import threading

from repro.simmpi.comm import Communicator, RankFailure, RemoteError, _World

__all__ = ["run_spmd", "run_spmd_elastic", "run_spmd_resilient"]

logger = logging.getLogger(__name__)


def run_spmd(n_ranks: int, fn, *args, backend: str | None = None,
             **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on *n_ranks* simulated ranks.

    Returns the list of per-rank return values (rank order).  Exceptions
    raised by any rank abort the whole run and are re-raised (peers'
    secondary :class:`RemoteError` aborts are suppressed).  The re-raised
    exception carries the failing rank as a ``simmpi_rank`` attribute.

    *backend* selects the execution substrate: ``"thread"`` (default) or
    ``"process"`` (see the module docstring for the trade-off).  When
    ``None``, the ``REPRO_SIMMPI_BACKEND`` environment variable decides,
    defaulting to ``"thread"``.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if backend is None:
        backend = os.environ.get("REPRO_SIMMPI_BACKEND", "thread")
    if backend == "process":
        from repro.simmpi.transport import run_spmd_processes

        return run_spmd_processes(n_ranks, fn, args, kwargs)
    if backend != "thread":
        raise ValueError(
            f"unknown simmpi backend {backend!r}; use 'thread' or 'process'"
        )
    world = _World(n_ranks)
    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks

    def entry(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - repropagated below
            exc.simmpi_rank = rank
            errors[rank] = exc
            if not isinstance(exc, RemoteError):
                logger.error("rank %d failed: %r", rank, exc)
            world.failed.set()
            world.barrier.abort()

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    primary = next(
        (e for e in errors if e is not None and not isinstance(e, RemoteError)),
        None,
    )
    if primary is not None:
        raise primary
    # Among secondary aborts, prefer a typed RankFailure (e.g. a
    # RankTimeout naming the stalled peer) over a generic RemoteError.
    failure = next((e for e in errors if isinstance(e, RankFailure)), None)
    if failure is not None:
        raise failure
    secondary = next((e for e in errors if e is not None), None)
    if secondary is not None:
        raise secondary
    return results


def run_spmd_elastic(n_ranks: int, fn, *args, **kwargs) -> tuple[list, dict]:
    """Run *fn* with ULFM-style failure containment instead of world abort.

    A rank whose function raises is marked **dead** in the world — it
    does not tear the run down.  Peers blocked in communication observe
    the death as a typed :class:`~repro.simmpi.comm.RankFailure` and may
    call :meth:`~repro.simmpi.comm.Communicator.shrink` to obtain a
    working sub-communicator of the survivors and finish their work.

    Returns ``(results, failures)``: *results* is the per-rank return
    value list (``None`` for dead ranks) and *failures* maps each dead
    rank to the exception that killed it (each annotated with a
    ``simmpi_rank`` attribute).  Nothing is re-raised — containment is
    the whole point — so callers decide how to treat partial success.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    world = _World(n_ranks)
    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks

    def entry(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via failures
            exc.simmpi_rank = rank
            errors[rank] = exc
            if not isinstance(exc, RemoteError):
                logger.warning("rank %d died (contained): %r", rank, exc)
            world.mark_dead(rank)

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"simmpi-elastic-{r}")
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    failures = {r: e for r, e in enumerate(errors) if e is not None}
    if failures:
        logger.info(
            "elastic SPMD run finished with %d contained failure(s): ranks %s",
            len(failures), sorted(failures),
        )
    return results, failures


def run_spmd_resilient(
    n_ranks: int,
    fn,
    make_args,
    *,
    max_attempts: int = 3,
    retry_on: tuple = (Exception,),
) -> list:
    """Retry-with-restart wrapper around :func:`run_spmd`.

    Each attempt gets a **fresh world** (mailboxes, barrier, failure
    flag) and freshly built arguments: ``make_args(attempt, last_exc)``
    returns the ``(args, kwargs)`` pair for attempt *attempt* (0-based),
    letting the caller reload state from a checkpoint store and shrink
    the remaining work between attempts.  Exceptions matching *retry_on*
    trigger another attempt until *max_attempts* is exhausted, after
    which the last exception is re-raised.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    last_exc = None
    for attempt in range(max_attempts):
        args, kwargs = make_args(attempt, last_exc)
        try:
            return run_spmd(n_ranks, fn, *args, **kwargs)
        except retry_on as exc:  # noqa: PERF203 - retry loop
            last_exc = exc
            logger.warning(
                "SPMD attempt %d/%d failed (%r); retrying",
                attempt + 1, max_attempts, exc,
            )
    raise last_exc
