"""SPMD launcher for the simulated MPI runtime.

:func:`run_spmd` plays the role of ``mpiexec``: it spawns one thread per
rank, hands each a :class:`Communicator`, runs the same function
everywhere and collects the per-rank return values.  A failure on any rank
sets a world-wide flag so peers blocked in communication abort instead of
deadlocking, and the first exception is re-raised in the caller.
"""

from __future__ import annotations

import threading

from repro.simmpi.comm import Communicator, RemoteError, _World

__all__ = ["run_spmd"]


def run_spmd(n_ranks: int, fn, *args, **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on *n_ranks* simulated ranks.

    Returns the list of per-rank return values (rank order).  Exceptions
    raised by any rank abort the whole run and are re-raised (peers'
    secondary :class:`RemoteError` aborts are suppressed).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    world = _World(n_ranks)
    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks

    def entry(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - repropagated below
            errors[rank] = exc
            world.failed.set()
            world.barrier.abort()

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    primary = next(
        (e for e in errors if e is not None and not isinstance(e, RemoteError)),
        None,
    )
    if primary is not None:
        raise primary
    secondary = next((e for e in errors if e is not None), None)
    if secondary is not None:
        raise secondary
    return results
