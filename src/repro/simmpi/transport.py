"""Process backend for the simulated MPI runtime.

Threads share one GIL, so the thread backend of :mod:`repro.simmpi` can
*model* — but never *measure* — intranode parallel speedup.  This module
provides the measured path: one OS process per rank, tiny control
messages over per-pair pipes, and bulk array payloads staged through
POSIX shared memory (:mod:`multiprocessing.shared_memory`), so a
ghost-slab transfer between co-resident ranks is two ``memcpy`` calls
instead of a pickle round-trip through a pipe.  The same mechanism backs
:class:`~repro.grid.field.Field` buffers via
:meth:`ProcessCommunicator.field_allocator`.

Semantics mirror the thread backend's :class:`~repro.simmpi.comm.
Communicator`: ``(source, tag)`` matching with ``ANY_SOURCE`` /
``ANY_TAG`` wildcards, FIFO ordering per sender/receiver pair, the same
binomial-tree collectives (inherited — they are built purely on
``send``/``recv``), and world-abort failure propagation with
``simmpi_rank`` annotation on the re-raised exception.

The one deliberate difference is **bounded buffering**: each ordered
rank pair allows :data:`CHANNEL_SLOTS` in-flight shared-memory payloads;
a sender that exhausts them blocks, *making progress on its own incoming
traffic* (acks, plus messages completing posted receives) while it
waits.  That is the eager/rendezvous protocol of a real MPI: symmetric
bulk exchanges are only guaranteed deadlock-free when receives are
posted before sends, which is exactly Algorithm 2's
post-receives-first discipline (and what
:mod:`repro.distributed.exchange` does).
"""

from __future__ import annotations

import logging
import os
import pickle
import re
import threading
import time
import traceback
import uuid
import warnings
from multiprocessing import connection as _mpc

import numpy as np

from repro.simmpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    CommStats,
    Communicator,
    HaloRecvChannel,
    HaloSendChannel,
    RankFailure,
    RankTimeout,
    RemoteError,
    _copy_payload,
)
from repro.simmpi.deadline import DeadlinePolicy
from repro.simmpi.liveness import LivenessBeacon, RankMonitor, WatchdogConfig

__all__ = [
    "CHANNEL_SLOTS",
    "INLINE_MAX",
    "ProcessCommunicator",
    "ProcessRequest",
    "RankTransport",
    "run_spmd_processes",
    "sweep_orphaned_segments",
]

logger = logging.getLogger(__name__)

#: Array/pickle payloads at or above this byte size go through shared
#: memory; smaller ones ride inline in the control pipe.  Small enough
#: that inline messages can never fill an OS pipe buffer (64 KiB on
#: Linux) before the control tuple of a staged payload gets through.
INLINE_MAX = int(os.environ.get("REPRO_SIMMPI_INLINE_MAX", 8192))

#: In-flight shared-memory payloads allowed per ordered rank pair
#: before the sender blocks (the "eager limit").
CHANNEL_SLOTS = int(os.environ.get("REPRO_SIMMPI_CHANNEL_SLOTS", 4))

#: Seconds between failure-flag checks while blocked.
_POLL = 0.05

#: Parent-side grace period before surviving children are terminated.
_JOIN_GRACE = 30.0

#: Name prefix of owned shared-memory segments: ``repro-smm-<pid>-<id>``.
#: Embedding the owner pid lets :func:`sweep_orphaned_segments` reclaim
#: segments whose owner died without running teardown (crashed or
#: watchdog-killed ranks of a previous run).
_SEG_PREFIX = "repro-smm"
_SEG_RE = re.compile(rf"^{_SEG_PREFIX}-(\d+)-")


def _segment_name() -> str:
    return f"{_SEG_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def sweep_orphaned_segments(directory: str = "/dev/shm"
                            ) -> list[tuple[str, int]]:
    """Reclaim shared-memory segments whose owning process is dead.

    A hard-killed rank (watchdog, SIGKILL, node crash) never runs
    :meth:`RankTransport.close`, so its staged payloads and field
    buffers stay pinned in ``/dev/shm`` until the machine reboots —
    which is precisely how repeated hang-containment eventually ENOSPCs
    the segment pool.  This startup sweep unlinks every
    ``repro-smm-<pid>-*`` segment whose *pid* no longer exists and
    returns ``(name, pid)`` pairs for telemetry (one ``shm_reclaimed``
    event each, emitted once a rank attaches its event log).
    """
    reclaimed: list[tuple[str, int]] = []
    if not os.path.isdir(directory):
        return reclaimed
    try:
        names = os.listdir(directory)
    except OSError:
        return reclaimed
    for name in names:
        match = _SEG_RE.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except (FileNotFoundError, PermissionError, OSError):
            continue
        logger.warning(
            "reclaimed orphaned shared-memory segment %s (owner pid %d "
            "is dead)", name, pid,
        )
        reclaimed.append((name, pid))
    return reclaimed


def _matches(want_source: int, want_tag: int, source: int, tag: int) -> bool:
    return (want_source in (ANY_SOURCE, source)
            and want_tag in (ANY_TAG, tag))


class _PostedRecv:
    """A pre-announced receive (``MPI_Irecv`` style).

    The transport completes posted receives *during send-side blocking*
    as well as in ``recv``/``wait`` — that asymmetry is what makes
    post-receives-first exchanges deadlock-free under bounded channels.

    *into*, when set, is a destination array view: the payload is
    unpacked straight into it at dispatch time (one copy from the staged
    segment into e.g. a ghost slice) instead of being materialized as a
    standalone array the caller copies a second time.
    """

    __slots__ = ("source", "tag", "done", "payload", "into")

    def __init__(self, source: int, tag: int, into=None) -> None:
        self.source = source
        self.tag = tag
        self.done = False
        self.payload = None
        self.into = into


class ProcessRequest:
    """Request handle of the process backend (mirrors :class:`Request`)."""

    def __init__(self, transport: "RankTransport", posted: _PostedRecv):
        self._transport = transport
        self._posted = posted

    def wait(self):
        """Complete the receive; returns the payload."""
        return self._transport.complete(self._posted)

    def test(self) -> bool:
        """Non-destructive readiness check."""
        self._transport.progress(block=False)
        return self._posted.done


class RankTransport:
    """Per-rank message engine: pipes for control, shared memory for bulk.

    Single-threaded by design — each rank is one process running one
    thread, so no locking is needed anywhere.  Wire format (tuples over
    ``multiprocessing.Pipe``):

    ``("inl", source, tag, payload)``
        Small array, pickled by the pipe itself (snapshot at send time).
    ``("inlb", source, tag, bytes)``
        Small non-array object, pre-pickled.
    ``("shm", source, tag, seq, segname, shape, dtypestr)``
        Large array staged raw into a shared-memory segment.
    ``("shb", source, tag, seq, segname, nbytes)``
        Large non-array object, pickled into a segment.
    ``("ack", seq)``
        Receiver consumed segment *seq*; the sender may reuse it.

    With a :class:`~repro.telemetry.timing.TimingTree` attached
    (:meth:`attach_timing`), the pipe phases are timed under
    ``comm/pipe``: ``send`` (control-message writes, including any block
    on a full channel), ``stage`` (segment claims, i.e. back-pressure
    waits; contained in the ``send`` total), ``recv`` (progress-engine
    drains, including poll waits) and ``ack`` (segment-release
    notifications; fired from inside a drain, so also contained in the
    ``recv`` total).  This is the process-backend transport overhead the
    fig7 RunReport quantifies, and with tracing on
    (:mod:`repro.telemetry.tracing`) each phase call becomes a
    ``comm/pipe/*`` span feeding the pipe-latency histogram.
    """

    def __init__(self, rank: int, size: int, readers: dict, writers: dict,
                 failed, barrier,
                 deadlines: DeadlinePolicy | None = None) -> None:
        self.rank = rank
        self.size = size
        self._readers = dict(readers)   # source rank -> read Connection
        self._writers = dict(writers)   # dest rank -> write Connection
        self._failed = failed           # mp.Event: world abort flag
        self._barrier = barrier         # mp.Barrier over all ranks
        self.deadlines = (
            DeadlinePolicy.from_env() if deadlines is None else deadlines
        )
        self.stats = CommStats()
        self._held: list[tuple] = []            # arrived, not yet matched
        self._posted: list[_PostedRecv] = []    # posted, not yet arrived
        self._seq = 0
        self._outstanding: dict[int, tuple[int, object]] = {}  # seq -> (dest, seg)
        self._out_count: dict[int, int] = {}    # dest -> staged in flight
        self._free: dict[int, list] = {}        # dest -> reusable segments
        self._attached: dict[str, object] = {}  # segname -> SharedMemory
        self._field_segments: list = []         # owned Field backing segments
        self._halo_segments: list = []          # owned halo channel segments
        self._halo_unconfirmed: set = set()     # names awaiting peer attach
        #: Control-traffic accounting (the fig7 message-count story):
        #: every pipe post, every segment ack sent, every shared-memory
        #: segment created.  The solver snapshots these around the step
        #: loop, so RunReports carry *steady-state* per-step costs.
        self.ctrl_sent = 0
        self.acks_sent = 0
        self.segments_created = 0
        self._closed = False
        self._timing = None                     # optional TimingTree
        #: Monotonic liveness counter: bumped by every send, every
        #: dispatched incoming message and every solver step
        #: (:meth:`note_progress`).  The watchdog reads it through the
        #: heartbeat stream — frozen counter = hang suspect.  The stamp
        #: records *when* (CLOCK_MONOTONIC, comparable across processes
        #: on one host) the counter last moved, so the parent can order
        #: freezes exactly instead of by quantized heartbeat arrival.
        self.progress_count = 0
        self.progress_stamp = time.monotonic()
        #: Receive-side fault injection (set by FaultyComm): the plan is
        #: consulted for ``ack_drop`` when a staged segment is consumed.
        self.fault_plan = None
        self.fault_step = 0
        self._events = None                     # optional EventLog
        self._degraded = False                  # sticky inline-only mode
        self.degradations = 0
        self._reclaimed: list[tuple[str, int]] = []
        # Pipe writes are normally single-threaded; the lock exists for
        # the rare out-of-band senders (delayed-delivery fault timers).
        self._post_lock = threading.Lock()

    def attach_timing(self, tree) -> None:
        """Time the pipe phases (send/recv/ack) into *tree* under
        ``comm/pipe``; ``None`` detaches and restores the untimed path."""
        self._timing = tree

    def attach_events(self, events) -> None:
        """Stream transport telemetry (degradations, reclaimed segments)
        into *events*; queued pre-attach happenings are flushed."""
        self._events = events
        if events is not None:
            for name, pid in self._reclaimed:
                events.emit("shm_reclaimed", "WARNING",
                            segment=name, owner_pid=pid)
            self._reclaimed = []

    def note_reclaimed(self, reclaimed) -> None:
        """Queue orphan-sweep results for the next :meth:`attach_events`."""
        self._reclaimed.extend(reclaimed)

    def note_progress(self) -> None:
        """Bump the liveness counter (called by drivers once per step)."""
        self.progress_count += 1
        self.progress_stamp = time.monotonic()

    # -- sending -------------------------------------------------------------

    def send(self, obj, dest: int, tag: int) -> None:
        """Send with thread-backend semantics: payload snapshot at call time."""
        if self._timing is not None:
            t0 = time.perf_counter()
            try:
                self._send(obj, dest, tag)
            finally:
                self._timing.record("comm/pipe/send", time.perf_counter() - t0)
            return
        self._send(obj, dest, tag)

    def _send(self, obj, dest: int, tag: int) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        self.stats.account_send(obj)
        self.progress_count += 1
        self.progress_stamp = time.monotonic()
        if dest == self.rank:
            # Self-send: deliver through the normal dispatch path so it
            # can complete a posted receive or join the held list.
            self._dispatch(("inl", self.rank, tag, _copy_payload(obj)))
            return
        if isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
            if obj.nbytes >= INLINE_MAX and not self._degraded:
                staged = self._try_stage(dest, obj.nbytes)
                if staged is not None:
                    seq, seg = staged
                    view = np.ndarray(obj.shape, dtype=obj.dtype,
                                      buffer=seg.buf)
                    np.copyto(view, obj)
                    self._post(dest, ("shm", self.rank, tag, seq, seg.name,
                                      obj.shape, obj.dtype.str))
                    return
            # Connection.send pickles immediately => snapshot.  Also the
            # degraded path for large arrays when staging is unavailable.
            self._post(dest, ("inl", self.rank, tag, obj))
            return
        buf = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(buf) >= INLINE_MAX and not self._degraded:
            staged = self._try_stage(dest, len(buf))
            if staged is not None:
                seq, seg = staged
                seg.buf[:len(buf)] = buf
                self._post(dest, ("shb", self.rank, tag, seq, seg.name,
                                  len(buf)))
                return
        self._post(dest, ("inlb", self.rank, tag, buf))

    def send_inline(self, obj, dest: int, tag: int) -> None:
        """Thread-safe out-of-band send, always inline-pickled.

        Used by delayed-delivery fault timers, which run on a side
        thread: the payload bypasses channel-slot accounting and the
        shared-memory pool (both single-thread-only) and rides the
        control pipe, whose writes are serialized by the post lock.
        """
        buf = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if dest == self.rank:
            raise ValueError("send_inline cannot target the own rank")
        self._post(dest, ("inlb", self.rank, tag, buf))

    def _post(self, dest: int, msg: tuple) -> None:
        try:
            with self._post_lock:
                self._writers[dest].send(msg)
        except (BrokenPipeError, OSError):
            # Peer process is gone; surface as a secondary failure so the
            # launcher's primary-error selection stays meaningful.
            self._check_failed()
            raise RemoteError(f"rank {dest} is unreachable") from None
        self.ctrl_sent += 1

    def _try_stage(self, dest: int, nbytes: int):
        """:meth:`_stage`, degrading to ``None`` when the pool is gone."""
        if self._timing is not None:
            # Staging is where a sender blocks on channel back-pressure
            # (all CHANNEL_SLOTS in flight), so its own scope under
            # comm/pipe separates "waiting for a free segment" from the
            # plain control-message write cost in comm/pipe/send.
            t0 = time.perf_counter()
            try:
                return self._try_stage_untimed(dest, nbytes)
            finally:
                self._timing.record(
                    "comm/pipe/stage", time.perf_counter() - t0,
                )
        return self._try_stage_untimed(dest, nbytes)

    def _try_stage_untimed(self, dest: int, nbytes: int):
        try:
            return self._stage(dest, nbytes)
        except OSError as exc:
            self._degrade(exc)
            return None

    def _degrade(self, exc: OSError) -> None:
        """Switch permanently to inline-pickle payloads (pool exhausted)."""
        self.degradations += 1
        if self._degraded:
            return
        self._degraded = True
        message = (
            f"rank {self.rank}: shared-memory segment creation failed "
            f"({exc!r}); transport degraded to inline-pickle payloads — "
            "slower, but the run continues"
        )
        logger.warning(message)
        warnings.warn(message, RuntimeWarning, stacklevel=4)
        if self._events is not None:
            self._events.emit("transport_degraded", "WARNING",
                              error=repr(exc))

    def _stage(self, dest: int, nbytes: int):
        """Claim a channel slot + segment towards *dest* (may block)."""
        from multiprocessing import shared_memory

        deadline = self.deadlines.start("send", peers=(dest,))
        while self._out_count.get(dest, 0) >= CHANNEL_SLOTS:
            self._check_failed()
            if deadline is not None:
                deadline.check()
            self.progress(block=True)   # drain acks / complete posted recvs
        seg = None
        free = self._free.setdefault(dest, [])
        # Best fit, not first fit: the smallest segment that holds the
        # payload.  First-fit let a small message claim a large segment
        # in insertion order, forcing a fresh (syscall + mmap) segment
        # creation for the next large send even though a perfectly good
        # one sat idle in the freelist.
        best = -1
        for i, cand in enumerate(free):
            if cand.size >= nbytes and (best < 0
                                        or cand.size < free[best].size):
                best = i
        if best >= 0:
            seg = free.pop(best)
        else:
            seg = shared_memory.SharedMemory(create=True,
                                             size=max(int(nbytes), 1),
                                             name=_segment_name())
            self.segments_created += 1
        self._seq += 1
        self._outstanding[self._seq] = (dest, seg)
        self._out_count[dest] = self._out_count.get(dest, 0) + 1
        return self._seq, seg

    # -- receiving -----------------------------------------------------------

    def recv(self, source: int, tag: int):
        """Blocking receive; returns the payload."""
        msg = self._take_held(source, tag)
        if msg is not None:
            self.stats.recvs += 1
            return self._fetch(msg)
        posted = _PostedRecv(source, tag)
        self._posted.append(posted)
        return self.complete(posted)

    def irecv(self, source: int, tag: int) -> ProcessRequest:
        """Eagerly posted receive (unlike the thread backend's lazy one).

        Posting up front is load-bearing here: a sender blocked on a full
        channel completes the receiver's posted receives, so exchanges
        that post receives before sending cannot deadlock.
        """
        return self._post_recv(_PostedRecv(source, tag))

    def irecv_into(self, out: np.ndarray, source: int,
                   tag: int) -> ProcessRequest:
        """Posted receive that unpacks straight into the view *out*.

        For staged payloads this is the single-copy completion: the
        shared segment is copied once, directly into *out* (typically a
        ghost slice), instead of being materialized via ``.copy()`` and
        then copied a second time by the caller's slab assignment — and
        the ack goes back at dispatch time, freeing the sender's channel
        slot as early as possible.
        """
        return self._post_recv(_PostedRecv(source, tag, into=out))

    def _post_recv(self, posted: _PostedRecv) -> ProcessRequest:
        msg = self._take_held(posted.source, posted.tag)
        if msg is not None:
            posted.payload = self._fetch(msg, into=posted.into)
            posted.done = True
            self.stats.recvs += 1
        else:
            self._posted.append(posted)
        return ProcessRequest(self, posted)

    def complete(self, posted: _PostedRecv):
        """Drive progress until *posted* is done; returns its payload."""
        deadline = self.deadlines.start(
            "recv", peers=(posted.source,) if posted.source >= 0 else ()
        )
        while not posted.done:
            self.progress(block=False)
            if posted.done:
                break
            self._check_failed()
            if deadline is not None:
                deadline.check()
            self.progress(block=True)
        return posted.payload

    def probe(self, source: int, tag: int) -> bool:
        self.progress(block=False)
        return any(_matches(source, tag, m[1], m[2]) for m in self._held)

    def _take_held(self, source: int, tag: int):
        for i, msg in enumerate(self._held):
            if _matches(source, tag, msg[1], msg[2]):
                return self._held.pop(i)
        return None

    # -- progress engine -----------------------------------------------------

    def progress(self, block: bool) -> None:
        """Drain every readable control pipe, dispatching each message."""
        if self._timing is not None:
            t0 = time.perf_counter()
            try:
                self._progress(block)
            finally:
                self._timing.record("comm/pipe/recv", time.perf_counter() - t0)
            return
        self._progress(block)

    def _progress(self, block: bool) -> None:
        if not self._readers:
            if block:
                time.sleep(_POLL)
            return
        try:
            ready = _mpc.wait(list(self._readers.values()),
                              timeout=_POLL if block else 0)
        except OSError:
            ready = []
        for conn in ready:
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    src = next((s for s, c in self._readers.items()
                                if c is conn), None)
                    if src is not None:
                        del self._readers[src]
                    if not self._failed.is_set():
                        raise RemoteError(
                            f"rank {src} closed its channel unexpectedly"
                        ) from None
                    break
                self._dispatch(msg)
                if not conn.poll():
                    break

    def _dispatch(self, msg: tuple) -> None:
        self.progress_count += 1
        self.progress_stamp = time.monotonic()
        kind = msg[0]
        if kind == "ack":
            dest, seg = self._outstanding.pop(msg[1])
            self._out_count[dest] -= 1
            free = self._free.setdefault(dest, [])
            free.append(seg)
            if len(free) > CHANNEL_SLOTS:     # bound the per-dest freelist
                free.sort(key=lambda s: s.size)
                self._release(free.pop(0))
            return
        if kind == "halo_att":
            # One-time registration confirmation: the peer attached this
            # halo segment, so teardown may unlink it.  Not a
            # steady-state ack — it fires once per channel at setup.
            self._halo_unconfirmed.discard(msg[1])
            return
        source, tag = msg[1], msg[2]
        for posted in self._posted:
            if not posted.done and _matches(posted.source, posted.tag,
                                            source, tag):
                posted.payload = self._fetch(msg, into=posted.into)
                posted.done = True
                self._posted.remove(posted)
                self.stats.recvs += 1
                return
        self._held.append(msg)

    def _fetch(self, msg: tuple, into=None):
        """Materialize a payload; ack staged segments back to the sender.

        With *into* set, the payload lands in that view directly (the
        ``irecv_into`` single-copy path) and *into* is returned.
        """
        kind = msg[0]
        if kind == "inl":
            if into is not None:
                if msg[3].shape != into.shape:
                    raise ValueError(
                        f"irecv_into shape mismatch: message "
                        f"{msg[3].shape} vs destination {into.shape}"
                    )
                np.copyto(into, msg[3])
                return into
            return msg[3]
        if kind == "inlb":
            payload = pickle.loads(msg[3])
            if into is not None:
                into[...] = payload
                return into
            return payload
        if kind == "shm":
            _, source, _tag, seq, name, shape, dtypestr = msg
            shm = self._attach(name)
            view = np.ndarray(shape, dtype=np.dtype(dtypestr),
                              buffer=shm.buf)
            if into is not None:
                if tuple(shape) != tuple(into.shape):
                    raise ValueError(
                        f"irecv_into shape mismatch: message {tuple(shape)}"
                        f" vs destination {tuple(into.shape)}"
                    )
                np.copyto(into, view)
                payload = into
            else:
                payload = view.copy()
        else:  # "shb"
            _, source, _tag, seq, name, nbytes = msg
            shm = self._attach(name)
            payload = pickle.loads(bytes(shm.buf[:nbytes]))
            if into is not None:
                into[...] = payload
                payload = into
        if self.fault_plan is not None and self.fault_plan.fires(
            "ack_drop", step=self.fault_step, rank=self.rank
        ) is not None:
            # The ack vanishes: the sender's channel slot leaks, and once
            # it exhausts its slots it blocks — the deadline layer (or
            # watchdog) must contain the resulting stall.
            logger.warning(
                "rank %d: dropping ack for segment seq %d from rank %d "
                "(injected ack_drop)", self.rank, seq, source,
            )
            return payload
        if self._timing is not None:
            t0 = time.perf_counter()
            try:
                self._post(source, ("ack", seq))
            finally:
                self._timing.record("comm/pipe/ack", time.perf_counter() - t0)
        else:
            self._post(source, ("ack", seq))
        self.acks_sent += 1
        return payload

    def _attach(self, name: str):
        from multiprocessing import shared_memory

        shm = self._attached.get(name)
        if shm is None:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                # Only possible when the owning sender died mid-teardown
                # and its segments were reclaimed: report as a secondary
                # failure, never as the run's primary error.
                self._check_failed()
                raise RemoteError(
                    f"shared segment {name} vanished (sender died?)"
                ) from None
            # Python 3.11 registers attached segments with the resource
            # tracker as if this process owned them; undo that, or the
            # tracker double-unlinks and warns at interpreter shutdown.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
            self._attached[name] = shm
        return shm

    def _check_failed(self) -> None:
        if self._failed.is_set():
            raise RemoteError("a peer rank failed while this rank waited")

    # -- synchronization -----------------------------------------------------

    def barrier_wait(self) -> None:
        limit = self.deadlines.limit("barrier")
        t0 = time.monotonic()
        try:
            self._barrier.wait(timeout=limit)
        except threading.BrokenBarrierError:
            if (limit is not None and time.monotonic() - t0 >= limit
                    and not self._failed.is_set()):
                # Nobody died — the barrier genuinely timed out.  The mp
                # barrier is broken for everyone now; peers see the
                # failure flag this deadline sets via the launcher.
                raise RankTimeout("barrier", limit) from None
            raise RemoteError("barrier broken by a failed peer") from None

    # -- shared-memory field allocation --------------------------------------

    def alloc_shared_array(self, shape, dtype=np.float64) -> np.ndarray:
        """Zero-filled array backed by an owned shared-memory segment.

        Used as the :class:`~repro.grid.field.Field` allocator so rank
        field buffers live in shared memory; segments are unlinked when
        the transport closes (rank function returned or died).
        """
        from multiprocessing import shared_memory

        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        try:
            seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1),
                                             name=_segment_name())
        except OSError as exc:
            # Degradation ladder, same rung as _try_stage: no segment
            # pool left means plain heap arrays (ghosts fall back to
            # pickled messages) — slower, never fatal.
            self._degrade(exc)
            return np.zeros(tuple(shape), dtype=dtype)
        self._field_segments.append(seg)
        self.segments_created += 1
        arr = np.ndarray(tuple(shape), dtype=dtype, buffer=seg.buf)
        arr.fill(0)
        return arr

    def alloc_halo_segment(self, nbytes: int):
        """Owned shared-memory segment backing a persistent halo channel.

        Unlike :meth:`alloc_shared_array` the ``OSError`` propagates:
        the halo channel itself owns the degradation decision (it falls
        back to heap slots + per-round inline messages, not to a
        different array kind).
        """
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True,
                                         size=max(int(nbytes), 1),
                                         name=_segment_name())
        self._halo_segments.append(seg)
        self._halo_unconfirmed.add(seg.name)
        self.segments_created += 1
        return seg

    def counters(self) -> dict:
        """Control-traffic totals since transport creation.

        The solver snapshots this dict immediately before and after the
        step loop; the difference divided by step count is the
        steady-state per-step message cost the fig7 report gates on.
        """
        return {
            "pipe_messages": self.ctrl_sent,
            "acks": self.acks_sent,
            "segments_created": self.segments_created,
        }

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Release every owned segment and detach from attached ones.

        Staged payloads the peers have not consumed yet are drained
        first (bounded wait for their acks, ``MPI_Finalize`` style), as
        are pending halo-channel attach confirmations, so a rank that
        sends (or registers a channel) and returns immediately cannot
        unlink a segment before the receiver attached to it.  On a
        failed world the wait is skipped — peers are going down anyway
        and their attach errors surface as suppressed secondary
        failures.
        """
        if self._closed:
            return
        self._closed = True
        grace = self.deadlines.limit("ack")
        if grace is None:
            grace = _JOIN_GRACE / 2
        deadline = time.monotonic() + grace
        while ((self._outstanding or self._halo_unconfirmed)
               and not self._failed.is_set()
               and time.monotonic() < deadline):
            try:
                self.progress(block=True)
            except RemoteError:
                break
        for _dest, seg in self._outstanding.values():
            self._release(seg)
        for free in self._free.values():
            for seg in free:
                self._release(seg)
        for seg in self._field_segments:
            self._release(seg)
        for seg in self._halo_segments:
            self._release(seg)
        for shm in self._attached.values():
            try:
                shm.close()
            except (BufferError, OSError):
                pass

    @staticmethod
    def _release(seg) -> None:
        try:
            seg.close()
        except BufferError:
            # A live numpy view still references the buffer (e.g. a Field
            # the rank function returned); unlinking is still safe — the
            # mapping survives until the process exits.
            pass
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass


class _ProcessHaloSend(HaloSendChannel):
    """Process-backend sender endpoint: slots in a named shm segment.

    The registration handle is the segment *name* (attached lazily by
    the receiver), so steady-state rounds are one raw memcpy into the
    mapped slot plus one tiny notify over the control pipe — no staging,
    no ack, no pickling of the payload.

    Degradation ladder: if the segment pool is exhausted at registration
    time the slots fall back to plain heap memory, the handle ships as
    ``None``, and every :meth:`notify` carries the packed prefix inline
    — same sticky-inline rung as :meth:`RankTransport._degrade`, chosen
    once at setup so the per-round protocol never changes mid-run.
    """

    def __init__(self, transport: RankTransport, comm, dest: int,
                 channel_id: int, capacity: int, dtype=np.float64) -> None:
        self._transport = transport
        self._seg = None
        self._inline = False
        super().__init__(comm, dest, channel_id, capacity, dtype)

    def _allocate(self, comm) -> np.ndarray:
        nbytes = 2 * int(self.capacity) * self.dtype.itemsize
        try:
            self._seg = self._transport.alloc_halo_segment(nbytes)
        except OSError as exc:
            self._transport._degrade(exc)
            self._inline = True
            return np.empty((2, self.capacity), dtype=self.dtype)
        return np.ndarray((2, self.capacity), dtype=self.dtype,
                          buffer=self._seg.buf)

    def _announce(self, comm) -> None:
        handle = None if self._seg is None else self._seg.name
        comm.send(
            ("haloreg", self.channel_id, self.capacity, self.dtype.str,
             handle),
            self.dest, tag=self.reg_tag,
        )

    def notify(self, used: int | None = None) -> None:
        if self._inline:
            n = self.capacity if used is None else int(used)
            self._comm.send((self.seq, self._slots[self.seq % 2][:n]),
                            self.dest, tag=self.notify_tag)
            self.seq += 1
            return
        super().notify(used)


class _ProcessHaloRecv(HaloRecvChannel):
    """Process-backend receiver endpoint: attaches the sender's segment.

    A ``None`` handle means the sender degraded to heap slots; notifies
    then arrive as ``(seq, payload)`` tuples whose payload is copied
    into a local slot so callers see identical view semantics on every
    rung of the ladder.
    """

    def __init__(self, transport: RankTransport, comm, source: int,
                 channel_id: int) -> None:
        self._transport = transport
        self._inline = False
        super().__init__(comm, source, channel_id)

    def _attach(self, handle) -> np.ndarray:
        if handle is None:
            self._inline = True
            return np.empty((2, self.capacity), dtype=self.dtype)
        shm = self._transport._attach(handle)
        # One-time attach confirmation: until it arrives the sender's
        # close() must not unlink the segment (a rank that registers and
        # exits immediately would otherwise race our attach).
        self._transport._post(self.source, ("halo_att", handle))
        return np.ndarray((2, self.capacity), dtype=self.dtype,
                          buffer=shm.buf)

    def wait(self) -> np.ndarray:
        if not self._inline:
            return super().wait()
        seq, payload = self._comm.recv(self.source, tag=self.notify_tag)
        if seq != self.seq:
            raise RuntimeError(
                f"halo channel {self.channel_id} from rank {self.source}: "
                f"expected sequence {self.seq}, got {seq} — exchange rounds "
                "out of lockstep (registered and legacy paths mixed?)"
            )
        self.seq += 1
        slot = self._slots[seq % 2]
        slot[:payload.size] = payload
        return slot


class ProcessCommunicator(Communicator):
    """Rank-local communicator of the process backend.

    Point-to-point, probe and barrier delegate to the
    :class:`RankTransport`; ``isend``/``sendrecv`` and the binomial-tree
    collectives are inherited from :class:`Communicator` — they are
    written purely in terms of ``self.send`` / ``self.recv``, so the
    algorithms run identically on both backends.
    """

    def __init__(self, transport: RankTransport):
        self._transport = transport
        self.rank = transport.rank
        self.size = transport.size

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._transport.send(obj, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self._transport.recv(source, tag)

    def irecv(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> ProcessRequest:
        return self._transport.irecv(source, tag)

    def irecv_into(self, out: np.ndarray, source: int = ANY_SOURCE,
                   tag: int = ANY_TAG) -> ProcessRequest:
        """Posted receive completing in one copy into the view *out*."""
        return self._transport.irecv_into(out, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self._transport.probe(source, tag)

    def register_halo(self, dest: int, channel_id: int, capacity: int,
                      dtype=np.float64) -> HaloSendChannel:
        """Sender endpoint of a halo channel, slots in shared memory."""
        return _ProcessHaloSend(self._transport, self, dest, channel_id,
                                capacity, dtype)

    def accept_halo(self, source: int, channel_id: int) -> HaloRecvChannel:
        """Receiver endpoint; attaches the sender's slot segment."""
        return _ProcessHaloRecv(self._transport, self, source, channel_id)

    def transport_counters(self) -> dict:
        """Real control-traffic totals (see :meth:`RankTransport.counters`)."""
        return self._transport.counters()

    def barrier(self) -> None:
        self._transport.barrier_wait()

    def failed_ranks(self) -> tuple:
        return ()

    def shrink(self) -> "Communicator":
        raise NotImplementedError(
            "elastic shrink is a thread-backend feature; the process "
            "backend uses whole-world abort (run_spmd semantics)"
        )

    def aborted(self) -> bool:
        """True once any rank failed (world-abort flag set)."""
        return self._transport._failed.is_set()

    @property
    def stats(self) -> CommStats:
        return self._transport.stats

    @property
    def deadlines(self) -> DeadlinePolicy:
        return self._transport.deadlines

    def attach_timing(self, tree) -> None:
        """Time the transport's pipe phases into *tree* (``comm/pipe/*``)."""
        self._transport.attach_timing(tree)

    def attach_events(self, events) -> None:
        """Stream transport telemetry events (degradations, reclaimed
        segments) into *events*."""
        self._transport.attach_events(events)

    def note_progress(self) -> None:
        """Bump the transport's liveness counter (watchdog heartbeat)."""
        self._transport.note_progress()

    def field_allocator(self):
        """Shared-memory array allocator for rank-local Field buffers."""
        return self._transport.alloc_shared_array


# -- launcher ----------------------------------------------------------------


def _transportable(exc: BaseException, rank: int) -> BaseException:
    """Make *exc* safe to ship to the parent, keeping its type if possible."""
    try:
        exc.simmpi_rank = rank
    except Exception:
        pass
    try:
        if pickle.loads(pickle.dumps(exc)) is not None:
            return exc
    except Exception:
        pass
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    wrapped = RuntimeError(
        f"rank {rank} raised unpicklable {type(exc).__name__}: {exc}\n{text}"
    )
    wrapped.simmpi_rank = rank
    return wrapped


def _find_fault_plan(args, kwargs):
    """Duck-typed FaultPlan lookup in an SPMD call's arguments.

    Kept structural (``fires`` + ``mark_fired``) so the transport layer
    does not import :mod:`repro.resilience`.
    """
    for obj in list(args) + list(kwargs.values()):
        if hasattr(obj, "fires") and hasattr(obj, "mark_fired"):
            return obj
    return None


def _child_entry(rank, size, fn, args, kwargs, readers, writers,
                 failed, barrier, result_conn, watchdog=None,
                 reclaimed=()) -> None:
    """Per-rank process body: run *fn*, report result or failure.

    The result pipe doubles as the liveness channel: with an armed
    *watchdog* a :class:`~repro.simmpi.liveness.LivenessBeacon` thread
    streams ``("hb", rank, progress)`` messages, and a fault plan found
    in the arguments notifies ``("fault", rank, (kind, step, rank))``
    at fire time so the parent's plan copy stays in sync across
    restarts (fork gives each child an independent copy).
    """
    transport = RankTransport(rank, size, readers, writers, failed, barrier)
    if rank == 0 and reclaimed:
        transport.note_reclaimed(reclaimed)
    comm = ProcessCommunicator(transport)
    result_lock = threading.Lock()

    def report(msg) -> bool:
        try:
            with result_lock:
                result_conn.send(msg)
            return True
        except Exception:
            return False

    plan = _find_fault_plan(args, kwargs)
    if plan is not None:
        plan.on_fire = lambda record: report(("fault", rank, record))
    beacon = None
    if watchdog is not None and watchdog.enabled:
        beacon = LivenessBeacon(
            result_conn, result_lock, rank,
            lambda: (transport.progress_count, transport.progress_stamp),
            watchdog.heartbeat,
        )
        beacon.start()
    try:
        result = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        failed.set()
        try:
            barrier.abort()
        except Exception:
            pass
        if not isinstance(exc, RemoteError):
            logger.error("rank %d failed: %r", rank, exc)
        report(("err", rank, _transportable(exc, rank)))
    else:
        try:
            with result_lock:
                result_conn.send(("ok", rank, result))
        except Exception as exc:  # unpicklable/oversized result
            failed.set()
            try:
                barrier.abort()
            except Exception:
                pass
            report(("err", rank, _transportable(exc, rank)))
    finally:
        if beacon is not None:
            beacon.stop()
        transport.close()
        with result_lock:
            result_conn.close()


def run_spmd_processes(n_ranks: int, fn, args: tuple = (),
                       kwargs: dict | None = None,
                       watchdog: WatchdogConfig | None = None) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on *n_ranks* OS processes.

    The process-backend twin of the thread launcher in
    :func:`repro.simmpi.runtime.run_spmd`, with identical result and
    error semantics: per-rank return values in rank order, first
    non-:class:`RemoteError` exception re-raised with ``simmpi_rank``
    set, secondary aborts suppressed (among those, a typed
    :class:`RankFailure` — e.g. a :class:`RankTimeout` from the
    deadline layer — is preferred, so containment decisions survive
    error selection).  Prefers the ``fork`` start method (no pickling
    of *fn* or its closure) and falls back to ``spawn`` where fork is
    unavailable, in which case *fn*, *args* and *kwargs* must be
    picklable.

    *watchdog* (default: from ``REPRO_SIMMPI_HANG_TIMEOUT``) arms hang
    detection: children heartbeat their transport progress counters,
    and a rank whose counter freezes beyond the hang timeout — while
    some peer still advanced, or past the grace factor — is killed and
    reported as a :class:`RankTimeout` naming it, which elastic
    campaigns turn into a shrink-and-resume.
    """
    import multiprocessing as mp

    kwargs = {} if kwargs is None else kwargs
    watchdog = WatchdogConfig.from_env() if watchdog is None else watchdog
    reclaimed = sweep_orphaned_segments()
    parent_plan = _find_fault_plan(args, kwargs)
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    failed = ctx.Event()
    barrier = ctx.Barrier(n_ranks)

    # One one-way control pipe per ordered rank pair: readers[j][i] is
    # rank j's read end of the i -> j channel.
    readers: list[dict] = [{} for _ in range(n_ranks)]
    writers: list[dict] = [{} for _ in range(n_ranks)]
    for i in range(n_ranks):
        for j in range(n_ranks):
            if i == j:
                continue
            r, w = ctx.Pipe(duplex=False)
            readers[j][i] = r
            writers[i][j] = w

    procs = []
    result_conns = []
    for rank in range(n_ranks):
        res_r, res_w = ctx.Pipe(duplex=False)
        result_conns.append(res_r)
        proc = ctx.Process(
            target=_child_entry,
            args=(rank, n_ranks, fn, args, kwargs,
                  readers[rank], writers[rank], failed, barrier, res_w,
                  watchdog, tuple(reclaimed)),
            name=f"simmpi-rank-{rank}",
            daemon=True,
        )
        procs.append((proc, res_w))
    for proc, _ in procs:
        proc.start()
    # Drop the parent's copies of channel/result write ends so EOF
    # detection reflects the children alone.
    for rank in range(n_ranks):
        for conn in readers[rank].values():
            conn.close()
        for conn in writers[rank].values():
            conn.close()
    for _, res_w in procs:
        res_w.close()

    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks
    pending = {result_conns[r]: r for r in range(n_ranks)}
    monitor = RankMonitor(watchdog, n_ranks) if watchdog.enabled else None

    def record_error(rank: int, err: BaseException) -> None:
        err.simmpi_rank = rank
        errors[rank] = err
        if not isinstance(err, RemoteError):
            logger.error("rank %d failed: %r", rank, err)

    def consume(rank: int, msg: tuple) -> bool:
        """Handle one child message; True when the rank is finished."""
        kind = msg[0]
        if kind == "hb":
            if monitor is not None:
                monitor.beat(rank, msg[2])
            return False
        if kind == "fault":
            if parent_plan is not None:
                fkind, fstep, frank = msg[2]
                parent_plan.mark_fired(fkind, fstep, frank)
            return False
        if kind == "ok":
            results[rank] = msg[2]
            return True
        record_error(rank, msg[2])   # "err"
        return True

    wait_timeout = (
        0.25 if monitor is None else min(0.25, watchdog.heartbeat)
    )
    while pending:
        ready = _mpc.wait(list(pending), timeout=wait_timeout)
        for conn in ready:
            if conn not in pending:
                continue
            rank = pending[conn]
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[conn]
                    record_error(rank, RemoteError(
                        f"rank {rank} exited without reporting a result"
                    ))
                    break
                if consume(rank, msg):
                    del pending[conn]
                    break
                if not conn.poll():
                    break
        if not ready:
            # Liveness sweep: a hard-killed child never sets the failure
            # flag itself, so the parent does it on its behalf.
            for conn, rank in list(pending.items()):
                proc = procs[rank][0]
                if not proc.is_alive() and not conn.poll():
                    record_error(rank, RemoteError(
                        f"rank {rank} died (exit code {proc.exitcode})"
                    ))
                    failed.set()
                    try:
                        barrier.abort()
                    except Exception:
                        pass
                    del pending[conn]
        if monitor is not None and pending:
            suspect = monitor.hung_rank(sorted(pending.values()))
            if suspect is not None:
                conn = next(c for c, r in pending.items() if r == suspect)
                # Drain queued messages first: fire notifications must
                # not be lost, and a just-landed result supersedes the
                # hang verdict.
                finished = False
                try:
                    while conn.poll():
                        finished = consume(suspect, conn.recv()) or finished
                except (EOFError, OSError):
                    pass
                del pending[conn]
                if not finished:
                    record_error(suspect, RankTimeout(
                        "liveness", watchdog.hang_timeout, peers=(suspect,)
                    ))
                    failed.set()
                    try:
                        barrier.abort()
                    except Exception:
                        pass
                    proc = procs[suspect][0]
                    if proc.is_alive():
                        logger.error(
                            "watchdog: killing hung rank %d (pid %s)",
                            suspect, proc.pid,
                        )
                        proc.kill()

    deadline = time.monotonic() + _JOIN_GRACE
    for proc, _ in procs:
        proc.join(timeout=max(0.1, deadline - time.monotonic()))
    for proc, _ in procs:
        if proc.is_alive():
            logger.warning("terminating straggler process %s", proc.name)
            proc.terminate()
            proc.join(timeout=5)
    for conn in result_conns:
        conn.close()

    primary = next(
        (e for e in errors if e is not None and not isinstance(e, RemoteError)),
        None,
    )
    if primary is not None:
        raise primary
    # Among secondary aborts, a typed RankFailure (deadline/watchdog
    # containment verdict) beats a generic RemoteError echo.
    failure = next((e for e in errors if isinstance(e, RankFailure)), None)
    if failure is not None:
        raise failure
    secondary = next((e for e in errors if e is not None), None)
    if secondary is not None:
        raise secondary
    return results
