"""Telemetry subsystem: timing trees, structured events, run reports.

The paper's evaluation (Figs. 5-9) exists because waLBerla can *measure
itself*: every sweep and exchange functor is timed on every rank, the
timings are reduced across up to 262,144 cores, and the merged breakdown
is what the figures plot.  This package reproduces that observability
substrate:

* :mod:`repro.telemetry.timing` — hierarchical :class:`TimingTree` and
  flat :class:`TimingPool` of named scopes (count/total/min/avg/max),
  the waLBerla ``TimingTree`` / ``TimingPool`` correspondence;
* :mod:`repro.telemetry.reduce` — cross-rank reduction of the per-rank
  trees over the pairwise log2(P) schedule of
  :mod:`repro.simmpi.reduce_tree`;
* :mod:`repro.telemetry.events` — versioned JSON-lines event log
  (per-rank files, rank-0 merge) with stdlib ``logging`` forwarding;
* :mod:`repro.telemetry.logsetup` — rank-tagged log formatting; library
  modules use ``logging.getLogger(__name__)`` and never configure
  handlers themselves;
* :mod:`repro.telemetry.counters` — counters/gauges, rolling MLUP/s
  window and the Timeloop heartbeat functor;
* :mod:`repro.telemetry.report` — versioned, schema-validated JSON run
  reports (the ``BENCH_*.json`` performance trajectory);
* :mod:`repro.telemetry.tracing` — opt-in (``REPRO_TRACE=1``) bounded
  span recording of every timed scope, exported as Chrome trace-event /
  Perfetto JSON timelines;
* :mod:`repro.telemetry.spans` — span-derived analyses: overlap
  efficiency (the Fig. 8 number), per-rank step-time imbalance and the
  process-backend pipe-latency histogram;
* :mod:`repro.telemetry.session` — :class:`RunTelemetry`, the opt-in
  switch drivers accept.
"""

from repro.telemetry.counters import (
    Counter,
    Gauge,
    Heartbeat,
    MetricsRegistry,
    RollingRate,
    attach_heartbeat,
)
from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventLogHandler,
    attach_log_events,
    merge_event_logs,
    read_events,
    validate_event,
)
from repro.telemetry.logsetup import (
    RankTagFilter,
    configure_logging,
    current_rank,
    rank_formatter,
)
from repro.telemetry.reduce import (
    accumulate_reduced,
    as_reduced,
    merge_rank_trees,
    merge_reduced,
    reduce_tree_over_ranks,
)
from repro.telemetry.report import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
    build_run_report,
    config_hash,
    load_run_report,
    validate_run_report,
    write_run_report,
)
from repro.telemetry.session import RunTelemetry
from repro.telemetry.spans import (
    overlap_efficiency,
    per_rank_imbalance,
    pipe_latency_histogram,
    tracing_section,
)
from repro.telemetry.timing import TimerStats, TimingNode, TimingPool, TimingTree
from repro.telemetry.tracing import (
    Span,
    SpanRecorder,
    load_chrome_trace,
    recorder_from_env,
    spans_to_chrome_trace,
    trace_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "TimerStats",
    "TimingNode",
    "TimingTree",
    "TimingPool",
    "as_reduced",
    "merge_reduced",
    "accumulate_reduced",
    "merge_rank_trees",
    "reduce_tree_over_ranks",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "EventLogHandler",
    "attach_log_events",
    "read_events",
    "merge_event_logs",
    "validate_event",
    "current_rank",
    "RankTagFilter",
    "rank_formatter",
    "configure_logging",
    "Counter",
    "Gauge",
    "RollingRate",
    "MetricsRegistry",
    "Heartbeat",
    "attach_heartbeat",
    "RUN_REPORT_VERSION",
    "RUN_REPORT_SCHEMA",
    "config_hash",
    "build_run_report",
    "validate_run_report",
    "write_run_report",
    "load_run_report",
    "RunTelemetry",
    "Span",
    "SpanRecorder",
    "trace_enabled",
    "recorder_from_env",
    "spans_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "overlap_efficiency",
    "per_rank_imbalance",
    "pipe_latency_histogram",
    "tracing_section",
]
