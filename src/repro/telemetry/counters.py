"""Counters, gauges and the Timeloop heartbeat functor.

The paper's runs are steered by a handful of live quantities: cells
updated (the MLUP/s numerator), bytes moved through the ghost-layer
exchange, and failure counts.  This module provides the accumulators —
:class:`Counter`, :class:`Gauge`, :class:`RollingRate` — bundled in a
:class:`MetricsRegistry`, plus :func:`attach_heartbeat`, which registers
a sampling functor on a :class:`~repro.grid.timeloop.Timeloop` so the
registry is updated (and optionally emitted as ``heartbeat`` events)
once per time step without touching the sweeps themselves.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "RollingRate",
    "MetricsRegistry",
    "Heartbeat",
    "attach_heartbeat",
]


class Counter:
    """Monotonic accumulator (thread-safe)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-written value (thread-safe)."""

    def __init__(self) -> None:
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class RollingRate:
    """Cell-updates-per-second over a sliding window of samples.

    Each :meth:`sample` records ``(timestamp, cells_done_total)``;
    :meth:`mlups` reads the rate across the window — the live MLUP/s
    readout a long campaign watches for slowdowns (cache pollution,
    shrinking window, sick node).
    """

    def __init__(self, window: int = 32):
        if window < 2:
            raise ValueError("window must hold at least 2 samples")
        self._samples: deque[tuple[float, int]] = deque(maxlen=window)
        self._lock = threading.Lock()

    def sample(self, cells_total: int, *, now: float | None = None) -> None:
        with self._lock:
            self._samples.append(
                (time.perf_counter() if now is None else now, int(cells_total))
            )

    def mlups(self) -> float:
        """Window rate in MLUP/s (0 until the window has nonzero width).

        Zero-width windows are a real occurrence, not a corner case: the
        first sample, two samples landing in the same clock tick (coarse
        timers, injected ``now=`` values), or a heartbeat firing twice
        without measurable progress.  None of them may divide by zero —
        the rate reads over the *earliest sample whose timestamp
        strictly precedes the newest*, and reports 0.0 while the whole
        window is still degenerate.
        """
        with self._lock:
            if len(self._samples) < 2:
                return 0.0
            t1, c1 = self._samples[-1]
            t0 = c0 = None
            for ts, cs in self._samples:
                if ts < t1:
                    t0, c0 = ts, cs
                    break
        if t0 is None or t1 <= t0:
            return 0.0
        return (c1 - c0) / (t1 - t0) / 1.0e6


class MetricsRegistry:
    """Named counters and gauges of one run (plus one rolling rate)."""

    def __init__(self, *, window: int = 32):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self.rate = RollingRate(window=window)
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = Counter()
                self._counters[name] = c
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = Gauge()
                self._gauges[name] = g
            return g

    def snapshot(self) -> dict:
        """JSON-ready dump of every counter and gauge."""
        with self._lock:
            out = {name: c.value for name, c in self._counters.items()}
            out.update(
                {name: g.value for name, g in self._gauges.items()}
            )
        out["mlups_window"] = self.rate.mlups()
        return out


class Heartbeat:
    """Per-step sampler shared by the Timeloop functor and manual loops.

    Every :meth:`sample` advances the ``cells_updated`` counter by
    *cells_per_step*, feeds the rolling MLUP/s window, and (every
    *every*-th call) emits a ``heartbeat`` event with the current
    snapshot.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        cells_per_step: int,
        every: int = 1,
        events=None,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.registry = registry
        self.cells_per_step = int(cells_per_step)
        self.every = every
        self.events = events
        self._ticks = 0

    def sample(self, **extra) -> None:
        self._ticks += 1
        cells = self.registry.counter("cells_updated")
        cells.add(self.cells_per_step)
        self.registry.rate.sample(cells.value)
        self.registry.gauge("mlups").set(self.registry.rate.mlups())
        if self.events is not None and self._ticks % self.every == 0:
            self.events.emit(
                "heartbeat",
                step=self._ticks,
                cells_updated=cells.value,
                mlups=self.registry.rate.mlups(),
                **extra,
            )

    def __call__(self) -> None:
        self.sample()


def attach_heartbeat(
    timeloop,
    registry: MetricsRegistry,
    *,
    cells_per_step: int,
    every: int = 1,
    events=None,
    name: str = "heartbeat",
):
    """Register a :class:`Heartbeat` functor on a Timeloop.

    The functor runs last in every step (category ``"telemetry"``, so
    timing reports separate its — tiny — overhead from compute and
    communication).  Returns the functor handle.
    """
    hb = Heartbeat(
        registry, cells_per_step=cells_per_step, every=every, events=events
    )
    return timeloop.add(name, hb, category="telemetry")
