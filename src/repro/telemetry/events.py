"""Structured run events as JSON lines.

Every notable runtime occurrence — step progress, guard trips, rollbacks,
fault injections, checkpoint writes, campaign relaunches — is recorded as
one self-describing JSON object per line.  Each simulated rank writes its
own file (``events-rank0000.jsonl`` ...) so no locking crosses rank
boundaries, and rank 0 merges them into a single time-ordered stream
after the run, mirroring how the paper's production logs are collected
per node and merged by the job system.

Event schema (version ``1``) — every record carries exactly these keys:

``v``
    schema version (int),
``seq``
    per-log monotonically increasing sequence number,
``ts``
    UNIX timestamp (float seconds),
``rank``
    emitting simulated rank,
``level``
    severity name (``DEBUG`` / ``INFO`` / ``WARNING`` / ``ERROR``),
``kind``
    event type (``heartbeat``, ``guard_trip``, ``checkpoint``, ``fault``,
    ``restart``, ``log``, ...),
``data``
    kind-specific payload object.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path

from repro.telemetry.logsetup import RankTagFilter, current_rank

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "EventLogHandler",
    "attach_log_events",
    "read_events",
    "merge_event_logs",
    "validate_event",
]

EVENT_SCHEMA_VERSION = 1

_EVENT_KEYS = ("v", "seq", "ts", "rank", "level", "kind", "data")


def validate_event(record: dict) -> None:
    """Raise :class:`ValueError` unless *record* matches the v1 schema."""
    missing = [k for k in _EVENT_KEYS if k not in record]
    if missing:
        raise ValueError(f"event record lacks keys {missing}: {record}")
    if int(record["v"]) != EVENT_SCHEMA_VERSION:
        raise ValueError(f"unsupported event schema version {record['v']}")
    if not isinstance(record["kind"], str) or not record["kind"]:
        raise ValueError(f"event kind must be a non-empty string: {record}")
    if not isinstance(record["data"], dict):
        raise ValueError(f"event data must be an object: {record}")


class EventLog:
    """Append-only structured event sink (file-backed or in-memory).

    With a *directory*, events stream to
    ``<directory>/events-rank<NNNN>.jsonl`` (line-buffered, one JSON
    object per line); without one, they accumulate in :attr:`records`
    only — useful for tests and for in-process consumers.  Thread-safe:
    one lock guards the sequence counter and the write.
    """

    def __init__(self, directory=None, *, rank: int | None = None):
        self.rank = current_rank() if rank is None else int(rank)
        self.directory = Path(directory) if directory is not None else None
        self.records: list[dict] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._fh = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path = self.directory / f"events-rank{self.rank:04d}.jsonl"
            self._fh = open(self.path, "a", buffering=1)
        else:
            self.path = None

    def emit(self, kind: str, level: str = "INFO", /, **data) -> dict:
        """Record one event; returns the full record."""
        with self._lock:
            record = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "rank": self.rank,
                "level": level,
                "kind": kind,
                "data": data,
            }
            self._seq += 1
            self.records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record) + "\n")
        return record

    def count(self, kind: str | None = None) -> int:
        """Number of recorded events (optionally of one *kind*)."""
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r["kind"] == kind)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventLogHandler(logging.Handler):
    """Forwards stdlib log records into an :class:`EventLog`.

    Records become ``kind="log"`` events whose payload carries the logger
    name and rendered message, so library modules that only use
    ``logging`` still show up in the structured stream.
    """

    def __init__(self, event_log: EventLog, level: int = logging.INFO):
        super().__init__(level)
        self.event_log = event_log
        self.addFilter(RankTagFilter())

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.event_log.emit(
                "log",
                record.levelname,
                logger=record.name,
                message=record.getMessage(),
                origin_rank=getattr(record, "rank", 0),
            )
        except Exception:  # pragma: no cover - never break the caller
            self.handleError(record)


def attach_log_events(
    event_log: EventLog,
    *,
    logger: str = "repro",
    level: int = logging.INFO,
) -> EventLogHandler:
    """Capture a logger subtree into *event_log*; returns the handler.

    The caller detaches with ``logging.getLogger(logger).removeHandler``
    (or via :func:`detach`) when the run ends.
    """
    handler = EventLogHandler(event_log, level)
    target = logging.getLogger(logger)
    if target.level == logging.NOTSET or target.level > level:
        target.setLevel(level)
    target.addHandler(handler)
    return handler


def read_events(path) -> list[dict]:
    """Parse one JSON-lines event file, validating every record."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            validate_event(record)
            out.append(record)
    return out


def merge_event_logs(directory, *, out_name: str = "events-merged.jsonl") -> list[dict]:
    """Merge all per-rank event files of *directory* into one stream.

    Records are ordered by ``(ts, rank, seq)`` — wall-clock first, with
    the deterministic per-rank sequence breaking ties — and written to
    ``<directory>/<out_name>``.  Returns the merged list.
    """
    directory = Path(directory)
    records: list[dict] = []
    for path in sorted(directory.glob("events-rank*.jsonl")):
        records.extend(read_events(path))
    records.sort(key=lambda r: (r["ts"], r["rank"], r["seq"]))
    if out_name:
        with open(directory / out_name, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
    return records
