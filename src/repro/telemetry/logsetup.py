"""Rank-tagged stdlib ``logging`` integration.

Library modules across ``repro`` use plain module-level
``logging.getLogger(__name__)`` loggers and **never** call
``logging.basicConfig`` — configuring output is the application's choice.
This module provides that configuration surface:

* :func:`current_rank` — the simulated MPI rank of the calling thread
  (parsed from the ``simmpi-rank-N`` thread names that
  :func:`repro.simmpi.runtime.run_spmd` assigns),
* :func:`rank_formatter` / :class:`RankTagFilter` — a formatter whose
  records carry a ``[rank N]`` tag,
* :func:`configure_logging` — idempotent root setup for applications,
  demos and tests.
"""

from __future__ import annotations

import logging
import threading

__all__ = [
    "current_rank",
    "RankTagFilter",
    "rank_formatter",
    "configure_logging",
]

#: Logger namespace all library modules hang under.
ROOT_LOGGER = "repro"

_RANK_PREFIX = "simmpi-rank-"

LOG_FORMAT = "%(asctime)s %(levelname)-8s [rank %(rank)s] %(name)s: %(message)s"


def current_rank(default: int = 0) -> int:
    """Simulated MPI rank of the calling thread.

    :func:`repro.simmpi.runtime.run_spmd` names its rank threads
    ``simmpi-rank-<N>``; outside an SPMD region (the launcher thread,
    tests, single-process runs) the *default* is returned.
    """
    name = threading.current_thread().name
    if name.startswith(_RANK_PREFIX):
        try:
            return int(name[len(_RANK_PREFIX):])
        except ValueError:
            pass
    return default


class RankTagFilter(logging.Filter):
    """Injects the calling thread's simulated rank as ``record.rank``."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "rank"):
            record.rank = current_rank()
        return True


def rank_formatter(fmt: str = LOG_FORMAT) -> logging.Formatter:
    """Formatter rendering the ``[rank N]`` tag of :class:`RankTagFilter`."""
    return logging.Formatter(fmt)


def configure_logging(
    level: int = logging.INFO,
    *,
    stream=None,
    logger: str = ROOT_LOGGER,
) -> logging.Logger:
    """Attach a rank-tagged stream handler to the ``repro`` logger.

    Idempotent: an existing handler installed by a previous call is
    replaced, not duplicated, so repeated test setup stays clean.  Library
    code must not call this — only applications, examples and tests do.
    """
    root = logging.getLogger(logger)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(rank_formatter())
    handler.addFilter(RankTagFilter())
    handler._repro_telemetry = True
    root.addHandler(handler)
    return root
