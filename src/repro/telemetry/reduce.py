"""Cross-rank reduction of timing trees.

waLBerla reduces each rank's ``TimingTree`` over the whole communicator so
that a 262,144-core run yields *one* per-functor breakdown with min / avg
/ max over ranks.  Here the per-rank trees travel through the same
pairwise log2(P) schedule the mesh-output pipeline uses
(:func:`repro.simmpi.reduce_tree.run_pairwise_reduction`), so the
reduction itself exercises the paper's communication structure.

A **reduced tree** is a plain nested dict; every node carries:

``count``
    total completed calls over all ranks,
``total``
    summed wall seconds over all ranks,
``call_min`` / ``call_max``
    extremal single-call durations anywhere,
``rank_min`` / ``rank_max`` / ``rank_avg``
    extremal / mean *per-rank totals* — the load-imbalance readout,
``n_ranks``
    ranks that contributed the scope,
``children``
    nested sub-scopes.
"""

from __future__ import annotations

from functools import reduce as _functools_reduce

from repro.simmpi.reduce_tree import run_pairwise_reduction

__all__ = [
    "as_reduced",
    "merge_reduced",
    "accumulate_reduced",
    "merge_rank_trees",
    "reduce_tree_over_ranks",
]

#: Message tag of the timing-tree reduction rounds.
_TAG_TIMING = -202


def as_reduced(tree_dict: dict) -> dict:
    """Convert one rank's ``TimingTree.to_dict()`` into a reduced node."""
    count = int(tree_dict.get("count", 0))
    total = float(tree_dict.get("total", 0.0))
    return {
        "name": tree_dict.get("name", ""),
        "count": count,
        "total": total,
        "call_min": float(tree_dict.get("min", 0.0)),
        "call_max": float(tree_dict.get("max", 0.0)),
        "rank_min": total,
        "rank_max": total,
        "rank_avg": total,
        "n_ranks": 1,
        "children": {
            k: as_reduced(v)
            for k, v in tree_dict.get("children", {}).items()
        },
    }


def _combine(a: dict, b: dict, *, across_ranks: bool) -> dict:
    n_ranks = a["n_ranks"] + b["n_ranks"] if across_ranks else max(
        a["n_ranks"], b["n_ranks"]
    )
    if across_ranks:
        rank_min = min(a["rank_min"], b["rank_min"])
        rank_max = max(a["rank_max"], b["rank_max"])
        rank_total = a["rank_avg"] * a["n_ranks"] + b["rank_avg"] * b["n_ranks"]
    else:
        # serial accumulation (e.g. campaign chunks): per-rank totals add
        rank_min = a["rank_min"] + b["rank_min"]
        rank_max = a["rank_max"] + b["rank_max"]
        rank_total = (a["rank_avg"] + b["rank_avg"]) * n_ranks
    out = {
        "name": a["name"] or b["name"],
        "count": a["count"] + b["count"],
        "total": a["total"] + b["total"],
        "call_min": min(a["call_min"], b["call_min"])
        if a["count"] and b["count"]
        else (a["call_min"] if a["count"] else b["call_min"]),
        "call_max": max(a["call_max"], b["call_max"]),
        "rank_min": rank_min,
        "rank_max": rank_max,
        "rank_avg": rank_total / n_ranks if n_ranks else 0.0,
        "n_ranks": n_ranks,
        "children": {},
    }
    names = list(a["children"]) + [
        k for k in b["children"] if k not in a["children"]
    ]
    for name in names:
        ca, cb = a["children"].get(name), b["children"].get(name)
        if ca is None:
            out["children"][name] = cb
        elif cb is None:
            out["children"][name] = ca
        else:
            out["children"][name] = _combine(ca, cb, across_ranks=across_ranks)
    return out


def merge_reduced(a: dict, b: dict) -> dict:
    """Combine two reduced nodes from *different* ranks (associative)."""
    return _combine(a, b, across_ranks=True)


def accumulate_reduced(a: dict, b: dict) -> dict:
    """Combine two reduced trees of the *same* ranks across run chunks.

    Counts and totals add; ``n_ranks`` stays put, and the per-rank
    extremes add pessimistically (a rank at the minimum of every chunk
    cannot have spent less than the summed minima).
    """
    return _combine(a, b, across_ranks=False)


def merge_rank_trees(tree_dicts: list[dict]) -> dict:
    """Serially reduce a list of per-rank ``TimingTree.to_dict()`` dumps."""
    if not tree_dicts:
        raise ValueError("need at least one tree")
    return _functools_reduce(merge_reduced, (as_reduced(t) for t in tree_dicts))


def reduce_tree_over_ranks(comm, tree, *, tag: int = _TAG_TIMING) -> dict | None:
    """Reduce every rank's *tree* to one merged breakdown on rank 0.

    *tree* is a :class:`~repro.telemetry.timing.TimingTree` or an
    equivalent ``to_dict()`` dump.  Runs the pairwise log2(P) schedule of
    :mod:`repro.simmpi.reduce_tree`; returns the reduced dict on rank 0
    and ``None`` on every other rank.
    """
    tree_dict = tree.to_dict() if hasattr(tree, "to_dict") else tree
    return run_pairwise_reduction(
        comm, as_reduced(tree_dict), merge_reduced, tag=tag
    )
