"""Machine-readable run reports (versioned JSON performance summaries).

The paper compares configurations through standardized throughput numbers
(MLUP/s per figure, per machine); phase-field benchmarking follow-ups
compare *codes* the same way.  A :data:`RUN_REPORT_VERSION` JSON document
is this repo's interchange format: every benchmark and every telemetry-
enabled run emits one, and the CI pipeline archives them as the
performance trajectory (``BENCH_*.json``).

A report is built with :func:`build_run_report`, checked with
:func:`validate_run_report` (pure-stdlib; :data:`RUN_REPORT_SCHEMA` is
the equivalent JSON-Schema document for external tooling) and persisted
with :func:`write_run_report`.  ``python -m repro.telemetry.report
FILE...`` validates existing reports, e.g. in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = [
    "RUN_REPORT_VERSION",
    "RUN_REPORT_SCHEMA",
    "config_hash",
    "build_run_report",
    "validate_run_report",
    "write_run_report",
    "load_run_report",
    "summarize_run_report",
]

RUN_REPORT_VERSION = 1

_SCHEMA_NAME = "repro.run_report"

#: JSON-Schema document of the report format, for external validators.
RUN_REPORT_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro run report",
    "type": "object",
    "required": [
        "schema", "version", "run_id", "created", "config", "config_hash",
        "grid", "ranks", "steps", "wall_seconds", "mlups", "timings",
        "counters", "guards", "faults", "events",
    ],
    "properties": {
        "schema": {"const": _SCHEMA_NAME},
        "version": {"const": RUN_REPORT_VERSION},
        "run_id": {"type": "string", "minLength": 1},
        "created": {"type": "number"},
        "config": {"type": "object"},
        "config_hash": {"type": "string", "pattern": "^[0-9a-f]{12}$"},
        "grid": {
            "type": "object",
            "required": ["shape", "cells"],
            "properties": {
                "shape": {"type": "array", "items": {"type": "integer"}},
                "cells": {"type": "integer", "minimum": 0},
            },
        },
        "ranks": {"type": "integer", "minimum": 1},
        "steps": {"type": "integer", "minimum": 0},
        "wall_seconds": {"type": "number", "minimum": 0},
        "mlups": {"type": "number", "minimum": 0},
        "timings": {"type": ["object", "null"]},
        "counters": {"type": "object"},
        "guards": {
            "type": "object",
            "required": ["rollbacks", "restarts", "violations"],
        },
        "faults": {
            "type": "object",
            "required": ["fired", "pending"],
        },
        "events": {
            "type": "object",
            "required": ["count", "path"],
        },
        "elastic": {
            "type": "object",
            "required": [
                "rank_failures", "shrinks", "final_ranks",
                "io_retries", "checkpoints_skipped",
            ],
            "properties": {
                "rank_failures": {"type": "integer", "minimum": 0},
                "shrinks": {"type": "integer", "minimum": 0},
                "final_ranks": {"type": "integer", "minimum": 1},
                "io_retries": {"type": "integer", "minimum": 0},
                "checkpoints_skipped": {"type": "integer", "minimum": 0},
            },
        },
        "liveness": {
            "type": "object",
            "required": [
                "hangs_detected", "stalls_injected",
                "transport_degradations", "shm_reclaimed",
                "deadlines_enabled", "watchdog_enabled",
            ],
            "properties": {
                "hangs_detected": {"type": "integer", "minimum": 0},
                "stalls_injected": {"type": "integer", "minimum": 0},
                "transport_degradations": {"type": "integer", "minimum": 0},
                "shm_reclaimed": {"type": "integer", "minimum": 0},
                "deadlines_enabled": {"type": "boolean"},
                "watchdog_enabled": {"type": "boolean"},
            },
        },
        "tracing": {
            "type": "object",
            "required": ["enabled", "spans", "dropped", "overlap",
                         "imbalance"],
            "properties": {
                "enabled": {"type": "boolean"},
                "spans": {"type": "integer", "minimum": 0},
                "dropped": {"type": "integer", "minimum": 0},
                "sample": {"type": "integer", "minimum": 1},
                "overlap": {
                    "type": "object",
                    "required": ["exchange_seconds", "hidden_seconds",
                                 "efficiency"],
                },
                "imbalance": {
                    "type": "object",
                    "required": ["per_rank", "max", "avg", "stddev",
                                 "ratio"],
                },
                "pipe_latency": {"type": ["object", "null"]},
            },
        },
        "series": {"type": "object"},
    },
}


def config_hash(config: dict) -> str:
    """Short stable hash of a JSON-serializable configuration dict.

    Canonical JSON (sorted keys, no whitespace variation) hashed with
    SHA-256 and truncated to 12 hex digits — enough to tell two run
    configurations apart in a trajectory of reports.
    """
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def build_run_report(
    *,
    run_id: str,
    config: dict,
    grid_shape,
    n_ranks: int,
    steps: int,
    wall_seconds: float,
    mlups: float,
    timings: dict | None = None,
    counters: dict | None = None,
    guard_stats: dict | None = None,
    fault_stats: dict | None = None,
    event_stats: dict | None = None,
    elastic_stats: dict | None = None,
    liveness_stats: dict | None = None,
    tracing_stats: dict | None = None,
    series: dict | None = None,
    created: float | None = None,
) -> dict:
    """Assemble a schema-valid run report dict.

    *timings* is a merged reduced timing tree
    (:mod:`repro.telemetry.reduce`) or a
    :meth:`~repro.grid.timeloop.Timeloop.timing_report` dump; *series*
    carries optional figure data (e.g. the Fig. 6 ladder table).
    *elastic_stats* — rank-failure/shrink/I-O-retry accounting from an
    elastic campaign — adds the optional ``elastic`` section.
    *liveness_stats* — hang-detection and degradation accounting from
    the deadline/watchdog layer — adds the optional ``liveness``
    section.  *tracing_stats* — the span-derived overlap / imbalance /
    pipe-latency analyses of :func:`repro.telemetry.spans.tracing_section`
    — adds the optional ``tracing`` section.  *created* defaults to the
    current time — pass a fixed value for byte-reproducible reports.
    """
    shape = [int(s) for s in grid_shape]
    cells = 1
    for s in shape:
        cells *= s
    report = {
        "schema": _SCHEMA_NAME,
        "version": RUN_REPORT_VERSION,
        "run_id": str(run_id),
        "created": time.time() if created is None else float(created),
        "config": config,
        "config_hash": config_hash(config),
        "grid": {"shape": shape, "cells": cells},
        "ranks": int(n_ranks),
        "steps": int(steps),
        "wall_seconds": float(wall_seconds),
        "mlups": float(mlups),
        "timings": timings,
        "counters": counters or {},
        "guards": {
            "rollbacks": 0, "restarts": 0, "violations": [],
            **(guard_stats or {}),
        },
        "faults": {"fired": [], "pending": 0, **(fault_stats or {})},
        "events": {"count": 0, "path": None, **(event_stats or {})},
    }
    if elastic_stats is not None:
        report["elastic"] = {
            "rank_failures": 0, "shrinks": 0, "final_ranks": int(n_ranks),
            "io_retries": 0, "checkpoints_skipped": 0, **elastic_stats,
        }
    if liveness_stats is not None:
        report["liveness"] = {
            "hangs_detected": 0, "stalls_injected": 0,
            "transport_degradations": 0, "shm_reclaimed": 0,
            "deadlines_enabled": False, "watchdog_enabled": False,
            **liveness_stats,
        }
    if tracing_stats is not None:
        report["tracing"] = {
            "enabled": True, "spans": 0, "dropped": 0, "sample": 1,
            "overlap": {"exchange_seconds": 0.0, "hidden_seconds": 0.0,
                        "efficiency": 0.0},
            "imbalance": {"per_rank": {}, "max": 0.0, "min": 0.0,
                          "avg": 0.0, "stddev": 0.0, "ratio": 0.0},
            "pipe_latency": None,
            **tracing_stats,
        }
    if series is not None:
        report["series"] = series
    validate_run_report(report)
    return report


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"invalid run report: {msg}")


def validate_run_report(report: dict) -> None:
    """Raise :class:`ValueError` unless *report* matches the v1 schema.

    Pure-stdlib structural validation, equivalent to checking against
    :data:`RUN_REPORT_SCHEMA` — kept dependency-free so the library and
    CI can validate without ``jsonschema`` installed.
    """
    _require(isinstance(report, dict), "not an object")
    for key in RUN_REPORT_SCHEMA["required"]:
        _require(key in report, f"missing key {key!r}")
    _require(report["schema"] == _SCHEMA_NAME,
             f"schema is {report['schema']!r}, expected {_SCHEMA_NAME!r}")
    _require(report["version"] == RUN_REPORT_VERSION,
             f"unsupported version {report['version']!r}")
    _require(isinstance(report["run_id"], str) and report["run_id"],
             "run_id must be a non-empty string")
    _require(isinstance(report["created"], (int, float)),
             "created must be a number")
    _require(isinstance(report["config"], dict), "config must be an object")
    ch = report["config_hash"]
    _require(
        isinstance(ch, str) and len(ch) == 12
        and all(c in "0123456789abcdef" for c in ch),
        "config_hash must be 12 lowercase hex digits",
    )
    _require(ch == config_hash(report["config"]),
             "config_hash does not match config")
    grid = report["grid"]
    _require(isinstance(grid, dict) and "shape" in grid and "cells" in grid,
             "grid must carry shape and cells")
    _require(
        isinstance(grid["shape"], list)
        and all(isinstance(s, int) for s in grid["shape"]),
        "grid.shape must be a list of integers",
    )
    for key, low in (("ranks", 1), ("steps", 0)):
        _require(isinstance(report[key], int) and report[key] >= low,
                 f"{key} must be an integer >= {low}")
    for key in ("wall_seconds", "mlups"):
        _require(
            isinstance(report[key], (int, float)) and report[key] >= 0,
            f"{key} must be a non-negative number",
        )
    _require(report["timings"] is None or isinstance(report["timings"], dict),
             "timings must be an object or null")
    _require(isinstance(report["counters"], dict),
             "counters must be an object")
    guards = report["guards"]
    _require(
        isinstance(guards, dict)
        and all(k in guards for k in ("rollbacks", "restarts", "violations")),
        "guards must carry rollbacks, restarts and violations",
    )
    faults = report["faults"]
    _require(
        isinstance(faults, dict) and "fired" in faults and "pending" in faults,
        "faults must carry fired and pending",
    )
    events = report["events"]
    _require(
        isinstance(events, dict) and "count" in events and "path" in events,
        "events must carry count and path",
    )
    if "elastic" in report:
        elastic = report["elastic"]
        _require(isinstance(elastic, dict), "elastic must be an object")
        for key in ("rank_failures", "shrinks", "final_ranks",
                    "io_retries", "checkpoints_skipped"):
            _require(
                key in elastic
                and isinstance(elastic[key], int) and elastic[key] >= 0,
                f"elastic.{key} must be a non-negative integer",
            )
    if "liveness" in report:
        liveness = report["liveness"]
        _require(isinstance(liveness, dict), "liveness must be an object")
        for key in ("hangs_detected", "stalls_injected",
                    "transport_degradations", "shm_reclaimed"):
            _require(
                key in liveness
                and isinstance(liveness[key], int) and liveness[key] >= 0,
                f"liveness.{key} must be a non-negative integer",
            )
        for key in ("deadlines_enabled", "watchdog_enabled"):
            _require(
                key in liveness and isinstance(liveness[key], bool),
                f"liveness.{key} must be a boolean",
            )
    if "tracing" in report:
        tracing = report["tracing"]
        _require(isinstance(tracing, dict), "tracing must be an object")
        _require(
            "enabled" in tracing and isinstance(tracing["enabled"], bool),
            "tracing.enabled must be a boolean",
        )
        for key in ("spans", "dropped"):
            _require(
                key in tracing
                and isinstance(tracing[key], int) and tracing[key] >= 0,
                f"tracing.{key} must be a non-negative integer",
            )
        overlap = tracing.get("overlap")
        _require(isinstance(overlap, dict), "tracing.overlap must be an object")
        for key in ("exchange_seconds", "hidden_seconds", "efficiency"):
            _require(
                isinstance(overlap.get(key), (int, float))
                and overlap[key] >= 0,
                f"tracing.overlap.{key} must be a non-negative number",
            )
        _require(overlap["efficiency"] <= 1.0 + 1e-9,
                 "tracing.overlap.efficiency must be <= 1")
        imbalance = tracing.get("imbalance")
        _require(isinstance(imbalance, dict),
                 "tracing.imbalance must be an object")
        _require(isinstance(imbalance.get("per_rank"), dict),
                 "tracing.imbalance.per_rank must be an object")
        for key in ("max", "avg", "stddev", "ratio"):
            _require(
                isinstance(imbalance.get(key), (int, float))
                and imbalance[key] >= 0,
                f"tracing.imbalance.{key} must be a non-negative number",
            )
        _require(
            tracing.get("pipe_latency") is None
            or isinstance(tracing["pipe_latency"], dict),
            "tracing.pipe_latency must be an object or null",
        )
    if "series" in report:
        _require(isinstance(report["series"], dict),
                 "series must be an object")


def write_run_report(path, report: dict) -> Path:
    """Validate and persist a report (atomic temp-file + rename)."""
    validate_run_report(report)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_run_report(path) -> dict:
    """Read and validate a report file."""
    report = json.loads(Path(path).read_text())
    validate_run_report(report)
    return report


def _flatten_timings(timings: dict) -> list[tuple[str, dict]]:
    """``(path, stats)`` rows from either timing representation.

    Handles both the cross-rank-reduced tree (nested ``children`` dicts)
    and a :meth:`~repro.grid.timeloop.Timeloop.timing_report` dump
    (flat ``functors`` table).
    """
    rows: list[tuple[str, dict]] = []
    if "functors" in timings:
        for name, stats in timings["functors"].items():
            rows.append((name, stats))
        return rows

    def walk(node: dict, prefix: str) -> None:
        for name, child in node.get("children", {}).items():
            path = f"{prefix}/{name}" if prefix else name
            rows.append((path, child))
            walk(child, path)

    walk(timings, "")
    return rows


def summarize_run_report(report: dict) -> list[str]:
    """Human-readable summary lines of a validated run report.

    Top timing scopes by total seconds (with per-rank imbalance when the
    reduced tree carries it), counters, and one line per optional
    section (guards / faults / elastic / liveness / tracing) — the
    ``--summary`` mode of the CLI.
    """
    lines = [
        f"run {report['run_id']}  config {report['config_hash']}  "
        f"ranks {report['ranks']}  steps {report['steps']}  "
        f"mlups {report['mlups']:.3f}  wall {report['wall_seconds']:.3f}s",
    ]
    timings = report.get("timings")
    if timings:
        rows = sorted(
            _flatten_timings(timings),
            key=lambda r: -float(r[1].get("total", 0.0)),
        )
        lines.append("timing scopes (top by total seconds):")
        lines.append(
            f"  {'scope':<28}{'count':>8}{'total':>10}{'avg':>10}"
            f"{'rank max/avg':>14}"
        )
        for path, stats in rows[:12]:
            count = int(stats.get("count", stats.get("calls", 0)))
            total = float(stats.get("total", 0.0))
            avg = total / count if count else 0.0
            rank_avg = float(stats.get("rank_avg", 0.0))
            skew = (
                f"{float(stats.get('rank_max', 0.0)) / rank_avg:>13.2f}x"
                if rank_avg > 0 else f"{'-':>14}"
            )
            lines.append(
                f"  {path:<28}{count:>8}{total:>10.4f}{avg:>10.6f}{skew}"
            )
    counters = report.get("counters") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            shown = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<28}{shown:>16}")
    guards = report["guards"]
    lines.append(
        f"guards: rollbacks {guards['rollbacks']}  "
        f"restarts {guards['restarts']}  "
        f"violations {len(guards['violations'])}"
    )
    faults = report["faults"]
    lines.append(
        f"faults: fired {len(faults['fired'])}  pending {faults['pending']}"
    )
    if "elastic" in report:
        e = report["elastic"]
        lines.append(
            f"elastic: rank_failures {e['rank_failures']}  "
            f"shrinks {e['shrinks']}  final_ranks {e['final_ranks']}  "
            f"io_retries {e['io_retries']}  "
            f"checkpoints_skipped {e['checkpoints_skipped']}"
        )
    if "liveness" in report:
        lv = report["liveness"]
        lines.append(
            f"liveness: hangs {lv['hangs_detected']}  "
            f"stalls {lv['stalls_injected']}  "
            f"degradations {lv['transport_degradations']}  "
            f"shm_reclaimed {lv['shm_reclaimed']}  "
            f"deadlines {'on' if lv['deadlines_enabled'] else 'off'}  "
            f"watchdog {'on' if lv['watchdog_enabled'] else 'off'}"
        )
    if "tracing" in report:
        tr = report["tracing"]
        overlap = tr["overlap"]
        imbalance = tr["imbalance"]
        lines.append(
            f"tracing: spans {tr['spans']}  dropped {tr['dropped']}  "
            f"overlap efficiency {overlap['efficiency']:.3f} "
            f"({overlap['hidden_seconds']:.4f}s of "
            f"{overlap['exchange_seconds']:.4f}s exchange hidden)  "
            f"step imbalance {imbalance['ratio']:.2f}x"
        )
    return lines


def _main(argv: list[str]) -> int:
    summary = False
    files: list[str] = []
    for arg in argv:
        if arg == "--summary":
            summary = True
        elif arg in ("-h", "--help"):
            files = []
            break
        else:
            files.append(arg)
    if not files:
        print("usage: python -m repro.telemetry.report [--summary] "
              "FILE [FILE...]\n"
              "Validate run-report JSON files against schema "
              f"{_SCHEMA_NAME} v{RUN_REPORT_VERSION}; --summary prints a "
              "human-readable table per report instead of one ok-line.")
        return 0 if argv else 2
    failed = 0
    for name in files:
        try:
            report = load_run_report(name)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL {name}: {exc}")
            failed += 1
        else:
            if summary:
                print(f"=== {name} ===")
                print("\n".join(summarize_run_report(report)))
            else:
                print(f"ok   {name}: run_id={report['run_id']} "
                      f"mlups={report['mlups']:.3f} ranks={report['ranks']}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main(sys.argv[1:]))
