"""Machine-readable run reports (versioned JSON performance summaries).

The paper compares configurations through standardized throughput numbers
(MLUP/s per figure, per machine); phase-field benchmarking follow-ups
compare *codes* the same way.  A :data:`RUN_REPORT_VERSION` JSON document
is this repo's interchange format: every benchmark and every telemetry-
enabled run emits one, and the CI pipeline archives them as the
performance trajectory (``BENCH_*.json``).

A report is built with :func:`build_run_report`, checked with
:func:`validate_run_report` (pure-stdlib; :data:`RUN_REPORT_SCHEMA` is
the equivalent JSON-Schema document for external tooling) and persisted
with :func:`write_run_report`.  ``python -m repro.telemetry.report
FILE...`` validates existing reports, e.g. in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = [
    "RUN_REPORT_VERSION",
    "RUN_REPORT_SCHEMA",
    "config_hash",
    "build_run_report",
    "validate_run_report",
    "write_run_report",
    "load_run_report",
]

RUN_REPORT_VERSION = 1

_SCHEMA_NAME = "repro.run_report"

#: JSON-Schema document of the report format, for external validators.
RUN_REPORT_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro run report",
    "type": "object",
    "required": [
        "schema", "version", "run_id", "created", "config", "config_hash",
        "grid", "ranks", "steps", "wall_seconds", "mlups", "timings",
        "counters", "guards", "faults", "events",
    ],
    "properties": {
        "schema": {"const": _SCHEMA_NAME},
        "version": {"const": RUN_REPORT_VERSION},
        "run_id": {"type": "string", "minLength": 1},
        "created": {"type": "number"},
        "config": {"type": "object"},
        "config_hash": {"type": "string", "pattern": "^[0-9a-f]{12}$"},
        "grid": {
            "type": "object",
            "required": ["shape", "cells"],
            "properties": {
                "shape": {"type": "array", "items": {"type": "integer"}},
                "cells": {"type": "integer", "minimum": 0},
            },
        },
        "ranks": {"type": "integer", "minimum": 1},
        "steps": {"type": "integer", "minimum": 0},
        "wall_seconds": {"type": "number", "minimum": 0},
        "mlups": {"type": "number", "minimum": 0},
        "timings": {"type": ["object", "null"]},
        "counters": {"type": "object"},
        "guards": {
            "type": "object",
            "required": ["rollbacks", "restarts", "violations"],
        },
        "faults": {
            "type": "object",
            "required": ["fired", "pending"],
        },
        "events": {
            "type": "object",
            "required": ["count", "path"],
        },
        "elastic": {
            "type": "object",
            "required": [
                "rank_failures", "shrinks", "final_ranks",
                "io_retries", "checkpoints_skipped",
            ],
            "properties": {
                "rank_failures": {"type": "integer", "minimum": 0},
                "shrinks": {"type": "integer", "minimum": 0},
                "final_ranks": {"type": "integer", "minimum": 1},
                "io_retries": {"type": "integer", "minimum": 0},
                "checkpoints_skipped": {"type": "integer", "minimum": 0},
            },
        },
        "liveness": {
            "type": "object",
            "required": [
                "hangs_detected", "stalls_injected",
                "transport_degradations", "shm_reclaimed",
                "deadlines_enabled", "watchdog_enabled",
            ],
            "properties": {
                "hangs_detected": {"type": "integer", "minimum": 0},
                "stalls_injected": {"type": "integer", "minimum": 0},
                "transport_degradations": {"type": "integer", "minimum": 0},
                "shm_reclaimed": {"type": "integer", "minimum": 0},
                "deadlines_enabled": {"type": "boolean"},
                "watchdog_enabled": {"type": "boolean"},
            },
        },
        "series": {"type": "object"},
    },
}


def config_hash(config: dict) -> str:
    """Short stable hash of a JSON-serializable configuration dict.

    Canonical JSON (sorted keys, no whitespace variation) hashed with
    SHA-256 and truncated to 12 hex digits — enough to tell two run
    configurations apart in a trajectory of reports.
    """
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def build_run_report(
    *,
    run_id: str,
    config: dict,
    grid_shape,
    n_ranks: int,
    steps: int,
    wall_seconds: float,
    mlups: float,
    timings: dict | None = None,
    counters: dict | None = None,
    guard_stats: dict | None = None,
    fault_stats: dict | None = None,
    event_stats: dict | None = None,
    elastic_stats: dict | None = None,
    liveness_stats: dict | None = None,
    series: dict | None = None,
    created: float | None = None,
) -> dict:
    """Assemble a schema-valid run report dict.

    *timings* is a merged reduced timing tree
    (:mod:`repro.telemetry.reduce`) or a
    :meth:`~repro.grid.timeloop.Timeloop.timing_report` dump; *series*
    carries optional figure data (e.g. the Fig. 6 ladder table).
    *elastic_stats* — rank-failure/shrink/I-O-retry accounting from an
    elastic campaign — adds the optional ``elastic`` section.
    *liveness_stats* — hang-detection and degradation accounting from
    the deadline/watchdog layer — adds the optional ``liveness``
    section.  *created* defaults to the current time — pass a fixed
    value for byte-reproducible reports.
    """
    shape = [int(s) for s in grid_shape]
    cells = 1
    for s in shape:
        cells *= s
    report = {
        "schema": _SCHEMA_NAME,
        "version": RUN_REPORT_VERSION,
        "run_id": str(run_id),
        "created": time.time() if created is None else float(created),
        "config": config,
        "config_hash": config_hash(config),
        "grid": {"shape": shape, "cells": cells},
        "ranks": int(n_ranks),
        "steps": int(steps),
        "wall_seconds": float(wall_seconds),
        "mlups": float(mlups),
        "timings": timings,
        "counters": counters or {},
        "guards": {
            "rollbacks": 0, "restarts": 0, "violations": [],
            **(guard_stats or {}),
        },
        "faults": {"fired": [], "pending": 0, **(fault_stats or {})},
        "events": {"count": 0, "path": None, **(event_stats or {})},
    }
    if elastic_stats is not None:
        report["elastic"] = {
            "rank_failures": 0, "shrinks": 0, "final_ranks": int(n_ranks),
            "io_retries": 0, "checkpoints_skipped": 0, **elastic_stats,
        }
    if liveness_stats is not None:
        report["liveness"] = {
            "hangs_detected": 0, "stalls_injected": 0,
            "transport_degradations": 0, "shm_reclaimed": 0,
            "deadlines_enabled": False, "watchdog_enabled": False,
            **liveness_stats,
        }
    if series is not None:
        report["series"] = series
    validate_run_report(report)
    return report


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"invalid run report: {msg}")


def validate_run_report(report: dict) -> None:
    """Raise :class:`ValueError` unless *report* matches the v1 schema.

    Pure-stdlib structural validation, equivalent to checking against
    :data:`RUN_REPORT_SCHEMA` — kept dependency-free so the library and
    CI can validate without ``jsonschema`` installed.
    """
    _require(isinstance(report, dict), "not an object")
    for key in RUN_REPORT_SCHEMA["required"]:
        _require(key in report, f"missing key {key!r}")
    _require(report["schema"] == _SCHEMA_NAME,
             f"schema is {report['schema']!r}, expected {_SCHEMA_NAME!r}")
    _require(report["version"] == RUN_REPORT_VERSION,
             f"unsupported version {report['version']!r}")
    _require(isinstance(report["run_id"], str) and report["run_id"],
             "run_id must be a non-empty string")
    _require(isinstance(report["created"], (int, float)),
             "created must be a number")
    _require(isinstance(report["config"], dict), "config must be an object")
    ch = report["config_hash"]
    _require(
        isinstance(ch, str) and len(ch) == 12
        and all(c in "0123456789abcdef" for c in ch),
        "config_hash must be 12 lowercase hex digits",
    )
    _require(ch == config_hash(report["config"]),
             "config_hash does not match config")
    grid = report["grid"]
    _require(isinstance(grid, dict) and "shape" in grid and "cells" in grid,
             "grid must carry shape and cells")
    _require(
        isinstance(grid["shape"], list)
        and all(isinstance(s, int) for s in grid["shape"]),
        "grid.shape must be a list of integers",
    )
    for key, low in (("ranks", 1), ("steps", 0)):
        _require(isinstance(report[key], int) and report[key] >= low,
                 f"{key} must be an integer >= {low}")
    for key in ("wall_seconds", "mlups"):
        _require(
            isinstance(report[key], (int, float)) and report[key] >= 0,
            f"{key} must be a non-negative number",
        )
    _require(report["timings"] is None or isinstance(report["timings"], dict),
             "timings must be an object or null")
    _require(isinstance(report["counters"], dict),
             "counters must be an object")
    guards = report["guards"]
    _require(
        isinstance(guards, dict)
        and all(k in guards for k in ("rollbacks", "restarts", "violations")),
        "guards must carry rollbacks, restarts and violations",
    )
    faults = report["faults"]
    _require(
        isinstance(faults, dict) and "fired" in faults and "pending" in faults,
        "faults must carry fired and pending",
    )
    events = report["events"]
    _require(
        isinstance(events, dict) and "count" in events and "path" in events,
        "events must carry count and path",
    )
    if "elastic" in report:
        elastic = report["elastic"]
        _require(isinstance(elastic, dict), "elastic must be an object")
        for key in ("rank_failures", "shrinks", "final_ranks",
                    "io_retries", "checkpoints_skipped"):
            _require(
                key in elastic
                and isinstance(elastic[key], int) and elastic[key] >= 0,
                f"elastic.{key} must be a non-negative integer",
            )
    if "liveness" in report:
        liveness = report["liveness"]
        _require(isinstance(liveness, dict), "liveness must be an object")
        for key in ("hangs_detected", "stalls_injected",
                    "transport_degradations", "shm_reclaimed"):
            _require(
                key in liveness
                and isinstance(liveness[key], int) and liveness[key] >= 0,
                f"liveness.{key} must be a non-negative integer",
            )
        for key in ("deadlines_enabled", "watchdog_enabled"):
            _require(
                key in liveness and isinstance(liveness[key], bool),
                f"liveness.{key} must be a boolean",
            )
    if "series" in report:
        _require(isinstance(report["series"], dict),
                 "series must be an object")


def write_run_report(path, report: dict) -> Path:
    """Validate and persist a report (atomic temp-file + rename)."""
    validate_run_report(report)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_run_report(path) -> dict:
    """Read and validate a report file."""
    report = json.loads(Path(path).read_text())
    validate_run_report(report)
    return report


def _main(argv: list[str]) -> int:  # pragma: no cover - exercised by CI
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.telemetry.report FILE [FILE...]\n"
              "Validate run-report JSON files against schema "
              f"{_SCHEMA_NAME} v{RUN_REPORT_VERSION}.")
        return 0 if argv else 2
    failed = 0
    for name in argv:
        try:
            report = load_run_report(name)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL {name}: {exc}")
            failed += 1
        else:
            print(f"ok   {name}: run_id={report['run_id']} "
                  f"mlups={report['mlups']:.3f} ranks={report['ranks']}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main(sys.argv[1:]))
