"""Run-level telemetry configuration.

:class:`RunTelemetry` is the one knob a driver exposes: pass an instance
to :meth:`repro.distributed.solver.DistributedSimulation.run` (or
:func:`repro.resilience.campaign.run_campaign`) and the run collects a
per-rank :class:`~repro.telemetry.timing.TimingTree`, streams structured
events, samples counters, reduces the trees across ranks and emits a
:mod:`~repro.telemetry.report` JSON summary.  Pass ``None`` (the
default) and the hot path runs exactly as before — telemetry is strictly
opt-in, so it cannot regress an untelemetered benchmark.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.events import EventLog, attach_log_events, merge_event_logs

__all__ = ["RunTelemetry"]


@dataclass
class RunTelemetry:
    """Configuration of one telemetry-enabled run.

    Parameters
    ----------
    directory:
        Where per-rank event logs, the merged event stream and the run
        report land.  ``None`` keeps events in memory only (tests,
        short-lived runs) — timing trees and counters still work.
    run_id:
        Identifier stamped into the run report and file names.
    heartbeat_every:
        Steps between ``heartbeat`` events (counters are updated every
        step regardless).
    capture_logs:
        Forward ``repro.*`` log records into the rank-0 event log, so
        modules that only use stdlib logging appear in the structured
        stream too.
    log_level:
        Threshold of the log capture.
    trace:
        Span tracing switch (see :mod:`repro.telemetry.tracing`).
        ``None`` (default) defers to the ``REPRO_TRACE`` environment
        variable; ``True`` / ``False`` force it per run.  When on, every
        rank records timestamped spans of its timed scopes, the spans
        are gathered to rank 0, exported as a Chrome trace-event JSON
        next to the run report, and the report gains a ``"tracing"``
        section (overlap efficiency, per-rank imbalance, pipe latency).
    trace_sample:
        Keep one of every N spans (``None`` → ``REPRO_TRACE_SAMPLE``,
        default keep all).
    trace_buffer:
        Per-rank span ring-buffer capacity (``None`` →
        ``REPRO_TRACE_BUFFER``).
    """

    directory: str | Path | None = None
    run_id: str = "run"
    heartbeat_every: int = 1
    capture_logs: bool = False
    log_level: int = logging.INFO
    trace: bool | None = None
    trace_sample: int | None = None
    trace_buffer: int | None = None

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)
        if self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")

    def open_tracer(self, rank: int):
        """Per-rank :class:`~repro.telemetry.tracing.SpanRecorder`.

        ``None`` when tracing is off — the instance knobs override the
        ``REPRO_TRACE*`` environment variables.  Every rank of a run
        resolves the same configuration, so the span gather stays a
        uniform collective.
        """
        from repro.telemetry.tracing import recorder_from_env

        return recorder_from_env(
            rank, trace=self.trace, sample=self.trace_sample,
            buffer_size=self.trace_buffer,
        )

    def trace_path(self) -> Path | None:
        """Where the Chrome trace-event JSON lands (``None`` in-memory)."""
        if self.directory is None:
            return None
        return self.directory / f"trace-{self.run_id}.json"

    def open_events(self, rank: int) -> EventLog:
        """Per-rank event sink (file-backed when a directory is set)."""
        return EventLog(self.directory, rank=rank)

    def attach_log_capture(self, event_log: EventLog):
        """Install the log-record forwarder if :attr:`capture_logs`."""
        if not self.capture_logs:
            return None
        return attach_log_events(event_log, level=self.log_level)

    @staticmethod
    def detach_log_capture(handler) -> None:
        if handler is not None:
            logging.getLogger("repro").removeHandler(handler)

    def merge_events(self) -> list[dict]:
        """Merge the per-rank event files (no-op without a directory)."""
        if self.directory is None:
            return []
        return merge_event_logs(self.directory)

    def report_path(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"report-{self.run_id}.json"
