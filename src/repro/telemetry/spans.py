"""Derived span analyses: overlap efficiency, imbalance, pipe latency.

Raw spans (:mod:`repro.telemetry.tracing`) are a timeline; this module
turns them into the three numbers the paper's performance story rests
on:

* :func:`overlap_efficiency` — the Fig. 8 reproduction as a number: the
  fraction of ghost-exchange wall time that is *hidden* under compute
  running concurrently on other ranks (Algorithm 2's entire purpose).
* :func:`per_rank_imbalance` — max/avg/stddev of per-rank step time,
  the exact signal a :mod:`repro.grid.balance` rebalancer needs (the
  paper's scaling sections argue from this skew).
* :func:`pipe_latency_histogram` — per-phase latency distribution of
  the process backend's pipe control messages (``comm/pipe/send`` /
  ``recv`` / ``ack`` / ``stage``), the ROADMAP's requested profile of
  why the process backend loses to threads at small core counts.

:func:`tracing_section` bundles all three into the RunReport
``"tracing"`` section (validated by
:func:`repro.telemetry.report.validate_run_report`).
"""

from __future__ import annotations

import math

__all__ = [
    "COMPUTE_PREFIX",
    "EXCHANGE_PREFIXES",
    "PIPE_PREFIX",
    "STEP_SCOPE",
    "merge_intervals",
    "overlap_seconds",
    "overlap_efficiency",
    "per_rank_imbalance",
    "pipe_latency_histogram",
    "tracing_section",
]

#: Scope prefix of kernel-sweep spans (``compute/phi``, ``compute/mu``...).
COMPUTE_PREFIX = "compute"
#: Scopes of the ghost-exchange routines (field-level, not pipe-level).
EXCHANGE_PREFIXES = ("comm/phi", "comm/mu")
#: Scope prefix of process-backend pipe control phases.
PIPE_PREFIX = "comm/pipe"
#: Scope of the whole-step spans the distributed solver records.
STEP_SCOPE = "step"


def _is_compute(scope: str) -> bool:
    return scope == COMPUTE_PREFIX or scope.startswith(COMPUTE_PREFIX + "/")


def _is_exchange(scope: str) -> bool:
    return any(
        scope == p or scope.startswith(p + "/") for p in EXCHANGE_PREFIXES
    )


def merge_intervals(intervals) -> list[tuple[float, float]]:
    """Union of ``(t0, t1)`` intervals as a sorted disjoint list."""
    merged: list[list[float]] = []
    for t0, t1 in sorted((float(a), float(b)) for a, b in intervals):
        if t1 <= t0:
            continue
        if merged and t0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], t1)
        else:
            merged.append([t0, t1])
    return [(a, b) for a, b in merged]


def overlap_seconds(t0: float, t1: float, merged) -> float:
    """Seconds of ``[t0, t1]`` covered by a merged interval union."""
    total = 0.0
    for a, b in merged:
        if b <= t0:
            continue
        if a >= t1:
            break
        total += min(b, t1) - max(a, t0)
    return total


def overlap_efficiency(spans) -> dict:
    """Fraction of exchange wall time hidden under peer compute.

    For every exchange span on rank *r*, the hidden part is its
    wall-clock intersection with the union of compute spans of **other**
    ranks: communication is only truly hidden when someone else is
    computing through it (within one rank the exchange blocks the step).
    Returns totals, the efficiency ratio and a per-rank breakdown.
    """
    compute_by_rank: dict[int, list[tuple[float, float]]] = {}
    exchanges = []
    for s in spans:
        if _is_compute(s.scope):
            compute_by_rank.setdefault(s.rank, []).append(
                (s.t_start, s.t_end)
            )
        elif _is_exchange(s.scope):
            exchanges.append(s)
    merged_by_rank = {
        r: merge_intervals(iv) for r, iv in compute_by_rank.items()
    }
    total = 0.0
    hidden = 0.0
    per_rank: dict[str, dict] = {}
    for s in exchanges:
        peers = merge_intervals(
            iv
            for r, merged in merged_by_rank.items()
            if r != s.rank
            for iv in merged
        )
        dur = max(0.0, s.t_end - s.t_start)
        hid = overlap_seconds(s.t_start, s.t_end, peers)
        total += dur
        hidden += hid
        row = per_rank.setdefault(
            str(s.rank), {"exchange_seconds": 0.0, "hidden_seconds": 0.0}
        )
        row["exchange_seconds"] += dur
        row["hidden_seconds"] += hid
    for row in per_rank.values():
        row["efficiency"] = (
            row["hidden_seconds"] / row["exchange_seconds"]
            if row["exchange_seconds"] > 0 else 0.0
        )
    return {
        "exchange_seconds": total,
        "hidden_seconds": hidden,
        "efficiency": hidden / total if total > 0 else 0.0,
        "per_rank": per_rank,
    }


def per_rank_imbalance(spans, scope: str = STEP_SCOPE) -> dict:
    """Max/avg/stddev of per-rank total time in *scope* spans.

    With the solver's per-step spans this is the load-imbalance readout:
    ``ratio`` is max-over-avg (1.0 = perfectly balanced), the quantity a
    dynamic load balancer would drive toward 1.
    """
    totals: dict[int, float] = {}
    counts: dict[int, int] = {}
    for s in spans:
        if s.scope != scope:
            continue
        totals[s.rank] = totals.get(s.rank, 0.0) + max(
            0.0, s.t_end - s.t_start
        )
        counts[s.rank] = counts.get(s.rank, 0) + 1
    if not totals:
        return {
            "scope": scope, "per_rank": {}, "max": 0.0, "min": 0.0,
            "avg": 0.0, "stddev": 0.0, "ratio": 0.0,
        }
    values = list(totals.values())
    avg = sum(values) / len(values)
    var = sum((v - avg) ** 2 for v in values) / len(values)
    return {
        "scope": scope,
        "per_rank": {
            str(r): {"seconds": totals[r], "spans": counts[r]}
            for r in sorted(totals)
        },
        "max": max(values),
        "min": min(values),
        "avg": avg,
        "stddev": math.sqrt(var),
        "ratio": max(values) / avg if avg > 0 else 0.0,
    }


#: Histogram bin edges in microseconds (log-spaced, open-ended top bin).
_LATENCY_EDGES_US = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1e3, 2e3, 5e3, 1e4, 1e5, 1e6,
)


def pipe_latency_histogram(spans, *, edges_us=_LATENCY_EDGES_US) -> dict | None:
    """Latency histogram of the pipe control phases, per phase.

    Buckets each ``comm/pipe/<phase>`` span duration into log-spaced
    microsecond bins (``counts[i]`` holds durations ``< edges_us[i]``;
    the final bucket is everything larger).  Returns ``None`` when no
    pipe spans exist (thread backend), so the report section stays
    honest about what was measured.
    """
    phases: dict[str, list[int]] = {}
    totals: dict[str, dict] = {}
    n_bins = len(edges_us) + 1
    seen = False
    for s in spans:
        if not s.scope.startswith(PIPE_PREFIX + "/"):
            continue
        seen = True
        phase = s.scope[len(PIPE_PREFIX) + 1:]
        us = max(0.0, s.t_end - s.t_start) * 1e6
        counts = phases.setdefault(phase, [0] * n_bins)
        for i, edge in enumerate(edges_us):
            if us < edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        tot = totals.setdefault(
            phase, {"calls": 0, "total_us": 0.0, "max_us": 0.0}
        )
        tot["calls"] += 1
        tot["total_us"] += us
        tot["max_us"] = max(tot["max_us"], us)
    if not seen:
        return None
    for phase, tot in totals.items():
        tot["avg_us"] = tot["total_us"] / tot["calls"]
    return {
        "unit": "us",
        "edges_us": list(edges_us),
        "counts": phases,
        "summary": totals,
    }


def tracing_section(spans, recorder_stats=None) -> dict:
    """Build the RunReport ``"tracing"`` section from gathered spans.

    *recorder_stats* is the list of per-rank
    :meth:`~repro.telemetry.tracing.SpanRecorder.stats` dicts; it feeds
    the drop/sampling accounting so a truncated trace is visible in the
    report rather than silently partial.
    """
    stats = list(recorder_stats or [])
    return {
        "enabled": True,
        "spans": len(list(spans)),
        "dropped": sum(int(s.get("dropped", 0)) for s in stats),
        "sample": max((int(s.get("sample", 1)) for s in stats), default=1),
        "overlap": overlap_efficiency(spans),
        "imbalance": per_rank_imbalance(spans),
        "pipe_latency": pipe_latency_histogram(spans),
    }
