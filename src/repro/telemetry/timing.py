"""Hierarchical timing trees and flat timing pools (waLBerla style).

waLBerla times every sweep and ghost-exchange functor through a
``TimingPool`` / ``TimingTree`` pair: named scopes accumulate call count,
total, min and max wall time, nested scopes form a tree, and the
per-process trees are reduced across all MPI ranks into one breakdown —
the data behind the paper's Fig. 8 "time spent in communication"
measurement on up to 262,144 cores.  This module reproduces that
substrate for the simulated runtime:

* :class:`TimerStats` — count / total / min / max accumulator,
* :class:`TimingTree` — nested named scopes (``with tree.scope("phi")``),
* :class:`TimingPool` — flat named timers for ad-hoc instrumentation.

Cross-rank reduction lives in :mod:`repro.telemetry.reduce`, which runs
the per-rank trees through the pairwise log2(P) schedule of
:mod:`repro.simmpi.reduce_tree`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["TimerStats", "TimingNode", "TimingTree", "TimingPool"]


@dataclass
class TimerStats:
    """Accumulated statistics of one named timer."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def record(self, seconds: float) -> None:
        """Add one measured duration."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def avg(self) -> float:
        """Mean seconds per call (0 when never called)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "TimerStats") -> None:
        """Fold another accumulator of the *same* timer into this one."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "avg": self.avg,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimerStats":
        stats = cls(
            count=int(d["count"]), total=float(d["total"]),
            max=float(d["max"]),
        )
        stats.min = float(d["min"]) if stats.count else float("inf")
        return stats


@dataclass
class TimingNode:
    """One scope of a :class:`TimingTree`."""

    name: str
    stats: TimerStats = field(default_factory=TimerStats)
    children: dict = field(default_factory=dict)

    def child(self, name: str) -> "TimingNode":
        node = self.children.get(name)
        if node is None:
            node = TimingNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            **self.stats.to_dict(),
            "children": {k: v.to_dict() for k, v in self.children.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimingNode":
        node = cls(name=d.get("name", ""), stats=TimerStats.from_dict(d))
        node.children = {
            k: cls.from_dict(v) for k, v in d.get("children", {}).items()
        }
        return node

    def merge(self, other: "TimingNode") -> None:
        """Recursively fold *other* (same scope name) into this node."""
        self.stats.merge(other.stats)
        for name, child in other.children.items():
            self.child(name).merge(child)


class TimingTree:
    """Nested named timing scopes with min/avg/max/count accumulators.

    Scopes open with :meth:`start` / close with :meth:`stop` (or the
    :meth:`scope` context manager); a scope started while another is open
    becomes its child, so repeated step loops build a stable tree whose
    totals are the per-functor breakdown of the run.  Externally measured
    durations enter through :meth:`record` — this is what the
    :class:`~repro.grid.timeloop.Timeloop` uses so that its functor
    accumulators and the tree agree exactly rather than only to within
    timer resolution.

    An optional :class:`~repro.telemetry.tracing.SpanRecorder` attached
    as *tracer* additionally receives every completed scope as a
    timestamped span (full ``/``-path, start and end), feeding the
    Chrome-trace timeline export.  With ``tracer=None`` (the default)
    the only added cost per measurement is one attribute check, keeping
    the untraced hot path at its pre-tracing speed.
    """

    def __init__(self, tracer=None) -> None:
        self.root = TimingNode("")
        self._stack: list[tuple[TimingNode, float]] = []
        self.tracer = tracer

    # -- scope management -------------------------------------------------

    @property
    def _current(self) -> TimingNode:
        return self._stack[-1][0] if self._stack else self.root

    def start(self, name: str) -> None:
        """Open a child scope of the currently open scope."""
        node = self._current.child(name)
        self._stack.append((node, time.perf_counter()))

    def stop(self, name: str | None = None) -> float:
        """Close the innermost scope; returns its measured seconds."""
        if not self._stack:
            raise RuntimeError("no timing scope is open")
        node, t0 = self._stack.pop()
        if name is not None and node.name != name:
            self._stack.append((node, t0))
            raise RuntimeError(
                f"scope mismatch: open scope is {node.name!r}, "
                f"stop({name!r}) requested"
            )
        now = time.perf_counter()
        dt = now - t0
        node.stats.record(dt)
        if self.tracer is not None:
            path = "/".join(
                [n.name for n, _ in self._stack] + [node.name]
            )
            self.tracer.record(path, t0, now)
        return dt

    @contextmanager
    def scope(self, name: str):
        """``with tree.scope("phi_sweep"): ...`` — timed nested scope."""
        self.start(name)
        try:
            yield self
        finally:
            self.stop(name)

    def time_call(self, name: str, fn, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` inside a scope; returns its result."""
        with self.scope(name):
            return fn(*args, **kwargs)

    def record(self, path: str | tuple, seconds: float, *,
               span_args: dict | None = None) -> None:
        """Add an externally measured duration under *path*.

        *path* is a scope name or a ``/``-separated chain, always
        resolved **from the root** (independent of any open scopes), so
        instrumentation scattered across helpers lands at stable paths,
        e.g. ``"comm/phi"``.  *span_args* annotates the traced span
        (bytes moved, step index, ...) when a tracer is attached; the
        aggregated tree ignores it.
        """
        parts = path.split("/") if isinstance(path, str) else list(path)
        node = self.root
        for part in parts:
            node = node.child(part)
        node.stats.record(seconds)
        if self.tracer is not None:
            self.tracer.record_duration(
                "/".join(parts), seconds, **(span_args or {})
            )

    # -- queries ----------------------------------------------------------

    def node(self, path: str) -> TimingNode:
        """Look up a node by ``/``-separated path from the root."""
        node = self.root
        for part in path.split("/"):
            if part not in node.children:
                raise KeyError(f"no timing scope at {path!r}")
            node = node.children[part]
        return node

    def __contains__(self, path: str) -> bool:
        try:
            self.node(path)
            return True
        except KeyError:
            return False

    def flatten(self) -> dict[str, TimerStats]:
        """``path -> TimerStats`` for every scope, depth-first."""
        out: dict[str, TimerStats] = {}

        def walk(node: TimingNode, prefix: str) -> None:
            for name, child in node.children.items():
                path = f"{prefix}/{name}" if prefix else name
                out[path] = child.stats
                walk(child, path)

        walk(self.root, "")
        return out

    def to_dict(self) -> dict:
        """JSON-serializable nested representation."""
        return self.root.to_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "TimingTree":
        tree = cls()
        tree.root = TimingNode.from_dict(d)
        return tree

    def merge(self, other: "TimingTree") -> None:
        """Fold another tree (e.g. a later campaign chunk) into this one."""
        self.root.merge(other.root)

    def reset(self) -> None:
        """Drop all accumulated scopes (open scopes must be closed)."""
        if self._stack:
            raise RuntimeError("cannot reset while scopes are open")
        self.root = TimingNode("")


class TimingPool:
    """Flat dictionary of named timers (the waLBerla ``TimingPool``).

    Where the tree captures the nesting of a schedule, the pool is for
    ad-hoc instrumentation: ``with pool("io"): ...`` accumulates into the
    named :class:`TimerStats` directly.
    """

    def __init__(self) -> None:
        self._timers: dict[str, TimerStats] = {}

    def __getitem__(self, name: str) -> TimerStats:
        timer = self._timers.get(name)
        if timer is None:
            timer = TimerStats()
            self._timers[name] = timer
        return timer

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def __iter__(self):
        return iter(self._timers.items())

    def __len__(self) -> int:
        return len(self._timers)

    @contextmanager
    def __call__(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self[name].record(time.perf_counter() - t0)

    def to_dict(self) -> dict:
        return {name: t.to_dict() for name, t in self._timers.items()}

    def merge(self, other: "TimingPool") -> None:
        for name, timer in other:
            self[name].merge(timer)
