"""Span tracing: bounded ring-buffer span recording + Chrome trace export.

The telemetry timing trees (PR 3) aggregate each scope into
count/total/min/max — enough for a Fig. 8-style breakdown, but blind to
*when* things happened: whether the Algorithm 2 exchange actually hides
under a peer's compute, how per-rank step times skew over a run, or what
the process backend's pipe control messages cost individually.  This
module records the raw timeline: every timed scope becomes a
:class:`Span` ``(scope, rank, tid, t_start, t_end, args)`` in a bounded
ring buffer, exportable as a Chrome trace-event JSON document that
``chrome://tracing`` / Perfetto render as a real per-rank timeline.

Tracing is **opt-in and near-zero cost when off**: the hot path carries
one ``is None`` check per timed scope (the :class:`TimingTree` holds
``tracer=None`` unless a recorder was attached).  Activation is
environment-driven so no call site changes per run:

``REPRO_TRACE``
    Truthy (anything but empty/``0``) enables span recording for
    telemetry-enabled runs.
``REPRO_TRACE_SAMPLE``
    Keep one of every N offered spans (default 1 = keep all).
``REPRO_TRACE_BUFFER``
    Ring-buffer capacity in spans per rank (default 65536); the oldest
    spans are dropped first and the drop count is reported.

Timestamps are ``time.perf_counter()`` — on Linux a system-wide
monotonic clock, so spans recorded by separate OS processes (the simmpi
process backend) share one timeline and cross-rank overlap analysis
(:mod:`repro.telemetry.spans`) is meaningful without clock alignment.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque, namedtuple
from pathlib import Path

__all__ = [
    "Span",
    "SpanRecorder",
    "trace_enabled",
    "recorder_from_env",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "load_chrome_trace",
    "ENV_TRACE",
    "ENV_SAMPLE",
    "ENV_BUFFER",
    "DEFAULT_BUFFER",
]

ENV_TRACE = "REPRO_TRACE"
ENV_SAMPLE = "REPRO_TRACE_SAMPLE"
ENV_BUFFER = "REPRO_TRACE_BUFFER"

#: Default ring-buffer capacity (spans per rank).  A 2-rank smoke run
#: emits a few hundred spans; a long traced campaign rolls over instead
#: of growing without bound.
DEFAULT_BUFFER = 65536

#: One recorded scope execution.  ``args`` is ``None`` or a small dict of
#: JSON-ready annotations (bytes moved, step index, ...).  Plain
#: namedtuple: cheap to create in the hot path and pickles compactly for
#: the cross-rank gather.
Span = namedtuple("Span", ["scope", "rank", "tid", "t_start", "t_end", "args"])


def trace_enabled(override: bool | None = None) -> bool:
    """Resolve the tracing switch (*override* beats ``REPRO_TRACE``)."""
    if override is not None:
        return bool(override)
    return os.environ.get(ENV_TRACE, "") not in ("", "0")


class SpanRecorder:
    """Bounded, sampled recorder of timed spans on one rank.

    Thread-safe: the distributed solver's side threads (fault timers,
    watchdog beacons) may record concurrently with the step loop.  The
    buffer is a ring — when full, the **oldest** spans are dropped and
    counted, so a long run keeps its most recent window rather than its
    first seconds.
    """

    def __init__(self, rank: int = 0, *, buffer_size: int = DEFAULT_BUFFER,
                 sample: int = 1):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if sample < 1:
            raise ValueError("sample must be >= 1 (keep 1 of every N)")
        self.rank = int(rank)
        self.sample = int(sample)
        self.buffer_size = int(buffer_size)
        self._spans: deque[Span] = deque(maxlen=self.buffer_size)
        self._offered = 0
        self._recorded = 0
        self._dropped = 0
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}  # thread ident -> small stable id

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = len(self._tids)
            self._tids[ident] = tid
        return tid

    def record(self, scope: str, t_start: float, t_end: float,
               **args) -> None:
        """Record one span with explicit start/end timestamps."""
        with self._lock:
            self._offered += 1
            if self.sample > 1 and (self._offered - 1) % self.sample:
                return
            self._recorded += 1
            if len(self._spans) == self.buffer_size:
                self._dropped += 1  # ring is full: the oldest span falls off
            self._spans.append(Span(
                scope, self.rank, self._tid(),
                float(t_start), float(t_end), args or None,
            ))

    def record_duration(self, scope: str, seconds: float, **args) -> None:
        """Record a span measured externally, ending now."""
        now = time.perf_counter()
        self.record(scope, now - seconds, now, **args)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> list[Span]:
        """Snapshot of the buffered spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Return and clear the buffered spans (stats are kept)."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            return out

    def stats(self) -> dict:
        """Accounting of the recorder: offered / sampled / dropped."""
        with self._lock:
            return {
                "rank": self.rank,
                "offered": self._offered,
                "recorded": self._recorded,
                "dropped": self._dropped,
                "sample": self.sample,
                "buffer_size": self.buffer_size,
            }


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc
    return value


def recorder_from_env(
    rank: int = 0,
    *,
    trace: bool | None = None,
    sample: int | None = None,
    buffer_size: int | None = None,
) -> SpanRecorder | None:
    """Build a :class:`SpanRecorder` if tracing is on, else ``None``.

    Explicit keyword values beat the corresponding environment variables
    (``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE`` / ``REPRO_TRACE_BUFFER``),
    so drivers can force tracing per run (the fig8 benchmark does) while
    the env var flips whole sessions.
    """
    if not trace_enabled(trace):
        return None
    return SpanRecorder(
        rank,
        sample=_env_int(ENV_SAMPLE, 1) if sample is None else int(sample),
        buffer_size=(
            _env_int(ENV_BUFFER, DEFAULT_BUFFER)
            if buffer_size is None else int(buffer_size)
        ),
    )


# -- Chrome trace-event export ------------------------------------------------


def spans_to_chrome_trace(spans, *, time_origin: float | None = None) -> dict:
    """Convert spans to a Chrome trace-event JSON document.

    Complete (``"ph": "X"``) duration events with microsecond
    timestamps relative to the earliest span, one ``pid`` per rank (plus
    ``process_name`` metadata so the timeline labels read ``rank N``).
    Drop the result into ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = list(spans)
    if time_origin is None:
        time_origin = min((s.t_start for s in spans), default=0.0)
    events = []
    for pid in sorted({s.rank for s in spans}):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"rank {pid}"},
        })
    for s in spans:
        event = {
            "name": s.scope,
            "cat": s.scope.split("/", 1)[0],
            "ph": "X",
            "ts": (s.t_start - time_origin) * 1e6,
            "dur": max(0.0, (s.t_end - s.t_start) * 1e6),
            "pid": s.rank,
            "tid": s.tid,
        }
        if s.args:
            event["args"] = dict(s.args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> None:
    """Raise :class:`ValueError` unless *doc* is a usable trace document.

    Structural checks matching what ``chrome://tracing`` / Perfetto
    require of the JSON object format: a ``traceEvents`` array whose
    duration events carry name/ph/pid/tid and non-negative numeric
    ``ts``/``dur``.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must carry a traceEvents array")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] misses {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{i}].name must be a string")
        if ev["ph"] == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}].{key} must be a non-negative "
                        "number"
                    )
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"traceEvents[{i}].args must be an object")


def write_chrome_trace(path, spans_or_doc) -> Path:
    """Validate and persist a trace (atomic temp-file + rename)."""
    if isinstance(spans_or_doc, dict):
        doc = spans_or_doc
    else:
        doc = spans_to_chrome_trace(spans_or_doc)
    validate_chrome_trace(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc) + "\n")
    os.replace(tmp, path)
    return path


def load_chrome_trace(path) -> dict:
    """Read and validate a trace-event JSON file."""
    doc = json.loads(Path(path).read_text())
    validate_chrome_trace(doc)
    return doc
