"""Thermodynamic substrate: parabolic Gibbs energies and grand potentials.

The paper couples the phase-field evolution to CALPHAD thermodynamics via
*parabolically fitted* Gibbs energies valid near the ternary eutectic point
(Choudhury/Kellner/Nestler coupling).  This package implements exactly that
layer:

* :mod:`repro.thermo.phases` — component/phase bookkeeping,
* :mod:`repro.thermo.parabolic` — quadratic free energies ``f_alpha(c, T)``,
  their Legendre transforms (grand potentials ``psi_alpha(mu, T)``),
  concentrations ``c_alpha(mu, T)`` and susceptibilities,
* :mod:`repro.thermo.calphad` — an approximate Ag-Al-Cu ternary eutectic
  dataset calibrated to the published eutectic invariants,
* :mod:`repro.thermo.system` — the :class:`TernaryEutecticSystem` facade
  used by the solver.
"""

from repro.thermo.phases import Component, Phase, PhaseSet
from repro.thermo.parabolic import ParabolicFreeEnergy
from repro.thermo.calphad import ag_al_cu_data, CalphadData
from repro.thermo.system import TernaryEutecticSystem

__all__ = [
    "Component",
    "Phase",
    "PhaseSet",
    "ParabolicFreeEnergy",
    "CalphadData",
    "ag_al_cu_data",
    "TernaryEutecticSystem",
]
