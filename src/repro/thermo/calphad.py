"""Approximate Ag-Al-Cu ternary eutectic dataset.

The paper uses thermodynamic data from the CALPHAD assessments of
Witusiewicz et al. (J. Alloys Compd. 385/387, 2004/2005), reduced to
parabolic fits around the ternary eutectic point as described by
Choudhury/Kellner/Nestler.  The CALPHAD database itself is proprietary
tooling; what the solver actually consumes are the *fit coefficients*.
This module ships a documented, approximate coefficient set calibrated to
the published eutectic invariants:

* ternary eutectic temperature ``T_E ≈ 773.6 K`` (≈ 500.5 °C),
* eutectic melt composition ≈ Ag 18 at.%, Al 69 at.%, Cu 13 at.%,
* the three solid phases fcc-(Al), Ag2Al (hcp ζ) and Al2Cu (θ) with
  compositions near their reported solubility limits, which via the lever
  rule yield phase fractions of roughly 35 / 27 / 38 % — "similar phase
  fractions", as the paper notes, which is what makes this system a good
  pattern-formation study target.

Absolute energy scales are nondimensionalized (energy density unit chosen
so that curvatures are O(10)); the phase-field driving forces only depend
on *differences* of grand potentials, so this rescaling changes time/length
units but not the selected microstructure — the substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.thermo.parabolic import ParabolicFreeEnergy
from repro.thermo.phases import Component, Phase, PhaseSet

#: Ternary eutectic temperature of Ag-Al-Cu in Kelvin.
T_EUTECTIC_AG_AL_CU = 773.6


@dataclass(frozen=True)
class CalphadData:
    """A bundle of parabolic fits plus bookkeeping for one alloy system.

    Attributes
    ----------
    phase_set:
        Phase/component ordering shared with the solver.
    free_energies:
        One :class:`ParabolicFreeEnergy` per phase, in phase order.
    t_eutectic:
        The eutectic temperature the fits are centred on.
    liquid_c_eq:
        Eutectic melt composition (independent components only).
    diffusivities:
        Scalar diffusivity ``D_a`` per phase used to build the mobility
        ``M(phi, T) = sum_a g_a(phi) D_a A_a^{-1}``.
    """

    phase_set: PhaseSet
    free_energies: tuple[ParabolicFreeEnergy, ...]
    t_eutectic: float
    liquid_c_eq: np.ndarray
    diffusivities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.free_energies) != self.phase_set.n_phases:
            raise ValueError("one free energy per phase required")
        if len(self.diffusivities) != self.phase_set.n_phases:
            raise ValueError("one diffusivity per phase required")
        k = self.phase_set.n_solutes
        for fe in self.free_energies:
            if fe.n_solutes != k:
                raise ValueError("free-energy dimension mismatch")

    def lever_rule_fractions(self) -> np.ndarray:
        """Solid phase fractions from conservation of the eutectic melt.

        Solves ``sum_s f_s c_s = c_liquid`` together with ``sum_s f_s = 1``
        over the solid phases — the compositions a fully solidified
        eutectic must exhibit.  Returns fractions in phase order with the
        liquid entry set to zero.
        """
        solids = self.phase_set.solid_indices
        te = self.t_eutectic
        cols = np.stack(
            [self.free_energies[s].c_min(te) for s in solids], axis=1
        )
        k = self.phase_set.n_solutes
        a = np.vstack([cols, np.ones((1, len(solids)))])
        b = np.concatenate([self.liquid_c_eq, [1.0]])
        frac, *_ = np.linalg.lstsq(a, b, rcond=None)
        if np.any(frac < -1e-9) or abs(frac.sum() - 1.0) > 1e-9:
            raise ValueError(
                f"dataset is not a consistent eutectic: lever fractions {frac}"
            )
        out = np.zeros(self.phase_set.n_phases)
        for f, s in zip(frac, solids):
            out[s] = max(f, 0.0)
        return out


def ag_al_cu_data(
    *,
    latent_scale: float = 1.0,
    diffusivity_liquid: float = 1.0,
    diffusivity_solid: float = 1e-4,
) -> CalphadData:
    """Build the approximate Ag-Al-Cu dataset.

    Parameters
    ----------
    latent_scale:
        Multiplier on all solid latent-heat slopes; convenient for
        undercooling sensitivity studies.
    diffusivity_liquid, diffusivity_solid:
        Nondimensional diffusivities.  The paper exploits that diffusion in
        the solid is orders of magnitude slower than in the melt (this is
        what makes the moving-window technique valid), hence the small
        solid default.
    """
    phase_set = PhaseSet(
        phases=(
            Phase("Al"),        # fcc aluminium solid solution
            Phase("Ag2Al"),     # hcp zeta phase
            Phase("Al2Cu"),     # theta phase
            Phase("liquid", is_liquid=True),
        ),
        components=(
            Component("Ag"),
            Component("Cu"),
            Component("Al", solvent=True),
        ),
    )
    te = T_EUTECTIC_AG_AL_CU

    def fe(curv, c_eq, c_slope, latent):
        return ParabolicFreeEnergy(
            curvature=np.asarray(curv, dtype=float),
            c_eq=np.asarray(c_eq, dtype=float),
            c_slope=np.asarray(c_slope, dtype=float),
            latent_slope=latent * latent_scale,
            t_eutectic=te,
        )

    free_energies = (
        # fcc-(Al): limited Ag/Cu solubility at T_E, so the growing phase
        # rejects both solutes strongly (self-limiting coupled growth)
        fe([[26.0, 2.0], [2.0, 30.0]], [0.06, 0.02], [-8e-4, 3e-4], 0.17),
        # Ag2Al (zeta): Ag-rich, nearly Cu free
        fe([[32.0, 1.5], [1.5, 42.0]], [0.575, 0.005], [5e-4, 1e-4], 0.16),
        # Al2Cu (theta): line compound around 32 at.% Cu
        fe([[36.0, 1.0], [1.0, 30.0]], [0.01, 0.32], [1e-4, 6e-4], 0.17),
        # melt at the ternary eutectic composition; latent reference 0
        fe([[9.0, 1.0], [1.0, 9.0]], [0.18, 0.13], [0.0, 0.0], 0.0),
    )
    return CalphadData(
        phase_set=phase_set,
        free_energies=free_energies,
        t_eutectic=te,
        liquid_c_eq=np.array([0.18, 0.13]),
        diffusivities=(
            diffusivity_solid,
            diffusivity_solid,
            diffusivity_solid,
            diffusivity_liquid,
        ),
    )
