"""Parabolic (quadratic) free energies and their grand potentials.

The paper derives the driving force from *parabolically fitted Gibbs
energies* around the ternary eutectic point instead of describing the full
CALPHAD system (Sec. 3.3).  For each phase ``alpha`` the Helmholtz/Gibbs
free energy density is modelled as a quadratic form in the ``K - 1``
independent concentrations ``c``:

.. math::

    f_a(c, T) = \\tfrac12 (c - \\hat c_a(T))^T A_a (c - \\hat c_a(T))
                + g_a(T)

with an SPD curvature matrix ``A_a``, a temperature dependent minimum
position :math:`\\hat c_a(T) = c^*_a + m_a (T - T_E)` (encoding the slopes
of the solidus/liquidus planes) and an offset
:math:`g_a(T) = L_a (T - T_E) / T_E` that carries the latent-heat driving
force.  The quadratic form makes the Legendre transform analytic:

.. math::

    c_a(\\mu, T)   &= \\hat c_a(T) + A_a^{-1} \\mu \\\\
    \\psi_a(\\mu, T) &= -\\tfrac12 \\mu^T A_a^{-1} \\mu
                       - \\mu \\cdot \\hat c_a(T) + g_a(T)

so the susceptibility of a single phase is the constant matrix
:math:`\\partial c_a / \\partial \\mu = A_a^{-1}`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_spd(a: np.ndarray) -> np.ndarray:
    """Validate and return *a* as a symmetric positive-definite matrix."""
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"curvature must be a square matrix, got shape {a.shape}")
    if not np.allclose(a, a.T):
        raise ValueError("curvature matrix must be symmetric")
    eigvals = np.linalg.eigvalsh(a)
    if np.any(eigvals <= 0):
        raise ValueError(f"curvature matrix must be positive definite, eigvals={eigvals}")
    return a


@dataclass(frozen=True)
class ParabolicFreeEnergy:
    """Quadratic free-energy model of a single phase.

    Parameters
    ----------
    curvature:
        SPD matrix ``A_a`` of shape ``(K-1, K-1)`` — the second derivative
        of the free energy with respect to the independent concentrations.
    c_eq:
        Minimum position ``c*_a`` at the eutectic temperature, i.e. the
        equilibrium phase composition at ``(T_E, mu = 0)``.
    c_slope:
        Temperature slope ``m_a`` of the minimum position (per Kelvin);
        encodes the solidus/liquidus plane slopes.
    latent_slope:
        Entropy-like coefficient ``L_a / T_E``: the grand-potential offset
        is ``g_a(T) = latent_slope * (T - T_E)``.  The liquid conventionally
        has ``latent_slope = 0`` so solids are favoured below ``T_E`` when
        their ``latent_slope`` is positive.
    t_eutectic:
        Reference temperature ``T_E`` about which the fit was made.
    """

    curvature: np.ndarray
    c_eq: np.ndarray
    c_slope: np.ndarray
    latent_slope: float
    t_eutectic: float
    _inv_curvature: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        a = _as_spd(self.curvature)
        c_eq = np.asarray(self.c_eq, dtype=float)
        c_slope = np.asarray(self.c_slope, dtype=float)
        k = a.shape[0]
        if c_eq.shape != (k,):
            raise ValueError(f"c_eq must have shape ({k},), got {c_eq.shape}")
        if c_slope.shape != (k,):
            raise ValueError(f"c_slope must have shape ({k},), got {c_slope.shape}")
        object.__setattr__(self, "curvature", a)
        object.__setattr__(self, "c_eq", c_eq)
        object.__setattr__(self, "c_slope", c_slope)
        object.__setattr__(self, "_inv_curvature", np.linalg.inv(a))

    @property
    def n_solutes(self) -> int:
        """Number of independent concentrations ``K - 1``."""
        return self.curvature.shape[0]

    @property
    def inv_curvature(self) -> np.ndarray:
        """The constant phase susceptibility ``A_a^{-1}``."""
        return self._inv_curvature

    # -- direct (concentration) representation -------------------------------

    def c_min(self, temperature):
        """Minimum position ``\\hat c_a(T)``, broadcasting over *temperature*.

        For scalar ``T`` the result has shape ``(K-1,)``; for an array of
        temperatures with shape ``S`` the result has shape ``(K-1,) + S``.
        """
        t = np.asarray(temperature, dtype=float)
        dt = t - self.t_eutectic
        return self.c_eq.reshape((-1,) + (1,) * t.ndim) + np.multiply.outer(
            self.c_slope, dt
        )

    def free_energy(self, c, temperature):
        """Free energy density ``f_a(c, T)``.

        ``c`` has shape ``(K-1,) + S`` for any spatial shape ``S`` (possibly
        empty); ``temperature`` broadcasts against ``S``.
        """
        c = np.asarray(c, dtype=float)
        d = c - self.c_min(temperature)
        quad = 0.5 * np.einsum("i...,ij,j...->...", d, self.curvature, d)
        return quad + self.offset(temperature)

    def mu_of_c(self, c, temperature):
        """Chemical potential ``mu = df_a/dc`` for the given concentration."""
        c = np.asarray(c, dtype=float)
        d = c - self.c_min(temperature)
        return np.einsum("ij,j...->i...", self.curvature, d)

    # -- grand potential (chemical-potential) representation -----------------

    def offset(self, temperature):
        """Grand-potential offset ``g_a(T) = latent_slope * (T - T_E)``."""
        t = np.asarray(temperature, dtype=float)
        return self.latent_slope * (t - self.t_eutectic)

    def c_of_mu(self, mu, temperature):
        """Phase concentration ``c_a(mu, T) = c_min(T) + A_a^{-1} mu``."""
        mu = np.asarray(mu, dtype=float)
        return self.c_min(temperature) + np.einsum(
            "ij,j...->i...", self._inv_curvature, mu
        )

    def grand_potential(self, mu, temperature):
        """Grand potential density ``psi_a(mu, T) = f_a - mu . c_a``."""
        mu = np.asarray(mu, dtype=float)
        quad = -0.5 * np.einsum("i...,ij,j...->...", mu, self._inv_curvature, mu)
        lin = -np.einsum("i...,i...->...", mu, self.c_min(temperature))
        return quad + lin + self.offset(temperature)

    def dpsi_dmu(self, mu, temperature):
        """``dpsi_a/dmu = -c_a(mu, T)`` (thermodynamic identity)."""
        return -self.c_of_mu(mu, temperature)

    def dc_dT(self, temperature=None):
        """``dc_a/dT`` at fixed ``mu`` — the constant slope ``m_a``."""
        return self.c_slope
