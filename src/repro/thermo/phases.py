"""Component and phase bookkeeping for multi-component alloy systems.

The model of the paper treats ``K = 3`` chemical species (Ag, Al, Cu) and
``N = 4`` thermodynamic phases (three solids and the liquid).  Because mass
is conserved, only ``K - 1`` concentrations (and chemical potentials) are
independent; the remaining component is the *solvent* and is eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Component:
    """A chemical species taking part in the alloy.

    Parameters
    ----------
    name:
        Human readable species name, e.g. ``"Ag"``.
    solvent:
        Whether this component is the dependent one eliminated through the
        mass-conservation constraint ``sum_i c_i = 1``.
    """

    name: str
    solvent: bool = False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Phase:
    """A thermodynamic phase (solid intermetallic, solid solution or melt).

    Parameters
    ----------
    name:
        Phase label, e.g. ``"Al2Cu"`` or ``"liquid"``.
    is_liquid:
        The model needs to know which order parameter is the melt: the
        anti-trapping current (Eq. 4 of the paper) and the solidification
        front region ``F_Omega`` are defined relative to the liquid phase.
    """

    name: str
    is_liquid: bool = False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class PhaseSet:
    """An ordered collection of phases and components.

    The ordering fixes the meaning of the axes of every field array in the
    solver: ``phi[alpha]`` is the order parameter of ``phases[alpha]`` and
    ``mu[i]`` the chemical potential of ``components[i]`` (solutes only).

    Exactly one phase must be liquid and exactly one component must be the
    solvent; the solvent must be the *last* component so that the leading
    ``K - 1`` components line up with the ``mu`` axes.
    """

    phases: tuple[Phase, ...]
    components: tuple[Component, ...] = field(default=())

    def __post_init__(self) -> None:
        liquids = [p for p in self.phases if p.is_liquid]
        if len(liquids) != 1:
            raise ValueError(
                f"exactly one liquid phase required, got {len(liquids)}"
            )
        if self.components:
            solvents = [c for c in self.components if c.solvent]
            if len(solvents) != 1:
                raise ValueError(
                    f"exactly one solvent component required, got {len(solvents)}"
                )
            if not self.components[-1].solvent:
                raise ValueError("the solvent must be the last component")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError("phase names must be unique")

    @property
    def n_phases(self) -> int:
        """Number of order parameters ``N``."""
        return len(self.phases)

    @property
    def n_components(self) -> int:
        """Total number of chemical species ``K``."""
        return len(self.components)

    @property
    def n_solutes(self) -> int:
        """Number of independent concentrations / chemical potentials ``K - 1``."""
        return max(len(self.components) - 1, 0)

    @property
    def liquid_index(self) -> int:
        """Index of the liquid order parameter (``ell`` in the paper)."""
        for i, p in enumerate(self.phases):
            if p.is_liquid:
                return i
        raise AssertionError("unreachable: validated in __post_init__")

    @property
    def solid_indices(self) -> tuple[int, ...]:
        """Indices of all solid order parameters."""
        return tuple(
            i for i, p in enumerate(self.phases) if not p.is_liquid
        )

    def phase_index(self, name: str) -> int:
        """Return the order-parameter index of the phase called *name*."""
        for i, p in enumerate(self.phases):
            if p.name == name:
                return i
        raise KeyError(f"no phase named {name!r}")

    def component_index(self, name: str) -> int:
        """Return the component index of the species called *name*."""
        for i, c in enumerate(self.components):
            if c.name == name:
                return i
        raise KeyError(f"no component named {name!r}")
