"""Facade combining per-phase parabolic fits into whole-system operations.

The solver kernels never touch individual :class:`ParabolicFreeEnergy`
objects; they consume vectorized, field-shaped quantities:

* grand potentials ``psi_a(mu, T)`` of all phases (driving force, Eq. 2),
* phase concentrations ``c_a(mu, T)`` (anti-trapping current, Eq. 4),
* the mixture susceptibility ``(dc/dmu)(phi) = sum_a h_a A_a^{-1}`` and its
  inverse (prefactor of the mu evolution, Eq. 3),
* the mixture mobility ``M(phi, T) = sum_a g_a D_a(T) A_a^{-1}``,
* ``(dc/dT)(phi) = sum_a h_a m_a`` (frozen-temperature source term).

All methods broadcast over arbitrary spatial shapes ``S``: interpolation
weights have shape ``(N,) + S``, chemical potentials ``(K-1,) + S``.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.calphad import CalphadData, ag_al_cu_data
from repro.thermo.parabolic import ParabolicFreeEnergy
from repro.thermo.phases import PhaseSet


def _solve_spd_field(mat: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``mat @ x = rhs`` per cell for field-shaped SPD matrices.

    ``mat`` has shape ``(k, k) + S`` and ``rhs`` shape ``(k,) + S``.  The
    common case ``k == 2`` is solved with the analytic inverse (this is the
    hot path of the mu-kernel); larger systems fall back to
    :func:`numpy.linalg.solve`.
    """
    k = mat.shape[0]
    if rhs.shape[0] != k or mat.shape[1] != k:
        raise ValueError(f"shape mismatch: mat {mat.shape}, rhs {rhs.shape}")
    if k == 1:
        return rhs / mat[0, 0]
    if k == 2:
        a, b = mat[0, 0], mat[0, 1]
        c, d = mat[1, 0], mat[1, 1]
        det = a * d - b * c
        x0 = (d * rhs[0] - b * rhs[1]) / det
        x1 = (a * rhs[1] - c * rhs[0]) / det
        return np.stack([x0, x1])
    # (k,k)+S -> S+(k,k), (k,)+S -> S+(k,)
    m = np.moveaxis(mat, (0, 1), (-2, -1))
    r = np.moveaxis(rhs, 0, -1)[..., None]
    x = np.linalg.solve(m, r)[..., 0]
    return np.moveaxis(x, -1, 0)


class TernaryEutecticSystem:
    """Whole-alloy thermodynamics built from parabolic per-phase fits.

    Parameters
    ----------
    data:
        The coefficient bundle; defaults to the approximate Ag-Al-Cu set
        from :func:`repro.thermo.calphad.ag_al_cu_data`.
    """

    def __init__(self, data: CalphadData | None = None):
        self.data = data if data is not None else ag_al_cu_data()
        self.phase_set: PhaseSet = self.data.phase_set
        self.t_eutectic: float = self.data.t_eutectic
        # Stacked constant coefficient arrays for vectorized evaluation.
        fes = self.data.free_energies
        self._inv_curv = np.stack([fe.inv_curvature for fe in fes])  # (N,k,k)
        self._curv = np.stack([fe.curvature for fe in fes])          # (N,k,k)
        self._c_eq = np.stack([fe.c_eq for fe in fes])               # (N,k)
        self._c_slope = np.stack([fe.c_slope for fe in fes])         # (N,k)
        self._latent = np.array([fe.latent_slope for fe in fes])     # (N,)
        self._diff = np.asarray(self.data.diffusivities, dtype=float)

    # -- small accessors ------------------------------------------------------

    @property
    def n_phases(self) -> int:
        """Number of order parameters ``N``."""
        return self.phase_set.n_phases

    @property
    def n_solutes(self) -> int:
        """Number of independent chemical potentials ``K - 1``."""
        return self.phase_set.n_solutes

    @property
    def liquid_index(self) -> int:
        """Order-parameter index of the melt."""
        return self.phase_set.liquid_index

    @property
    def diffusivities(self) -> np.ndarray:
        """Per-phase diffusivities ``D_a`` (phase order)."""
        return self._diff

    def free_energy(self, alpha: int) -> ParabolicFreeEnergy:
        """The parabolic fit of phase *alpha*."""
        return self.data.free_energies[alpha]

    # -- field-shaped thermodynamic quantities --------------------------------

    def c_min(self, temperature) -> np.ndarray:
        """Minimum positions ``\\hat c_a(T)`` for all phases.

        Shape ``(N, K-1) + S`` where ``S`` is the shape of *temperature*.
        """
        t = np.asarray(temperature, dtype=float)
        dt = t - self.t_eutectic
        extra = (1,) * t.ndim
        return self._c_eq.reshape(self._c_eq.shape + extra) + np.multiply.outer(
            self._c_slope, dt
        )

    @staticmethod
    def _align_temperature(temperature, mu: np.ndarray) -> np.ndarray:
        """Pad *temperature* with singleton axes to broadcast against the
        spatial shape of *mu* (scalars and per-slice arrays both work)."""
        t = np.asarray(temperature, dtype=float)
        spatial = mu.ndim - 1
        if t.ndim < spatial:
            t = t.reshape((1,) * (spatial - t.ndim) + t.shape)
        return t

    def grand_potentials(self, mu, temperature) -> np.ndarray:
        """``psi_a(mu, T)`` for all phases, shape ``(N,) + S``.

        *mu* has shape ``(K-1,) + S``; *temperature* broadcasts over ``S``
        (scalar and per-slice values are padded automatically).
        """
        mu = np.asarray(mu, dtype=float)
        t = self._align_temperature(temperature, mu)
        quad = -0.5 * np.einsum("i...,aij,j...->a...", mu, self._inv_curv, mu)
        cmin = self.c_min(t)
        lin = -np.einsum("i...,ai...->a...", mu, cmin)
        off = np.multiply.outer(self._latent, t - self.t_eutectic)
        return quad + lin + off

    def phase_concentrations(self, mu, temperature) -> np.ndarray:
        """``c_a(mu, T)`` for all phases, shape ``(N, K-1) + S``."""
        mu = np.asarray(mu, dtype=float)
        t = self._align_temperature(temperature, mu)
        return self.c_min(t) + np.einsum(
            "aij,j...->ai...", self._inv_curv, mu
        )

    def concentration(self, weights, mu, temperature) -> np.ndarray:
        """Mixture concentration ``c = sum_a h_a c_a(mu, T)``.

        *weights* are interpolation values ``h_a(phi)`` of shape
        ``(N,) + S``; result has shape ``(K-1,) + S``.
        """
        c_a = self.phase_concentrations(mu, temperature)
        return np.einsum("a...,ai...->i...", np.asarray(weights), c_a)

    def susceptibility(self, weights) -> np.ndarray:
        """Mixture susceptibility ``dc/dmu = sum_a h_a A_a^{-1}``.

        Shape ``(K-1, K-1) + S``; SPD as a convex combination of SPD
        matrices whenever the weights are a partition of unity.
        """
        w = np.asarray(weights, dtype=float)
        return np.einsum("a...,aij->ij...", w, self._inv_curv)

    def solve_susceptibility(self, weights, rhs) -> np.ndarray:
        """Apply the inverse susceptibility: solve ``(dc/dmu) x = rhs``.

        This is the ``[(dc/dmu)]^{-1}`` prefactor of Eq. 3, evaluated per
        cell.  *rhs* has shape ``(K-1,) + S``.
        """
        chi = self.susceptibility(weights)
        return _solve_spd_field(chi, np.asarray(rhs, dtype=float))

    def dc_dT(self, weights) -> np.ndarray:
        """``(dc/dT)(phi) = sum_a h_a m_a``, shape ``(K-1,) + S``."""
        w = np.asarray(weights, dtype=float)
        return np.einsum("a...,ai->i...", w, self._c_slope)

    def mobility(self, weights, temperature=None) -> np.ndarray:
        """Mixture mobility ``M(phi) = sum_a g_a D_a A_a^{-1}``.

        Shape ``(K-1, K-1) + S``.  *temperature* is accepted for signature
        compatibility with temperature-dependent mobilities (an Arrhenius
        factor can be layered on via the dataset diffusivities).
        """
        w = np.asarray(weights, dtype=float)
        coeff = self._inv_curv * self._diff[:, None, None]
        return np.einsum("a...,aij->ij...", w, coeff)

    def mu_of_mixture(self, weights, c, temperature) -> np.ndarray:
        """Invert the mixture relation: find ``mu`` with ``c(phi,mu,T) = c``.

        Because every ``c_a`` is affine in ``mu`` the mixture relation is
        linear: ``c = sum h_a c_min_a + (sum h_a A_a^{-1}) mu``.
        """
        w = np.asarray(weights, dtype=float)
        cmin = self.c_min(temperature)
        base = np.einsum("a...,ai...->i...", w, cmin)
        return _solve_spd_field(
            self.susceptibility(w), np.asarray(c, dtype=float) - base
        )

    def lever_rule_fractions(self) -> np.ndarray:
        """Equilibrium solid phase fractions of the eutectic (phase order)."""
        return self.data.lever_rule_fractions()
