"""Shared fixtures for the test suite.

Grids are kept tiny: the pure-Python reference kernel (the correctness
anchor) costs ~1 ms/cell, and the suite runs several hundred tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import make_context
from repro.core.parameters import PhaseFieldParameters
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture(scope="session")
def system() -> TernaryEutecticSystem:
    return TernaryEutecticSystem()


@pytest.fixture(scope="session")
def params3d(system) -> PhaseFieldParameters:
    return PhaseFieldParameters.for_system(system, dim=3)


@pytest.fixture(scope="session")
def params2d(system) -> PhaseFieldParameters:
    return PhaseFieldParameters.for_system(system, dim=2)


@pytest.fixture(scope="session")
def ctx3d(system, params3d):
    return make_context(system, params3d)


@pytest.fixture(scope="session")
def interface_block(system, params3d):
    """Small ghosted interface-scenario block (phi, mu, t_ghost)."""
    phi, mu, tg, _, _ = make_scenario(
        "interface", (6, 5, 10), system, params3d
    )
    return phi, mu, tg


@pytest.fixture(scope="session")
def interface_step(system, params3d, ctx3d, interface_block):
    """One reference phi step applied: (phi_src, phi_dst, mu, t_old, t_new)."""
    from repro.core.kernels import get_phi_kernel

    phi, mu, tg = interface_block
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("reference")(
        ctx3d, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    return phi, phi_dst, mu, tg, tg - 0.02


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
