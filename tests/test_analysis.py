"""Tests of the microstructure analysis substrate."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    lamella_spacing,
    radial_average,
    two_point_correlation,
)
from repro.analysis.fractions import phase_fractions, solid_phase_fractions
from repro.analysis.pca import correlation_pca
from repro.analysis.topology import classify_cross_section, microstructure_graph
from repro.thermo.system import TernaryEutecticSystem


class TestFractions:
    def test_phase_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        phi = rng.uniform(size=(4, 5, 5))
        phi /= phi.sum(axis=0)
        np.testing.assert_allclose(phase_fractions(phi).sum(), 1.0)

    def test_solid_fractions_exclude_melt(self):
        system = TernaryEutecticSystem()
        phi = np.zeros((4, 4, 10))
        phi[system.liquid_index, :, 5:] = 1.0
        phi[0, :, :3] = 1.0
        phi[1, :, 3:5] = 1.0
        f = solid_phase_fractions(phi, system)
        assert f[system.liquid_index] == 0.0
        assert f[0] == pytest.approx(0.6)
        assert f[1] == pytest.approx(0.4)

    def test_all_liquid_gives_zeros(self):
        system = TernaryEutecticSystem()
        phi = np.zeros((4, 3, 3))
        phi[system.liquid_index] = 1.0
        np.testing.assert_allclose(solid_phase_fractions(phi, system), 0.0)


class TestCorrelation:
    def test_autocorrelation_peak_at_origin(self):
        rng = np.random.default_rng(1)
        f = rng.uniform(size=(16, 16))
        corr = two_point_correlation(f)
        assert corr.flat[0] == pytest.approx((f * f).mean())
        assert corr.flat[0] >= corr.max() - 1e-12

    def test_periodic_stripes_periodicity(self):
        x = np.arange(32)
        stripes = ((x // 4) % 2).astype(float)
        f = np.tile(stripes[:, None], (1, 8))
        corr = two_point_correlation(f)
        # period 8 along x: correlation at shift 8 equals shift 0
        assert corr[8, 0] == pytest.approx(corr[0, 0])
        assert corr[4, 0] < corr[0, 0]

    def test_nonperiodic_variant_normalized(self):
        f = np.ones((8, 8))
        corr = two_point_correlation(f, periodic=False)
        np.testing.assert_allclose(corr[0, 0], 1.0)
        np.testing.assert_allclose(corr[4, 4], 1.0, rtol=1e-6)

    def test_radial_average_monotone_for_blob(self):
        x, y = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
        f = np.exp(-(((x - 16) ** 2 + (y - 16) ** 2) / 30.0))
        corr = two_point_correlation(f)
        prof = radial_average(corr, max_radius=10)
        assert prof[0] == max(prof[:5])

    def test_lamella_spacing_detects_period(self):
        x = np.arange(48)
        f = np.sin(2 * np.pi * x / 12.0)
        assert lamella_spacing(f) == pytest.approx(12.0)

    def test_lamella_spacing_flat_field(self):
        assert lamella_spacing(np.ones(32)) == float("inf")

    def test_lamella_spacing_2d(self):
        x = np.arange(40)
        f = np.tile(np.sin(2 * np.pi * x / 8.0)[:, None], (1, 6))
        assert lamella_spacing(f, axis=0) == pytest.approx(8.0)


class TestTopology:
    def test_brick(self):
        mask = np.zeros((12, 12), dtype=bool)
        mask[4:8, 4:8] = True
        c = classify_cross_section(mask)
        assert (c.rings, c.chains, c.bricks) == (0, 0, 1)

    def test_chain(self):
        mask = np.zeros((12, 30), dtype=bool)
        mask[5:7, 2:28] = True
        c = classify_cross_section(mask)
        assert c.chains == 1

    def test_ring(self):
        mask = np.zeros((14, 14), dtype=bool)
        mask[3:11, 3:11] = True
        mask[5:9, 5:9] = False
        c = classify_cross_section(mask)
        assert c.rings == 1

    def test_mixed_census(self):
        mask = np.zeros((20, 40), dtype=bool)
        mask[2:6, 2:6] = True          # brick
        mask[10:12, 2:30] = True       # chain
        mask[14:19, 33:38] = True      # ring below
        mask[15:18, 34:37] = False
        c = classify_cross_section(mask)
        assert c.components == 3
        assert c.bricks == 1
        assert c.chains == 1
        assert c.rings == 1

    def test_noise_filtered(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2, 2] = True
        c = classify_cross_section(mask, min_cells=4)
        assert c.components == 0

    def test_3d_mask_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            classify_cross_section(np.zeros((3, 3, 3), dtype=bool))

    def test_graph_adjacency_and_connections(self):
        labels = np.zeros((8, 20), dtype=int)
        labels[3:5, 1:6] = 1
        labels[3:5, 7:13] = 2   # bridges 1 and 3 (within gap 2 of both)
        labels[3:5, 14:19] = 3
        g = microstructure_graph(labels)
        assert set(g.nodes) == {1, 2, 3}
        assert g.has_edge(1, 2) or g.has_edge(2, 3)


class TestPCA:
    def test_reduces_structured_ensemble(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=64)
        maps = [base * (1 + 0.1 * i) + rng.normal(scale=0.01, size=64)
                for i in range(6)]
        res = correlation_pca([m.reshape(8, 8) for m in maps], n_components=2)
        assert res.explained_ratio[0] > 0.9
        assert res.scores.shape == (6, 2)

    def test_transform_consistent_with_scores(self):
        rng = np.random.default_rng(4)
        maps = [rng.normal(size=(4, 4)) for _ in range(5)]
        res = correlation_pca(maps, n_components=2)
        np.testing.assert_allclose(
            res.transform(maps[2]), res.scores[2], atol=1e-10
        )

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            correlation_pca([np.zeros((3, 3))])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            correlation_pca([np.zeros((3, 3)), np.zeros((4, 4))])
