"""Tests of the anti-trapping current (Eq. 4)."""

import numpy as np
import pytest

from repro.core.antitrapping import face_flux, norm_guarded
from repro.core.kernels import make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario


class TestNormGuarded:
    def test_unit_vectors(self):
        v = np.array([[3.0], [4.0], [0.0]])
        norm, unit = norm_guarded(v)
        assert norm[0] == pytest.approx(5.0)
        np.testing.assert_allclose(unit[:, 0], [0.6, 0.8, 0.0])

    def test_zero_vector_guarded(self):
        v = np.zeros((3, 2))
        norm, unit = norm_guarded(v)
        np.testing.assert_allclose(unit, 0.0)
        np.testing.assert_allclose(norm, 0.0)


@pytest.fixture(scope="module")
def interface_setup():
    phi, mu, tg, system, params = make_scenario("interface", (5, 5, 12))
    ctx = make_context(system, params)
    from repro.core.kernels import get_phi_kernel

    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("basic")(
        ctx, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    return ctx, phi, phi_dst, mu, tg


class TestFaceFlux:
    def test_zero_without_phase_change(self, interface_setup):
        """J_at ~ dphi/dt: a static field produces no flux."""
        ctx, phi, _, mu, tg = interface_setup
        t_face = np.full((1, 1, 13), tg[0])
        j = face_flux(ctx.system, ctx.params, phi, phi, mu, t_face, 2)
        np.testing.assert_allclose(j, 0.0, atol=1e-15)

    def test_zero_in_pure_solid(self, interface_setup):
        ctx, phi, phi_dst, mu, tg = interface_setup
        solid = np.zeros_like(phi)
        solid[0] = 1.0
        t_face = np.full((1, 1, 13), tg[0])
        j = face_flux(ctx.system, ctx.params, solid, phi_dst, mu, t_face, 2)
        np.testing.assert_allclose(j, 0.0, atol=1e-15)

    def test_zero_in_pure_liquid(self, interface_setup):
        ctx, phi, phi_dst, mu, tg = interface_setup
        liq = np.zeros_like(phi)
        liq[ctx.liquid] = 1.0
        t_face = np.full((1, 1, 13), tg[0])
        j = face_flux(ctx.system, ctx.params, liq, liq, mu, t_face, 2)
        np.testing.assert_allclose(j, 0.0, atol=1e-15)

    def test_nonzero_at_moving_front(self, interface_setup):
        ctx, phi, phi_dst, mu, tg = interface_setup
        t_face = np.full((1, 1, 13), tg[0])
        j = face_flux(ctx.system, ctx.params, phi, phi_dst, mu, t_face, 2)
        assert np.abs(j).max() > 0.0

    def test_scales_with_eps(self, interface_setup):
        ctx, phi, phi_dst, mu, tg = interface_setup
        t_face = np.full((1, 1, 13), tg[0])
        j1 = face_flux(ctx.system, ctx.params, phi, phi_dst, mu, t_face, 2)
        params2 = ctx.params.with_(eps=2 * ctx.params.eps)
        j2 = face_flux(ctx.system, params2, phi, phi_dst, mu, t_face, 2)
        np.testing.assert_allclose(j2, 2.0 * j1, atol=1e-14)

    def test_face_shapes(self, interface_setup):
        ctx, phi, phi_dst, mu, tg = interface_setup
        for k, expected in [(0, (2, 6, 5, 12)), (1, (2, 5, 6, 12)), (2, (2, 5, 5, 13))]:
            t_face = (
                np.full((1, 1, 13), tg[0]) if k == 2 else np.full((1, 1, 12), tg[0])
            )
            j = face_flux(ctx.system, ctx.params, phi, phi_dst, mu, t_face, k)
            assert j.shape == expected
