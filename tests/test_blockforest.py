"""Tests of the block partition and neighbourhood topology."""

import numpy as np
import pytest

from repro.grid.balance import assign_blocks, weighted_assign
from repro.grid.blockforest import BlockForest, _balanced_factors


class TestConstruction:
    def test_partition_geometry(self):
        f = BlockForest((12, 8, 16), (3, 2, 4))
        assert f.n_blocks == 24
        assert f.block_shape == (4, 4, 4)
        offs = {b.offset for b in f.blocks}
        assert (0, 0, 0) in offs
        assert (8, 4, 12) in offs

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="evenly"):
            BlockForest((10, 10), (3, 2))

    def test_default_periodicity(self):
        f = BlockForest((4, 4, 4), (2, 2, 2))
        assert f.periodicity == (True, True, False)

    def test_block_ids_lexicographic(self):
        f = BlockForest((4, 4), (2, 2))
        assert f.block_id((1, 1)) == 3
        assert f.blocks[3].index == (1, 1)

    def test_cells(self):
        f = BlockForest((6, 6), (2, 3))
        assert f.blocks[0].n_cells == 6


class TestNeighborhood:
    def test_interior_neighbors(self):
        f = BlockForest((8, 8, 8), (2, 2, 2))
        b = f.blocks[f.block_id((0, 0, 0))]
        n = f.neighbor(b, 0, 1)
        assert n.index == (1, 0, 0)

    def test_periodic_wrap(self):
        f = BlockForest((8, 8, 8), (2, 2, 2))
        b = f.blocks[f.block_id((0, 0, 0))]
        n = f.neighbor(b, 0, 0)  # low side wraps
        assert n.index == (1, 0, 0)

    def test_non_periodic_edge_is_none(self):
        f = BlockForest((8, 8, 8), (2, 2, 2))
        b = f.blocks[f.block_id((0, 0, 0))]
        assert f.neighbor(b, 2, 0) is None

    def test_self_wrap_single_block_axis(self):
        f = BlockForest((8, 8), (1, 2), periodicity=(True, False))
        b = f.blocks[0]
        assert f.neighbor(b, 0, 1) is b


class TestForProcesses:
    def test_one_block_per_process(self):
        f = BlockForest.for_processes((10, 10, 10), 8)
        assert f.n_blocks == 8
        assert f.block_shape == (10, 10, 10)

    def test_balanced_factors(self):
        assert sorted(_balanced_factors(8, 3)) == [2, 2, 2]
        assert np.prod(_balanced_factors(12, 3)) == 12
        assert np.prod(_balanced_factors(7, 2)) == 7


class TestBalance:
    def test_contiguous_even(self):
        f = BlockForest((8, 8), (4, 2))
        owner = assign_blocks(f, 4)
        counts = np.bincount(owner)
        assert counts.tolist() == [2, 2, 2, 2]
        # contiguity
        assert owner == sorted(owner)

    def test_round_robin(self):
        f = BlockForest((8, 8), (4, 2))
        owner = assign_blocks(f, 3, strategy="round_robin")
        assert owner[:3] == [0, 1, 2]

    def test_too_many_ranks(self):
        f = BlockForest((4, 4), (2, 2))
        with pytest.raises(ValueError, match="ranks"):
            assign_blocks(f, 5)

    def test_unknown_strategy(self):
        f = BlockForest((4, 4), (2, 2))
        with pytest.raises(ValueError, match="strategy"):
            assign_blocks(f, 2, strategy="chaotic")

    def test_weighted_assignment_balances_load(self):
        weights = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 10.0])
        owner = weighted_assign(weights, 2)
        loads = [weights[np.array(owner) == r].sum() for r in range(2)]
        assert abs(loads[0] - loads[1]) <= 2.0
