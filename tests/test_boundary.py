"""Tests of the boundary handlers."""

import numpy as np
import pytest

from repro.grid.boundary import (
    BoundarySpec,
    Dirichlet,
    Neumann,
    Periodic,
    apply_boundaries,
)


def ghosted(shape, comps=2, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros((comps,) + tuple(s + 2 for s in shape))
    a[(slice(None),) + tuple(slice(1, -1) for _ in shape)] = rng.normal(
        size=(comps,) + shape
    )
    return a


class TestHandlers:
    def test_neumann_mirrors_edge(self):
        a = ghosted((4, 5))
        Neumann().apply(a, 2, 0, 0)
        np.testing.assert_array_equal(a[:, 0, :], a[:, 1, :])

    def test_dirichlet_face_value(self):
        a = ghosted((4, 5))
        Dirichlet(2.5).apply(a, 2, 1, 1)
        face = 0.5 * (a[:, :, -1] + a[:, :, -2])
        np.testing.assert_allclose(face, 2.5)

    def test_dirichlet_per_component(self):
        a = ghosted((4, 5))
        Dirichlet(np.array([1.0, -1.0])).apply(a, 2, 0, 0)
        face = 0.5 * (a[:, 0, :] + a[:, 1, :])
        np.testing.assert_allclose(face[0], 1.0)
        np.testing.assert_allclose(face[1], -1.0)

    def test_periodic_wraps(self):
        a = ghosted((4, 5))
        Periodic().apply(a, 2, 0, 0)
        Periodic().apply(a, 2, 0, 1)
        np.testing.assert_array_equal(a[:, 0, :], a[:, -2, :])
        np.testing.assert_array_equal(a[:, -1, :], a[:, 1, :])


class TestSpec:
    def test_unpaired_periodic_rejected(self):
        with pytest.raises(ValueError, match="paired"):
            BoundarySpec(handlers=((Periodic(), Neumann()),))

    def test_directional_defaults(self):
        spec = BoundarySpec.directional(3, top=Dirichlet(0.0))
        assert spec.dim == 3
        assert spec.periodic_axes() == (0, 1)
        assert isinstance(spec.handlers[2][0], Neumann)
        assert isinstance(spec.handlers[2][1], Dirichlet)

    def test_apply_boundaries_fills_corners(self):
        spec = BoundarySpec.directional(2, top=Dirichlet(1.0))
        a = ghosted((4, 5), comps=1)
        apply_boundaries(a, spec)
        # corner ghost cells touched by the axis-sequential pass
        assert np.isfinite(a).all()
        # periodic x wrap present
        np.testing.assert_array_equal(a[:, 0, 1:-1], a[:, -2, 1:-1])

    def test_neumann_preserves_constant_state(self):
        spec = BoundarySpec.directional(2)
        a = np.full((1, 6, 7), 3.0)
        apply_boundaries(a, spec)
        np.testing.assert_allclose(a, 3.0)
