"""Tests of the cartesian topology helper."""

import pytest

from repro.simmpi import run_spmd
from repro.simmpi.cart import CartComm, dims_create


class TestDimsCreate:
    @pytest.mark.parametrize("n,dim", [(8, 3), (12, 3), (7, 2), (1, 3), (64, 3)])
    def test_product_and_balance(self, n, dim):
        dims = dims_create(n, dim)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n
        assert len(dims) == dim
        assert max(dims) / max(min(dims), 1) <= n  # sane

    def test_cube(self):
        assert sorted(dims_create(27, 3)) == [3, 3, 3]


class TestCartComm:
    def test_coords_roundtrip(self):
        def fn(comm):
            cart = CartComm(comm, (2, 3), (True, False))
            c = cart.coords()
            assert cart.rank_of(c) == comm.rank
            return c

        coords = run_spmd(6, fn)
        assert len(set(coords)) == 6

    def test_size_mismatch(self):
        def fn(comm):
            CartComm(comm, (2, 2), (True, True))

        with pytest.raises(ValueError, match="grid"):
            run_spmd(6, fn)

    def test_shift_interior(self):
        def fn(comm):
            cart = CartComm(comm, (4,), (False,))
            return cart.shift(0, 1)

        res = run_spmd(4, fn)
        assert res[1] == (0, 2)
        assert res[0] == (None, 1)
        assert res[3] == (2, None)

    def test_shift_periodic_wrap(self):
        def fn(comm):
            cart = CartComm(comm, (4,), (True,))
            return cart.shift(0, 1)

        res = run_spmd(4, fn)
        assert res[0] == (3, 1)
        assert res[3] == (2, 0)

    def test_shift_self_on_single_periodic_axis(self):
        def fn(comm):
            cart = CartComm(comm, (1, 2), (True, False))
            return cart.shift(0, 1)

        res = run_spmd(2, fn)
        assert res[0] == (0, 0)

    def test_rank_of_out_of_range(self):
        def fn(comm):
            cart = CartComm(comm, (2,), (False,))
            cart.rank_of((5,))

        with pytest.raises(IndexError):
            run_spmd(2, fn)
