"""Tests of single-precision checkpointing and restart."""

import numpy as np
import pytest

from repro.core.solver import Simulation
from repro.io.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_simulation,
    save_checkpoint,
)
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture
def sim():
    s = Simulation(shape=(5, 5, 10), kernel="buffered")
    s.initialize_voronoi(seed=2, n_seeds=4)
    s.step(4)
    return s


class TestRoundtrip:
    def test_metadata_preserved(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        state = load_checkpoint(path)
        assert state["step_count"] == 4
        assert state["time"] == pytest.approx(sim.time)
        assert state["shape"] == sim.shape
        assert state["kernel"] == "buffered"

    def test_fields_float32_rounded(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        info = save_checkpoint(path, sim)
        state = load_checkpoint(path)
        np.testing.assert_allclose(
            state["phi"], sim.phi.interior_src, atol=1e-6
        )
        # 4 phi + 2 mu single-precision values per cell (Sec. 3.2)
        assert info["values_per_cell"] == 6
        assert info["payload_bytes"] == 6 * 4 * np.prod(sim.shape)

    def test_restart_continues_deterministically(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        # continue the original
        sim.step(3)

        fresh = Simulation(
            shape=(5, 5, 10), kernel="buffered",
            system=sim.system, params=sim.params, temperature=sim.temperature,
        )
        restore_simulation(path, fresh)
        assert fresh.step_count == 4
        fresh.step(3)
        # float32 rounding of the stored state bounds the divergence
        np.testing.assert_allclose(
            fresh.phi.interior_src, sim.phi.interior_src, atol=1e-4
        )

    def test_restart_from_exact_state_is_bitwise(self, tmp_path):
        """With a float32-exact state the restart is bitwise identical."""
        s1 = Simulation(shape=(4, 4, 8), kernel="buffered")
        phi0 = np.zeros((4, 4, 4, 8))
        phi0[3] = 1.0
        phi0[3, :, :, :3] = 0.0
        phi0[0, :, :, :3] = 1.0
        mu0 = np.zeros((2, 4, 4, 8))
        s1.initialize(phi0, mu0)

        path = tmp_path / "ck.npz"
        save_checkpoint(path, s1)
        s2 = Simulation(
            shape=(4, 4, 8), kernel="buffered",
            system=s1.system, params=s1.params, temperature=s1.temperature,
        )
        restore_simulation(path, s2)
        s1.step(3)
        s2.step(3)
        np.testing.assert_array_equal(s1.phi.interior_src, s2.phi.interior_src)
        np.testing.assert_array_equal(s1.mu.interior_src, s2.mu.interior_src)


class TestFailureModes:
    def test_shape_mismatch_rejected(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        other = Simulation(shape=(4, 4, 8))
        with pytest.raises(ValueError, match="shape"):
            restore_simulation(path, other)

    def test_version_check(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(tmp_path / "bad.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.npz"
        path.write_bytes(b"PK\x03\x04 not a real archive")
        with pytest.raises(Exception):
            load_checkpoint(path)


def _write_v1(path, sim):
    """Seed-era v1 checkpoint: no manifest, no checksums, plain savez."""
    np.savez_compressed(
        path,
        format_version=np.int64(1),
        phi=sim.phi.interior_src.astype(np.float32),
        mu=sim.mu.interior_src.astype(np.float32),
        time=np.float64(sim.time),
        step_count=np.int64(sim.step_count),
        z_offset=np.int64(sim.z_offset),
        shape=np.asarray(sim.shape, dtype=np.int64),
        kernel=np.bytes_(sim.kernel_name.encode()),
    )


class TestDurableFormat:
    def test_write_is_atomic_no_tmp_left(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_mid_write_preserves_previous(self, sim, tmp_path, monkeypatch):
        """A failed write never replaces the good generation in place."""
        import repro.io.checkpoint as ck

        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        before = path.read_bytes()

        def boom(fh, **kwargs):
            fh.write(b"half a checkpoint")
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(ck.np, "savez_compressed", boom)
        with pytest.raises(OSError, match="mid-write"):
            save_checkpoint(path, sim)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_checksums_in_summary_and_verified(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        info = save_checkpoint(path, sim)
        assert info["format_version"] == 2
        assert set(info["checksums"]) == {"phi", "mu"}
        state = load_checkpoint(path)
        assert state["format_version"] == 2

    def test_corrupted_array_detected(self, sim, tmp_path):
        """Flipping stored bytes must fail the CRC check on load."""
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        data = dict(np.load(path))
        data["phi"] = data["phi"] + np.float32(0.25)  # silent corruption
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(tmp_path / "bad.npz")

    def test_shape_metadata_mismatch_detected(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        data = dict(np.load(path))
        data["shape"] = np.asarray((9, 9, 9), dtype=np.int64)
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(tmp_path / "bad.npz")

    def test_truncated_archive_raises_checkpoint_error(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, sim)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_v1_checkpoint_still_loads(self, sim, tmp_path):
        """Format negotiation: seed-era v1 files restore fine."""
        path = tmp_path / "v1.npz"
        _write_v1(path, sim)
        state = load_checkpoint(path)
        assert state["format_version"] == 1
        assert state["step_count"] == sim.step_count
        np.testing.assert_allclose(state["phi"], sim.phi.interior_src, atol=1e-6)

        fresh = Simulation(
            shape=sim.shape, kernel="buffered",
            system=sim.system, params=sim.params, temperature=sim.temperature,
        )
        restore_simulation(path, fresh)
        assert fresh.step_count == sim.step_count

    def test_v1_shape_mismatch_rejected(self, sim, tmp_path):
        path = tmp_path / "v1.npz"
        _write_v1(path, sim)
        data = dict(np.load(path))
        data["shape"] = np.asarray((2, 2, 2), dtype=np.int64)
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(tmp_path / "bad.npz")
