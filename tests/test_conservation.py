"""Conservation properties of the coupled update (anchors Eq. 1 and 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solver import Simulation
from repro.core.temperature import ConstantTemperature
from repro.grid.boundary import BoundarySpec, Neumann, Periodic
from repro.thermo.system import TernaryEutecticSystem


def closed_box_sim(shape=(6, 6, 14), kernel="buffered", seed=0, temperature=None):
    """Simulation with no-flux boundaries everywhere (closed system)."""
    system = TernaryEutecticSystem()
    spec = BoundarySpec(
        handlers=tuple((Periodic(), Periodic()) for _ in range(len(shape) - 1))
        + ((Neumann(), Neumann()),)
    )
    sim = Simulation(
        shape=shape, system=system, kernel=kernel,
        temperature=temperature, phi_bc=spec, mu_bc=spec,
    )
    sim.initialize_voronoi(seed=seed, n_seeds=5)
    return sim


class TestMassConservation:
    @pytest.mark.parametrize("kernel", ["basic", "buffered", "shortcut"])
    def test_solute_mass_exact(self, kernel):
        """With Neumann mu boundaries, total solute content is conserved
        to round-off: the discrete update is exactly conservative for the
        affine parabolic thermodynamics."""
        sim = closed_box_sim(kernel=kernel)
        m0 = sim.solute_mass()
        sim.step(15)
        m1 = sim.solute_mass()
        np.testing.assert_allclose(m1, m0, rtol=1e-12, atol=1e-9)

    def test_mass_conserved_without_antitrapping(self):
        sim = closed_box_sim()
        sim.params = sim.params.with_(anti_trapping=False)
        from repro.core.kernels import make_context

        sim.ctx = make_context(sim.system, sim.params)
        m0 = sim.solute_mass()
        sim.step(10)
        np.testing.assert_allclose(sim.solute_mass(), m0, rtol=1e-12, atol=1e-9)

    def test_mass_conserved_under_constant_temperature(self):
        system = TernaryEutecticSystem()
        sim = closed_box_sim(
            temperature=ConstantTemperature(system.t_eutectic - 1.0)
        )
        m0 = sim.solute_mass()
        sim.step(10)
        np.testing.assert_allclose(sim.solute_mass(), m0, rtol=1e-12, atol=1e-9)


class TestPhaseSumConstraint:
    @pytest.mark.parametrize("kernel", ["basic", "shortcut"])
    def test_phi_stays_on_simplex(self, kernel):
        sim = closed_box_sim(kernel=kernel)
        sim.step(12)
        phi = sim.phi.interior_src
        np.testing.assert_allclose(phi.sum(axis=0), 1.0, atol=1e-9)
        assert phi.min() >= -1e-12
        assert phi.max() <= 1.0 + 1e-12


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 1000))
def test_conservation_random_initial_conditions(seed):
    """Mass conservation holds for arbitrary Voronoi seeds."""
    sim = closed_box_sim(shape=(5, 5, 10), seed=seed)
    m0 = sim.solute_mass()
    sim.step(5)
    np.testing.assert_allclose(sim.solute_mass(), m0, rtol=1e-12, atol=1e-9)
