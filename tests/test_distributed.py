"""Integration tests: distributed solver vs single-block reference."""

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.core.solver import Simulation
from repro.distributed import DistributedSimulation
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (8, 8, 16)
STEPS = 5


@pytest.fixture(scope="module")
def reference():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, SHAPE, solid_height=5, n_seeds=5
    )
    phi0 = smooth_phase_field(phi0, 2)
    sim = Simulation(shape=SHAPE, system=system, kernel="buffered")
    sim.initialize(phi0, mu0)
    sim.step(STEPS)
    return dict(
        system=system, phi0=phi0, mu0=mu0, params=sim.params,
        temperature=sim.temperature,
        phi=sim.phi.interior_src.copy(), mu=sim.mu.interior_src.copy(),
    )


def run_distributed(reference, bpa, overlap, kernel="buffered"):
    d = DistributedSimulation(
        SHAPE, bpa, system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel=kernel, overlap=overlap,
    )
    return d.run(STEPS, reference["phi0"], reference["mu0"])


@pytest.mark.parametrize("bpa", [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (1, 1, 4)])
def test_algorithm1_bitwise_equal(reference, bpa):
    res = run_distributed(reference, bpa, overlap=False)
    np.testing.assert_array_equal(res.phi, reference["phi"])
    np.testing.assert_array_equal(res.mu, reference["mu"])


@pytest.mark.parametrize("bpa", [(2, 1, 1), (2, 2, 2)])
def test_algorithm2_matches_to_roundoff(reference, bpa):
    """Communication hiding (Algorithm 2) does not alter the results."""
    res = run_distributed(reference, bpa, overlap=True)
    np.testing.assert_allclose(res.phi, reference["phi"], atol=1e-12)
    np.testing.assert_allclose(res.mu, reference["mu"], atol=1e-11)


def test_shortcut_kernel_distributed(reference):
    res = run_distributed(reference, (2, 2, 1), overlap=False, kernel="shortcut")
    np.testing.assert_allclose(res.phi, reference["phi"], atol=1e-11)


def test_comm_stats_collected(reference):
    res = run_distributed(reference, (2, 2, 1), overlap=False)
    assert len(res.stats) == 4
    for st in res.stats:
        assert st.comm_bytes > 0
        assert st.comm_messages > 0


def test_phi_messages_heavier_than_mu(reference):
    """'The amount of exchanged data is higher in the phi-communication'."""
    d = DistributedSimulation(
        SHAPE, (2, 2, 1), system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered",
    )

    # count bytes by field via the timers embedded in stats: run one step
    res = d.run(1, reference["phi0"], reference["mu0"])
    # phi has 4 components vs 2 for mu -> ratio of slab bytes is 2:1;
    # total bytes must reflect both fields
    assert all(st.comm_bytes > 0 for st in res.stats)


def test_overlap_requires_split_kernel(reference):
    with pytest.raises(ValueError, match="split"):
        DistributedSimulation(
            SHAPE, (2, 1, 1), system=reference["system"],
            params=reference["params"], kernel="basic", overlap=True,
        )


def test_bad_initial_shapes(reference):
    d = DistributedSimulation(
        SHAPE, (2, 1, 1), system=reference["system"], params=reference["params"],
    )
    with pytest.raises(ValueError, match="phi0"):
        d.run(1, np.zeros((4, 2, 2, 2)), reference["mu0"])
    with pytest.raises(ValueError, match="mu0"):
        d.run(1, reference["phi0"], np.zeros((2, 2, 2, 2)))
