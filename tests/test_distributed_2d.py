"""Distributed solver in 2-D (D2C5/D2C9 stencils over simmpi ranks)."""

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.core.solver import Simulation
from repro.distributed import DistributedSimulation
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (12, 20)
STEPS = 6


@pytest.fixture(scope="module")
def reference():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, SHAPE, solid_height=7, n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    sim = Simulation(shape=SHAPE, system=system, kernel="buffered")
    sim.initialize(phi0, mu0)
    sim.step(STEPS)
    return dict(system=system, phi0=phi0, mu0=mu0, params=sim.params,
                temperature=sim.temperature,
                phi=sim.phi.interior_src.copy(), mu=sim.mu.interior_src.copy())


@pytest.mark.parametrize("bpa", [(2, 1), (1, 2), (2, 2), (3, 1), (4, 2)])
def test_2d_decomposition_bitwise(reference, bpa):
    d = DistributedSimulation(
        SHAPE, bpa, system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered",
    )
    res = d.run(STEPS, reference["phi0"], reference["mu0"])
    np.testing.assert_array_equal(res.phi, reference["phi"])
    np.testing.assert_array_equal(res.mu, reference["mu"])


def test_2d_overlap_schedule(reference):
    d = DistributedSimulation(
        SHAPE, (2, 2), system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered", overlap=True,
    )
    res = d.run(STEPS, reference["phi0"], reference["mu0"])
    np.testing.assert_allclose(res.phi, reference["phi"], atol=1e-12)
    np.testing.assert_allclose(res.mu, reference["mu"], atol=1e-11)


def test_indivisible_blocks_rejected(reference):
    with pytest.raises(ValueError, match="evenly"):
        DistributedSimulation(SHAPE, (5, 1), system=reference["system"])
