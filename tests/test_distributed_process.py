"""Thread vs process backend: bitwise-identical distributed runs.

The ISSUE 5 acceptance criterion: a 4-rank ``DistributedSimulation``
must produce bitwise-identical fields on both simmpi backends — down to
the CRC32s recorded in sharded checkpoint manifests — because per-block
arithmetic cannot depend on where a rank executes.  Telemetry merging
(per-rank event files, cross-rank timing reduction) is exercised under
real processes too.
"""

import json
import zlib

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.resilience.store import ShardedCheckpointStore
from repro.telemetry import RunTelemetry
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (8, 8, 16)
STEPS = 4
N_RANKS = 4


@pytest.fixture(scope="module")
def initial_state():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, SHAPE, solid_height=5, n_seeds=5
    )
    phi0 = smooth_phase_field(phi0, 2)
    return system, phi0, mu0


def _run(initial_state, backend, *, bpa=(2, 2, 1), overlap=False,
         n_ranks=N_RANKS, **kwargs):
    system, phi0, mu0 = initial_state
    sim = DistributedSimulation(
        SHAPE, bpa, system=system, kernel="buffered", overlap=overlap,
        n_ranks=n_ranks, backend=backend,
    )
    return sim, sim.run(STEPS, phi0, mu0, **kwargs)


def _crc(arr):
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


class TestBitwiseEquivalence:
    def test_four_rank_run_bitwise_identical(self, initial_state):
        _, res_t = _run(initial_state, "thread")
        _, res_p = _run(initial_state, "process")
        np.testing.assert_array_equal(res_p.phi, res_t.phi)
        np.testing.assert_array_equal(res_p.mu, res_t.mu)
        assert _crc(res_p.phi) == _crc(res_t.phi)
        assert _crc(res_p.mu) == _crc(res_t.mu)

    def test_multiple_blocks_per_rank(self, initial_state):
        """2 ranks x 4 blocks: mixes same-rank copies with remote slabs."""
        _, res_t = _run(initial_state, "thread", n_ranks=2)
        _, res_p = _run(initial_state, "process", n_ranks=2)
        np.testing.assert_array_equal(res_p.phi, res_t.phi)
        np.testing.assert_array_equal(res_p.mu, res_t.mu)

    def test_overlap_schedule_matches(self, initial_state):
        """Algorithm 2 (deferred mu exchange) under real processes."""
        _, res_t = _run(initial_state, "thread", overlap=True)
        _, res_p = _run(initial_state, "process", overlap=True)
        np.testing.assert_array_equal(res_p.phi, res_t.phi)
        np.testing.assert_array_equal(res_p.mu, res_t.mu)

    def test_checkpoint_manifests_have_identical_crcs(
        self, initial_state, tmp_path
    ):
        manifests = {}
        for backend in ("thread", "process"):
            store = ShardedCheckpointStore(tmp_path / backend)
            _run(initial_state, backend, shard_store=store,
                 checkpoint_every=STEPS)
            with open(store.manifest_for(STEPS)) as fh:
                manifests[backend] = json.load(fh)

        def crc_table(manifest):
            return {
                name: meta["crc32"]
                for entry in manifest["shards"]
                for name, meta in entry["arrays"].items()
            }

        thread_crcs = crc_table(manifests["thread"])
        process_crcs = crc_table(manifests["process"])
        assert thread_crcs  # one phi + one mu entry per block
        assert process_crcs == thread_crcs


class TestTelemetryUnderProcesses:
    def test_events_and_timing_merge_across_processes(
        self, initial_state, tmp_path
    ):
        telemetry = RunTelemetry(directory=tmp_path, run_id="proc-test")
        _, res = _run(initial_state, "process", telemetry=telemetry)

        # every rank's event file was written by its own process
        rank_files = sorted(tmp_path.glob("events-rank*.jsonl"))
        assert len(rank_files) == N_RANKS
        merged = telemetry.merge_events()
        kinds = {e["kind"] for e in merged}
        assert {"run_start", "run_end"} <= kinds
        assert {e["rank"] for e in merged} == set(range(N_RANKS))

        # the cross-rank timing reduction ran inside the SPMD region
        assert res.timing is not None
        top = set(res.timing["children"])
        assert {"compute", "comm"} <= top
        comp = res.timing["children"]["compute"]
        assert comp["children"]["phi"]["count"] == STEPS * N_RANKS
        assert comp["children"]["phi"]["total"] > 0.0

        # counters were summed over ranks (each rank counted its halo)
        assert res.counters["halo_bytes"] > 0
        assert res.counters["halo_messages"] >= 2 * N_RANKS

        # the run report is written and schema-valid
        report_file = tmp_path / "report-proc-test.json"
        assert report_file.exists()
        report = json.loads(report_file.read_text())
        assert report["config"]["backend"] == "process"
        assert report["ranks"] == N_RANKS

    def test_thread_and_process_reports_agree_on_structure(
        self, initial_state, tmp_path
    ):
        structures = {}
        for backend in ("thread", "process"):
            telemetry = RunTelemetry(directory=tmp_path / backend,
                                     run_id=backend)
            _, res = _run(initial_state, backend, telemetry=telemetry)
            structures[backend] = (
                sorted(res.timing["children"]),
                sorted(res.counters),
            )
        assert structures["thread"] == structures["process"]
