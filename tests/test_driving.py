"""Tests of the grand-potential driving force."""

import numpy as np
import pytest

from repro.core.driving import driving_force, grand_potential_density
from repro.core.interpolation import moelans_h
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture(scope="module")
def system():
    return TernaryEutecticSystem()


class TestDrivingForce:
    def test_zero_in_bulk(self, system):
        phi = np.zeros((4, 2))
        phi[0] = 1.0
        mu = np.zeros((2, 2))
        d = driving_force(system, phi, mu, system.t_eutectic - 3.0)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_zero_at_eutectic_equilibrium(self, system):
        """At (T_E, mu*) all grand potentials are equal: no driving force."""
        rng = np.random.default_rng(0)
        phi = rng.uniform(0.1, 1.0, size=(4, 3))
        phi /= phi.sum(axis=0)
        mu = np.zeros((2, 3))
        d = driving_force(system, phi, mu, system.t_eutectic)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_undercooling_favours_solid(self, system):
        """Below T_E at a solid-liquid interface, the force pushes phi_s up.

        The phase update is phi_dot ~ -(d_a - mean), so growth of the solid
        requires d_solid < d_liquid.
        """
        ell = system.liquid_index
        s = system.phase_set.solid_indices[0]
        phi = np.zeros((4, 1))
        phi[s] = 0.5
        phi[ell] = 0.5
        mu = np.zeros((2, 1))
        d = driving_force(system, phi, mu, system.t_eutectic - 3.0)
        assert d[s, 0] < d[ell, 0]

    def test_superheating_favours_liquid(self, system):
        ell = system.liquid_index
        s = system.phase_set.solid_indices[1]
        phi = np.zeros((4, 1))
        phi[s] = 0.5
        phi[ell] = 0.5
        mu = np.zeros((2, 1))
        d = driving_force(system, phi, mu, system.t_eutectic + 3.0)
        assert d[ell, 0] < d[s, 0]

    def test_matches_finite_difference_of_density(self, system):
        rng = np.random.default_rng(5)
        phi = rng.uniform(0.1, 0.9, size=(4, 1))
        mu = rng.normal(scale=0.1, size=(2, 1))
        t = system.t_eutectic - 1.0
        d = driving_force(system, phi, mu, t)
        eps = 1e-7
        for a in range(4):
            dp = np.zeros((4, 1))
            dp[a] = eps
            num = (
                grand_potential_density(system, phi + dp, mu, t)
                - grand_potential_density(system, phi - dp, mu, t)
            ) / (2 * eps)
            assert d[a, 0] == pytest.approx(num[0], abs=1e-6)

    def test_precomputed_psi_path(self, system):
        rng = np.random.default_rng(6)
        phi = rng.uniform(0.1, 0.9, size=(4, 2))
        mu = rng.normal(scale=0.1, size=(2, 2))
        t = system.t_eutectic - 2.0
        psi = system.grand_potentials(mu, t)
        d1 = driving_force(system, phi, mu, t)
        d2 = driving_force(system, phi, mu, t, psi=psi)
        np.testing.assert_allclose(d1, d2, atol=1e-14)


class TestGrandPotentialDensity:
    def test_pure_phase_value(self, system):
        phi = np.zeros((4, 1))
        phi[2] = 1.0
        mu = np.array([0.1, -0.2]).reshape(2, 1)
        t = system.t_eutectic + 1.0
        val = grand_potential_density(system, phi, mu, t)
        expected = system.free_energy(2).grand_potential(mu[:, 0], t)
        assert val[0] == pytest.approx(float(expected))

    def test_interpolation_consistency(self, system):
        rng = np.random.default_rng(7)
        phi = rng.uniform(0.1, 0.9, size=(4, 1))
        mu = np.zeros((2, 1))
        t = system.t_eutectic - 0.5
        h = moelans_h(phi)
        psi = system.grand_potentials(mu, t)
        expected = float((h * psi).sum())
        assert grand_potential_density(system, phi, mu, t)[0] == pytest.approx(expected)
