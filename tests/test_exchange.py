"""Tests of the distributed ghost-layer exchange."""

import numpy as np
import pytest

from repro.distributed.exchange import ExchangeTimer, exchange_ghosts
from repro.grid.boundary import BoundarySpec, Dirichlet, Neumann
from repro.simmpi import CartComm, run_spmd


def _global_field(shape, comps=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(comps,) + shape)


@pytest.mark.parametrize("dims", [(2, 1), (2, 2), (4, 1), (1, 3)])
def test_exchange_reproduces_global_ghosts(dims):
    """Each block's ghost layers must equal the global field's values
    (periodic x, Neumann/Dirichlet z)."""
    shape = (8, 12)
    comps = 2
    global_field = _global_field(shape, comps)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Dirichlet(1.5))
    bx, bz = shape[0] // dims[0], shape[1] // dims[1]

    # reference: single ghosted array with BC + periodic wrap applied
    ref = np.zeros((comps, shape[0] + 2, shape[1] + 2))
    ref[:, 1:-1, 1:-1] = global_field
    ref[:, 0, :] = ref[:, -2, :]
    ref[:, -1, :] = ref[:, 1, :]
    from repro.grid.boundary import apply_boundaries

    ref2 = np.zeros_like(ref)
    ref2[:, 1:-1, 1:-1] = global_field
    apply_boundaries(ref2, spec)

    n = dims[0] * dims[1]

    def fn(comm):
        cart = CartComm(comm, dims, (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((comps, bx + 2, bz + 2))
        loc[:, 1:-1, 1:-1] = global_field[
            :, cx * bx : (cx + 1) * bx, cz * bz : (cz + 1) * bz
        ]
        timer = ExchangeTimer()
        exchange_ghosts(cart, loc, 2, spec, timer=timer)
        return loc, timer.bytes, (cx, cz)

    results = run_spmd(n, fn)
    for loc, nbytes, (cx, cz) in results:
        assert nbytes > 0
        # compare the block's ghosted view against the global reference:
        # global ghosted coordinates of block interior start
        gx = cx * bx
        gz = cz * bz
        expected = ref2[:, gx : gx + bx + 2, gz : gz + bz + 2]
        # interior rows of expected come straight from ref2's interior;
        # but interior-of-domain ghosts are neighbour values, which ref2
        # does not hold at interior cuts -- so compare against the plain
        # periodic-padded global field where possible
        full = np.zeros_like(ref2)
        full[:, 1:-1, 1:-1] = global_field
        apply_boundaries(full, spec)
        # fill the periodic wrap of x explicitly on full
        full[:, 0, 1:-1] = global_field[:, -1, :]
        full[:, -1, 1:-1] = global_field[:, 0, :]
        exp = full[:, gx : gx + bx + 2, gz : gz + bz + 2]
        np.testing.assert_allclose(loc[:, 1:-1, 1:-1], exp[:, 1:-1, 1:-1])
        # face ghosts along x (periodic or neighbour)
        np.testing.assert_allclose(loc[:, 0, 1:-1], np.take(
            global_field, (gx - 1) % shape[0], axis=1)[:, gz : gz + bz])
        np.testing.assert_allclose(loc[:, -1, 1:-1], np.take(
            global_field, (gx + bx) % shape[0], axis=1)[:, gz : gz + bz])


def test_corner_ghosts_consistent():
    """Edge/corner ghost cells must carry the diagonal neighbour's data
    (required by the D3C19 accesses)."""
    shape = (6, 6)
    field = _global_field(shape, comps=1, seed=4)
    spec = BoundarySpec.directional(2)

    def fn(comm):
        cart = CartComm(comm, (2, 2), (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((1, 5, 5))
        loc[:, 1:-1, 1:-1] = field[:, cx * 3 : cx * 3 + 3, cz * 3 : cz * 3 + 3]
        exchange_ghosts(cart, loc, 2, spec)
        return loc, (cx, cz)

    results = run_spmd(4, fn)
    loc, coords = results[0]  # block (0, 0)
    assert coords == (0, 0)
    # its top-right corner ghost = global cell (3, 3) (diagonal neighbour)
    assert loc[0, -1, -1] == pytest.approx(field[0, 3, 3])


def _large_slab_exchange(comm, shape, comps):
    """Two ranks splitting a periodic axis: every slab goes both ways."""
    cart = CartComm(comm, (2, 1), (True, False))
    cx, _ = cart.coords()
    bx = shape[0] // 2
    loc = np.zeros((comps, bx + 2, shape[1] + 2))
    loc[:, 1:-1, 1:-1] = float(comm.rank + 1)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Neumann())
    exchange_ghosts(cart, loc, 2, spec)
    return float(loc[0, 0, 1]), float(loc[0, -1, 1])


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_large_message_exchange_both_backends(backend):
    """Slabs far beyond the inline threshold (shared-memory staging on
    the process backend) exchanged symmetrically.

    Regression for the send-before-irecv ordering bug: with bounded
    channels, a symmetric exchange of slabs larger than the channel
    capacity only completes because receives are now posted first.
    """
    from repro.simmpi.transport import INLINE_MAX

    comps = 4
    # slab = comps * 1 * (nz + 2) doubles; pick nz so it dwarfs INLINE_MAX
    nz = int(INLINE_MAX) // 4
    shape = (8, nz)
    out = run_spmd(2, _large_slab_exchange, shape, comps, backend=backend)
    # each rank's x-ghosts hold the peer's edge values (periodic wrap)
    assert out[0] == (2.0, 2.0)
    assert out[1] == (1.0, 1.0)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_exchange_correct_on_both_backends(backend):
    """Value-exact ghost fill on a 4-rank 2x2 topology, either backend."""
    shape = (8, 8)
    field = _global_field(shape, comps=1, seed=11)
    spec = BoundarySpec.directional(2)

    def fn(comm):
        cart = CartComm(comm, (2, 2), (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((1, 6, 6))
        loc[:, 1:-1, 1:-1] = field[:, cx * 4 : cx * 4 + 4, cz * 4 : cz * 4 + 4]
        exchange_ghosts(cart, loc, 2, spec)
        return loc, (cx, cz)

    results = run_spmd(4, fn, backend=backend)
    for loc, (cx, cz) in results:
        # x-face ghosts are the periodic neighbour's edge columns
        np.testing.assert_array_equal(
            loc[0, 0, 1:-1],
            field[0, (cx * 4 - 1) % 8, cz * 4 : cz * 4 + 4],
        )
        np.testing.assert_array_equal(
            loc[0, -1, 1:-1],
            field[0, (cx * 4 + 4) % 8, cz * 4 : cz * 4 + 4],
        )


def _ghost2_exchange(comm, field, shape):
    """Two ranks on a periodic axis, ghost width 2."""
    g = 2
    cart = CartComm(comm, (2, 1), (True, False))
    cx, _ = cart.coords()
    bx = shape[0] // 2
    loc = np.zeros((1, bx + 2 * g, shape[1] + 2 * g))
    loc[:, g:-g, g:-g] = field[:, cx * bx : (cx + 1) * bx, :]
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Neumann())
    exchange_ghosts(cart, loc, 2, spec, ghost=g)
    return loc, cx


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_ghost_width_two_exchange_both_backends(backend):
    """Ghost width 2 must carry TWO interior edge layers, not one.

    Regression for the hardcoded-width bug: the seed's ``exchange_ghosts``
    never accepted a ghost width, so any field with ``ghost != 1`` was
    silently corrupted (wrong slabs sent, wrong slabs filled).
    """
    shape = (8, 6)
    field = _global_field(shape, comps=1, seed=7)
    out = run_spmd(2, _ghost2_exchange, field, shape, backend=backend)
    for loc, cx in out:
        bx = 4
        # Both low-ghost layers equal the periodic neighbour's TOP TWO
        # interior layers, in order; both high-ghost layers its bottom two.
        for j, row in enumerate(range(-2, 0)):
            np.testing.assert_array_equal(
                loc[0, j, 2:-2],
                field[0, (cx * bx + row) % shape[0], :],
            )
        for j, row in enumerate(range(bx, bx + 2)):
            np.testing.assert_array_equal(
                loc[0, -2 + j, 2:-2],
                field[0, (cx * bx + row) % shape[0], :],
            )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_ghost_width_two_block_exchange(backend):
    """Ghost width 2 through the block-forest routine, remote neighbours."""
    from repro.distributed.exchange import exchange_block_ghosts
    from repro.grid.blockforest import BlockForest

    g = 2
    shape = (8, 6)
    field = _global_field(shape, comps=1, seed=3)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Neumann())
    forest = BlockForest(shape, (2, 1), (True, False))
    owner = [0, 1]

    def fn(comm):
        arrays = {}
        for b in forest.blocks:
            if owner[b.id] != comm.rank:
                continue
            arr = np.zeros((1, b.shape[0] + 2 * g, b.shape[1] + 2 * g))
            sl = tuple(slice(o, o + s) for o, s in zip(b.offset, b.shape))
            arr[:, g:-g, g:-g] = field[(slice(None),) + sl]
            arrays[b.id] = arr
        exchange_block_ghosts(comm, forest, owner, arrays, 2, spec, ghost=g)
        return arrays

    out = run_spmd(2, fn, backend=backend)
    for rank, arrays in enumerate(out):
        for bid, arr in arrays.items():
            x0 = forest.blocks[bid].offset[0]
            for j, row in enumerate(range(-2, 0)):
                np.testing.assert_array_equal(
                    arr[0, j, 2:-2], field[0, (x0 + row) % shape[0], :]
                )


def test_unsupported_ghost_width_raises():
    """Widths the slab geometry cannot express fail loudly, not silently."""
    spec = BoundarySpec.directional(2)

    def fn(comm):
        cart = CartComm(comm, (1, 1), (True, False))
        ok = np.zeros((1, 8, 8))
        with pytest.raises(ValueError, match="ghost width"):
            # extent 8 < 3*3: fewer interior cells than ghost layers
            exchange_ghosts(cart, ok, 2, spec, ghost=3)
        with pytest.raises(ValueError, match="ghost width"):
            exchange_ghosts(cart, ok, 2, spec, ghost=0)
        return True

    assert run_spmd(1, fn) == [True]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_cart_halo_registry_matches_legacy(backend):
    """exchange_ghosts through registered channels == staged messages."""
    from repro.distributed.halo import CartHaloRegistry

    shape = (8, 8)
    field = _global_field(shape, comps=2, seed=13)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Dirichlet(0.5))

    def fn(comm, use_halo):
        cart = CartComm(comm, (2, 2), (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((2, 6, 6))
        loc[:, 1:-1, 1:-1] = field[:, cx * 4 : cx * 4 + 4, cz * 4 : cz * 4 + 4]
        halo = None
        if use_halo:
            halo = CartHaloRegistry(cart, 2, (4, 4), streams=[(2, 1)])
            assert halo.n_channels > 0
        for _ in range(2):   # two rounds: exercises slot double buffering
            exchange_ghosts(cart, loc, 2, spec, halo=halo)
        return loc

    legacy = run_spmd(4, fn, False, backend=backend)
    halo = run_spmd(4, fn, True, backend=backend)
    for a, b in zip(halo, legacy):
        np.testing.assert_array_equal(a, b)


def test_timer_accumulates():
    def fn(comm):
        cart = CartComm(comm, (2,), (True,))
        loc = np.zeros((1, 6))
        loc[0, 1:-1] = comm.rank
        timer = ExchangeTimer()
        spec = BoundarySpec(handlers=((Neumann(), Neumann()),))
        # periodic axis: neighbours exist, handlers unused
        exchange_ghosts(cart, loc, 1, spec, timer=timer)
        exchange_ghosts(cart, loc, 1, spec, timer=timer)
        return timer

    timers = run_spmd(2, fn)
    assert timers[0].messages == 4
    assert timers[0].seconds > 0
