"""Tests of the distributed ghost-layer exchange."""

import numpy as np
import pytest

from repro.distributed.exchange import ExchangeTimer, exchange_ghosts
from repro.grid.boundary import BoundarySpec, Dirichlet, Neumann
from repro.simmpi import CartComm, run_spmd


def _global_field(shape, comps=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(comps,) + shape)


@pytest.mark.parametrize("dims", [(2, 1), (2, 2), (4, 1), (1, 3)])
def test_exchange_reproduces_global_ghosts(dims):
    """Each block's ghost layers must equal the global field's values
    (periodic x, Neumann/Dirichlet z)."""
    shape = (8, 12)
    comps = 2
    global_field = _global_field(shape, comps)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Dirichlet(1.5))
    bx, bz = shape[0] // dims[0], shape[1] // dims[1]

    # reference: single ghosted array with BC + periodic wrap applied
    ref = np.zeros((comps, shape[0] + 2, shape[1] + 2))
    ref[:, 1:-1, 1:-1] = global_field
    ref[:, 0, :] = ref[:, -2, :]
    ref[:, -1, :] = ref[:, 1, :]
    from repro.grid.boundary import apply_boundaries

    ref2 = np.zeros_like(ref)
    ref2[:, 1:-1, 1:-1] = global_field
    apply_boundaries(ref2, spec)

    n = dims[0] * dims[1]

    def fn(comm):
        cart = CartComm(comm, dims, (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((comps, bx + 2, bz + 2))
        loc[:, 1:-1, 1:-1] = global_field[
            :, cx * bx : (cx + 1) * bx, cz * bz : (cz + 1) * bz
        ]
        timer = ExchangeTimer()
        exchange_ghosts(cart, loc, 2, spec, timer=timer)
        return loc, timer.bytes, (cx, cz)

    results = run_spmd(n, fn)
    for loc, nbytes, (cx, cz) in results:
        assert nbytes > 0
        # compare the block's ghosted view against the global reference:
        # global ghosted coordinates of block interior start
        gx = cx * bx
        gz = cz * bz
        expected = ref2[:, gx : gx + bx + 2, gz : gz + bz + 2]
        # interior rows of expected come straight from ref2's interior;
        # but interior-of-domain ghosts are neighbour values, which ref2
        # does not hold at interior cuts -- so compare against the plain
        # periodic-padded global field where possible
        full = np.zeros_like(ref2)
        full[:, 1:-1, 1:-1] = global_field
        apply_boundaries(full, spec)
        # fill the periodic wrap of x explicitly on full
        full[:, 0, 1:-1] = global_field[:, -1, :]
        full[:, -1, 1:-1] = global_field[:, 0, :]
        exp = full[:, gx : gx + bx + 2, gz : gz + bz + 2]
        np.testing.assert_allclose(loc[:, 1:-1, 1:-1], exp[:, 1:-1, 1:-1])
        # face ghosts along x (periodic or neighbour)
        np.testing.assert_allclose(loc[:, 0, 1:-1], np.take(
            global_field, (gx - 1) % shape[0], axis=1)[:, gz : gz + bz])
        np.testing.assert_allclose(loc[:, -1, 1:-1], np.take(
            global_field, (gx + bx) % shape[0], axis=1)[:, gz : gz + bz])


def test_corner_ghosts_consistent():
    """Edge/corner ghost cells must carry the diagonal neighbour's data
    (required by the D3C19 accesses)."""
    shape = (6, 6)
    field = _global_field(shape, comps=1, seed=4)
    spec = BoundarySpec.directional(2)

    def fn(comm):
        cart = CartComm(comm, (2, 2), (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((1, 5, 5))
        loc[:, 1:-1, 1:-1] = field[:, cx * 3 : cx * 3 + 3, cz * 3 : cz * 3 + 3]
        exchange_ghosts(cart, loc, 2, spec)
        return loc, (cx, cz)

    results = run_spmd(4, fn)
    loc, coords = results[0]  # block (0, 0)
    assert coords == (0, 0)
    # its top-right corner ghost = global cell (3, 3) (diagonal neighbour)
    assert loc[0, -1, -1] == pytest.approx(field[0, 3, 3])


def _large_slab_exchange(comm, shape, comps):
    """Two ranks splitting a periodic axis: every slab goes both ways."""
    cart = CartComm(comm, (2, 1), (True, False))
    cx, _ = cart.coords()
    bx = shape[0] // 2
    loc = np.zeros((comps, bx + 2, shape[1] + 2))
    loc[:, 1:-1, 1:-1] = float(comm.rank + 1)
    spec = BoundarySpec.directional(2, bottom=Neumann(), top=Neumann())
    exchange_ghosts(cart, loc, 2, spec)
    return float(loc[0, 0, 1]), float(loc[0, -1, 1])


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_large_message_exchange_both_backends(backend):
    """Slabs far beyond the inline threshold (shared-memory staging on
    the process backend) exchanged symmetrically.

    Regression for the send-before-irecv ordering bug: with bounded
    channels, a symmetric exchange of slabs larger than the channel
    capacity only completes because receives are now posted first.
    """
    from repro.simmpi.transport import INLINE_MAX

    comps = 4
    # slab = comps * 1 * (nz + 2) doubles; pick nz so it dwarfs INLINE_MAX
    nz = int(INLINE_MAX) // 4
    shape = (8, nz)
    out = run_spmd(2, _large_slab_exchange, shape, comps, backend=backend)
    # each rank's x-ghosts hold the peer's edge values (periodic wrap)
    assert out[0] == (2.0, 2.0)
    assert out[1] == (1.0, 1.0)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_exchange_correct_on_both_backends(backend):
    """Value-exact ghost fill on a 4-rank 2x2 topology, either backend."""
    shape = (8, 8)
    field = _global_field(shape, comps=1, seed=11)
    spec = BoundarySpec.directional(2)

    def fn(comm):
        cart = CartComm(comm, (2, 2), (True, False))
        cx, cz = cart.coords()
        loc = np.zeros((1, 6, 6))
        loc[:, 1:-1, 1:-1] = field[:, cx * 4 : cx * 4 + 4, cz * 4 : cz * 4 + 4]
        exchange_ghosts(cart, loc, 2, spec)
        return loc, (cx, cz)

    results = run_spmd(4, fn, backend=backend)
    for loc, (cx, cz) in results:
        # x-face ghosts are the periodic neighbour's edge columns
        np.testing.assert_array_equal(
            loc[0, 0, 1:-1],
            field[0, (cx * 4 - 1) % 8, cz * 4 : cz * 4 + 4],
        )
        np.testing.assert_array_equal(
            loc[0, -1, 1:-1],
            field[0, (cx * 4 + 4) % 8, cz * 4 : cz * 4 + 4],
        )


def test_timer_accumulates():
    def fn(comm):
        cart = CartComm(comm, (2,), (True,))
        loc = np.zeros((1, 6))
        loc[0, 1:-1] = comm.rank
        timer = ExchangeTimer()
        spec = BoundarySpec(handlers=((Neumann(), Neumann()),))
        # periodic axis: neighbours exist, handlers unused
        exchange_ghosts(cart, loc, 1, spec, timer=timer)
        exchange_ghosts(cart, loc, 1, spec, timer=timer)
        return timer

    timers = run_spmd(2, fn)
    assert timers[0].messages == 4
    assert timers[0].seconds > 0
