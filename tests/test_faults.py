"""Fault-injected recovery suite (``pytest -m faults``).

Each test prints the fault plan (including its seed) so a failure report
carries everything needed to reproduce the exact schedule.
"""

import time as _time

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.resilience import (
    FAULT_KINDS,
    CheckpointStore,
    DivergenceError,
    Fault,
    FaultPlan,
    FaultyComm,
    InjectedFault,
    RetryPolicy,
    ShardedCheckpointStore,
    run_campaign,
)
from repro.simmpi.runtime import run_spmd, run_spmd_resilient
from repro.thermo.system import TernaryEutecticSystem

pytestmark = pytest.mark.faults

SHAPE = (12, 20)
STEPS = 8
SEED = 20150817  # printed via FaultPlan.describe on failure


@pytest.fixture(scope="module")
def setup():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, SHAPE, solid_height=7, n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    dsim = DistributedSimulation(SHAPE, (2, 1), system=system, kernel="buffered")
    reference = dsim.run(STEPS, phi0, mu0)
    return dsim, phi0, mu0, reference


class TestFaultPlan:
    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(SEED, steps=10, n_ranks=4, n_faults=3)
        b = FaultPlan.random(SEED, steps=10, n_ranks=4, n_faults=3)
        assert a.faults == b.faults
        c = FaultPlan.random(SEED + 1, steps=10, n_ranks=4, n_faults=3)
        assert a.faults != c.faults

    def test_faults_fire_once(self):
        plan = FaultPlan([Fault(kind="nan_inject", step=2)], seed=SEED)
        assert plan.fires("nan_inject", step=2) is not None
        assert plan.fires("nan_inject", step=2) is None
        assert plan.pending() == []
        assert len(plan.fired()) == 1

    def test_rank_matching(self):
        plan = FaultPlan([Fault(kind="rank_kill", step=1, rank=2)], seed=SEED)
        assert plan.fires("rank_kill", step=1, rank=0) is None
        assert plan.fires("rank_kill", step=1, rank=2) is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor_strike", step=1)

    def test_describe_names_seed(self):
        plan = FaultPlan([Fault(kind="msg_drop", step=3, rank=1)], seed=SEED)
        text = plan.describe()
        assert str(SEED) in text and "msg_drop" in text

    def test_hang_fault_kinds_exist(self):
        for kind in ("rank_stall", "rank_slow", "ack_drop"):
            assert kind in FAULT_KINDS
            Fault(kind=kind, step=1)  # accepted by the validator

    def test_mark_fired_mirrors_a_remote_fire(self):
        # The process backend replays child-side fires into the parent's
        # plan copy so a campaign restart does not re-fire them.
        plan = FaultPlan([Fault(kind="rank_stall", step=5, rank=2)], seed=SEED)
        assert plan.mark_fired("rank_stall", 5, 2) is True
        assert plan.mark_fired("rank_stall", 5, 2) is False  # already spent
        assert plan.fires("rank_stall", step=5, rank=2) is None
        assert len(plan.fired()) == 1

    def test_on_fire_callback_reports_each_fire(self):
        plan = FaultPlan([Fault(kind="nan_inject", step=2)], seed=SEED)
        seen = []
        plan.on_fire = seen.append
        plan.fires("nan_inject", step=2)
        assert seen == [("nan_inject", 2, None)]


class TestRecoveryMatrix:
    """Acceptance matrix: every fault kind recovers to the unfaulted result."""

    @pytest.mark.parametrize(
        "faults",
        [
            pytest.param([Fault(kind="rank_kill", step=5, rank=1)],
                         id="rank-kill"),
            pytest.param([Fault(kind="msg_corrupt", step=4, rank=0)],
                         id="corrupted-ghost-message"),
            pytest.param([Fault(kind="ckpt_truncate", step=6),
                          Fault(kind="rank_kill", step=7, rank=0)],
                         id="truncated-checkpoint"),
            pytest.param([Fault(kind="nan_inject", step=4, rank=1)],
                         id="nan-blow-up"),
        ],
    )
    def test_campaign_recovers_and_matches(self, setup, tmp_path, faults):
        dsim, phi0, mu0, reference = setup
        plan = FaultPlan(faults, seed=SEED)
        print(plan.describe())
        store = CheckpointStore(tmp_path, keep=3, fault_plan=plan)
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=3, fault_plan=plan,
        )
        assert result.restarts >= 1
        assert result.steps == STEPS
        assert len(result.faults_fired) == len(faults)
        # recovered run matches the unfaulted one within float32
        # restart rounding
        np.testing.assert_allclose(result.phi, reference.phi, atol=1e-5)
        np.testing.assert_allclose(result.mu, reference.mu, atol=1e-5)

    def test_delayed_message_does_not_stall_the_sender(self):
        # regression (ISSUE 7): msg_delay used to sleep inline on the
        # sending rank, stalling it — the opposite of a *late delivery*.
        plan = FaultPlan([Fault(kind="msg_delay", step=0, rank=0,
                                delay=0.4)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            if comm.rank == 0:
                t0 = _time.monotonic()
                fc.send(np.arange(5.0), dest=1, tag=9)
                return _time.monotonic() - t0
            return comm.recv(0, tag=9)

        results = run_spmd(2, fn)
        assert results[0] < 0.3  # the send returned without the lag
        np.testing.assert_array_equal(results[1], np.arange(5.0))

    def test_delayed_message_is_harmless(self, setup, tmp_path):
        dsim, phi0, mu0, reference = setup
        plan = FaultPlan([Fault(kind="msg_delay", step=4, rank=0)], seed=SEED)
        print(plan.describe())
        store = CheckpointStore(tmp_path, keep=3)
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=3, fault_plan=plan,
        )
        assert result.restarts == 0
        np.testing.assert_array_equal(result.phi, reference.phi)
        np.testing.assert_array_equal(result.mu, reference.mu)

    def test_restart_budget_exhaustion_raises_structured(self, setup, tmp_path):
        dsim, phi0, mu0, _ = setup
        # more kills than the budget allows
        plan = FaultPlan(
            [Fault(kind="rank_kill", step=2, rank=0) for _ in range(4)],
            seed=SEED,
        )
        print(plan.describe())
        store = CheckpointStore(tmp_path, keep=3)
        with pytest.raises(DivergenceError) as info:
            run_campaign(
                dsim, STEPS, phi0, mu0,
                store=store, checkpoint_every=3,
                fault_plan=plan, max_restarts=2,
            )
        assert info.value.attempts == 2


class TestSpmdRetry:
    def test_run_spmd_annotates_failing_rank(self):
        def fn(comm):
            if comm.rank == 1:
                raise InjectedFault("rank_kill", rank=comm.rank)
            comm.barrier()

        with pytest.raises(InjectedFault) as info:
            run_spmd(2, fn)
        assert info.value.simmpi_rank == 1

    def test_run_spmd_resilient_retries_with_fresh_args(self):
        plan = FaultPlan([Fault(kind="rank_kill", step=0, rank=0)], seed=SEED)
        attempts_seen = []

        def fn(comm, attempt):
            fault = plan.fires("rank_kill", step=0, rank=comm.rank)
            if fault is not None:
                raise InjectedFault("rank_kill", rank=comm.rank)
            return (comm.rank, attempt)

        def make_args(attempt, last_exc):
            attempts_seen.append((attempt, type(last_exc).__name__))
            return (attempt,), {}

        results = run_spmd_resilient(2, fn, make_args, max_attempts=3)
        assert results == [(0, 1), (1, 1)]
        assert attempts_seen[0] == (0, "NoneType")
        assert attempts_seen[1][1] in ("InjectedFault", "RemoteError")

    def test_run_spmd_resilient_exhausts(self):
        def fn(comm):
            raise RuntimeError("always broken")

        with pytest.raises(RuntimeError, match="always broken"):
            run_spmd_resilient(1, fn, lambda a, e: ((), {}), max_attempts=2)


class TestFaultyComm:
    def test_drop_raises_on_sender(self):
        plan = FaultPlan([Fault(kind="msg_drop", step=0, rank=0)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            if comm.rank == 0:
                fc.send(np.ones(3), dest=1, tag=9)
            else:
                return comm.recv(0, tag=9)

        with pytest.raises(InjectedFault, match="msg_drop"):
            run_spmd(2, fn)

    def test_corrupt_poisons_payload(self):
        plan = FaultPlan([Fault(kind="msg_corrupt", step=0, rank=0)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            if comm.rank == 0:
                fc.send(np.ones(6), dest=1, tag=9)
                return None
            return comm.recv(0, tag=9)

        results = run_spmd(2, fn)
        assert np.isnan(results[1]).any()
        assert not np.isnan(results[1]).all()

    # regression: message faults must hit every outgoing path, not just
    # blocking send — the overlap schedule uses isend, collectives carry
    # checkpoint entries and reductions

    def test_isend_drop_raises_on_sender(self):
        plan = FaultPlan([Fault(kind="msg_drop", step=0, rank=0)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            if comm.rank == 0:
                req = fc.isend(np.ones(3), dest=1, tag=9)
                req.wait()
            else:
                return comm.recv(0, tag=9)

        with pytest.raises(InjectedFault, match="msg_drop"):
            run_spmd(2, fn)

    def test_sendrecv_corrupts_outgoing_payload(self):
        plan = FaultPlan([Fault(kind="msg_corrupt", step=0, rank=0)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            other = 1 - comm.rank
            return fc.sendrecv(np.ones(6), dest=other, source=other, sendtag=9)

        results = run_spmd(2, fn)
        # rank 0's outgoing payload was poisoned, so rank 1 received NaNs;
        # rank 0 received rank 1's clean payload
        assert not np.isnan(results[0]).any()
        assert np.isnan(results[1]).any()

    def test_bcast_corrupts_at_root_only(self):
        plan = FaultPlan([Fault(kind="msg_corrupt", step=0, rank=0)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            obj = np.ones(6) if comm.rank == 0 else None
            return fc.bcast(obj, root=0)

        results = run_spmd(3, fn)
        for received in results:
            assert np.isnan(received).any()

    def test_allreduce_drop_raises(self):
        plan = FaultPlan([Fault(kind="msg_drop", step=0, rank=1)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            return fc.allreduce(np.ones(3))

        with pytest.raises(InjectedFault, match="msg_drop"):
            run_spmd(2, fn)

    def test_gather_corrupts_contribution(self):
        plan = FaultPlan([Fault(kind="msg_corrupt", step=0, rank=1)], seed=SEED)

        def fn(comm):
            fc = FaultyComm(comm, plan)
            return fc.gather(np.ones(6), root=0)

        results = run_spmd(2, fn)
        gathered = results[0]
        assert not np.isnan(gathered[0]).any()
        assert np.isnan(gathered[1]).any()


class TestElasticCampaign:
    """kill_rank shrinks the campaign; checkpoint I/O faults are retried."""

    def _sim(self):
        system = TernaryEutecticSystem()
        phi0, mu0 = voronoi_initial_condition(
            system, SHAPE, solid_height=7, n_seeds=4
        )
        phi0 = smooth_phase_field(phi0, 2)
        dsim = DistributedSimulation(
            SHAPE, (2, 2), system=system, kernel="buffered"
        )
        return dsim, phi0, mu0

    def test_kill_rank_shrinks_and_finishes(self, tmp_path):
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan([Fault(kind="kill_rank", step=3, rank=1)], seed=SEED)
        print(plan.describe())
        store = ShardedCheckpointStore(tmp_path, fault_plan=plan)
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        assert result.steps == STEPS
        assert result.shrinks == 1
        assert result.final_ranks == 3
        assert result.restarts == 1
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_allclose(result.phi, ref.phi, atol=1e-5)

    def test_repeated_kills_shrink_to_one_rank(self, tmp_path):
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan(
            [Fault(kind="kill_rank", step=3, rank=1),
             Fault(kind="kill_rank", step=5, rank=2),
             Fault(kind="kill_rank", step=6, rank=1)],
            seed=SEED,
        )
        print(plan.describe())
        store = ShardedCheckpointStore(tmp_path, fault_plan=plan)
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        assert result.steps == STEPS
        assert result.shrinks == 3
        assert result.final_ranks == 1
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_allclose(result.phi, ref.phi, atol=1e-5)

    def test_transient_io_faults_retried_without_restart(self, tmp_path):
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan(
            [Fault(kind="io_enospc", step=2, rank=1),
             Fault(kind="io_torn_write", step=2, rank=3)],
            seed=SEED,
        )
        print(plan.describe())
        store = ShardedCheckpointStore(
            tmp_path, fault_plan=plan,
            retry_policy=RetryPolicy(attempts=4, base_delay=1e-4),
        )
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        assert result.restarts == 0
        assert result.io_retries >= 2
        assert result.checkpoints_skipped == 0
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_array_equal(result.phi, ref.phi)

    def test_persistent_io_outage_skips_checkpoint_never_crashes(
        self, tmp_path
    ):
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan(
            [Fault(kind="io_enospc", step=2, rank=1) for _ in range(8)],
            seed=SEED,
        )
        print(plan.describe())
        store = ShardedCheckpointStore(
            tmp_path, fault_plan=plan,
            retry_policy=RetryPolicy(attempts=3, base_delay=1e-4),
        )
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        assert result.restarts == 0
        assert result.checkpoints_skipped == 1
        assert 2 not in store.steps()  # the outage generation was skipped
        assert store.steps()[-1] == STEPS
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_array_equal(result.phi, ref.phi)

    def test_rank_slow_below_hang_threshold_is_harmless(self, tmp_path):
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan([Fault(kind="rank_slow", step=3, rank=1,
                                delay=0.2)], seed=SEED)
        print(plan.describe())
        store = ShardedCheckpointStore(tmp_path, fault_plan=plan)
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        assert result.restarts == 0
        assert result.shrinks == 0
        assert len(result.faults_fired) == 1
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_array_equal(result.phi, ref.phi)
        np.testing.assert_array_equal(result.mu, ref.mu)

    @pytest.mark.hangs
    @pytest.mark.timeout(120)
    def test_rank_stall_contained_by_recv_deadline(
        self, tmp_path, monkeypatch
    ):
        """A hung (not crashed) rank would deadlock the campaign forever;
        with deadlines armed the peers' recv timeout converts the hang
        into a RankFailure, the campaign shrinks 4 -> 3 and finishes."""
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "2.0")
        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan([Fault(kind="rank_stall", step=3, rank=1,
                                delay=30.0)], seed=SEED)
        print(plan.describe())
        store = ShardedCheckpointStore(tmp_path, fault_plan=plan)
        t0 = _time.monotonic()
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
        )
        # contained well within the stall's 30 s safety cap
        assert _time.monotonic() - t0 < 25
        assert result.steps == STEPS
        assert result.shrinks == 1
        assert result.final_ranks == 3
        assert result.restarts == 1
        ref = dsim.run(STEPS, phi0, mu0)
        np.testing.assert_allclose(result.phi, ref.phi, atol=1e-5)

    def test_elastic_telemetry_and_report(self, tmp_path):
        import json

        from repro.telemetry import RunTelemetry
        from repro.telemetry.report import validate_run_report

        dsim, phi0, mu0 = self._sim()
        plan = FaultPlan(
            [Fault(kind="kill_rank", step=3, rank=1),
             Fault(kind="io_enospc", step=2, rank=0)],
            seed=SEED,
        )
        print(plan.describe())
        store = ShardedCheckpointStore(
            tmp_path / "ck", fault_plan=plan,
            retry_policy=RetryPolicy(attempts=4, base_delay=1e-4),
        )
        result = run_campaign(
            dsim, STEPS, phi0, mu0,
            store=store, checkpoint_every=2, fault_plan=plan,
            telemetry=RunTelemetry(directory=tmp_path / "tel", run_id="el"),
        )
        validate_run_report(result.report)
        elastic = result.report["elastic"]
        assert elastic["rank_failures"] == 1
        assert elastic["shrinks"] == 1
        assert elastic["final_ranks"] == 3
        assert elastic["io_retries"] >= 1
        assert elastic["checkpoints_skipped"] == 0

        merged = (tmp_path / "tel" / "events-merged.jsonl").read_text()
        kinds = [json.loads(line)["kind"] for line in merged.splitlines()]
        for kind in ("rank_failed", "comm_shrunk", "reshard", "io_retry",
                     "checkpoint"):
            assert kind in kinds, f"missing {kind} event"
