"""Tests of the double-buffered ghosted field."""

import numpy as np
import pytest

from repro.grid.field import Field


class TestField:
    def test_shapes(self):
        f = Field(4, (5, 6, 7))
        assert f.src.shape == (4, 7, 8, 9)
        assert f.interior_src.shape == (4, 5, 6, 7)
        assert f.dim == 3
        assert f.ghosted_shape == (7, 8, 9)

    def test_swap_is_pointer_exchange(self):
        f = Field(1, (3, 3))
        f.src[...] = 1.0
        f.dst[...] = 2.0
        src_id = id(f.src)
        f.swap()
        assert id(f.dst) == src_id
        np.testing.assert_allclose(f.src, 2.0)

    def test_set_interior(self):
        f = Field(2, (3, 4))
        vals = np.arange(24, dtype=float).reshape(2, 3, 4)
        f.set_interior(vals)
        np.testing.assert_array_equal(f.interior_src, vals)
        # ghosts untouched
        assert f.src[0, 0, 0] == 0.0

    def test_copy_independent(self):
        f = Field(1, (3, 3))
        f.src[...] = 5.0
        g = f.copy()
        g.src[...] = 7.0
        np.testing.assert_allclose(f.src, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="component"):
            Field(0, (3, 3))
        with pytest.raises(ValueError, match="spatial"):
            Field(1, (3, 0))

    def test_dtype_control(self):
        f = Field(1, (2, 2), dtype=np.float32)
        assert f.src.dtype == np.float32
