"""Tests of the dynamic FLOP-counting instrumentation."""

import numpy as np
import pytest

from repro.perf.flopcount import CountingArray, FlopCounter, _einsum_cost


class TestUfuncCounting:
    def test_add_counts_elementwise(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones((3, 4)), c)
        _ = a + a
        assert c.counts["add"] == 12

    def test_kind_classification(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.full(5, 2.0), c)
        _ = a * a
        _ = a / a
        _ = np.sqrt(a)
        _ = a - a
        assert c.counts["mul"] == 5
        assert c.counts["div"] == 5
        assert c.counts["sqrt"] == 5
        assert c.counts["add"] == 5

    def test_flops_total(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones(10), c)
        _ = a + a
        _ = a * a
        _ = np.maximum(a, 0.0)  # cmp: not a FLOP
        assert c.flops() == 20

    def test_mixed_plain_and_counting(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones(7), c)
        b = np.ones(7)
        out = a + b
        assert isinstance(out, CountingArray)
        assert c.counts["add"] == 7

    def test_views_propagate_counter(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones((4, 4)), c)
        v = a[1:3]
        _ = v * 2.0
        assert c.counts["mul"] == 8

    def test_inplace_ops(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones(6), c)
        a += 1.0
        assert c.counts["add"] == 6

    def test_reset_and_summary(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones(3), c)
        _ = a + a
        assert c.summary()["flops"] == 3
        c.reset()
        assert c.flops() == 0


class TestEinsumCounting:
    def test_matvec_cost(self):
        muls, adds = _einsum_cost("ij,j->i", [np.ones((3, 4)), np.ones(4)])
        assert muls == 12
        assert adds == 12 - 3

    def test_ellipsis_cost(self):
        ops = [np.ones((5, 2, 2)), np.ones((2, 7, 8))]
        muls, adds = _einsum_cost("aij,j...->ai...", ops)
        # indices a=5, i=2, j=2; ellipsis (7,8)
        assert muls == 5 * 2 * 2 * 7 * 8

    def test_einsum_through_array_function(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.ones((3, 3)), c)
        out = np.einsum("ij,jk->ik", a, a)
        assert isinstance(out, CountingArray)
        assert c.counts["mul"] == 27


class TestFunctionPassthrough:
    def test_sort_and_stack_keep_working(self):
        c = FlopCounter()
        a = CountingArray.wrap(np.array([3.0, 1.0, 2.0]), c)
        s = np.sort(a)
        np.testing.assert_allclose(np.asarray(s), [1.0, 2.0, 3.0])
        st = np.stack([a, a])
        assert st.shape == (2, 3)

    def test_correct_numerics_under_counting(self):
        """Instrumentation must not change results."""
        c = FlopCounter()
        x = np.linspace(0, 1, 11)
        cx = CountingArray.wrap(x.copy(), c)
        plain = np.sqrt(x * x + 1.0) / 2.0
        counted = np.sqrt(cx * cx + 1.0) / 2.0
        np.testing.assert_allclose(np.asarray(counted), plain)
