"""Tests of the gradient energy functional and its variational terms."""

import numpy as np
import pytest

from repro.core import gradient_energy as ge
from repro.core.scenarios import fill_ghosts_periodic


@pytest.fixture
def gamma():
    g = np.full((3, 3), 0.02)
    np.fill_diagonal(g, 0.0)
    return g


def smooth_field(shape, n_phases=3, seed=0):
    """Periodic smooth simplex field with ghost layers."""
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.arange(s, dtype=float) for s in shape], indexing="ij")
    phi = np.empty((n_phases,) + shape)
    for a in range(n_phases):
        f = np.zeros(shape)
        for g, s in zip(grids, shape):
            f += np.sin(2 * np.pi * g / s + rng.uniform(0, np.pi))
        phi[a] = 1.0 + 0.3 * f
    phi /= phi.sum(axis=0)
    ghosted = np.zeros((n_phases,) + tuple(s + 2 for s in shape))
    ghosted[(slice(None),) + tuple(slice(1, -1) for _ in shape)] = phi
    fill_ghosts_periodic(ghosted, len(shape))
    return ghosted


class TestEnergyDensity:
    def test_zero_for_uniform_field(self, gamma):
        phi = np.zeros((3, 6, 6, 6))
        phi[0] = 1.0
        np.testing.assert_allclose(ge.energy_density(phi, gamma, 3, 1.0), 0.0)

    def test_positive_for_interface(self, gamma):
        phi = smooth_field((6, 6, 6))
        w = ge.energy_density(phi, gamma, 3, 1.0)
        assert w.min() >= 0.0
        assert w.max() > 0.0

    def test_antisymmetry_invariance(self, gamma):
        """Energy is symmetric under swapping two phases (equal gammas)."""
        phi = smooth_field((6, 6, 6))
        w1 = ge.energy_density(phi, gamma, 3, 1.0)
        w2 = ge.energy_density(phi[[1, 0, 2]], gamma, 3, 1.0)
        np.testing.assert_allclose(w1, w2, atol=1e-12)


class TestVariationalDerivative:
    def test_converges_to_energy_gradient(self, gamma):
        """<delta a/delta phi, v> converges to the Gateaux derivative of
        the total energy under mesh refinement.

        The energy density uses centred gradients while the divergence
        term uses face fluxes, so the identity holds in the continuum
        limit (not cell-exactly): the relative error must shrink with dx.
        """

        def rel_error(n):
            shape = (n, n)
            dx = 1.0 / n
            phi2 = smooth_field(shape, seed=3)
            grids = np.meshgrid(*[np.arange(n) for _ in range(2)], indexing="ij")
            v = 0.01 * np.stack([
                np.sin(2 * np.pi * (grids[0] + a) / n) for a in range(3)
            ])
            v_ghost = np.zeros_like(phi2)
            v_ghost[(slice(None), slice(1, -1), slice(1, -1))] = v
            fill_ghosts_periodic(v_ghost, 2)

            def total_energy(field):
                return ge.energy_density(field, gamma, 2, dx).sum() * dx * dx

            eps = 1e-6
            numeric = (
                total_energy(phi2 + eps * v_ghost)
                - total_energy(phi2 - eps * v_ghost)
            ) / (2 * eps)
            var = ge.variational_term(phi2, gamma, 2, dx)
            analytic = float((var * v).sum()) * dx * dx
            return abs(analytic - numeric) / max(abs(numeric), 1e-30)

        errs = [rel_error(n) for n in (8, 16, 32)]
        assert errs[2] < errs[0]
        assert errs[2] < 0.05

    def test_zero_in_bulk(self, gamma):
        phi = np.zeros((3, 5, 5, 5))
        phi[1] = 1.0
        var = ge.variational_term(phi, gamma, 3, 1.0)
        np.testing.assert_allclose(var, 0.0, atol=1e-12)

    def test_divergence_term_shape(self, gamma):
        phi = smooth_field((4, 5, 6))
        div = ge.divergence_term(phi, gamma, 3, 1.0)
        assert div.shape == (3, 4, 5, 6)

    def test_swap_symmetry_and_absent_phase(self, gamma):
        """For equal gammas the functional is symmetric under swapping two
        phases, and an absent phase (phi = 0 with zero gradient) feels no
        gradient-energy force."""
        zc = np.arange(8, dtype=float)
        prof = 0.5 * (1 + np.tanh((zc - 4) / 2))
        phi = np.zeros((3, 10, 10))
        phi[0, 1:-1, 1:-1] = prof[None, :]
        phi[1, 1:-1, 1:-1] = 1 - prof[None, :]
        fill_ghosts_periodic(phi, 2)
        var = ge.variational_term(phi, gamma, 2, 1.0)
        # phase 2 is absent: its force must vanish
        np.testing.assert_allclose(var[2], 0.0, atol=1e-12)
        # swapping phases 0 and 1 swaps their forces
        var_sw = ge.variational_term(phi[[1, 0, 2]], gamma, 2, 1.0)
        np.testing.assert_allclose(var[0], var_sw[1], atol=1e-12)
        np.testing.assert_allclose(var[1], var_sw[0], atol=1e-12)
