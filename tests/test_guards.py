"""Tests of the invariant guardrails and rollback-with-backoff stepping."""

import numpy as np
import pytest

from repro.core.solver import Simulation
from repro.grid.timeloop import FunctorError, Timeloop
from repro.resilience import (
    CheckpointStore,
    DivergenceError,
    Fault,
    FaultPlan,
    GuardedSimulation,
    InvariantViolation,
    StateGuard,
    attach_watchdog,
    find_violations,
)
from repro.resilience.faults import poison


@pytest.fixture
def sim():
    s = Simulation(shape=(5, 8), kernel="buffered")
    s.initialize_voronoi(seed=1, n_seeds=3)
    return s


class TestInvariants:
    def test_healthy_state_clean(self, sim):
        assert find_violations(sim.phi.interior_src, sim.mu.interior_src) == []

    def test_nan_detected(self, sim):
        poison(sim.phi.interior_src)
        v = find_violations(sim.phi.interior_src, sim.mu.interior_src)
        assert any("non-finite" in s for s in v)

    def test_inf_in_mu_detected(self, sim):
        sim.mu.interior_src[tuple(0 for _ in range(sim.mu.src.ndim))] = np.inf
        v = find_violations(sim.phi.interior_src, sim.mu.interior_src)
        assert any("mu" in s for s in v)

    def test_phase_sum_drift_detected(self, sim):
        phi = sim.phi.interior_src.copy()
        phi[0] += 0.01
        v = find_violations(phi, sim.mu.interior_src)
        assert any("phase sum" in s for s in v)

    def test_simplex_bounds_detected(self, sim):
        phi = sim.phi.interior_src.copy()
        idx = tuple(0 for _ in range(phi.ndim - 1))
        phi[(0,) + idx] = 1.5
        phi[(1,) + idx] = -0.5
        v = find_violations(phi, sim.mu.interior_src)
        assert any("simplex" in s for s in v)

    def test_mass_drift_detected(self, sim):
        guard = StateGuard(mass_drift_rtol=0.05)
        guard.capture_reference(sim)
        assert guard.violations(sim) == []
        sim.mu.interior_src[...] += 1.0  # large artificial solute shift
        assert any("mass" in s for s in guard.violations(sim))


class TestWatchdog:
    def test_watchdog_raises_annotated(self, sim):
        tl = Timeloop()
        tl.add("step", lambda: sim.step())
        handle = attach_watchdog(tl, sim)
        assert handle.category == "watchdog"
        tl.run(2)
        poison(sim.phi.interior_src)
        with pytest.raises(FunctorError, match="watchdog") as info:
            tl.run(1)
        assert isinstance(info.value.original, InvariantViolation)
        assert info.value.original.violations


class TestGuardedSimulation:
    def test_transient_fault_recovers_and_matches_unfaulted(self, sim, tmp_path):
        plan = FaultPlan([Fault(kind="nan_inject", step=3)], seed=7)
        store = CheckpointStore(tmp_path, keep=2)
        guarded = GuardedSimulation(
            sim, store, checkpoint_every=2, fault_plan=plan
        )
        dt0 = sim.params.dt
        report = guarded.run(6)
        assert report.steps == 6
        assert guarded.rollbacks == 1
        assert len(plan.fired()) == 1
        # transient fault: retried at the original dt, not backed off
        assert sim.params.dt == dt0

        clean = Simulation(
            shape=(5, 8), kernel="buffered",
            system=sim.system, params=sim.params, temperature=sim.temperature,
        )
        clean.initialize_voronoi(seed=1, n_seeds=3)
        clean.step(6)
        # only float32 restart rounding separates the two runs
        np.testing.assert_allclose(
            sim.phi.interior_src, clean.phi.interior_src, atol=1e-6
        )
        np.testing.assert_allclose(
            sim.mu.interior_src, clean.mu.interior_src, atol=1e-6
        )

    def test_persistent_violation_backs_off_then_raises(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        # impossible tolerance: every state violates, every retry fails
        guarded = GuardedSimulation(
            sim, store, guard=StateGuard(sum_tol=-1.0),
            max_retries=2, dt_backoff=0.5,
        )
        dt0 = sim.params.dt
        with pytest.raises(DivergenceError) as info:
            guarded.run(4)
        assert info.value.attempts == 2
        assert info.value.violations
        assert info.value.step >= 1
        # the repeated failure at the same step triggered dt backoff
        assert sim.params.dt < dt0

    def test_validates_cadence_arguments(self, sim, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            GuardedSimulation(sim, store, check_every=0)
        with pytest.raises(ValueError):
            GuardedSimulation(sim, store, dt_backoff=1.5)
