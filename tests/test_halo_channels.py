"""Persistent registered halo channels: protocol, equivalence, counters.

The ISSUE 10 acceptance criteria distilled: registered-halo exchange is
bitwise-identical to the legacy staged path (down to checkpoint CRCs)
across backends, rank counts and schedules; a 2-rank process-backend run
sends at least 3x fewer steady-state control-pipe messages with ZERO
acks; channels survive an elastic shrink through re-registration; the
protocol fails loudly when its lockstep discipline is violated.
"""

import json
import zlib

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.simmpi import run_spmd
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (6, 6, 12)
STEPS = 3


@pytest.fixture(scope="module")
def initial_state():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, SHAPE, solid_height=4, n_seeds=4
    )
    phi0 = smooth_phase_field(phi0, 2)
    return system, phi0, mu0


def _run(initial_state, backend, halo, *, n_ranks, overlap=False,
         bpa=(2, 2, 1), **kwargs):
    system, phi0, mu0 = initial_state
    sim = DistributedSimulation(
        SHAPE, bpa, system=system, kernel="buffered", overlap=overlap,
        n_ranks=n_ranks, backend=backend, halo_channels=halo,
    )
    return sim.run(STEPS, phi0, mu0, **kwargs)


def _crc(arr):
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


# -- channel protocol ---------------------------------------------------------


def _roundtrip(comm, rounds):
    peer = 1 - comm.rank
    send = comm.register_halo(peer, 0, 6)
    recv = comm.accept_halo(peer, 0)
    got = []
    for step in range(rounds):
        send.slot()[:] = np.arange(6) + 100.0 * comm.rank + step
        send.notify(6)
        got.append(recv.wait().copy())
    return np.concatenate(got)


class TestChannelProtocol:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_double_buffered_roundtrip(self, backend):
        """Three rounds reuse each slot: round n+2 lands in slot n's
        buffer and must not clobber data the peer still reads."""
        out = run_spmd(2, _roundtrip, 3, backend=backend)
        for rank, got in enumerate(out):
            expected = np.concatenate(
                [np.arange(6) + 100.0 * (1 - rank) + s for s in range(3)]
            )
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_lockstep_violation_raises(self, backend):
        """A stale/skewed sequence number is a loud protocol error,
        never a silent unpack of the wrong slot."""

        def fn(comm):
            peer = 1 - comm.rank
            send = comm.register_halo(peer, 0, 4)
            recv = comm.accept_halo(peer, 0)
            if comm.rank == 0:
                # Skip ahead: deliver seq 5 where the peer expects 0.
                send.seq = 5
                send.notify(4)
                return True
            with pytest.raises(RuntimeError, match="lockstep"):
                recv.wait()
            return True

        assert run_spmd(2, fn, backend=backend) == [True, True]

    def test_invalid_capacity_and_id_rejected(self):
        def fn(comm):
            with pytest.raises(ValueError, match="capacity"):
                comm.register_halo(0, 0, 0)
            from repro.simmpi.comm import _halo_tags

            with pytest.raises(ValueError, match="channel id"):
                _halo_tags(-1)
            return True

        assert run_spmd(1, fn) == [True]

    def test_process_steady_state_has_zero_acks(self):
        """After registration, halo rounds cost one pipe post each and
        no acks or fresh segments — the whole point of the channel."""

        def fn(comm):
            peer = 1 - comm.rank
            send = comm.register_halo(peer, 0, 2048)
            recv = comm.accept_halo(peer, 0)
            before = comm.transport_counters()
            for step in range(4):
                send.slot()[:] = float(step)
                send.notify()
                recv.wait()
            after = comm.transport_counters()
            return {k: after[k] - before[k] for k in after}

        for delta in run_spmd(2, fn, backend="process"):
            assert delta["acks"] == 0
            assert delta["segments_created"] == 0
            assert delta["pipe_messages"] == 4  # one notify per round

    def test_process_degrades_to_inline_when_pool_exhausted(self):
        """Segment-pool exhaustion at registration falls back to heap
        slots + per-round inline payloads; data still flows."""
        from repro.simmpi import transport

        original = transport.RankTransport.alloc_halo_segment

        def broken(self, nbytes):
            raise OSError("no space left on device (injected)")

        def fn(comm):
            import warnings

            with warnings.catch_warnings():
                # The degradation warning fires in the child process;
                # silence it there (we assert on the counter instead).
                warnings.simplefilter("ignore", RuntimeWarning)
                got = _roundtrip(comm, 2)
            return got, comm._transport.degradations

        transport.RankTransport.alloc_halo_segment = broken
        try:
            out = run_spmd(2, fn, backend="process")
        finally:
            transport.RankTransport.alloc_halo_segment = original
        for rank, (got, degradations) in enumerate(out):
            assert degradations >= 1
            expected = np.concatenate(
                [np.arange(6) + 100.0 * (1 - rank) + s for s in range(2)]
            )
            np.testing.assert_array_equal(got, expected)


# -- solver equivalence -------------------------------------------------------


class TestSolverEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_halo_matches_legacy_bitwise(self, initial_state, backend,
                                         n_ranks):
        res_h = _run(initial_state, backend, True, n_ranks=n_ranks)
        res_l = _run(initial_state, backend, False, n_ranks=n_ranks)
        np.testing.assert_array_equal(res_h.phi, res_l.phi)
        np.testing.assert_array_equal(res_h.mu, res_l.mu)
        assert _crc(res_h.phi) == _crc(res_l.phi)
        assert _crc(res_h.mu) == _crc(res_l.mu)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_halo_matches_legacy_with_overlap(self, initial_state, backend):
        """Algorithm 2's conditional deferred mu exchange keeps every
        channel in lockstep (the skip decision is collective)."""
        res_h = _run(initial_state, backend, True, n_ranks=2, overlap=True)
        res_l = _run(initial_state, backend, False, n_ranks=2, overlap=True)
        np.testing.assert_array_equal(res_h.phi, res_l.phi)
        np.testing.assert_array_equal(res_h.mu, res_l.mu)

    def test_env_var_opt_out(self, initial_state, monkeypatch):
        """REPRO_SIMMPI_HALO_CHANNELS=0 selects the legacy path (and the
        default of the unset env is on)."""
        from repro.distributed.halo import halo_channels_enabled

        monkeypatch.delenv("REPRO_SIMMPI_HALO_CHANNELS", raising=False)
        assert halo_channels_enabled(None) is True
        monkeypatch.setenv("REPRO_SIMMPI_HALO_CHANNELS", "0")
        assert halo_channels_enabled(None) is False
        assert halo_channels_enabled(True) is True  # param beats env
        res_env = _run(initial_state, "thread", None, n_ranks=2)
        res_leg = _run(initial_state, "thread", False, n_ranks=2)
        np.testing.assert_array_equal(res_env.phi, res_leg.phi)

    def test_checkpoint_crcs_identical(self, initial_state, tmp_path):
        """Halo vs legacy down to sharded-checkpoint manifest CRC32s."""
        from repro.resilience.store import ShardedCheckpointStore

        tables = {}
        for name, halo in (("halo", True), ("legacy", False)):
            store = ShardedCheckpointStore(tmp_path / name)
            _run(initial_state, "thread", halo, n_ranks=2,
                 shard_store=store, checkpoint_every=STEPS)
            with open(store.manifest_for(STEPS)) as fh:
                manifest = json.load(fh)
            tables[name] = {
                arr_name: meta["crc32"]
                for entry in manifest["shards"]
                for arr_name, meta in entry["arrays"].items()
            }
        assert tables["halo"]
        assert tables["halo"] == tables["legacy"]


# -- elastic shrink -----------------------------------------------------------


class TestShrinkReregistration:
    def test_channels_reregister_on_shrunk_communicator(self):
        """After a rank loss + shrink, survivors rebuild their channels
        on the sub-communicator and exchange again."""
        from repro.simmpi import RankFailure, run_spmd_elastic

        def fn(comm):
            if comm.size >= 3 and comm.rank < 2:
                # A working channel pair on the original world first.
                peer = 1 - comm.rank
                send = comm.register_halo(peer, 0, 4)
                recv = comm.accept_halo(peer, 0)
                send.slot()[:] = float(comm.rank)
                send.notify()
                first = float(recv.wait()[0])
            else:
                raise RuntimeError("node down")
            try:
                comm.barrier()
            except RankFailure:
                sub = comm.shrink()
                # Re-registration: fresh channels, fresh sequence zero.
                peer = 1 - sub.rank
                send = sub.register_halo(peer, 0, 4)
                recv = sub.accept_halo(peer, 0)
                send.slot()[:] = 10.0 + sub.rank
                send.notify()
                second = float(recv.wait()[0])
                return first, second
            return None

        results, failures = run_spmd_elastic(3, fn)
        assert set(failures) == {2}
        assert results[0] == (1.0, 11.0)
        assert results[1] == (0.0, 10.0)


# -- steady-state message counts (the fig7 gate) ------------------------------


class TestSteadyStateCounters:
    def test_process_halo_cuts_pipe_messages_3x_with_zero_acks(self):
        """2-rank process backend, multi-block decomposition: registered
        channels must send >= 3x fewer steady-state control-pipe
        messages than the legacy staged path, with zero acks."""
        from repro.telemetry import RunTelemetry

        system = TernaryEutecticSystem()
        shape = (6, 6, 16)
        phi0, mu0 = voronoi_initial_condition(
            system, shape, solid_height=5, n_seeds=4
        )

        def counters(halo):
            sim = DistributedSimulation(
                shape, (2, 2, 4), system=system, n_ranks=2,
                backend="process", halo_channels=halo,
            )
            res = sim.run(3, phi0, mu0, telemetry=RunTelemetry())
            return res

        res_h = counters(True)
        res_l = counters(False)
        np.testing.assert_array_equal(res_h.phi, res_l.phi)
        assert res_h.counters["halo_acks"] == 0
        assert res_h.counters["pipe_messages"] * 3 <= (
            res_l.counters["pipe_messages"]
        )
        # packing also collapses the exchange-level message count
        assert res_h.counters["halo_messages"] * 3 <= (
            res_l.counters["halo_messages"]
        )
