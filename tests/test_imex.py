"""Tests of the semi-implicit (IMEX) mu update."""

import numpy as np
import pytest

from repro.core.imex import (
    default_dbar,
    implicit_diffusion_solve,
    semi_implicit_mu_step,
)
from repro.core.kernels import get_mu_kernel, get_phi_kernel, make_context
from repro.core.scenarios import fill_ghosts_periodic, make_scenario
from repro.core.stencils import laplacian


class TestImplicitSolve:
    def test_identity_at_zero_coefficient(self):
        rng = np.random.default_rng(0)
        rhs = rng.normal(size=(2, 6, 8))
        out = implicit_diffusion_solve(rhs, 0.0, 1.0)
        np.testing.assert_allclose(out, rhs, atol=1e-12)

    def test_solves_helmholtz_3d(self):
        """(1 - c lap) u = rhs must hold for the 7-point Laplacian with
        periodic x/y and Neumann z ghosts."""
        rng = np.random.default_rng(1)
        shape = (6, 5, 8)
        rhs = rng.normal(size=(1,) + shape)
        c = 0.37
        u = implicit_diffusion_solve(rhs, c, 1.0)
        # apply the operator with matching ghost conventions
        g = np.zeros((1,) + tuple(s + 2 for s in shape))
        g[(slice(None),) + (slice(1, -1),) * 3] = u
        fill_ghosts_periodic(g, 3)
        # overwrite z ghosts with Neumann mirror
        g[..., 0] = g[..., 1]
        g[..., -1] = g[..., -2]
        lap = laplacian(g[0], 3, 1.0)
        np.testing.assert_allclose(u[0] - c * lap, rhs[0], atol=1e-10)

    def test_preserves_mean(self):
        """The zero mode is untouched: total solute conserved."""
        rng = np.random.default_rng(2)
        rhs = rng.normal(size=(2, 8, 8))
        out = implicit_diffusion_solve(rhs, 1.5, 1.0)
        np.testing.assert_allclose(out.mean(axis=(1, 2)), rhs.mean(axis=(1, 2)),
                                   atol=1e-12)

    def test_damps_high_frequencies(self):
        x = np.arange(16)
        rhs = np.sin(np.pi * x / 1.0)[None, :, None] * np.ones((1, 16, 8))
        rhs = rhs + 1.0
        out = implicit_diffusion_solve(rhs, 5.0, 1.0)
        assert np.std(out) < np.std(rhs)


@pytest.fixture(scope="module")
def setup():
    phi, mu, tg, system, params = make_scenario("interface", (6, 6, 12), seed=4)
    ctx = make_context(system, params)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
        ctx, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    return ctx, phi, phi_dst, mu, tg, tg - 0.01


class TestSemiImplicitStep:
    def test_reduces_to_explicit_at_dbar_zero(self, setup):
        ctx, phi, phi_dst, mu, t_old, t_new = setup
        exp = get_mu_kernel("shortcut")(ctx, mu, phi, phi_dst, t_old, t_new)
        imex = semi_implicit_mu_step(
            ctx, mu, phi, phi_dst, t_old, t_new, dbar=0.0
        )
        np.testing.assert_allclose(imex, exp, atol=1e-12)

    def test_consistent_for_small_dt(self, setup):
        """IMEX and explicit agree to O(dt^2) per step."""
        ctx, phi, phi_dst, mu, t_old, t_new = setup
        small = ctx.params.with_(dt=ctx.params.dt / 50)
        ctx_small = make_context(ctx.system, small)
        exp = get_mu_kernel("buffered")(ctx_small, mu, phi, phi_dst, t_old, t_new)
        imex = semi_implicit_mu_step(
            ctx_small, mu, phi, phi_dst, t_old, t_new
        )
        dmu = np.abs(exp - mu[(slice(None),) + (slice(1, -1),) * 3]).max()
        np.testing.assert_allclose(imex, exp, atol=0.05 * dmu + 1e-12)

    def test_default_dbar(self, setup):
        ctx = setup[0]
        assert default_dbar(ctx) == pytest.approx(float(np.max(ctx.diff)))

    def test_stable_beyond_explicit_limit(self, setup):
        """At 10x the diffusive stability limit the explicit update blows
        up on a rough field while the IMEX update stays bounded."""
        ctx, phi, phi_dst, mu, t_old, t_new = setup
        rng = np.random.default_rng(5)
        rough = mu + 0.5 * rng.normal(size=mu.shape)
        fill_ghosts_periodic(rough, 3)
        d_max = float(np.max(ctx.diff))
        dt_unstable = 10.0 * ctx.params.dx**2 / (2 * 3 * d_max)
        ctx_big = make_context(ctx.system, ctx.params.with_(dt=dt_unstable))

        mu_exp = rough.copy()
        mu_imex = rough.copy()
        for _ in range(12):
            upd = get_mu_kernel("buffered")(
                ctx_big, mu_exp, phi, phi_dst, t_old, t_new
            )
            mu_exp[(slice(None),) + (slice(1, -1),) * 3] = upd
            fill_ghosts_periodic(mu_exp, 3)
            upd = semi_implicit_mu_step(
                ctx_big, mu_imex, phi, phi_dst, t_old, t_new, shortcuts=False
            )
            mu_imex[(slice(None),) + (slice(1, -1),) * 3] = upd
            fill_ghosts_periodic(mu_imex, 3)
        amp_exp = np.abs(mu_exp).max()
        amp_imex = np.abs(mu_imex).max()
        assert amp_imex < 10.0  # bounded
        assert amp_exp > 10.0 * amp_imex  # explicit diverged


class TestSimulationIntegration:
    def test_imex_simulation_runs_at_large_dt(self):
        """Simulation(imex=True) stays bounded at 5x the explicit dt."""
        from repro.core.solver import Simulation
        from repro.thermo.system import TernaryEutecticSystem
        from repro.core.parameters import PhaseFieldParameters

        system = TernaryEutecticSystem()
        params = PhaseFieldParameters.for_system(system, dim=3)
        big = params.with_(dt=5.0 * params.dt)
        sim = Simulation(shape=(6, 6, 12), system=system, params=big, imex=True)
        sim.initialize_voronoi(seed=1, n_seeds=4)
        sim.step(20)
        assert np.isfinite(sim.mu.src).all()
        assert np.abs(sim.mu.interior_src).max() < 50.0

    def test_imex_matches_explicit_at_small_dt(self):
        from repro.core.solver import Simulation
        from repro.thermo.system import TernaryEutecticSystem
        from repro.core.parameters import PhaseFieldParameters

        system = TernaryEutecticSystem()
        params = PhaseFieldParameters.for_system(system, dim=3, dt_safety=0.01)
        kw = dict(shape=(5, 5, 10), system=system, params=params)
        a = Simulation(imex=False, **kw)
        b = Simulation(imex=True, **kw)
        a.initialize_voronoi(seed=2, n_seeds=3)
        b.initialize_voronoi(seed=2, n_seeds=3)
        a.step(5)
        b.step(5)
        np.testing.assert_allclose(
            b.mu.interior_src, a.mu.interior_src, atol=2e-3
        )
        np.testing.assert_allclose(
            b.phi.interior_src, a.phi.interior_src, atol=1e-4
        )
