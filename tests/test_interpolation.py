"""Property tests of the Moelans interpolation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpolation import linear_g, moelans_dh, moelans_h

weights = st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4).filter(
    lambda w: sum(w) > 0.05
)


@settings(max_examples=50, deadline=None)
@given(w=weights)
def test_partition_of_unity(w):
    h = moelans_h(np.asarray(w))
    assert h.sum() == pytest.approx(1.0, abs=1e-9)
    assert h.min() >= 0.0


@settings(max_examples=50, deadline=None)
@given(w=weights)
def test_jacobian_matches_finite_difference(w):
    phi = np.asarray(w)
    dh = moelans_dh(phi)
    eps = 1e-7
    for a in range(4):
        d = np.zeros(4)
        d[a] = eps
        num = (moelans_h(phi + d) - moelans_h(phi - d)) / (2 * eps)
        np.testing.assert_allclose(dh[a], num, atol=1e-5)


class TestBulkStates:
    def test_pure_phase_weight(self):
        phi = np.array([0.0, 1.0, 0.0, 0.0])
        h = moelans_h(phi)
        np.testing.assert_allclose(h, phi, atol=1e-12)

    def test_pure_phase_has_zero_jacobian(self):
        """dh/dphi vanishes at bulk states — the basis of the phi shortcut."""
        phi = np.array([1.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(moelans_dh(phi), 0.0, atol=1e-12)

    def test_symmetric_state(self):
        phi = np.full(4, 0.25)
        np.testing.assert_allclose(moelans_h(phi), 0.25)


class TestFieldShapes:
    def test_h_field(self):
        rng = np.random.default_rng(0)
        phi = rng.uniform(0.1, 1.0, size=(4, 3, 5))
        h = moelans_h(phi)
        assert h.shape == phi.shape
        np.testing.assert_allclose(h.sum(axis=0), 1.0)

    def test_dh_field(self):
        rng = np.random.default_rng(1)
        phi = rng.uniform(0.1, 1.0, size=(4, 2, 2))
        dh = moelans_dh(phi)
        assert dh.shape == (4, 4, 2, 2)
        single = moelans_dh(phi[:, 1, 0])
        np.testing.assert_allclose(dh[:, :, 1, 0], single, atol=1e-12)


class TestLinearG:
    def test_identity_inside(self):
        phi = np.array([0.2, 0.8])
        np.testing.assert_allclose(linear_g(phi), phi)

    def test_clips_outside(self):
        phi = np.array([-0.1, 1.4])
        np.testing.assert_allclose(linear_g(phi), [0.0, 1.0])
