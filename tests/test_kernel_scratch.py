"""Unit tests of the KernelContext scratch-buffer cache.

The contract under test (see :meth:`KernelContext.get_scratch`): buffers
are reused for identical ``(name, shape, dtype)`` keys, the cache is
LRU-bounded so moving-window shape churn cannot leak memory, and a
context is owned by a single live thread.
"""

import threading

import numpy as np
import pytest

from repro.core.kernels import COMPILED_RUNGS, make_context, rung_available
from repro.core.kernels.api import SCRATCH_MAX_ENTRIES
from repro.core.parameters import PhaseFieldParameters
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture()
def ctx():
    system = TernaryEutecticSystem()
    return make_context(system, PhaseFieldParameters.for_system(system))


class TestCache:
    def test_same_key_returns_same_buffer(self, ctx):
        a = ctx.get_scratch("tmp", (4, 5))
        b = ctx.get_scratch("tmp", (4, 5))
        assert a is b

    def test_distinct_names_do_not_alias(self, ctx):
        a = ctx.get_scratch("a", (4, 5))
        b = ctx.get_scratch("b", (4, 5))
        assert a is not b
        a.fill(1.0)
        b.fill(2.0)
        assert a[0, 0] == 1.0

    def test_shape_and_dtype_are_part_of_the_key(self, ctx):
        a = ctx.get_scratch("tmp", (4, 5))
        b = ctx.get_scratch("tmp", (5, 4))
        c = ctx.get_scratch("tmp", (4, 5), dtype=np.float32)
        assert a.shape == (4, 5) and b.shape == (5, 4)
        assert a is not b
        assert c.dtype == np.float32 and c is not a

    def test_bounded_under_shape_churn(self, ctx):
        """A moving-window run churns z extents; the cache must not grow
        past its bound."""
        for nz in range(50):
            ctx.get_scratch("window", (3, 8, nz + 1))
        assert len(ctx._scratch) <= SCRATCH_MAX_ENTRIES

    def test_lru_evicts_least_recently_used(self, ctx):
        first = ctx.get_scratch("k0", (2,))
        for i in range(1, SCRATCH_MAX_ENTRIES):
            ctx.get_scratch(f"k{i}", (2,))
        # touch k0 so it becomes most-recently-used, then overflow by one
        assert ctx.get_scratch("k0", (2,)) is first
        ctx.get_scratch("overflow", (2,))
        assert ctx.get_scratch("k0", (2,)) is first  # survived eviction
        assert len(ctx._scratch) <= SCRATCH_MAX_ENTRIES


_COMPILED = [
    pytest.param(
        r,
        marks=pytest.mark.skipif(
            not rung_available(r),
            reason="no compiled kernel backend available",
        ),
    )
    for r in COMPILED_RUNGS
]


class TestCompiledRungs:
    """Compiled kernels must be safe alongside the scratch cache.

    They allocate all temporaries inside the compiled loop (per
    cell/column for ``parallel=True`` safety) and never touch
    ``ctx.get_scratch`` — so they neither claim thread ownership nor
    perturb the LRU state that the NumPy rungs depend on.
    """

    @pytest.mark.parametrize("rung", _COMPILED)
    def test_no_scratch_ownership_claimed(self, ctx, rung):
        from repro.core.kernels import get_mu_kernel, get_phi_kernel
        from repro.core.scenarios import make_scenario

        phi, mu, tg, system, params = make_scenario(
            "interface", (4, 4, 6), seed=1
        )
        ctx2 = make_context(system, params)
        out = get_phi_kernel(rung)(ctx2, phi, mu, tg)
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = out
        get_mu_kernel(rung)(ctx2, mu, phi, phi_dst, tg, tg - 0.01)
        assert ctx2._scratch_owner is None
        assert len(ctx2._scratch) == 0

    @pytest.mark.parametrize("rung", _COMPILED)
    def test_usable_from_thread_that_does_not_own_scratch(self, ctx, rung):
        """A compiled kernel may run on a context whose scratch is owned
        by another live thread (it never calls get_scratch); the NumPy
        rungs would raise here."""
        from repro.core.kernels import get_phi_kernel
        from repro.core.scenarios import make_scenario

        phi, mu, tg, system, params = make_scenario(
            "interface", (4, 4, 6), seed=1
        )
        ctx2 = make_context(system, params)
        ctx2.get_scratch("owner-marker", (2,))  # main thread owns scratch
        results: list = []
        errors: list = []

        def worker():
            try:
                results.append(get_phi_kernel(rung)(ctx2, phi, mu, tg))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert not errors
        ref = get_phi_kernel(rung)(ctx2, phi, mu, tg)
        np.testing.assert_array_equal(results[0], ref)

    @pytest.mark.parametrize("rung", _COMPILED)
    def test_concurrent_threads_agree(self, rung):
        """parallel=True safety: simultaneous invocations on separate
        contexts produce identical results (no shared mutable state)."""
        from repro.core.kernels import get_phi_kernel
        from repro.core.scenarios import make_scenario

        phi, mu, tg, system, params = make_scenario(
            "interface", (4, 4, 6), seed=5
        )
        kernel = get_phi_kernel(rung)
        ref = kernel(make_context(system, params), phi, mu, tg)
        n = 4
        outs: list = [None] * n
        start = threading.Barrier(n)

        def worker(i, ctx_i):
            start.wait()
            outs[i] = kernel(ctx_i, phi, mu, tg)

        threads = [
            threading.Thread(
                target=worker, args=(i, make_context(system, params))
            )
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(n):
            np.testing.assert_array_equal(outs[i], ref)


class TestOwnership:
    def test_second_live_thread_is_rejected(self, ctx):
        ctx.get_scratch("mine", (3,))  # main thread takes ownership
        caught = []

        def worker():
            try:
                ctx.get_scratch("theirs", (3,))
            except RuntimeError as exc:
                caught.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert len(caught) == 1
        assert "single-thread" in str(caught[0])

    def test_ownership_transfers_after_owner_exits(self, ctx):
        """Sequential run_spmd calls reuse contexts from fresh threads."""
        def worker():
            ctx.get_scratch("handoff", (3,))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # the owning thread is gone: the main thread may take over
        arr = ctx.get_scratch("handoff", (3,))
        assert arr.shape == (3,)
        assert ctx._scratch_owner == threading.get_ident()
