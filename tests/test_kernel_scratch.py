"""Unit tests of the KernelContext scratch-buffer cache.

The contract under test (see :meth:`KernelContext.get_scratch`): buffers
are reused for identical ``(name, shape, dtype)`` keys, the cache is
LRU-bounded so moving-window shape churn cannot leak memory, and a
context is owned by a single live thread.
"""

import threading

import numpy as np
import pytest

from repro.core.kernels import make_context
from repro.core.kernels.api import SCRATCH_MAX_ENTRIES
from repro.core.parameters import PhaseFieldParameters
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture()
def ctx():
    system = TernaryEutecticSystem()
    return make_context(system, PhaseFieldParameters.for_system(system))


class TestCache:
    def test_same_key_returns_same_buffer(self, ctx):
        a = ctx.get_scratch("tmp", (4, 5))
        b = ctx.get_scratch("tmp", (4, 5))
        assert a is b

    def test_distinct_names_do_not_alias(self, ctx):
        a = ctx.get_scratch("a", (4, 5))
        b = ctx.get_scratch("b", (4, 5))
        assert a is not b
        a.fill(1.0)
        b.fill(2.0)
        assert a[0, 0] == 1.0

    def test_shape_and_dtype_are_part_of_the_key(self, ctx):
        a = ctx.get_scratch("tmp", (4, 5))
        b = ctx.get_scratch("tmp", (5, 4))
        c = ctx.get_scratch("tmp", (4, 5), dtype=np.float32)
        assert a.shape == (4, 5) and b.shape == (5, 4)
        assert a is not b
        assert c.dtype == np.float32 and c is not a

    def test_bounded_under_shape_churn(self, ctx):
        """A moving-window run churns z extents; the cache must not grow
        past its bound."""
        for nz in range(50):
            ctx.get_scratch("window", (3, 8, nz + 1))
        assert len(ctx._scratch) <= SCRATCH_MAX_ENTRIES

    def test_lru_evicts_least_recently_used(self, ctx):
        first = ctx.get_scratch("k0", (2,))
        for i in range(1, SCRATCH_MAX_ENTRIES):
            ctx.get_scratch(f"k{i}", (2,))
        # touch k0 so it becomes most-recently-used, then overflow by one
        assert ctx.get_scratch("k0", (2,)) is first
        ctx.get_scratch("overflow", (2,))
        assert ctx.get_scratch("k0", (2,)) is first  # survived eviction
        assert len(ctx._scratch) <= SCRATCH_MAX_ENTRIES


class TestOwnership:
    def test_second_live_thread_is_rejected(self, ctx):
        ctx.get_scratch("mine", (3,))  # main thread takes ownership
        caught = []

        def worker():
            try:
                ctx.get_scratch("theirs", (3,))
            except RuntimeError as exc:
                caught.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert len(caught) == 1
        assert "single-thread" in str(caught[0])

    def test_ownership_transfers_after_owner_exits(self, ctx):
        """Sequential run_spmd calls reuse contexts from fresh threads."""
        def worker():
            ctx.get_scratch("handoff", (3,))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # the owning thread is gone: the main thread may take over
        arr = ctx.get_scratch("handoff", (3,))
        assert arr.shape == (3,)
        assert ctx._scratch_owner == threading.get_ident()
