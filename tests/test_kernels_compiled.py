"""Tests of the compiled kernel rungs and their backend selection.

Three layers are pinned here:

* the backend-neutral per-cell loop bodies (pure Python, always
  testable) against the reference kernel,
* the selection machinery — ``REPRO_KERNEL_BACKEND`` / ``set_backend``,
  availability reporting, the documented fallback to the NumPy twins —
  which must behave sensibly whether or not a backend exists,
* the live backend (numba or generated-C/cffi), when one is usable:
  registry-invoked equivalence, the split mu sweep of the overlap
  schedule, warmup, and end-to-end solver integration.
"""

import warnings

import numpy as np
import pytest

from repro.core.kernels import (
    COMPILED_RUNGS,
    FALLBACK_RUNGS,
    available_rungs,
    get_mu_kernel,
    get_phi_kernel,
    get_split_mu_kernel,
    make_context,
    rung_available,
)
from repro.core.kernels import compiled
from repro.core.scenarios import fill_ghosts_periodic, make_scenario

HAVE_BACKEND = compiled.available()
needs_backend = pytest.mark.skipif(
    not HAVE_BACKEND, reason="no compiled kernel backend available"
)

SHAPE = (4, 5, 7)


@pytest.fixture()
def interface3d():
    phi, mu, tg, system, params = make_scenario("interface", SHAPE, seed=2)
    ctx = make_context(system, params)
    ref_phi = get_phi_kernel("reference")(ctx, phi, mu, tg)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = ref_phi
    fill_ghosts_periodic(phi_dst, 3)
    t_new = tg - 0.015
    ref_mu = get_mu_kernel("reference")(ctx, mu, phi, phi_dst, tg, t_new)
    return dict(
        ctx=ctx, phi=phi, mu=mu, tg=tg, phi_dst=phi_dst, t_new=t_new,
        ref_phi=ref_phi, ref_mu=ref_mu,
    )


@pytest.fixture()
def restore_backend():
    """Undo any set_backend() override after the test."""
    yield
    compiled.set_backend(None)


# ---------------------------------------------------------------------------
# backend-neutral loop bodies (no backend required)
# ---------------------------------------------------------------------------


class TestLoopBodies:
    """The pure-Python loop spec is the single source of the compiled
    algorithm; pin it to the reference directly (interpreted, no backend
    needed), so a backend bug can be told apart from an algorithm bug."""

    @pytest.mark.parametrize("shortcuts", [0, 1])
    def test_phi_cellwise_matches_reference(self, interface3d, shortcuts):
        from repro.core.kernels.compiled import loops

        s = interface3d
        ctx = s["ctx"]
        pk = compiled._pack(ctx)
        geom, interior = compiled._geometry(ctx, s["phi"].shape[1:])
        out = np.empty(ctx.n_phases * int(np.prod(interior)))
        loops.phi_cellwise(
            compiled._flat64(s["phi"]), compiled._flat64(s["mu"]),
            compiled._flat64(s["tg"]), out, geom, pk["scal"], pk["gamma"],
            pk["tau"], pk["inv_curv"], pk["c_eq"], pk["c_slope"],
            pk["latent"], pk["diff"], shortcuts,
        )
        np.testing.assert_allclose(
            out.reshape((ctx.n_phases,) + interior), s["ref_phi"], atol=1e-11
        )

    @pytest.mark.parametrize("shortcuts", [0, 1])
    def test_mu_cellwise_matches_reference(self, interface3d, shortcuts):
        from repro.core.kernels.compiled import loops

        s = interface3d
        ctx = s["ctx"]
        pk = compiled._pack(ctx)
        geom, interior = compiled._geometry(ctx, s["mu"].shape[1:])
        out = np.empty(ctx.n_solutes * int(np.prod(interior)))
        loops.mu_cellwise(
            compiled._flat64(s["mu"]), compiled._flat64(s["phi"]),
            compiled._flat64(s["phi_dst"]), compiled._flat64(s["tg"]),
            compiled._flat64(s["t_new"]), out, geom, pk["scal"],
            pk["inv_curv"], pk["c_eq"], pk["c_slope"], pk["diff"],
            pk["anti_trapping"], shortcuts, 1, 0,
        )
        np.testing.assert_allclose(
            out.reshape((ctx.n_solutes,) + interior), s["ref_mu"], atol=1e-11
        )


# ---------------------------------------------------------------------------
# selection and availability
# ---------------------------------------------------------------------------


class TestSelection:
    def test_disabled_backend_reports_unavailable(self, restore_backend):
        compiled.set_backend("none")
        assert not compiled.available()
        assert compiled.backend_name() is None
        assert "disabled" in compiled.unavailable_reason()
        for rung in COMPILED_RUNGS:
            assert not rung_available(rung)
        assert set(COMPILED_RUNGS).isdisjoint(available_rungs())

    def test_unknown_backend_name_reports_reason(self, restore_backend):
        compiled.set_backend("turbofan")
        assert not compiled.available()
        assert "turbofan" in compiled.unavailable_reason()

    def test_env_var_controls_selection(self, restore_backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "none")
        compiled.set_backend(None)  # drop cache, re-read environment
        assert not compiled.available()
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        compiled.set_backend(None)
        assert compiled.available() == bool(compiled.available_backends())

    def test_invoking_without_backend_raises(
        self, restore_backend, interface3d
    ):
        compiled.set_backend("none")
        s = interface3d
        with pytest.raises(compiled.CompiledBackendUnavailable,
                           match="no compiled kernel backend"):
            get_phi_kernel("compiled")(s["ctx"], s["phi"], s["mu"], s["tg"])

    def test_maybe_fallback_degrades_with_warning(self, restore_backend):
        compiled.set_backend("none")
        for rung, numpy_twin in FALLBACK_RUNGS.items():
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert compiled.maybe_fallback(rung) == numpy_twin
        # NumPy rungs pass through untouched, warning-free
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert compiled.maybe_fallback("shortcut") == "shortcut"

    @needs_backend
    def test_maybe_fallback_keeps_compiled_when_available(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for rung in COMPILED_RUNGS:
                assert compiled.maybe_fallback(rung) == rung

    @needs_backend
    def test_registry_reports_compiled_rungs_available(self):
        got = available_rungs()
        for rung in COMPILED_RUNGS:
            assert rung in got


# ---------------------------------------------------------------------------
# live backend (skipped without numba or a C toolchain + cffi)
# ---------------------------------------------------------------------------


@needs_backend
class TestCompiledBackend:
    @pytest.mark.parametrize("rung", COMPILED_RUNGS)
    def test_split_mu_equals_full_sweep(self, interface3d, rung):
        """local + neighbour must compose to the full mu kernel — the
        contract the Algorithm 2 overlap schedule relies on."""
        s = interface3d
        full = get_mu_kernel(rung)(
            s["ctx"], s["mu"], s["phi"], s["phi_dst"], s["tg"], s["t_new"]
        )
        local, neighbor = get_split_mu_kernel(rung)
        partial = local(
            s["ctx"], s["mu"], s["phi"], s["phi_dst"], s["tg"], s["t_new"]
        )
        out = neighbor(
            s["ctx"], partial, s["mu"], s["phi"], s["phi_dst"], s["tg"]
        )
        np.testing.assert_allclose(out, full, atol=1e-13)
        np.testing.assert_allclose(out, s["ref_mu"], atol=1e-11)

    def test_warmup_returns_elapsed_seconds(self):
        phi, mu, tg, system, params = make_scenario(
            "interface", (2, 2, 2), seed=0
        )
        ctx = make_context(system, params)
        elapsed = compiled.warmup(ctx)
        assert isinstance(elapsed, float)
        assert elapsed >= 0.0

    def test_2d_matches_reference(self):
        phi, mu, tg, system, params = make_scenario(
            "interface", (6, 9), seed=4
        )
        ctx = make_context(system, params)
        ref = get_phi_kernel("reference")(ctx, phi, mu, tg)
        phi_dst = phi.copy()
        phi_dst[(slice(None),) + (slice(1, -1),) * 2] = ref
        fill_ghosts_periodic(phi_dst, 2)
        t_new = tg - 0.01
        ref_mu = get_mu_kernel("reference")(ctx, mu, phi, phi_dst, tg, t_new)
        for rung in COMPILED_RUNGS:
            out = get_phi_kernel(rung)(ctx, phi, mu, tg)
            np.testing.assert_allclose(out, ref, atol=1e-11, err_msg=rung)
            out_mu = get_mu_kernel(rung)(ctx, mu, phi, phi_dst, tg, t_new)
            np.testing.assert_allclose(
                out_mu, ref_mu, atol=1e-11, err_msg=rung
            )


@needs_backend
class TestSolverIntegration:
    def test_simulation_records_compile_seconds(self):
        from repro.core.solver import Simulation

        sim = Simulation((4, 4, 8), kernel="compiled")
        assert sim.kernel_name == "compiled"
        assert isinstance(sim.compile_seconds, float)
        assert sim.compile_seconds >= 0.0
        numpy_sim = Simulation((4, 4, 8), kernel="shortcut")
        assert numpy_sim.compile_seconds == 0.0

    def test_simulation_matches_numpy_rung(self):
        from repro.core.solver import Simulation

        def run(rung):
            sim = Simulation((4, 4, 12), kernel=rung)
            sim.initialize_voronoi(seed=3)
            sim.step(5)
            return sim

        ref = run("buffered")
        got = run("compiled")
        np.testing.assert_allclose(
            got.phi.interior_src, ref.phi.interior_src, atol=1e-12
        )
        np.testing.assert_allclose(
            got.mu.interior_src, ref.mu.interior_src, atol=1e-12
        )

    def test_simulation_falls_back_when_unavailable(self, restore_backend):
        from repro.core.solver import Simulation

        compiled.set_backend("none")
        with pytest.warns(RuntimeWarning, match="falling back"):
            sim = Simulation((4, 4, 8), kernel="compiled")
        assert sim.kernel_name == "buffered"
        assert sim.compile_seconds == 0.0

    @pytest.mark.parametrize("overlap", [False, True])
    def test_distributed_matches_single_block(self, overlap):
        from repro.core.solver import Simulation
        from repro.distributed.solver import DistributedSimulation

        shape = (4, 4, 12)
        seed_sim = Simulation(shape, kernel="buffered")
        seed_sim.initialize_voronoi(seed=3)
        seed_sim.step(2)
        phi0 = seed_sim.phi.interior_src.copy()
        mu0 = seed_sim.mu.interior_src.copy()

        single = Simulation(shape, kernel="compiled_shortcuts")
        single.initialize(phi0, mu0)
        single.step(4)
        dist = DistributedSimulation(
            shape, (2, 1, 1), kernel="compiled_shortcuts", overlap=overlap
        )
        result = dist.run(4, phi0, mu0)
        np.testing.assert_allclose(
            result.phi, single.phi.interior_src, atol=1e-13
        )
        np.testing.assert_allclose(
            result.mu, single.mu.interior_src, atol=1e-13
        )
