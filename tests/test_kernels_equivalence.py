"""Kernel equivalence suite.

The paper: "To decrease the maintenance effort for the various kernels, a
regularly running test suite checks all kernel versions for equivalence."
Every rung of the optimization ladder must reproduce the pure-Python
reference per-cell transcription on every benchmark scenario.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    COMPILED_RUNGS,
    LADDER,
    get_mu_kernel,
    get_phi_kernel,
    make_context,
    rung_available,
)
from repro.core.scenarios import SCENARIOS, fill_ghosts_periodic, make_scenario

SHAPE = (5, 4, 9)
ALL_RUNGS = [r for r in LADDER if r != "reference"]
#: Parametrization list: compiled rungs are marked skip (not silently
#: dropped) when no backend (numba or a C toolchain + cffi) is usable.
RUNGS = [
    pytest.param(
        r,
        marks=pytest.mark.skipif(
            r in COMPILED_RUNGS and not rung_available(r),
            reason="no compiled kernel backend available",
        ),
    )
    for r in ALL_RUNGS
]
#: Loop list for the non-parametrized tests.
AVAILABLE_RUNGS = [r for r in ALL_RUNGS if rung_available(r)]


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario(request):
    phi, mu, tg, system, params = make_scenario(request.param, SHAPE, seed=2)
    ctx = make_context(system, params)
    ref_phi = get_phi_kernel("reference")(ctx, phi, mu, tg)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = ref_phi
    fill_ghosts_periodic(phi_dst, 3)
    t_new = tg - 0.015
    ref_mu = get_mu_kernel("reference")(ctx, mu, phi, phi_dst, tg, t_new)
    return dict(
        name=request.param, ctx=ctx, phi=phi, mu=mu, tg=tg,
        phi_dst=phi_dst, t_new=t_new, ref_phi=ref_phi, ref_mu=ref_mu,
    )


@pytest.mark.parametrize("rung", RUNGS)
def test_phi_kernel_matches_reference(scenario, rung):
    s = scenario
    out = get_phi_kernel(rung)(s["ctx"], s["phi"], s["mu"], s["tg"])
    np.testing.assert_allclose(out, s["ref_phi"], atol=1e-11)


@pytest.mark.parametrize("rung", RUNGS)
def test_mu_kernel_matches_reference(scenario, rung):
    s = scenario
    out = get_mu_kernel(rung)(
        s["ctx"], s["mu"], s["phi"], s["phi_dst"], s["tg"], s["t_new"]
    )
    np.testing.assert_allclose(out, s["ref_mu"], atol=1e-11)


def test_phi_preserves_simplex(scenario):
    from repro.core.simplex import in_simplex

    s = scenario
    for rung in AVAILABLE_RUNGS:
        out = get_phi_kernel(rung)(s["ctx"], s["phi"], s["mu"], s["tg"])
        assert in_simplex(out, tol=1e-9).all(), rung


def test_bulk_cells_are_fixed_points(scenario):
    """Pure cells with uniform neighbourhood must not change (the property
    the shortcut rung exploits)."""
    s = scenario
    if s["name"] != "liquid":
        pytest.skip("only the liquid scenario is pure bulk everywhere")
    out = get_phi_kernel("basic")(s["ctx"], s["phi"], s["mu"], s["tg"])
    interior = s["phi"][(slice(None),) + (slice(1, -1),) * 3]
    np.testing.assert_allclose(out, interior, atol=1e-12)


def test_unknown_kernel_name_raises():
    with pytest.raises(KeyError, match="unknown"):
        get_phi_kernel("turbo")
    with pytest.raises(KeyError, match="unknown"):
        get_mu_kernel("turbo")


def test_ladder_lists_all_rungs():
    assert set(LADDER) == {
        "reference", "basic", "fused", "tz", "buffered", "shortcut",
        "compiled", "compiled_shortcuts",
    }
    assert set(COMPILED_RUNGS) <= set(LADDER)
    # NumPy rungs are available everywhere, whatever the environment
    for rung in LADDER:
        if rung not in COMPILED_RUNGS:
            assert rung_available(rung), rung
    assert not rung_available("turbo")


def test_ladder_equivalent_with_moving_window():
    """Equivalence must survive window shifts (Sec. 3.3): the shift
    re-fills the top with fresh melt and advances the temperature frame,
    so any rung that mishandles ghosts or scratch reuse diverges here."""
    from repro.core.moving_window import MovingWindow
    from repro.core.solver import Simulation
    from repro.thermo.system import TernaryEutecticSystem

    shape = (6, 24)
    steps = 6
    system = TernaryEutecticSystem()

    def run(rung):
        sim = Simulation(
            shape,
            system=system,
            kernel=rung,
            moving_window=MovingWindow(target_fraction=0.3, check_every=1),
        )
        sim.initialize_voronoi(solid_height=12, n_seeds=3, seed=3)
        sim.step(steps)
        return sim

    ref = run("reference")
    assert ref.moving_window.total_shift > 0  # shifts actually happened
    for rung in AVAILABLE_RUNGS:
        sim = run(rung)
        assert sim.moving_window.total_shift == ref.moving_window.total_shift
        assert sim.z_offset == ref.z_offset
        np.testing.assert_allclose(
            sim.phi.interior_src, ref.phi.interior_src, atol=1e-10,
            err_msg=rung,
        )
        np.testing.assert_allclose(
            sim.mu.interior_src, ref.mu.interior_src, atol=1e-10,
            err_msg=rung,
        )


def test_2d_kernels_match():
    """Equivalence also holds in 2-D (D2C5 stencils)."""
    phi, mu, tg, system, params = make_scenario("interface", (7, 12), seed=4)
    ctx = make_context(system, params)
    ref = get_phi_kernel("reference")(ctx, phi, mu, tg)
    for rung in AVAILABLE_RUNGS:
        out = get_phi_kernel(rung)(ctx, phi, mu, tg)
        np.testing.assert_allclose(out, ref, atol=1e-11, err_msg=rung)
    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 2] = ref
    fill_ghosts_periodic(phi_dst, 2)
    ref_mu = get_mu_kernel("reference")(ctx, mu, phi, phi_dst, tg, tg - 0.01)
    for rung in AVAILABLE_RUNGS:
        out = get_mu_kernel(rung)(ctx, mu, phi, phi_dst, tg, tg - 0.01)
        np.testing.assert_allclose(out, ref_mu, atol=1e-11, err_msg=rung)
