"""Tests of the split mu sweep (Algorithm 2's local + neighbour parts)."""

import numpy as np
import pytest

from repro.core.kernels import get_mu_kernel, make_context
from repro.core.kernels.optimized import (
    mu_step_impl,
    mu_step_local_impl,
    mu_step_neighbor_impl,
)
from repro.core.scenarios import SCENARIOS, fill_ghosts_periodic, make_scenario

FLAG_SETS = [
    dict(full_field_t=False, buffered=True, shortcuts=True),
    dict(full_field_t=False, buffered=True, shortcuts=False),
    dict(full_field_t=True, buffered=False, shortcuts=False),
]


@pytest.fixture(scope="module", params=SCENARIOS)
def setup(request):
    phi, mu, tg, system, params = make_scenario(request.param, (5, 5, 10), seed=1)
    ctx = make_context(system, params)
    from repro.core.kernels import get_phi_kernel

    phi_dst = phi.copy()
    phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
        ctx, phi, mu, tg
    )
    fill_ghosts_periodic(phi_dst, 3)
    return ctx, phi, phi_dst, mu, tg, tg - 0.02


@pytest.mark.parametrize("flags", FLAG_SETS)
def test_split_equals_full(setup, flags):
    """local + neighbour == combined sweep (chi-solve is linear)."""
    ctx, phi, phi_dst, mu, t_old, t_new = setup
    full = mu_step_impl(ctx, mu, phi, phi_dst, t_old, t_new, **flags)
    local = mu_step_local_impl(ctx, mu, phi, phi_dst, t_old, t_new, **flags)
    combined = mu_step_neighbor_impl(
        ctx, local, mu, phi, phi_dst, t_old, **flags
    )
    np.testing.assert_allclose(combined, full, atol=1e-12)


def test_local_part_omits_antitrapping(setup):
    ctx, phi, phi_dst, mu, t_old, t_new = setup
    flags = dict(full_field_t=False, buffered=True, shortcuts=False)
    local = mu_step_local_impl(ctx, mu, phi, phi_dst, t_old, t_new, **flags)
    no_at = mu_step_impl(
        ctx, mu, phi, phi_dst, t_old, t_new,
        include_antitrapping=False, **flags,
    )
    np.testing.assert_allclose(local, no_at, atol=0)


def test_neighbor_is_noop_without_antitrapping(setup):
    ctx, phi, phi_dst, mu, t_old, t_new = setup
    params_off = ctx.params.with_(anti_trapping=False)
    ctx_off = make_context(ctx.system, params_off)
    flags = dict(full_field_t=False, buffered=True, shortcuts=True)
    local = mu_step_local_impl(ctx_off, mu, phi, phi_dst, t_old, t_new, **flags)
    out = mu_step_neighbor_impl(ctx_off, local, mu, phi, phi_dst, t_old, **flags)
    np.testing.assert_array_equal(out, local)


def test_split_matches_registered_kernel(setup):
    """The split pipeline agrees with the registered buffered mu kernel."""
    ctx, phi, phi_dst, mu, t_old, t_new = setup
    flags = dict(full_field_t=False, buffered=True, shortcuts=False)
    reg = get_mu_kernel("buffered")(ctx, mu, phi, phi_dst, t_old, t_new)
    local = mu_step_local_impl(ctx, mu, phi, phi_dst, t_old, t_new, **flags)
    split = mu_step_neighbor_impl(ctx, local, mu, phi, phi_dst, t_old, **flags)
    np.testing.assert_allclose(split, reg, atol=1e-12)
