"""Deadline layer and liveness watchdog (ISSUE 7).

Covers the pure policy/monitor units, the deadline-bounded blocking
operations of both simmpi backends, watchdog hang containment on real
processes, the /dev/shm degradation ladder and the orphaned-segment
sweep.  The heavier end-to-end campaign tests live in
``tests/test_faults.py`` and ``tests/test_restart_determinism.py``.
"""

import errno
import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.resilience import Fault, FaultPlan, FaultyComm
from repro.simmpi.comm import RankFailure, RankTimeout, RemoteError
from repro.simmpi.deadline import DEADLINE_OPS, Deadline, DeadlinePolicy
from repro.simmpi.liveness import RankMonitor, WatchdogConfig
from repro.simmpi.runtime import run_spmd

_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not _FORK, reason="test monkeypatches module state inherited via fork"
)


class TestDeadlinePolicy:
    def test_disabled_by_default(self):
        policy = DeadlinePolicy.from_env(environ={})
        assert not policy.enabled
        assert all(policy.limit(op) is None for op in DEADLINE_OPS)
        assert policy.start("recv") is None

    def test_default_applies_to_every_op(self):
        policy = DeadlinePolicy.from_env(
            environ={"REPRO_SIMMPI_TIMEOUT": "2.5"}
        )
        assert policy.enabled
        assert all(policy.limit(op) == 2.5 for op in DEADLINE_OPS)

    def test_per_op_override_and_explicit_off(self):
        policy = DeadlinePolicy.from_env(environ={
            "REPRO_SIMMPI_TIMEOUT": "10",
            "REPRO_SIMMPI_TIMEOUT_RECV": "0.5",
            "REPRO_SIMMPI_TIMEOUT_BARRIER": "off",
            "REPRO_SIMMPI_TIMEOUT_ACK": "-1",
        })
        assert policy.limit("recv") == 0.5
        assert policy.limit("send") == 10.0
        assert policy.limit("barrier") is None
        assert policy.limit("ack") is None

    @pytest.mark.parametrize("raw", ["", "none", "OFF", "0", "-3"])
    def test_disabling_spellings(self, raw):
        policy = DeadlinePolicy.from_env(
            environ={"REPRO_SIMMPI_TIMEOUT": raw}
        )
        assert not policy.enabled

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="invalid simmpi timeout"):
            DeadlinePolicy.from_env(
                environ={"REPRO_SIMMPI_TIMEOUT": "fast"}
            )

    def test_started_deadline_expires_and_raises(self):
        deadline = Deadline("recv", 0.02, peers=(3,))
        assert deadline.remaining() > 0
        deadline.check()  # not expired yet
        time.sleep(0.03)
        assert deadline.expired()
        with pytest.raises(RankTimeout) as info:
            deadline.check()
        assert info.value.op == "recv"
        assert info.value.failed_ranks == (3,)
        assert isinstance(info.value, RankFailure)


class TestWatchdogConfig:
    def test_disabled_by_default(self):
        config = WatchdogConfig.from_env(environ={})
        assert not config.enabled

    def test_heartbeat_defaults_to_quarter_timeout(self):
        config = WatchdogConfig.from_env(
            environ={"REPRO_SIMMPI_HANG_TIMEOUT": "2.0"}
        )
        assert config.enabled
        assert config.hang_timeout == 2.0
        assert config.heartbeat == pytest.approx(0.5)

    def test_explicit_heartbeat_wins(self):
        config = WatchdogConfig.from_env(environ={
            "REPRO_SIMMPI_HANG_TIMEOUT": "2.0",
            "REPRO_SIMMPI_HEARTBEAT": "0.1",
        })
        assert config.heartbeat == pytest.approx(0.1)


class TestRankMonitor:
    def _monitor(self, timeout=0.05, n=3):
        return RankMonitor(
            WatchdogConfig(hang_timeout=timeout, heartbeat=0.01), n
        )

    def test_advancing_rank_never_declared(self):
        monitor = self._monitor()
        for tick in range(4):
            for rank in range(3):
                monitor.beat(rank, tick)
            time.sleep(0.02)
        assert monitor.hung_rank([0, 1, 2]) is None

    def test_frozen_rank_declared_when_peer_advances(self):
        monitor = self._monitor()
        monitor.beat(0, 1)
        monitor.beat(1, 1)
        monitor.beat(2, 1)
        time.sleep(0.07)
        monitor.beat(0, 2)  # peers keep moving; rank 2 froze first
        monitor.beat(1, 2)
        assert monitor.hung_rank([0, 1, 2]) == 2
        # fire-once: the verdict is not repeated
        assert monitor.hung_rank([0, 1, 2]) is None

    def test_repeated_equal_heartbeats_do_not_reset_clock(self):
        monitor = self._monitor()
        monitor.beat(0, 7)
        time.sleep(0.03)
        monitor.beat(0, 7)  # same progress value: still frozen
        assert monitor.frozen_for(0) >= 0.03

    def test_oldest_frozen_rank_blamed_not_its_victims(self):
        monitor = self._monitor()
        monitor.beat(0, 1)
        monitor.beat(1, 1)
        time.sleep(0.03)
        monitor.beat(0, 2)  # rank 0 froze *after* rank 1
        time.sleep(0.07)
        monitor.beat(2, 5)  # a peer still advancing
        assert monitor.hung_rank([0, 1, 2]) == 1

    def test_collective_deadlock_needs_grace_factor(self):
        monitor = self._monitor(timeout=0.04)
        for rank in range(3):
            monitor.beat(rank, 1)
        time.sleep(0.06)
        # everyone frozen, nobody advanced: not yet declared ...
        assert monitor.hung_rank([0, 1, 2]) is None
        time.sleep(0.10)
        # ... until the freeze outlasts grace_factor * timeout
        assert monitor.hung_rank([0, 1, 2]) is not None


class TestThreadBackendDeadlines:
    def test_recv_deadline_blames_the_silent_peer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT_RECV", "0.3")

        def fn(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=7)  # never sent
            while not comm.aborted():
                time.sleep(0.01)
            return "peer-released"

        with pytest.raises(RankTimeout) as info:
            run_spmd(2, fn, backend="thread")
        assert info.value.op == "recv"
        assert info.value.failed_ranks == (1,)
        assert info.value.simmpi_rank == 0

    def test_barrier_deadline_instead_of_hang(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT_BARRIER", "0.3")

        def fn(comm):
            if comm.rank == 0:
                comm.barrier()  # rank 1 never arrives
                return "passed"
            while not comm.aborted():
                time.sleep(0.01)
            return "peer-released"

        with pytest.raises(RankTimeout) as info:
            run_spmd(2, fn, backend="thread")
        assert info.value.op == "barrier"

    def test_no_deadline_means_no_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMMPI_TIMEOUT", raising=False)

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.2)  # longer than any poll interval
                comm.send(np.arange(3.0), dest=1, tag=7)
                return None
            return comm.recv(0, tag=7)

        results = run_spmd(2, fn, backend="thread")
        np.testing.assert_array_equal(results[1], np.arange(3.0))


@needs_fork
class TestProcessBackendDeadlines:
    def test_recv_deadline_on_real_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT_RECV", "0.5")

        def fn(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=7)
            while not comm.aborted():
                time.sleep(0.02)
            return "peer-released"

        with pytest.raises(RankTimeout) as info:
            run_spmd(2, fn, backend="process")
        assert info.value.op == "recv"

    def test_ack_drop_leaks_slot_until_send_deadline(self, monkeypatch):
        """A dropped segment ack leaks the channel slot; with a single
        slot the next large send blocks and the send deadline converts
        the silent loss into a typed timeout."""
        monkeypatch.setattr("repro.simmpi.transport.CHANNEL_SLOTS", 1)
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT_SEND", "0.5")
        plan = FaultPlan([Fault(kind="ack_drop", step=0, rank=1)])

        def fn(comm):
            fc = FaultyComm(comm, plan)
            payload = np.arange(4096, dtype=float)  # staged, not inline
            if comm.rank == 0:
                fc.send(payload, dest=1, tag=1)
                fc.send(payload, dest=1, tag=2)  # blocks on leaked slot
                return "sent-both"
            first = comm.recv(0, tag=1)  # ack dropped here
            try:
                comm.recv(0, tag=2)
            except RemoteError:
                pass
            return first.sum()

        with pytest.raises(RankTimeout) as info:
            run_spmd(2, fn, backend="process")
        assert info.value.op == "send"


@needs_fork
class TestWatchdog:
    def test_hung_rank_is_detected_and_killed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_HANG_TIMEOUT", "0.6")

        def fn(comm):
            if comm.rank == 1:
                time.sleep(30)  # silent hang: no raise, no progress
                return "unreachable"
            while not comm.aborted():
                comm.note_progress()
                time.sleep(0.05)
            return "survivor"

        t0 = time.monotonic()
        with pytest.raises(RankTimeout) as info:
            run_spmd(2, fn, backend="process")
        assert time.monotonic() - t0 < 15  # bounded, not the 30 s sleep
        assert info.value.op == "liveness"
        assert info.value.failed_ranks == (1,)

    def test_slow_but_advancing_rank_survives(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_HANG_TIMEOUT", "0.5")

        def fn(comm):
            # Slower than hang_timeout end-to-end, but progress keeps
            # ticking: the watchdog must leave the rank alone.
            for _ in range(8):
                comm.note_progress()
                time.sleep(0.1)
            comm.barrier()
            return comm.rank

        assert run_spmd(2, fn, backend="process") == [0, 1]


@needs_fork
class TestDegradation:
    def test_enospc_falls_back_to_inline_pickles(self, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", boom
        )

        def fn(comm):
            payload = np.full(4096, float(comm.rank))  # above INLINE_MAX
            other = 1 - comm.rank
            received = comm.sendrecv(
                payload, dest=other, source=other, sendtag=5
            )
            np.testing.assert_array_equal(
                received, np.full(4096, float(other))
            )
            return comm._transport.degradations

        degradations = run_spmd(2, fn, backend="process")
        assert all(d >= 1 for d in degradations)


class TestSegmentSweep:
    def test_orphans_of_dead_pids_are_reclaimed(self, tmp_path):
        from repro.simmpi.transport import sweep_orphaned_segments

        proc = mp.get_context("fork" if _FORK else "spawn").Process(
            target=lambda: None
        )
        proc.start()
        proc.join()
        dead_pid = proc.pid
        orphan = tmp_path / f"repro-smm-{dead_pid}-deadbeef"
        orphan.write_bytes(b"x" * 64)
        owned = tmp_path / f"repro-smm-{os.getpid()}-cafecafe"
        owned.write_bytes(b"y" * 64)
        unrelated = tmp_path / "psm_f00dface"
        unrelated.write_bytes(b"z" * 64)

        reclaimed = sweep_orphaned_segments(directory=tmp_path)
        assert (f"repro-smm-{dead_pid}-deadbeef", dead_pid) in reclaimed
        assert not orphan.exists()
        assert owned.exists()       # live owner: untouched
        assert unrelated.exists()   # foreign file: untouched

    def test_missing_directory_is_a_noop(self, tmp_path):
        from repro.simmpi.transport import sweep_orphaned_segments

        assert sweep_orphaned_segments(
            directory=tmp_path / "does-not-exist"
        ) == []
