"""Tests of the isosurface extraction (marching tetrahedra on Kuhn cubes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.marching_cubes import extract_isosurface, extract_phase_meshes


def sphere_volume(n=20, r=6.0, centre=None):
    c = n / 2 if centre is None else centre
    x, y, z = np.meshgrid(*[np.arange(n, dtype=float)] * 3, indexing="ij")
    rad = np.sqrt((x - c) ** 2 + (y - c) ** 2 + (z - c) ** 2)
    return 1.0 / (1.0 + np.exp(rad - r))


class TestSphere:
    def test_watertight_genus_zero(self):
        m = extract_isosurface(sphere_volume(), 0.5)
        assert m.is_watertight()
        assert m.euler_characteristic() == 2

    def test_area_close_to_analytic(self):
        m = extract_isosurface(sphere_volume(n=24, r=8.0), 0.5)
        assert m.area() == pytest.approx(4 * np.pi * 64.0, rel=0.02)

    def test_normals_point_outward(self):
        n = 20
        m = extract_isosurface(sphere_volume(n), 0.5)
        nrm = m.face_normals()
        cen = m.vertices[m.faces].mean(axis=1) - n / 2
        assert (np.einsum("ij,ij->i", nrm, cen) > 0).all()

    def test_origin_and_spacing(self):
        m1 = extract_isosurface(sphere_volume(), 0.5)
        m2 = extract_isosurface(sphere_volume(), 0.5, origin=(5, 0, 0), spacing=2.0)
        np.testing.assert_allclose(
            m2.vertices, m1.vertices * 2.0 + [5, 0, 0], atol=1e-12
        )
        assert m2.area() == pytest.approx(4.0 * m1.area(), rel=1e-9)


class TestEdgeCases:
    def test_empty_for_uniform_volume(self):
        assert extract_isosurface(np.zeros((5, 5, 5)), 0.5).n_faces == 0
        assert extract_isosurface(np.ones((5, 5, 5)), 0.5).n_faces == 0

    def test_too_small_volume(self):
        assert extract_isosurface(np.zeros((1, 4, 4)), 0.5).n_faces == 0

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError, match="3-D"):
            extract_isosurface(np.zeros((4, 4)), 0.5)

    def test_planar_interface_area(self):
        """A flat half-space interface has exactly the cross-section area."""
        v = np.zeros((6, 6, 10))
        v[:, :, 5:] = 1.0
        m = extract_isosurface(v, 0.5)
        assert m.area() == pytest.approx(5.0 * 5.0, rel=1e-9)


class TestBlockConsistency:
    @pytest.mark.parametrize("cut", [7, 10, 13])
    def test_split_volumes_stitch_watertight(self, cut):
        """Ghost-overlapping halves produce the identical global surface —
        the property the per-block mesh generation relies on."""
        vol = sphere_volume(n=20, r=6.5)
        whole = extract_isosurface(vol, 0.5)
        a = extract_isosurface(vol[: cut + 1], 0.5, origin=(0, 0, 0))
        b = extract_isosurface(vol[cut:], 0.5, origin=(cut, 0, 0))
        st_mesh = a.stitch(b)
        assert st_mesh.is_watertight()
        assert st_mesh.n_faces == whole.n_faces
        assert st_mesh.area() == pytest.approx(whole.area(), rel=1e-9)


class TestPhaseMeshes:
    def test_one_mesh_per_phase(self):
        phi = np.zeros((3, 8, 8, 8))
        phi[0, :, :, :4] = 1.0
        phi[1, :, :, 4:] = 1.0
        meshes = extract_phase_meshes(phi)
        assert set(meshes) == {0, 1, 2}
        assert meshes[2].n_faces == 0
        assert meshes[0].n_faces > 0

    def test_phase_subset(self):
        phi = np.zeros((3, 6, 6, 6))
        meshes = extract_phase_meshes(phi, phases=[1])
        assert set(meshes) == {1}


@settings(max_examples=10, deadline=None)
@given(
    r=st.floats(3.0, 7.0),
    cx=st.floats(8.0, 12.0),
)
def test_watertight_property(r, cx):
    """Any smooth blob fully inside the volume yields a closed surface."""
    vol = sphere_volume(n=20, r=r, centre=cx)
    m = extract_isosurface(vol, 0.5)
    assert m.n_faces > 0
    assert m.is_watertight()
