"""Tests of the triangle-mesh container."""

import numpy as np
import pytest

from repro.io.mesh import TriangleMesh


def tetra():
    """A regular tetrahedron (closed, watertight)."""
    v = np.array([
        [0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
    ], dtype=float)
    f = np.array([
        [0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3],
    ])
    return TriangleMesh(v, f)


def open_quad():
    v = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=float)
    f = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(v, f)


class TestBasics:
    def test_counts(self):
        m = tetra()
        assert m.n_vertices == 4
        assert m.n_faces == 4

    def test_face_index_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            TriangleMesh(np.zeros((2, 3)), np.array([[0, 1, 2]]))

    def test_area(self):
        m = open_quad()
        assert m.area() == pytest.approx(1.0)

    def test_normals_unit(self):
        n = tetra().face_normals()
        np.testing.assert_allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_edges_unique(self):
        m = tetra()
        assert len(m.edges()) == 6


class TestTopology:
    def test_tetra_watertight(self):
        assert tetra().is_watertight()

    def test_open_mesh_not_watertight(self):
        assert not open_quad().is_watertight()

    def test_empty_not_watertight(self):
        assert not TriangleMesh.empty().is_watertight()

    def test_euler_sphere_like(self):
        assert tetra().euler_characteristic() == 2

    def test_boundary_vertices_of_quad(self):
        b = open_quad().boundary_vertices()
        assert set(b.tolist()) == {0, 1, 2, 3}

    def test_tetra_has_no_boundary(self):
        assert tetra().boundary_vertices().size == 0


class TestCleanup:
    def test_weld_merges_duplicates(self):
        m1 = open_quad()
        v = np.vstack([m1.vertices, m1.vertices])
        f = np.vstack([m1.faces, m1.faces + 4])
        m = TriangleMesh(v, f).weld()
        assert m.n_vertices == 4

    def test_weld_drops_degenerate(self):
        v = np.array([[0, 0, 0], [1, 0, 0], [1, 0, 0.0000000001]])
        f = np.array([[0, 1, 2]])
        m = TriangleMesh(v, f).weld()
        assert m.n_faces == 0

    def test_compact_removes_unused(self):
        v = np.vstack([open_quad().vertices, [[9, 9, 9]]])
        m = TriangleMesh(v, open_quad().faces).compact()
        assert m.n_vertices == 4

    def test_stitch_closes_seam(self):
        """Two halves of a tetra sharing an edge weld into one complex."""
        t = tetra()
        a = TriangleMesh(t.vertices, t.faces[:2])
        b = TriangleMesh(t.vertices.copy(), t.faces[2:])
        s = a.stitch(b)
        assert s.is_watertight()
        assert s.n_faces == 4

    def test_translated(self):
        m = tetra().translated([1.0, 2.0, 3.0])
        np.testing.assert_allclose(m.vertices[0], [1.0, 2.0, 3.0])


class TestExport:
    def test_obj_roundtrippable_text(self, tmp_path):
        path = tmp_path / "m.obj"
        nbytes = tetra().write_obj(path)
        text = path.read_text()
        assert nbytes == len(text)
        assert text.count("\nv ") + text.startswith("v ") == 0 or True
        assert len([l for l in text.splitlines() if l.startswith("v ")]) == 4
        assert len([l for l in text.splitlines() if l.startswith("f ")]) == 4
        # OBJ is 1-indexed
        assert " 0" not in [l.split()[1] for l in text.splitlines() if l.startswith("f ")]
