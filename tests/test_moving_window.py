"""Unit tests of the moving-window mechanics."""

import numpy as np
import pytest

from repro.core.moving_window import MovingWindow, shift_along_growth_axis


class TestShift:
    def test_content_moves_down(self):
        a = np.arange(10, dtype=float).reshape(1, 10).copy()
        shift_along_growth_axis(a, 3, fill_values=np.array([-1.0]))
        np.testing.assert_allclose(a[0, :7], np.arange(3, 10))
        np.testing.assert_allclose(a[0, 7:], -1.0)

    def test_zero_shift_noop(self):
        a = np.arange(5, dtype=float)
        b = a.copy()
        shift_along_growth_axis(a, 0, 0.0)
        np.testing.assert_array_equal(a, b)

    def test_excessive_shift_rejected(self):
        with pytest.raises(ValueError, match="shift"):
            shift_along_growth_axis(np.zeros(4), 4, 0.0)

    def test_per_component_fill(self):
        a = np.zeros((3, 2, 6))
        shift_along_growth_axis(a, 2, fill_values=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(a[0, :, -2:], 1.0)
        np.testing.assert_allclose(a[2, :, -2:], 3.0)


class TestPolicy:
    def test_no_shift_below_target(self):
        mw = MovingWindow(target_fraction=0.5)
        assert mw.required_shift(front_z=3.0, nz=20) == 0

    def test_shift_amount(self):
        mw = MovingWindow(target_fraction=0.5)
        assert mw.required_shift(front_z=14.2, nz=20) == 4

    def test_disabled(self):
        mw = MovingWindow(target_fraction=0.5, enabled=False)
        assert mw.required_shift(front_z=19.0, nz=20) == 0

    def test_all_liquid_sentinel(self):
        mw = MovingWindow()
        assert mw.required_shift(front_z=-1.0, nz=20) == 0

    def test_record_accumulates(self):
        mw = MovingWindow()
        mw.record(3)
        mw.record(2)
        assert mw.total_shift == 5
