"""Tests of multiple blocks per rank (waLBerla-style block distribution)."""

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.core.solver import Simulation
from repro.distributed import DistributedSimulation
from repro.distributed.exchange import exchange_block_ghosts
from repro.grid.blockforest import BlockForest
from repro.grid.boundary import BoundarySpec
from repro.simmpi import run_spmd
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (8, 8, 16)
STEPS = 5


@pytest.fixture(scope="module")
def reference():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, SHAPE, solid_height=5, n_seeds=5)
    phi0 = smooth_phase_field(phi0, 2)
    sim = Simulation(shape=SHAPE, system=system, kernel="buffered")
    sim.initialize(phi0, mu0)
    sim.step(STEPS)
    return dict(system=system, phi0=phi0, mu0=mu0, params=sim.params,
                temperature=sim.temperature,
                phi=sim.phi.interior_src.copy(), mu=sim.mu.interior_src.copy())


@pytest.mark.parametrize("bpa,n_ranks,strategy", [
    ((2, 2, 2), 2, "contiguous"),
    ((2, 2, 2), 4, "round_robin"),
    ((2, 2, 2), 3, "contiguous"),
    ((1, 1, 4), 2, "round_robin"),
    ((2, 2, 1), 1, "contiguous"),   # everything on one rank: pure copies
])
def test_multiblock_bitwise(reference, bpa, n_ranks, strategy):
    d = DistributedSimulation(
        SHAPE, bpa, system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered",
        n_ranks=n_ranks, balance_strategy=strategy,
    )
    res = d.run(STEPS, reference["phi0"], reference["mu0"])
    np.testing.assert_array_equal(res.phi, reference["phi"])
    np.testing.assert_array_equal(res.mu, reference["mu"])
    assert sum(s.n_blocks for s in res.stats) == d.forest.n_blocks


def test_multiblock_overlap_schedule(reference):
    d = DistributedSimulation(
        SHAPE, (2, 2, 2), system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered",
        n_ranks=3, overlap=True,
    )
    res = d.run(STEPS, reference["phi0"], reference["mu0"])
    np.testing.assert_allclose(res.phi, reference["phi"], atol=1e-12)
    np.testing.assert_allclose(res.mu, reference["mu"], atol=1e-11)


def test_single_rank_has_no_messages(reference):
    """All blocks on one rank: ghost exchange is pure memory copies."""
    d = DistributedSimulation(
        SHAPE, (2, 2, 2), system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered", n_ranks=1,
    )
    res = d.run(2, reference["phi0"], reference["mu0"])
    assert res.stats[0].comm_messages == 0
    np.testing.assert_allclose(
        res.phi,
        _two_step_reference(reference), atol=0,
    )


def _two_step_reference(reference):
    sim = Simulation(
        shape=SHAPE, system=reference["system"], params=reference["params"],
        temperature=reference["temperature"], kernel="buffered",
    )
    sim.initialize(reference["phi0"], reference["mu0"])
    sim.step(2)
    return sim.phi.interior_src.copy()


class TestExchangeBlockGhosts:
    def test_local_copy_matches_messages(self):
        """Same-rank copies and remote messages fill identical ghosts."""
        forest = BlockForest((8, 8), (2, 2), periodicity=(True, False))
        rng = np.random.default_rng(0)
        global_field = rng.normal(size=(1, 8, 8))
        spec = BoundarySpec.directional(2)

        def local_arrays():
            arrays = {}
            for b in forest.blocks:
                a = np.zeros((1, 6, 6))
                a[:, 1:-1, 1:-1] = global_field[
                    :, b.offset[0]: b.offset[0] + 4, b.offset[1]: b.offset[1] + 4
                ]
                arrays[b.id] = a
            return arrays

        # all blocks on one rank (copies only)
        def one_rank(comm):
            arrays = local_arrays()
            exchange_block_ghosts(
                comm, forest, [0, 0, 0, 0], arrays, 2, spec
            )
            return arrays

        copies = run_spmd(1, one_rank)[0]

        # one block per rank (messages only)
        def four_ranks(comm):
            b = forest.blocks[comm.rank]
            arrays = {b.id: local_arrays()[b.id]}
            exchange_block_ghosts(
                comm, forest, [0, 1, 2, 3], arrays, 2, spec
            )
            return arrays[b.id]

        messaged = run_spmd(4, four_ranks)
        for bid in range(4):
            np.testing.assert_array_equal(copies[bid], messaged[bid])
