"""Tests of the Voronoi initial condition."""

import numpy as np
import pytest

from repro.core.nucleation import (
    allocate_seed_phases,
    smooth_phase_field,
    voronoi_initial_condition,
)
from repro.core.simplex import in_simplex
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture(scope="module")
def system():
    return TernaryEutecticSystem()


class TestSeedAllocation:
    def test_counts_match_fractions(self, system):
        frac = system.lever_rule_fractions()
        rng = np.random.default_rng(0)
        phases = allocate_seed_phases(frac, system.phase_set.solid_indices, 100, rng)
        assert len(phases) == 100
        for s in system.phase_set.solid_indices:
            want = frac[s] / frac[list(system.phase_set.solid_indices)].sum()
            got = (phases == s).mean()
            assert got == pytest.approx(want, abs=0.02)

    def test_zero_seeds_rejected(self, system):
        with pytest.raises(ValueError, match="seed"):
            allocate_seed_phases(
                system.lever_rule_fractions(),
                system.phase_set.solid_indices, 0, np.random.default_rng(0),
            )

    def test_small_counts_cover_all_when_possible(self, system):
        rng = np.random.default_rng(1)
        phases = allocate_seed_phases(
            system.lever_rule_fractions(), system.phase_set.solid_indices, 3, rng
        )
        assert set(phases) == set(system.phase_set.solid_indices)


class TestVoronoi:
    def test_structure(self, system):
        phi, mu = voronoi_initial_condition(
            system, (10, 10, 20), solid_height=6, n_seeds=8
        )
        assert phi.shape == (4, 10, 10, 20)
        assert in_simplex(phi.reshape(4, -1)).all()
        ell = system.liquid_index
        np.testing.assert_allclose(phi[ell, :, :, 6:], 1.0)
        np.testing.assert_allclose(phi[ell, :, :, :6], 0.0)

    def test_deterministic_with_seed(self, system):
        kw = dict(solid_height=5, n_seeds=6)
        a, _ = voronoi_initial_condition(
            system, (8, 8, 12), rng=np.random.default_rng(7), **kw
        )
        b, _ = voronoi_initial_condition(
            system, (8, 8, 12), rng=np.random.default_rng(7), **kw
        )
        np.testing.assert_array_equal(a, b)

    def test_fractions_roughly_lever(self, system):
        phi, _ = voronoi_initial_condition(
            system, (24, 24, 10), solid_height=10, n_seeds=60,
            rng=np.random.default_rng(3),
        )
        frac = system.lever_rule_fractions()
        for s in system.phase_set.solid_indices:
            got = phi[s].mean()  # whole domain is solid here
            assert got == pytest.approx(frac[s], abs=0.12)

    def test_invalid_solid_height(self, system):
        with pytest.raises(ValueError, match="solid_height"):
            voronoi_initial_condition(system, (4, 4, 8), solid_height=0, n_seeds=2)

    def test_2d(self, system):
        phi, mu = voronoi_initial_condition(
            system, (12, 16), solid_height=5, n_seeds=4
        )
        assert phi.shape == (4, 12, 16)
        assert mu.shape == (2, 12, 16)


class TestSmoothing:
    def test_preserves_simplex(self, system):
        phi, _ = voronoi_initial_condition(
            system, (8, 8, 12), solid_height=5, n_seeds=5
        )
        sm = smooth_phase_field(phi, 3)
        assert in_simplex(sm.reshape(4, -1), tol=1e-9).all()

    def test_widens_interface(self, system):
        phi, _ = voronoi_initial_condition(
            system, (8, 8, 12), solid_height=5, n_seeds=5
        )
        sm = smooth_phase_field(phi, 2)
        sharp_cells = ((phi > 0) & (phi < 1)).sum()
        smooth_cells = ((sm > 1e-9) & (sm < 1 - 1e-9)).sum()
        assert smooth_cells > sharp_cells

    def test_zero_iterations_identity(self, system):
        phi, _ = voronoi_initial_condition(
            system, (6, 6, 8), solid_height=4, n_seeds=3
        )
        np.testing.assert_allclose(smooth_phase_field(phi, 0), phi, atol=1e-12)
